//! The Santoro–Widmayer lossy link (paper §1, §6.1, [21]): consensus under
//! the oblivious adversary over {←, ↔, →} is impossible. This example shows
//! the topological reading of that impossibility:
//!
//! * the valence classes never separate — one ε-approximation component
//!   contains both `z_0` and `z_1` at every examined depth;
//! * a valence-connecting chain of runs (the finite shadow of the fair
//!   sequence, Definition 5.16) is extracted per depth, and grows;
//! * a classic bivalence-style obstruction run is constructed for a
//!   concrete would-be algorithm (§6.1).
//!
//! ```text
//! cargo run -p examples --bin lossy_link
//! ```

use adversary::{GeneralMA, MessageAdversary};
use consensus_core::{analysis, bivalence, fair, space::PrefixSpace, ExpandConfig};
use dyngraph::generators;
use examples_support::section;
use simulator::algorithms::FloodMin;

fn main() {
    let ma = GeneralMA::oblivious(generators::lossy_link_full());
    println!("adversary: {} (Santoro–Widmayer lossy link)", ma.describe());

    section("Depth sweep: the valence classes never separate");
    for report in analysis::depth_sweep(&ma, &[0, 1], 4, 2_000_000) {
        println!(
            "depth {}: {:4} runs, {:3} components, {} mixed, separated: {}",
            report.depth,
            report.run_count,
            report.components.len(),
            report.mixed_count(),
            report.separated
        );
    }

    section("The fair-sequence shadow: valence-connecting chains per depth");
    for depth in 1..=4 {
        let space = PrefixSpace::expand(&ma, &[0, 1], depth, &ExpandConfig::default())
            .expect("within budget");
        let chain = fair::valence_chain(&space, 0, 1).expect("mixed component chains");
        assert!(fair::validate_epsilon_chain(&space, &chain));
        println!("depth {depth}: chain of {} links:", chain.links.len());
        let ids = chain.run_indices();
        for (k, &i) in ids.iter().enumerate() {
            let run = &space.runs()[i];
            let via = if k == 0 {
                "start".to_string()
            } else {
                format!("shares p{}'s view", chain.links[k - 1].shared_view_of)
            };
            println!("    x={:?} under {}   ({via})", run.inputs(), run.seq());
        }
    }

    section("No exact distance-0 chain exists (rooted pool)");
    match fair::exact_zero_chain(&ma, 0, 1, 3) {
        None => println!(
            "confirmed: every admissible lasso (cycle ≤ 3) has a broadcaster — the\n\
             impossibility lives in the limit, exactly as Fig. 5 / §6.1 describe"
        ),
        Some(c) => panic!("unexpected exact chain: {c:?}"),
    }

    section("Bivalence-style obstruction for FloodMin(4) (§6.1)");
    let alg = FloodMin::new(4);
    let run = bivalence::bivalent_run(&alg, &ma, &[0, 1], 4, 2)
        .expect("obstructed run must exist on an unsolvable adversary");
    println!("obstructed initial inputs: {:?}", run.inputs);
    for (t, step) in run.steps.iter().enumerate() {
        println!(
            "round {}: extend with {}  (reachable outcomes {:?})",
            t + 1,
            step.graph,
            step.outcomes
        );
    }
    println!(
        "\nThe adversary extends the obstruction forever — the constructed run is\n\
         the common limit of executions from both decision sets (Def. 5.16)."
    );
}
