//! The n = 2 oblivious solvability atlas: every nonempty pool over the four
//! 2-process graphs {∅, ←, →, ↔}, with the checker's verdict, the kernel
//! criterion of [8], decision depths, and component counts — the complete
//! landscape the paper's §1/§6 examples are drawn from.
//!
//! ```text
//! cargo run -p examples --bin atlas
//! ```

use adversary::GeneralMA;
use consensus_core::{baselines, solvability::SolvabilityChecker, solvability::Verdict};
use dyngraph::{generators, Digraph};
use examples_support::section;

fn main() {
    section("n = 2 oblivious solvability atlas");
    println!("{:<24} {:<34} {:<12} notes", "pool", "checker verdict", "kernel [8]");
    let all: Vec<Digraph> = generators::all_graphs(2).collect();
    let mut agree = 0;
    for bits in 1u32..16 {
        let pool: Vec<Digraph> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| bits & (1 << i) != 0)
            .map(|(_, g)| g.clone())
            .collect();
        let name =
            format!("{{{}}}", pool.iter().map(|g| g.to_string()).collect::<Vec<_>>().join(", "));
        let kernel = baselines::kernel_beta_solvable_n2(&pool);
        let verdict = SolvabilityChecker::new(GeneralMA::oblivious(pool)).max_depth(4).check();
        let (tag, note) = match &verdict {
            Verdict::Solvable(cert) => (
                format!("SOLVABLE (depth {})", cert.depth),
                format!(
                    "{} components, decides by round {}",
                    cert.component_count, cert.verification.max_decision_round
                ),
            ),
            Verdict::Unsolvable(_) => {
                ("UNSOLVABLE (exact chain)".to_string(), "distance-0 input-flip chain".to_string())
            }
            Verdict::Undecided(rep) => (
                format!("mixed through depth {}", rep.max_depth),
                format!("{} mixed components; limit-only impossibility", rep.mixed_components),
            ),
        };
        let checker_solvable = verdict.is_solvable();
        if checker_solvable == kernel {
            agree += 1;
        }
        println!(
            "{name:<24} {tag:<34} {:<12} {note}",
            if kernel { "solvable" } else { "unsolvable" }
        );
    }
    println!("\nchecker/kernel agreement: {agree}/15 pools");
    assert_eq!(agree, 15, "the topological checker must match [8] on n = 2");
}
