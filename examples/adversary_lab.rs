//! Adversary lab: build custom message adversaries (catalog entries,
//! predicate-defined constraints, intersections) and put them through the
//! full pipeline — solvability check, boundary census, and an execution
//! transcript of the synthesized algorithm.
//!
//! ```text
//! cargo run -p examples --bin adversary_lab
//! ```

use adversary::{
    catalog,
    predicate::{PredicateMA, PrefixStatus},
    GeneralMA, IntersectMA, MessageAdversary,
};
use consensus_core::{compactness, solvability::SolvabilityChecker, solvability::Verdict};
use dyngraph::{generators, GraphSeq};
use examples_support::{section, verdict_line};
use simulator::trace;

fn main() {
    section("Catalog adversaries through the checker");
    let entries: Vec<(&str, Box<dyn MessageAdversary>)> = vec![
        ("santoro_widmayer_lossy_link", Box::new(catalog::santoro_widmayer_lossy_link())),
        ("cgp_reduced_lossy_link", Box::new(catalog::cgp_reduced_lossy_link())),
        ("rotating_star(3)", Box::new(catalog::rotating_star(3))),
        ("message_loss(2, 2)", Box::new(catalog::message_loss(2, 2))),
        ("vssc(2, window=2, by 3)", Box::new(catalog::vssc(2, 2, Some(3)))),
    ];
    for (name, _ma) in &entries {
        // Rebuild concrete types for the checker (it takes ownership).
        let verdict = match *name {
            "santoro_widmayer_lossy_link" => {
                SolvabilityChecker::new(catalog::santoro_widmayer_lossy_link())
                    .max_depth(4)
                    .check()
            }
            "cgp_reduced_lossy_link" => {
                SolvabilityChecker::new(catalog::cgp_reduced_lossy_link()).max_depth(4).check()
            }
            "rotating_star(3)" => SolvabilityChecker::new(catalog::rotating_star(3))
                .max_depth(3)
                .max_runs(4_000_000)
                .check(),
            "message_loss(2, 2)" => {
                SolvabilityChecker::new(catalog::message_loss(2, 2)).max_depth(3).check()
            }
            _ => SolvabilityChecker::new(catalog::vssc(2, 2, Some(3)))
                .max_depth(5)
                .max_runs(4_000_000)
                .check(),
        };
        println!("{name:32} {}", verdict_line(&verdict));
    }

    section("A custom predicate adversary: 'no two consecutive ← rounds'");
    let no_double_left =
        PredicateMA::new(generators::lossy_link_full(), "no-double-left", |prefix: &GraphSeq| {
            let bad = (2..=prefix.rounds()).any(|t| {
                prefix.graph(t).arrow2() == Some("<-") && prefix.graph(t - 1).arrow2() == Some("<-")
            });
            if bad {
                PrefixStatus::Dead
            } else {
                PrefixStatus::Satisfied
            }
        });
    println!("adversary: {}", no_double_left.describe());
    let verdict = SolvabilityChecker::new(no_double_left).max_depth(4).check();
    println!("verdict:   {}", verdict_line(&verdict));

    section("Intersection: no-double-left ∩ (↔ within 2 rounds)");
    let a = PredicateMA::new(generators::lossy_link_full(), "no-double-left", |prefix| {
        let bad = (2..=prefix.rounds()).any(|t| {
            prefix.graph(t).arrow2() == Some("<-") && prefix.graph(t - 1).arrow2() == Some("<-")
        });
        if bad {
            PrefixStatus::Dead
        } else {
            PrefixStatus::Satisfied
        }
    });
    let b = GeneralMA::eventually_graph(
        generators::lossy_link_full(),
        dyngraph::Digraph::parse2("<->").unwrap(),
        Some(2),
    );
    let both = IntersectMA::new(vec![Box::new(a), Box::new(b)]);
    println!("adversary: {}", both.describe());
    println!("boundary census (pool-valid vs admissible prefixes):");
    for rep in compactness::boundary_sweep(&both, 3) {
        println!(
            "  depth {}: {} pool-valid, {} admissible, {} dead",
            rep.depth, rep.pool_valid, rep.admissible, rep.dead
        );
    }
    let verdict = SolvabilityChecker::new(both).max_depth(5).check();
    println!("verdict:   {}", verdict_line(&verdict));

    if let Verdict::Solvable(cert) = verdict {
        section("Transcript of the synthesized algorithm on one run");
        let seq = GraphSeq::parse2("-> <-> <- ->").unwrap();
        let exec = simulator::engine::run(&cert.algorithm, &[0, 1], &seq);
        print!("{}", trace::transcript(&cert.algorithm, &[0, 1], &seq, &exec, 48));
    }
}
