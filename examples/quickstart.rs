//! Quickstart: check solvability of a message adversary, synthesize the
//! universal algorithm, and run it.
//!
//! ```text
//! cargo run -p examples --bin quickstart
//! ```

use adversary::{GeneralMA, MessageAdversary};
use consensus_core::solvability::{SolvabilityChecker, Verdict};
use dyngraph::{generators, GraphSeq};
use examples_support::{section, verdict_line};
use simulator::engine;

fn main() {
    section("The reduced lossy link {←, →} (paper §6.1, [8])");
    let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
    println!("adversary: {}", ma.describe());

    let verdict = SolvabilityChecker::new(ma).max_depth(4).check();
    println!("verdict:   {}", verdict_line(&verdict));

    let cert = match verdict {
        Verdict::Solvable(cert) => cert,
        other => panic!("expected solvable, got: {other:?}"),
    };

    section("Running the synthesized universal algorithm");
    let alg = &cert.algorithm;
    for word in ["-> <- -> <-", "<- <- -> ->"] {
        let seq = GraphSeq::parse2(word).expect("valid arrow word");
        for inputs in [[0u32, 1], [1, 0], [1, 1]] {
            let exec = engine::run(alg, &inputs, &seq);
            let decisions: Vec<String> = (0..2)
                .map(|p| match exec.decision_of(p) {
                    Some((r, v)) => format!("p{p} decides {v} in round {r}"),
                    None => format!("p{p} undecided"),
                })
                .collect();
            println!("x={inputs:?} under {word}:  {}", decisions.join(", "));
            assert!(exec.agreement_holds());
        }
    }

    section("Broadcastability of the components (Theorem 5.11)");
    for comp in &cert.broadcast.components {
        let who: Vec<String> =
            comp.broadcasters.iter().map(|(p, t)| format!("p{p} (by round {t})")).collect();
        println!(
            "component {} ({} runs): broadcastable by {}",
            comp.component,
            comp.size,
            who.join(", ")
        );
    }
    println!();
    println!("Done: {}", verdict_line(&Verdict::Solvable(cert)));
}
