//! Sweep: drive the lab's parallel scenario engine over a slice of the
//! built-in adversary catalog and show the shared prefix-space cache at
//! work.
//!
//! ```text
//! cargo run -p examples-support --example sweep
//! ```

use consensus_lab::cache::SpaceCache;
use consensus_lab::runner::SweepRunner;
use consensus_lab::scenario::{AdversarySpec, AnalysisKind, GridBuilder};
use examples_support::section;

fn main() {
    section("A small catalog sweep (3 adversaries × depths 1..=3 × 3 analyses)");
    let specs = [
        AdversarySpec::Catalog("sw-lossy-link".into()),
        AdversarySpec::Catalog("cgp-reduced-lossy-link".into()),
        AdversarySpec::Catalog("forever-directional".into()),
    ];
    let grid = GridBuilder::new(3, 2_000_000)
        .analyses(&[
            AnalysisKind::Solvability,
            AnalysisKind::Broadcastability,
            AnalysisKind::SimCheck,
        ])
        .over_specs(&specs);
    println!("grid: {} scenarios", grid.len());

    let cache = SpaceCache::new();
    let report = SweepRunner::new().run(&grid, &cache);

    for record in report.store.records() {
        let space = record
            .space
            .map(|s| format!("{} runs / {} components", s.runs, s.components))
            .unwrap_or_else(|| "—".to_string());
        println!(
            "  {:<28} depth {}  {:<16} → {:<12} [{}]",
            record.adversary,
            record.depth,
            record.analysis.name(),
            record.outcome.verdict,
            space
        );
    }

    section("Engine telemetry");
    println!("{}", report.summary());
    assert!(
        report.cache.builds < report.scenarios,
        "the memoization cache must undercut one-expansion-per-scenario"
    );

    section("Warm re-sweep (same cache): zero new constructions");
    let before = cache.stats().builds;
    let again = SweepRunner::new().run(&grid, &cache);
    println!("{}", again.summary());
    assert_eq!(cache.stats().builds, before);
}
