//! Sweep: drive the lab's parallel scenario engine over a slice of the
//! built-in adversary catalog through a `Session`, and show the shared
//! prefix-space cache at work.
//!
//! ```text
//! cargo run -p examples-support --example sweep
//! ```

use consensus_lab::scenario::{AdversarySpec, AnalysisKind};
use consensus_lab::session::{Query, Session};
use examples_support::section;

fn main() {
    section("A small catalog sweep (3 adversaries × depths 1..=3 × 3 analyses)");
    let specs = [
        AdversarySpec::catalog("sw-lossy-link"),
        AdversarySpec::catalog("cgp-reduced-lossy-link"),
        AdversarySpec::catalog("forever-directional"),
    ];
    let queries = Query::grid(
        &specs,
        3,
        &[
            AnalysisKind::Solvability,
            AnalysisKind::Broadcastability,
            AnalysisKind::SimCheck,
        ],
    );
    println!("grid: {} scenarios", queries.len());

    let session = Session::new();
    let report = session.check_many(&queries);

    for record in report.store.records() {
        let space = record
            .space
            .map(|s| format!("{} runs / {} components", s.runs, s.components))
            .unwrap_or_else(|| "—".to_string());
        println!(
            "  {:<28} depth {}  {:<16} → {:<12} [{}]",
            record.adversary,
            record.depth,
            record.analysis.name(),
            record.outcome.verdict,
            space
        );
    }

    section("Engine telemetry");
    println!("{}", report.summary());
    assert!(
        report.cache.builds < report.scenarios,
        "the memoization cache must undercut one-expansion-per-scenario"
    );

    section("Warm re-sweep (same session): zero new constructions");
    let before = session.space_cache().stats().builds;
    let again = session.check_many(&queries);
    println!("{}", again.summary());
    assert_eq!(session.space_cache().stats().builds, before);
}
