//! Spec language: compose novel message adversaries as combinator terms,
//! check them through a `Session`, and watch structurally equal spellings
//! share one fingerprint (hence one cache slot).
//!
//! ```text
//! cargo run -p examples-support --example spec
//! ```

use adversary::{MessageAdversary, SpecTerm};
use consensus_lab::scenario::AnalysisKind;
use consensus_lab::session::{Query, Session};
use examples_support::section;

fn main() {
    section("Parsing and canonical forms");
    for input in [
        "-> <- <->",                  // bare graph word = oblivious pool
        "eventually(<->)",            // ◇↔ over the default lossy link
        "window(<- -> <->, 2, by=3)", // VSSC-style stable window
        "union(pool(<-), pool(->))",  // members sort canonically
        "prefix(<-> ->, catalog(cgp-reduced-lossy-link))",
        "pool(repeat(-> <-, 3))", // repeat is word-level sugar
    ] {
        let term = SpecTerm::parse(input).expect(input);
        println!("  {input:<50} ⇒ {term}");
        // Display round-trips: the canonical string reparses to the term.
        assert_eq!(SpecTerm::parse(&term.to_string()).unwrap(), term);
    }

    section("Structural fingerprints: spellings converge");
    let by_catalog = SpecTerm::parse("catalog(sw-lossy-link)").unwrap();
    let by_word = SpecTerm::parse("<-> <- ->").unwrap();
    println!("  catalog(sw-lossy-link) fingerprint: {:#018x}", by_catalog.fingerprint().unwrap());
    println!("  <-> <- ->              fingerprint: {:#018x}", by_word.fingerprint().unwrap());
    assert_eq!(by_catalog.fingerprint().unwrap(), by_word.fingerprint().unwrap());

    section("Checking a composed adversary");
    let session = Session::new();
    let query = Query::spec("union(pool(->), pool(<-))", 3, AnalysisKind::Solvability).unwrap();
    let record = session.check(&query).unwrap();
    println!("  {} @ depth {} → {}", record.adversary, record.depth, record.outcome.verdict);
    assert_eq!(record.outcome.verdict, "solvable");

    // The same adversary under its catalog name is a cache hit: the two
    // spellings share a fingerprint, so the prefix space is reused.
    let builds = session.space_cache().stats().builds;
    let named = session
        .check(&Query::catalog("forever-directional", 3, AnalysisKind::Solvability))
        .unwrap();
    assert_eq!(named.outcome.verdict, record.outcome.verdict);
    assert_eq!(session.space_cache().stats().builds, builds, "no new expansion");
    println!("  catalog(forever-directional) reused the same prefix space (0 new builds)");

    section("Lowering errors are typed, not panics");
    let Err(err) = SpecTerm::parse("eventually(-> <-, <->)").unwrap().lower() else {
        panic!("a liveness target outside the pool must not lower");
    };
    println!("  eventually(-> <-, <->) → {err}");
    let err = SpecTerm::parse("union(pool(->)").unwrap_err();
    println!("  union(pool(->)         → {err}");

    section("An adversary the fixed catalog never offered");
    // One forced bidirectional round, then the full lossy link: solvable —
    // round 1 is common knowledge.
    let term = SpecTerm::parse("prefix(<->, catalog(sw-lossy-link))").unwrap();
    let ma = term.lower().unwrap();
    println!("  {} (compact: {})", ma.describe(), ma.is_compact());
    let record = session
        .check(&Query::spec(&term.to_string(), 3, AnalysisKind::Solvability).unwrap())
        .unwrap();
    println!("  {} @ depth 3 → {}", record.adversary, record.outcome.verdict);
}
