//! Component explorer: print the Fig. 2 process-time graph, the Fig. 3
//! distance table, and Fig. 4/5-style component reports for a compact and a
//! non-compact adversary.
//!
//! ```text
//! cargo run -p examples --bin component_explorer
//! ```

use adversary::GeneralMA;
use consensus_core::{analysis, space::PrefixSpace, ExpandConfig};
use dyngraph::generators;
use examples_support::section;
use ptgraph::{distance, fig2_example};

fn main() {
    section("Figure 2: a process-time graph (n = 3, x = (1, 0, 1), t = 2)");
    let pt = fig2_example();
    print!("{}", pt.render_ascii());
    println!("\nview of process 0 at time 2 (causal past):");
    for (p, t) in pt.causal_past(&[0], 2) {
        println!("  ({p}, {t})");
    }
    println!("\nGraphviz (with the view highlighted):");
    print!("{}", pt.to_dot("fig2", Some((&[0], 2))));

    section("Figure 3: d_max, d_P, d_min on one pair of executions");
    let (alpha, beta, _table) = distance::fig3_example();
    println!("α: x={:?} under {}", alpha.inputs(), alpha.seq());
    println!("β: x={:?} under {}", beta.inputs(), beta.seq());
    for p in 0..3 {
        println!("  d_{{{p}}}(α, β) = {}", distance::d_p(&alpha, &beta, p).as_f64());
    }
    println!("  d_max(α, β) = {}", distance::d_max(&alpha, &beta).as_f64());
    println!("  d_min(α, β) = {}", distance::d_min(&alpha, &beta).as_f64());

    section("Figure 4: compact adversary {←, →} — separated decision sets");
    let compact = GeneralMA::oblivious(generators::lossy_link_reduced());
    let space =
        PrefixSpace::expand(&compact, &[0, 1], 3, &ExpandConfig::default()).expect("budget");
    print!("{}", analysis::report(&space));

    section("Figure 5: non-compact ◇stable(2) — classes touch at every depth");
    let noncompact = GeneralMA::stabilizing(generators::lossy_link_full(), 2, None);
    for report in analysis::depth_sweep(&noncompact, &[0, 1], 3, 2_000_000) {
        println!(
            "depth {}: {} components, {} mixed, min class distance {}",
            report.depth,
            report.components.len(),
            report.mixed_count(),
            report
                .min_class_distance
                .map(|d| format!("{}", d.as_f64()))
                .unwrap_or_else(|| "n/a".into())
        );
    }
}
