//! Shared helpers for the example binaries.

use consensus_core::solvability::Verdict;

/// Render a verdict as a short human-readable line.
pub fn verdict_line(v: &Verdict) -> String {
    match v {
        Verdict::Solvable(cert) => format!(
            "SOLVABLE at depth {} ({} components, decisions verified on {} runs, latest decision round {})",
            cert.depth,
            cert.component_count,
            cert.verification.runs_checked,
            cert.verification.max_decision_round
        ),
        Verdict::Unsolvable(cert) => format!("UNSOLVABLE — certificate: {cert:?}"),
        Verdict::Undecided(rep) => format!(
            "UNDECIDED at depth {} ({} mixed components{}; compact: {})",
            rep.max_depth,
            rep.mixed_components,
            if rep.chain.is_some() { ", valence chain extracted" } else { "" },
            rep.compact
        ),
    }
}

/// Print a section header.
pub fn section(title: &str) {
    println!();
    println!("==== {title} ====");
}
