//! Non-compact, eventually-stabilizing adversaries (paper §6.3, [23]).
//!
//! The ◇stable(k) adversary over the lossy-link pool requires some window of
//! `k` consecutive rounds with a vertex-stable root component. Without a
//! deadline it is *non-compact*: the never-stabilizing limit sequences are
//! excluded. This example:
//!
//! * enumerates excluded limits with their convergence witnesses (Fig. 5);
//! * sweeps the compact approximations "stable window within R rounds" and
//!   runs the solvability checker on each (Theorem 6.6 applies to them);
//! * contrasts window lengths k = 1 (never solvable: the adversary degrades
//!   to the full oblivious pool) and k = 2 (solvable once the deadline
//!   forces the window early enough).
//!
//! ```text
//! cargo run -p examples --bin stabilizing
//! ```

use adversary::{limit, GeneralMA, MessageAdversary};
use consensus_core::solvability::SolvabilityChecker;
use dyngraph::generators;
use examples_support::{section, verdict_line};

fn main() {
    section("◇stable(2) over {←, ↔, →}: excluded limits (Fig. 5)");
    let ma = GeneralMA::stabilizing(generators::lossy_link_full(), 2, None);
    println!("adversary: {} (non-compact: {})", ma.describe(), !ma.is_compact());
    let excluded = limit::excluded_limits(&ma, 0, 2, 3);
    println!("{} excluded limit lassos of shape (·)^ω with cycle 2:", excluded.len());
    for ex in excluded.iter().take(6) {
        let witness: Vec<String> = ex.witnesses.iter().map(|w| format!("{w}")).collect();
        println!("  limit {}   ← witnesses: {}", ex.limit, witness.join(", "));
    }

    section("Compact approximations: stable(k) within deadline R");
    for k in [1usize, 2] {
        for r in [2usize, 3] {
            if r < k {
                continue;
            }
            let ma = GeneralMA::stabilizing(generators::lossy_link_full(), k, Some(r));
            let verdict = SolvabilityChecker::new(ma).max_depth(r + 2).max_runs(4_000_000).check();
            println!("stable({k}) by round {r}: {}", verdict_line(&verdict));
        }
    }

    section("Interpretation");
    println!(
        "k = 1 degrades to the oblivious pool (every singleton round is a stable\n\
         window), so the valence classes stay mixed — consensus impossible, as for\n\
         the plain lossy link. k = 2 with a deadline forces two consecutive rounds\n\
         with one root component; the surviving prefixes separate the valences and\n\
         the universal algorithm of Theorem 5.5 is synthesized and verified."
    );
}
