//! Session quickstart: the unified `Session`/`Query` facade end to end —
//! typed configs in, one handle owning every cache, single checks and
//! batches sharing one code path, typed errors out.
//!
//! ```text
//! cargo run -p examples-support --example session
//! ```

use consensus_core::Certificate;
use consensus_lab::scenario::AnalysisKind;
use consensus_lab::session::{verify_certificate, Query, Session};
use consensus_lab::{AnalysisConfig, CacheConfig, Error, ExpandConfig};
use examples_support::section;

fn main() {
    section("One session, typed configs, every cache owned once");
    let session = Session::with_configs(
        ExpandConfig::new().threads(2).max_runs(2_000_000),
        AnalysisConfig::new().max_depth(4),
        CacheConfig::default(),
    )
    .expect("no disk cache configured");
    println!(
        "expansion: {} worker(s), {}-run budget; validity: {}",
        session.expand_config().effective_threads(),
        session.expand_config().max_runs,
        if session.analysis_config().strong_validity {
            "strong"
        } else {
            "weak"
        },
    );

    section("A single query (the paper's question, first-class)");
    let query = Query::catalog("cgp-reduced-lossy-link", 4, AnalysisKind::Solvability);
    let record = session.check(&query).expect("catalog entry builds");
    println!("{} → {}", query.label(), record.outcome.verdict);
    assert_eq!(record.outcome.verdict, "solvable");

    section("Typed errors instead of strings");
    let bogus = Query::catalog("no-such-adversary", 2, AnalysisKind::Solvability);
    match session.check(&bogus) {
        Err(Error::Spec(spec)) => println!("rejected as expected: {spec}"),
        other => panic!("expected a typed spec error, got {other:?}"),
    }

    section("Batch-first: the whole catalog × depths 1..=3 × two analyses");
    let queries =
        Query::catalog_grid(3, &[AnalysisKind::Solvability, AnalysisKind::Broadcastability]);
    let report = session.check_many(&queries);
    for record in report.store.records().iter().take(6) {
        println!(
            "  {:<28} depth {}  {:<16} → {}",
            record.adversary,
            record.depth,
            record.analysis.name(),
            record.outcome.verdict
        );
    }
    println!("  … {} records total", report.store.records().len());
    println!("{}", report.summary());

    // The single check above already warmed the session's space cache for
    // its adversary — single checks and batches share one code path and
    // one cache, so the batch built strictly fewer spaces than it ran.
    assert!(report.cache.builds < report.scenarios);

    section("Warm re-batch: the session remembers");
    let before = session.space_cache().stats().builds;
    let again = session.check_many(&queries);
    println!("{}", again.summary());
    assert_eq!(session.space_cache().stats().builds, before, "zero new expansions");

    section("Certificates: checkable answers, re-verified offline");
    // Opt in with `with_certificate()`: a definitive solvability verdict
    // then carries the evidence behind it (docs/certificates.md) as a
    // portable JSON object on the record.
    let certified =
        Query::catalog("message-loss-2-2", 2, AnalysisKind::Solvability).with_certificate();
    let record = session.check(&certified).expect("catalog entry builds");
    let exported = record.certificate.expect("definitive verdict carries a certificate");
    println!("exported: {} bytes of consensus-cert/v1 JSON", exported.to_string().len());

    // A skeptical client round-trips the JSON and re-checks the evidence
    // against the adversary — milliseconds, and no prefix-space expansion
    // (the session's build counter does not move).
    let cert = Certificate::from_json(&exported).expect("served certificate decodes");
    let builds = session.space_cache().stats().builds;
    verify_certificate(&cert, &certified).expect("certificate re-verifies");
    assert_eq!(session.space_cache().stats().builds, builds, "verification expands nothing");
    println!("{} → {} certificate re-verified offline", certified.label(), cert.verdict());

    // Tampering is caught with typed errors: this certificate was issued
    // for a different adversary than the one we verify against.
    let other = Query::catalog("cgp-reduced-lossy-link", 2, AnalysisKind::Solvability);
    let err = verify_certificate(&cert, &other).expect_err("mismatched adversary");
    println!("tampering detected ({}): {err}", err.kind());
}
