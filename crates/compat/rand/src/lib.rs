//! Offline stand-in for the slice of the `rand` 0.9 API this workspace uses:
//! [`Rng::random_range`] / [`Rng::random_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], [`rng()`], and [`seq::IndexedRandom::choose`].
//!
//! The generator is SplitMix64 — statistically fine for randomized tests and
//! samplers, deterministic under a fixed seed, and dependency-free. It is
//! **not** cryptographically secure; nothing here may be used for secrets.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive int ranges,
    /// half-open float ranges).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self.next_u64())
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// A uniform sample of the full domain of `T` (bool only, for tests).
    fn random<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::random`].
pub trait Standard {
    /// Build a value from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1).
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Ranges that can produce a uniform sample from one random word (one word
/// suffices at the sizes used here — modulo bias is ≤ 2⁻⁴⁰ for spans below
/// 2²⁴).
pub trait SampleRange<T> {
    /// Sample using the supplied random 64-bit word.
    fn sample_from(self, bits: u64) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, bits: u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128).wrapping_add(bits as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, bits: u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                // Wrapping arithmetic (like the Range impl above): a signed
                // negative bound casts to a huge u128, and plain `-`/`+`
                // would abort debug builds on e.g. `-3..=3`.
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                (lo as u128).wrapping_add(bits as u128 % span) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from(self, bits: u64) -> f64 {
        self.start + unit_f64(bits) * (self.end - self.start)
    }
}

/// Rngs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// An OS-entropy-seeded [`rngs::StdRng`] (seeded from the clock here; the
/// callers use it only for smoke tests that need *some* variation).
pub fn rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    <rngs::StdRng as SeedableRng>::seed_from_u64(nanos)
}

/// Sequence sampling.
pub mod seq {
    use super::{Rng, RngCore};

    /// Uniform choice from an indexable collection (`rand::seq::IndexedRandom`).
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.random_range(0..self.len());
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.random_range(0..=4);
            assert!(y <= 4);
            let z: i32 = rng.random_range(-3..=3);
            assert!((-3..=3).contains(&z));
            let w: i64 = rng.random_range(-10..-2);
            assert!((-10..-2).contains(&w));
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn choose_covers_all_elements() {
        use seq::IndexedRandom;
        let mut rng = rngs::StdRng::seed_from_u64(2);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn random_bool_probability_sane() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }
}
