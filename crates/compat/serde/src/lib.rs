//! Offline stand-in for `serde`: marker traits plus no-op derives.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types to keep
//! the public API source-compatible with the real serde, but no code path
//! serializes through serde (the lab result store writes JSON and CSV with
//! its own encoder). When registry access is available, deleting
//! `crates/compat` and restoring the `[workspace.dependencies]` entries for
//! the real crates is the only change needed.

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
