//! Offline stand-in for the slice of the `criterion` API the bench crate
//! uses: `Criterion::bench_function`/`benchmark_group`, `BenchmarkGroup`
//! with `sample_size`/`bench_function`/`bench_with_input`/`finish`,
//! `Bencher::iter`, `BenchmarkId`, and the `criterion_group!`/
//! `criterion_main!` macros.
//!
//! Statistics are deliberately simple — mean, min, and max of wall-clock
//! samples — but the measurement loop shape (warm-up iteration, then timed
//! samples) matches criterion closely enough for the relative comparisons
//! the bench targets print (e.g. cached vs. uncached sweeps).

use std::fmt;
use std::time::{Duration, Instant};

/// Number of timed samples when the target does not override it.
const DEFAULT_SAMPLES: usize = 12;

/// Re-export-style helper mirroring `criterion::black_box` (the benches in
/// this workspace import `std::hint::black_box` directly; this is provided
/// for API parity).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only id (the group provides the function name).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` over the configured number of samples (after one
    /// warm-up call whose result is discarded).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.timings.push(start.elapsed());
        }
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples, timings: Vec::new() };
    f(&mut b);
    if b.timings.is_empty() {
        println!("{name:<50} (no timings collected)");
        return;
    }
    let total: Duration = b.timings.iter().sum();
    let mean = total / b.timings.len() as u32;
    let min = b.timings.iter().min().expect("nonempty");
    let max = b.timings.iter().max().expect("nonempty");
    println!(
        "{name:<50} time: [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion requires ≥ 10; we accept anything ≥ 1.
        self.samples = n.max(1);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut f);
        self
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I: fmt::Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut |b| f(b, input));
        self
    }

    /// End the group (printing is immediate; this is for API parity).
    pub fn finish(&mut self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmark a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, DEFAULT_SAMPLES, &mut f);
        self
    }

    /// Open a benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: DEFAULT_SAMPLES, _criterion: self }
    }
}

/// Declare a group of benchmark functions (`criterion_group!(benches, f, g)`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        // One warm-up + DEFAULT_SAMPLES timed calls.
        assert_eq!(calls, DEFAULT_SAMPLES + 1);
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut n = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &x| b.iter(|| n += x));
        group.finish();
        assert_eq!(n, 4 * 7);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
