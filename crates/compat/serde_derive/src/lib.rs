//! Offline stand-in for `serde_derive`: the derives are accepted and expand
//! to nothing. The build container has no registry access, so the real
//! proc-macro stack (`syn`/`quote`) is unavailable; nothing in this
//! workspace consumes serialized bytes through serde itself (the lab result
//! store emits its own JSON/CSV), so marker expansion is sufficient.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
