//! The three-valued consensus-solvability checker.
//!
//! Implements the meta-procedure following Theorem 5.5 on the finite
//! ε-approximations (`ε = 2^{−t}`, Definition 6.2 / Theorem 6.6):
//!
//! * **Solvable** — at some depth `t ≤ max_depth` the valence labeling of
//!   the components is separated (Corollary 5.6); the universal algorithm is
//!   synthesized from the partition (Theorem 5.5) and verified exhaustively
//!   on the prefix space.
//! * **Unsolvable** — an exact distance-0 chain of admissible lasso runs
//!   links two valences (see [`crate::fair`]): a single connected component
//!   contains both, so no algorithm exists (Corollary 5.6). This is a
//!   rigorous, machine-checked certificate.
//! * **Undecided** — mixed components persist up to `max_depth` and no
//!   exact chain was found. For *compact* adversaries Theorem 6.6 guarantees
//!   that a solvable adversary separates at a finite depth, so persistent
//!   mixing is evidence of impossibility (the per-depth ε-chains are the
//!   finite shadows of the fair/unfair limit, Definition 5.16); the verdict
//!   reports that evidence without overclaiming.

use std::sync::Arc;

use adversary::{enumerate, MessageAdversary};
use ptgraph::Value;
use simulator::checker::{self, CheckReport};

use crate::{
    broadcast::{broadcast_report, BroadcastReport},
    config::{AnalysisConfig, ExpandConfig},
    fair::{self, EpsilonChain, ZeroChain},
    space::PrefixSpace,
    universal::UniversalAlgorithm,
};

/// Certificate for a [`Verdict::Solvable`] outcome.
#[derive(Debug)]
pub struct SolvableCert {
    /// The separating depth `t` (so `ε = 2^{−t}`).
    pub depth: usize,
    /// Number of ε-approximation components at `depth`.
    pub component_count: usize,
    /// The broadcastability report (Theorem 5.11 side of the coin).
    pub broadcast: BroadcastReport,
    /// The synthesized universal algorithm.
    pub algorithm: UniversalAlgorithm,
    /// Exhaustive verification of the algorithm at `depth`.
    pub verification: CheckReport,
}

/// Certificate for a [`Verdict::Unsolvable`] outcome.
#[derive(Debug)]
pub enum UnsolvableCert {
    /// An exact distance-0 chain linking two valences (Corollary 5.6).
    ZeroChain(ZeroChain),
}

/// Evidence accompanying a [`Verdict::Undecided`] outcome.
#[derive(Debug)]
pub struct UndecidedReport {
    /// The deepest resolution examined.
    pub max_depth: usize,
    /// Number of valence-mixed components at `max_depth`.
    pub mixed_components: usize,
    /// A valence-connecting ε-chain at `max_depth` (the finite shadow of a
    /// fair/unfair limit), if one was extracted.
    pub chain: Option<EpsilonChain>,
    /// Whether the adversary is compact — if so, persistent mixing at all
    /// depths would imply impossibility (Theorem 6.6); at finite depth it is
    /// evidence only.
    pub compact: bool,
    /// Set when expansion stopped early because the run budget was hit.
    pub budget_hit: bool,
}

/// The checker outcome.
#[derive(Debug)]
pub enum Verdict {
    /// Consensus is solvable; the certificate carries a verified algorithm.
    Solvable(SolvableCert),
    /// Consensus is unsolvable; the certificate is machine-checked.
    Unsolvable(UnsolvableCert),
    /// Not resolved within the depth/budget limits; evidence attached.
    Undecided(UndecidedReport),
}

impl Verdict {
    /// Whether the verdict is [`Verdict::Solvable`].
    pub fn is_solvable(&self) -> bool {
        matches!(self, Verdict::Solvable(_))
    }

    /// Whether the verdict is [`Verdict::Unsolvable`].
    pub fn is_unsolvable(&self) -> bool {
        matches!(self, Verdict::Unsolvable(_))
    }
}

/// A provider of prefix spaces — the seam through which an external
/// memoization layer (e.g. the lab's sweep cache) plugs into the checker.
///
/// [`SolvabilityChecker::check_via`] requests the space for each depth from
/// the source instead of building it; a source shared across analyses and
/// scenarios then pays for each `(adversary, depth)` expansion exactly once.
///
/// Sources are free to serve a depth-`t` request by *laddering*: extending
/// a shallower space they already hold via
/// [`PrefixSpace::extended_from`], which yields a space identical to a
/// from-scratch build at `t`. The checker's ascending-depth request pattern
/// makes every request after the first a one-round extension for such a
/// source.
pub trait SpaceSource {
    /// The space of `ma` at `depth` over `values`, subject to `max_runs`.
    ///
    /// # Errors
    /// Returns [`enumerate::BudgetExceeded`] if the expansion would exceed
    /// the budget.
    fn space(
        &self,
        ma: &dyn MessageAdversary,
        values: &[Value],
        depth: usize,
        max_runs: usize,
    ) -> Result<Arc<PrefixSpace>, enumerate::BudgetExceeded>;
}

/// The trivial [`SpaceSource`]: builds a fresh space on every request.
#[derive(Debug, Default, Clone, Copy)]
pub struct FreshSpaces;

impl SpaceSource for FreshSpaces {
    fn space(
        &self,
        ma: &dyn MessageAdversary,
        values: &[Value],
        depth: usize,
        max_runs: usize,
    ) -> Result<Arc<PrefixSpace>, enumerate::BudgetExceeded> {
        PrefixSpace::build_impl(ma, values, depth, max_runs, 1).map(Arc::new)
    }
}

/// The solvability checker; see the module docs.
///
/// ```
/// use consensus_core::solvability::SolvabilityChecker;
/// use adversary::GeneralMA;
/// use dyngraph::Digraph;
///
/// // Oblivious over the empty graph: trivially unsolvable (n = 2, no
/// // communication, ever).
/// let ma = GeneralMA::oblivious(vec![Digraph::empty(2)]);
/// let verdict = SolvabilityChecker::new(ma).max_depth(3).check();
/// assert!(verdict.is_unsolvable());
/// ```
#[derive(Debug)]
pub struct SolvabilityChecker<M> {
    ma: M,
    values: Vec<Value>,
    analysis: AnalysisConfig,
    expand: ExpandConfig,
}

impl<M: MessageAdversary> SolvabilityChecker<M> {
    /// A checker with binary inputs and the default configs (depth ladder
    /// to 6, weak validity, serial expansion, 2·10⁶-run budget).
    pub fn new(ma: M) -> Self {
        Self::with_config(ma, AnalysisConfig::default(), ExpandConfig::default())
    }

    /// A checker with binary inputs and explicit analysis/engine configs —
    /// the typed replacement for chaining `max_depth` / `max_runs` /
    /// `strong_validity` / `expand_threads` setters.
    ///
    /// ```
    /// use consensus_core::config::{AnalysisConfig, ExpandConfig};
    /// use consensus_core::solvability::SolvabilityChecker;
    /// use adversary::GeneralMA;
    /// use dyngraph::generators;
    ///
    /// let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
    /// let verdict = SolvabilityChecker::with_config(
    ///     ma,
    ///     AnalysisConfig::new().max_depth(4),
    ///     ExpandConfig::default(),
    /// )
    /// .check();
    /// assert!(verdict.is_solvable());
    /// ```
    pub fn with_config(ma: M, analysis: AnalysisConfig, expand: ExpandConfig) -> Self {
        SolvabilityChecker { ma, values: vec![0, 1], analysis, expand }
    }

    /// Set the input domain.
    pub fn values(mut self, values: Vec<Value>) -> Self {
        assert!(values.len() >= 2, "consensus needs at least two input values");
        self.values = values;
        self
    }

    /// Set the maximum resolution depth.
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.analysis.max_depth = depth;
        self
    }

    /// Set the expansion budget (runs per depth).
    pub fn max_runs(mut self, max_runs: usize) -> Self {
        self.expand.max_runs = max_runs;
        self
    }

    /// Set the maximum lasso cycle length searched for exact chains.
    pub fn max_chain_cycle(mut self, c: usize) -> Self {
        self.analysis.max_chain_cycle = c;
        self
    }

    /// Legacy knob for the expansion worker count.
    #[deprecated(
        since = "0.1.0",
        note = "pass an `ExpandConfig` to `SolvabilityChecker::with_config` instead"
    )]
    pub fn expand_threads(mut self, threads: usize) -> Self {
        self.expand.threads = threads.max(1);
        self
    }

    /// Require *strong validity* (every decision is some process's input):
    /// the universal algorithm is synthesized from a strong-validity
    /// component assignment, and verified under the stricter check. A space
    /// separated for weak validity may still fail strong validity (no legal
    /// assignment); the sweep then continues to deeper resolutions.
    pub fn strong_validity(mut self, enable: bool) -> Self {
        self.analysis.strong_validity = enable;
        self
    }

    /// The adversary under analysis.
    pub fn adversary(&self) -> &M {
        &self.ma
    }

    /// The analysis configuration in effect.
    pub fn analysis_config(&self) -> &AnalysisConfig {
        &self.analysis
    }

    /// The expansion configuration in effect.
    pub fn expand_config(&self) -> &ExpandConfig {
        &self.expand
    }

    /// Run the check.
    pub fn check(&self) -> Verdict {
        // Phase 1: exact impossibility certificates (cheap, rigorous).
        if let Some(verdict) = self.exact_impossibility() {
            return verdict;
        }

        // Phase 2: incremental depth sweep for separation (views are
        // interned once across the sweep; see `PrefixSpace::extended`).
        let mut last: Option<PrefixSpace> = None;
        let mut budget_hit = false;
        let mut current = PrefixSpace::expand(&self.ma, &self.values, 0, &self.expand).ok();
        for _depth in 0..=self.analysis.max_depth {
            match current.take() {
                Some(space) => {
                    let separated = if self.analysis.strong_validity {
                        space.strong_component_assignment().is_some()
                    } else {
                        space.separation().is_separated()
                    };
                    if separated {
                        return self.certify_solvable(&space);
                    }
                    if space.depth() < self.analysis.max_depth {
                        match space.extend(&self.ma, &self.expand) {
                            Ok(next) => current = Some(next),
                            Err((space, _)) => {
                                budget_hit = true;
                                last = Some(space);
                                break;
                            }
                        }
                    } else {
                        last = Some(space);
                        break;
                    }
                }
                None => {
                    budget_hit = true;
                    break;
                }
            }
        }

        // Phase 3: undecided with evidence.
        let (mixed, chain, max_depth) = match &last {
            Some(space) => {
                let rep = space.separation();
                let chain = self.first_mixed_chain(space);
                (rep.mixed_components.len(), chain, space.depth())
            }
            None => (0, None, 0),
        };
        Verdict::Undecided(UndecidedReport {
            max_depth,
            mixed_components: mixed,
            chain,
            compact: self.ma.is_compact(),
            budget_hit,
        })
    }

    /// Phase 1 of [`check`](Self::check): search for an exact distance-0
    /// chain between two valences — a rigorous impossibility certificate
    /// that needs no prefix-space expansion.
    pub fn exact_impossibility(&self) -> Option<Verdict> {
        for (i, &v) in self.values.iter().enumerate() {
            for &w in &self.values[i + 1..] {
                if let Some(chain) =
                    fair::exact_zero_chain(&self.ma, v, w, self.analysis.max_chain_cycle)
                {
                    debug_assert!(chain.verify(&self.ma));
                    return Some(Verdict::Unsolvable(UnsolvableCert::ZeroChain(chain)));
                }
            }
        }
        None
    }

    /// Run the check against spaces supplied by `source` instead of
    /// building them here. Semantically identical to [`check`](Self::check);
    /// a shared caching source amortizes the expansions across analyses and
    /// scenarios (the lab's sweep path).
    pub fn check_via(&self, source: &dyn SpaceSource) -> Verdict {
        if let Some(verdict) = self.exact_impossibility() {
            return verdict;
        }

        let mut last: Option<Arc<PrefixSpace>> = None;
        let mut budget_hit = false;
        for depth in 0..=self.analysis.max_depth {
            match source.space(&self.ma, &self.values, depth, self.expand.max_runs) {
                Ok(space) => {
                    let separated = if self.analysis.strong_validity {
                        space.strong_component_assignment().is_some()
                    } else {
                        space.separation().is_separated()
                    };
                    if separated {
                        return self.certify_solvable(&space);
                    }
                    last = Some(space);
                }
                Err(_) => {
                    budget_hit = true;
                    break;
                }
            }
        }

        let (mixed, chain, max_depth) = match &last {
            Some(space) => {
                let rep = space.separation();
                let chain = self.first_mixed_chain(space);
                (rep.mixed_components.len(), chain, space.depth())
            }
            None => (0, None, 0),
        };
        Verdict::Undecided(UndecidedReport {
            max_depth,
            mixed_components: mixed,
            chain,
            compact: self.ma.is_compact(),
            budget_hit,
        })
    }

    fn first_mixed_chain(&self, space: &PrefixSpace) -> Option<EpsilonChain> {
        for (i, &v) in self.values.iter().enumerate() {
            for &w in &self.values[i + 1..] {
                if let Some(chain) = fair::valence_chain(space, v, w) {
                    return Some(chain);
                }
            }
        }
        None
    }

    /// Certify a separated space: synthesize the universal algorithm and
    /// verify it exhaustively at the space's depth.
    ///
    /// # Panics
    /// Panics if the space is not separated (the caller checks first) or if
    /// the synthesized algorithm fails its own verification (an internal
    /// error by Theorem 5.5).
    pub fn certify_solvable(&self, space: &PrefixSpace) -> Verdict {
        let broadcast = broadcast_report(space);
        let algorithm = if self.analysis.strong_validity {
            UniversalAlgorithm::synthesize_strong(space)
                .expect("strong assignment checked before certification")
        } else {
            UniversalAlgorithm::synthesize(space).expect("separated space must synthesize")
        };
        let verification = checker::check(
            &algorithm,
            &self.ma,
            &self.values,
            &checker::CheckConfig::at_depth(space.depth())
                .max_runs(self.expand.max_runs)
                .strong_validity(self.analysis.strong_validity),
        )
        .expect("depth already expanded within budget");
        assert!(
            verification.passed(),
            "internal error: synthesized universal algorithm failed verification: {:?}",
            verification.violations
        );
        Verdict::Solvable(SolvableCert {
            depth: space.depth(),
            component_count: space.components().count(),
            broadcast,
            algorithm,
            verification,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adversary::GeneralMA;
    use dyngraph::{generators, Digraph};

    #[test]
    fn reduced_lossy_link_solvable_depth_one() {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        match SolvabilityChecker::new(ma).max_depth(4).check() {
            Verdict::Solvable(cert) => {
                assert_eq!(cert.depth, 1);
                assert!(cert.verification.passed());
                assert!(cert.broadcast.all_broadcastable());
                assert!(cert.component_count >= 2);
            }
            other => panic!("expected solvable: {other:?}"),
        }
    }

    #[test]
    fn full_lossy_link_undecided_with_chain_evidence() {
        // Santoro–Widmayer: truly unsolvable, but only via limits — the
        // checker reports Undecided with a valence-connecting chain at the
        // deepest resolution (the fair-sequence shadow).
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        match SolvabilityChecker::new(ma).max_depth(4).check() {
            Verdict::Undecided(rep) => {
                assert_eq!(rep.max_depth, 4);
                assert!(rep.mixed_components >= 1);
                assert!(rep.compact);
                assert!(rep.chain.is_some());
                assert!(!rep.budget_hit);
            }
            other => panic!("expected undecided: {other:?}"),
        }
    }

    #[test]
    fn empty_graph_unsolvable_exact() {
        let ma = GeneralMA::oblivious(vec![Digraph::empty(2)]);
        match SolvabilityChecker::new(ma).check() {
            Verdict::Unsolvable(UnsolvableCert::ZeroChain(chain)) => {
                assert_eq!(chain.valences, (0, 1));
            }
            other => panic!("expected unsolvable: {other:?}"),
        }
    }

    #[test]
    fn pool_with_unrooted_graph_unsolvable_exact() {
        // {→01 only} on n = 3: not rooted → exact chain.
        let g = Digraph::from_edges(3, &[(0, 1)]).unwrap();
        let ma = GeneralMA::oblivious(vec![g, dyngraph::generators::star_out(3, 0)]);
        // Pool contains an unrooted graph: its constant lasso kills it.
        let verdict = SolvabilityChecker::new(ma).check();
        assert!(verdict.is_unsolvable(), "{verdict:?}");
    }

    #[test]
    fn singleton_arrow_pool_solvable() {
        // {→}: process 0 broadcasts in round 1 in every sequence.
        let ma = GeneralMA::oblivious(vec![Digraph::parse2("->").unwrap()]);
        match SolvabilityChecker::new(ma).max_depth(3).check() {
            Verdict::Solvable(cert) => assert!(cert.depth <= 1),
            other => panic!("expected solvable: {other:?}"),
        }
    }

    #[test]
    fn swap_pool_solvable() {
        // {↔}: full exchange every round.
        let ma = GeneralMA::oblivious(vec![Digraph::parse2("<->").unwrap()]);
        assert!(SolvabilityChecker::new(ma).max_depth(3).check().is_solvable());
    }

    #[test]
    fn stars_n3_solvable() {
        let ma = GeneralMA::oblivious(generators::all_out_stars(3));
        match SolvabilityChecker::new(ma).max_depth(3).max_runs(4_000_000).check() {
            Verdict::Solvable(cert) => {
                assert!(cert.depth <= 2);
                assert!(cert.broadcast.all_broadcastable());
            }
            other => panic!("expected solvable: {other:?}"),
        }
    }

    #[test]
    fn compact_eventually_swap_solvable() {
        // "↔ within 2 rounds" over the full lossy link: compact, and the
        // forced early ↔ separates the valences.
        let ma = GeneralMA::eventually_graph(
            generators::lossy_link_full(),
            Digraph::parse2("<->").unwrap(),
            Some(2),
        );
        let verdict = SolvabilityChecker::new(ma).max_depth(5).check();
        assert!(verdict.is_solvable(), "{verdict:?}");
    }

    #[test]
    fn ternary_inputs_respected() {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let verdict = SolvabilityChecker::new(ma).values(vec![0, 1, 2]).max_depth(3).check();
        assert!(verdict.is_solvable(), "{verdict:?}");
    }

    #[test]
    fn budget_exhaustion_reported() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        match SolvabilityChecker::new(ma).max_depth(10).max_runs(200).check() {
            Verdict::Undecided(rep) => assert!(rep.budget_hit),
            other => panic!("expected undecided: {other:?}"),
        }
    }

    #[test]
    fn check_via_fresh_source_matches_check() {
        let pools = [
            generators::lossy_link_reduced(),
            generators::lossy_link_full(),
            vec![Digraph::empty(2)],
        ];
        for pool in pools {
            let checker = SolvabilityChecker::new(GeneralMA::oblivious(pool.clone())).max_depth(4);
            let direct = checker.check();
            let via = checker.check_via(&FreshSpaces);
            match (&direct, &via) {
                (Verdict::Solvable(a), Verdict::Solvable(b)) => {
                    assert_eq!(a.depth, b.depth);
                    assert_eq!(a.component_count, b.component_count);
                }
                (Verdict::Unsolvable(_), Verdict::Unsolvable(_)) => {}
                (Verdict::Undecided(a), Verdict::Undecided(b)) => {
                    assert_eq!(a.max_depth, b.max_depth);
                    assert_eq!(a.mixed_components, b.mixed_components);
                    assert_eq!(a.chain.is_some(), b.chain.is_some());
                }
                (a, b) => panic!("pool {pool:?}: check {a:?} vs check_via {b:?}"),
            }
        }
    }

    #[test]
    fn parallel_checker_verdicts_match_serial() {
        for pool in [
            generators::lossy_link_reduced(),
            generators::lossy_link_full(),
            vec![Digraph::empty(2)],
        ] {
            let serial =
                SolvabilityChecker::new(GeneralMA::oblivious(pool.clone())).max_depth(3).check();
            let parallel = SolvabilityChecker::with_config(
                GeneralMA::oblivious(pool.clone()),
                crate::config::AnalysisConfig::new().max_depth(3),
                crate::config::ExpandConfig::new().threads(8),
            )
            .check();
            match (&serial, &parallel) {
                (Verdict::Solvable(a), Verdict::Solvable(b)) => {
                    assert_eq!(a.depth, b.depth);
                    assert_eq!(a.component_count, b.component_count);
                }
                (Verdict::Unsolvable(_), Verdict::Unsolvable(_)) => {}
                (Verdict::Undecided(a), Verdict::Undecided(b)) => {
                    assert_eq!(a.mixed_components, b.mixed_components);
                    assert_eq!(a.chain.is_some(), b.chain.is_some());
                }
                (a, b) => panic!("pool {pool:?}: serial {a:?} vs parallel {b:?}"),
            }
        }
    }

    #[test]
    fn space_stats_are_cheap_reads() {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let space =
            PrefixSpace::expand(&ma, &[0, 1], 2, &crate::config::ExpandConfig::default()).unwrap();
        let stats = space.stats();
        assert_eq!(stats.depth, 2);
        assert_eq!(stats.runs, space.runs().len());
        assert_eq!(stats.views, space.table().len());
        assert_eq!(stats.components, space.components().count());
    }
}
