//! Fair/unfair limit machinery (Definition 5.16) and impossibility
//! certificates.
//!
//! Two rigors are provided:
//!
//! 1. **Exact distance-0 chains** over ultimately periodic runs. If a chain
//!    of admissible infinite runs `z_v = r_0, r_1, …, r_k = z_w` with
//!    `d_min(r_i, r_{i+1}) = 0` (decided *exactly* by the contamination
//!    calculus) links a `v`-valent to a `w`-valent run, all of them lie in
//!    one connected component — consensus is **impossible** by Corollary
//!    5.6. Such chains exist whenever some admissible lasso has *no
//!    broadcaster* (the induction in the proof of Theorem 5.11): flip inputs
//!    one process at a time; each flip is invisible to some process forever.
//!
//! 2. **Per-depth ε-chains** through the prefix space. For adversaries whose
//!    one-component-ness arises only in the limit (e.g. the Santoro–Widmayer
//!    lossy link), no finite distance-0 chain exists; instead, for every
//!    depth `t` a chain of admissible runs links the valent prefixes with
//!    consecutive links sharing a process view at depth `t`. The chain
//!    family is the finite shadow of the *fair/unfair* limit sequences: the
//!    pivot runs converge to the forever-bivalent run of bivalence proofs
//!    (§6.1).

use adversary::MessageAdversary;
use dyngraph::{GraphSeq, Lasso, Pid};
use ptgraph::{contamination, InfiniteRun, Value};

use crate::space::PrefixSpace;

/// A verified exact distance-0 chain: an impossibility certificate.
#[derive(Debug, Clone)]
pub struct ZeroChain {
    /// The chain runs, from a `v`-valent to a `w`-valent run.
    pub runs: Vec<InfiniteRun>,
    /// `links[i]` = a process that **never** distinguishes `runs[i]` and
    /// `runs[i+1]` (exact, via contamination).
    pub links: Vec<Pid>,
    /// The two valences connected.
    pub valences: (Value, Value),
}

impl ZeroChain {
    /// Re-verify the certificate from scratch: all runs admissible, ends
    /// valent, every link exactly distance 0.
    pub fn verify(&self, ma: &dyn MessageAdversary) -> bool {
        if self.runs.len() < 2 || self.links.len() + 1 != self.runs.len() {
            return false;
        }
        let (v, w) = self.valences;
        if v == w
            || !self.runs.first().expect("nonempty").is_valent(v)
            || !self.runs.last().expect("nonempty").is_valent(w)
        {
            return false;
        }
        for run in &self.runs {
            if ma.admits_lasso(run.lasso()) != Some(true) {
                return false;
            }
        }
        for (i, &p) in self.links.iter().enumerate() {
            let rep = contamination::analyze_infinite(&self.runs[i], &self.runs[i + 1]);
            if !rep.per_process[p].is_zero() {
                return false;
            }
        }
        true
    }
}

/// Search for an admissible lasso with **no broadcaster** among all pool
/// lassos with cycle length up to `max_cycle` (prefix-free).
///
/// Returns `None` if the adversary exposes no pool or no such lasso exists
/// within the searched shapes.
pub fn no_broadcaster_lasso(ma: &dyn MessageAdversary, max_cycle: usize) -> Option<Lasso> {
    let pool = ma.pool_hint()?;
    let n = ma.n();
    for cycle_len in 1..=max_cycle {
        // Enumerate pool^cycle_len cycles.
        let count = pool.len().checked_pow(cycle_len as u32)?;
        for mut idx in 0..count {
            let mut graphs = Vec::with_capacity(cycle_len);
            for _ in 0..cycle_len {
                graphs.push(pool[idx % pool.len()].clone());
                idx /= pool.len();
            }
            let lasso = Lasso::new(GraphSeq::new(), GraphSeq::from_graphs(graphs));
            if ma.admits_lasso(&lasso) != Some(true) {
                continue;
            }
            let no_broadcaster = (0..n).all(|p| lasso.broadcast_round(p).is_none());
            if n > 1 && no_broadcaster {
                return Some(lasso);
            }
        }
    }
    None
}

/// Build and verify an exact distance-0 chain from `v`-valent to `w`-valent
/// inputs along a no-broadcaster lasso (searched up to cycle length
/// `max_cycle`).
///
/// The flip order is chosen greedily: at each step, flip a process whose
/// change is invisible to some process forever (guaranteed to exist on a
/// no-broadcaster lasso).
pub fn exact_zero_chain(
    ma: &dyn MessageAdversary,
    v: Value,
    w: Value,
    max_cycle: usize,
) -> Option<ZeroChain> {
    assert_ne!(v, w, "valences must differ");
    let lasso = no_broadcaster_lasso(ma, max_cycle)?;
    let n = ma.n();
    let mut inputs = vec![v; n];
    let mut runs = vec![InfiniteRun::new(inputs.clone(), lasso.clone())];
    let mut links = Vec::new();
    for p in 0..n {
        inputs[p] = w;
        let next = InfiniteRun::new(inputs.clone(), lasso.clone());
        let rep = contamination::analyze_infinite(runs.last().expect("nonempty"), &next);
        let blind = rep.blind_processes().first().copied()?;
        links.push(blind);
        runs.push(next);
    }
    let chain = ZeroChain { runs, links, valences: (v, w) };
    chain.verify(ma).then_some(chain)
}

/// One link of an ε-chain through the prefix space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpsilonLink {
    /// Index of the next run on the chain.
    pub run: usize,
    /// A process whose depth-`t` view is shared with the previous run.
    pub shared_view_of: Pid,
}

/// A chain of runs through shared views at the space's depth, linking two
/// runs of the prefix space (BFS-shortest).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpsilonChain {
    /// The starting run index.
    pub start: usize,
    /// The links; following them reaches the end run.
    pub links: Vec<EpsilonLink>,
    /// The space depth `t` (links have `d_min < 2^{−t}`).
    pub depth: usize,
}

impl EpsilonChain {
    /// The run indices along the chain, including both ends.
    pub fn run_indices(&self) -> Vec<usize> {
        let mut v = vec![self.start];
        v.extend(self.links.iter().map(|l| l.run));
        v
    }
}

/// BFS a shortest ε-chain from run `from` to run `to` in the prefix space
/// (links = shared `(process, view-at-depth)` buckets). `None` if the runs
/// are in different components.
pub fn epsilon_chain(space: &PrefixSpace, from: usize, to: usize) -> Option<EpsilonChain> {
    use std::collections::{HashMap, VecDeque};
    let depth = space.depth();
    if space.components().component_of(from) != space.components().component_of(to) {
        return None;
    }
    // bucket -> member runs
    let mut buckets: HashMap<(Pid, ptgraph::ViewId), Vec<usize>> = HashMap::new();
    for (i, run) in space.runs().iter().enumerate() {
        for p in 0..run.n() {
            buckets.entry((p, run.view(p, depth))).or_default().push(i);
        }
    }
    let mut prev: HashMap<usize, (usize, Pid)> = HashMap::new();
    let mut queue = VecDeque::from([from]);
    prev.insert(from, (from, 0));
    while let Some(i) = queue.pop_front() {
        if i == to {
            break;
        }
        let run = &space.runs()[i];
        for p in 0..run.n() {
            for &j in &buckets[&(p, run.view(p, depth))] {
                if let std::collections::hash_map::Entry::Vacant(e) = prev.entry(j) {
                    e.insert((i, p));
                    queue.push_back(j);
                }
            }
        }
    }
    if !prev.contains_key(&to) {
        return None;
    }
    // Reconstruct.
    let mut rev = Vec::new();
    let mut cur = to;
    while cur != from {
        let (par, p) = prev[&cur];
        rev.push(EpsilonLink { run: cur, shared_view_of: p });
        cur = par;
    }
    rev.reverse();
    Some(EpsilonChain { start: from, links: rev, depth })
}

/// Validate an ε-chain: every consecutive pair shares the claimed process's
/// view at the space depth.
pub fn validate_epsilon_chain(space: &PrefixSpace, chain: &EpsilonChain) -> bool {
    let depth = space.depth();
    let mut prev = chain.start;
    for link in &chain.links {
        let p = link.shared_view_of;
        if space.runs()[prev].view(p, depth) != space.runs()[link.run].view(p, depth) {
            return false;
        }
        prev = link.run;
    }
    true
}

/// A valence-connecting ε-chain at one depth: evidence (not proof) of
/// impossibility; the family over growing depths is the finite shadow of a
/// fair/unfair limit (Definition 5.16).
pub fn valence_chain(space: &PrefixSpace, v: Value, w: Value) -> Option<EpsilonChain> {
    let runs = space.runs();
    let from = runs.iter().position(|r| r.is_valent(v))?;
    let to = runs.iter().position(|r| r.is_valent(w))?;
    epsilon_chain(space, from, to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adversary::GeneralMA;
    use dyngraph::{generators, Digraph};

    use crate::config::ExpandConfig;

    const CFG: ExpandConfig = ExpandConfig { threads: 1, max_runs: 1_000_000 };

    #[test]
    fn empty_graph_pool_yields_zero_chain() {
        // Pool {∅}: nobody ever hears anybody — flips are invisible.
        let ma = GeneralMA::oblivious(vec![Digraph::empty(2)]);
        let chain = exact_zero_chain(&ma, 0, 1, 2).expect("chain must exist");
        assert!(chain.verify(&ma));
        assert_eq!(chain.runs.len(), 3);
        assert_eq!(chain.valences, (0, 1));
    }

    #[test]
    fn unrooted_graph_in_pool_yields_zero_chain() {
        // n = 3 pool with a non-rooted graph (0→1 only): its constant lasso
        // has no broadcaster.
        let g = Digraph::from_edges(3, &[(0, 1)]).unwrap();
        let ma = GeneralMA::oblivious(vec![g]);
        let chain = exact_zero_chain(&ma, 0, 1, 2).expect("chain must exist");
        assert!(chain.verify(&ma));
        assert_eq!(chain.runs.len(), 4);
        // Every link names a process that never hears the flipped one.
        for (i, &p) in chain.links.iter().enumerate() {
            let rep = contamination::analyze_infinite(&chain.runs[i], &chain.runs[i + 1]);
            assert!(rep.per_process[p].is_zero());
        }
    }

    #[test]
    fn rooted_pools_have_no_zero_chain_within_small_cycles() {
        // {←, ↔, →}: every graph rooted; every constant or 2-cycle lasso has
        // a broadcaster → no exact chain (impossibility here is limit-only).
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        assert!(no_broadcaster_lasso(&ma, 3).is_none());
        assert!(exact_zero_chain(&ma, 0, 1, 3).is_none());
    }

    #[test]
    fn zero_chain_respects_admissibility() {
        // Non-compact adversary: "eventually ↔" excludes the ↔-free lassos,
        // so the no-broadcaster search must not return one. (All lassos with
        // ↔ have broadcasters, so: no chain.)
        let ma = GeneralMA::eventually_graph(
            generators::lossy_link_full(),
            Digraph::parse2("<->").unwrap(),
            None,
        );
        assert!(no_broadcaster_lasso(&ma, 2).is_none());
    }

    #[test]
    fn epsilon_chain_within_mixed_component() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let space = PrefixSpace::expand(&ma, &[0, 1], 3, &CFG).unwrap();
        let chain = valence_chain(&space, 0, 1).expect("mixed component must chain");
        assert!(validate_epsilon_chain(&space, &chain));
        assert!(space.runs()[chain.start].is_valent(0));
        let end = *chain.run_indices().last().unwrap();
        assert!(space.runs()[end].is_valent(1));
        assert!(chain.links.len() >= 2, "nontrivial chain expected");
    }

    #[test]
    fn epsilon_chain_none_across_components() {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let space = PrefixSpace::expand(&ma, &[0, 1], 2, &CFG).unwrap();
        // Separated: no valence chain.
        assert!(valence_chain(&space, 0, 1).is_none());
    }

    #[test]
    fn chain_family_grows_with_depth() {
        // The per-depth chains for the lossy link lengthen as depth grows —
        // the signature of a limit-only merge (fair sequence shadow).
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let mut prev_len = 0;
        for depth in 1..4 {
            let space = PrefixSpace::expand(&ma, &[0, 1], depth, &CFG).unwrap();
            let chain = valence_chain(&space, 0, 1).expect("chain exists at every depth");
            assert!(validate_epsilon_chain(&space, &chain));
            assert!(chain.links.len() >= prev_len, "chains should not shrink with depth");
            prev_len = chain.links.len();
        }
    }

    #[test]
    fn verify_rejects_tampered_chain() {
        let ma = GeneralMA::oblivious(vec![Digraph::empty(2)]);
        let mut chain = exact_zero_chain(&ma, 0, 1, 2).unwrap();
        chain.valences = (0, 0);
        assert!(!chain.verify(&ma));
    }
}
