//! Checkable certificates: solvability verdicts as portable, independently
//! re-verifiable artifacts.
//!
//! A verdict alone ("solvable", "unsolvable") asks the client to trust the
//! whole analysis pipeline — the prefix-space expansion, the component
//! labeling, the chain search. A [`Certificate`] instead carries the
//! *evidence* behind the verdict in a form a skeptical client can re-check
//! in milliseconds, **without re-expanding the prefix space**:
//!
//! - [`Certificate::Solvable`] carries the synthesized strategy of the
//!   universal algorithm (Theorem 5.5): the decision depth and the full
//!   per-`(process, view)` decision table, plus one valent witness
//!   execution per input value. See [`crate::universal`] for what the
//!   table *is* in the paper's terms. The verifier replays each witness
//!   word through the adversary's admissibility predicate
//!   ([`MessageAdversary::admits_prefix`]), recomputes the views it
//!   induces in a fresh interner, and checks that every process decides
//!   the witness's valence by the stated depth — agreement, validity, and
//!   termination on the exported table.
//! - [`Certificate::Unsolvable`] carries the fair-execution witness: the
//!   broken ε-chain of [`ZeroChain`] — a sequence
//!   of ultimately periodic admissible runs with differing end valences,
//!   consecutive runs linked by a forever-silent process (the finite
//!   shadow of the fair/unfair limits of Definition 5.16 and the
//!   bivalence argument of §6.1; see [`crate::bivalence`]). The verifier
//!   re-checks admissibility of every lasso
//!   ([`MessageAdversary::admits_lasso`]) and the zero-contamination
//!   links, which refutes *every* algorithm at once.
//!
//! Views inside a certificate are identified by a structural digest, not
//! by [`ViewId`] — interner ids depend on interning order, which an
//! offline verifier cannot reproduce. The digest of an initial view hashes
//! `(process, input)`; the digest of a round view hashes the process, the
//! predecessor digest, and the sorted `(sender, digest)` pairs received.
//! Replaying a witness in a fresh [`ViewTable`] therefore reproduces the
//! digests exactly, and the decision table keys on them.
//!
//! The JSON encoding (see `docs/certificates.md` for the field-by-field
//! schema) is stable and versioned by [`CERT_VERSION`]: a verifier must
//! reject any other version string rather than guess at field semantics.

use std::collections::HashMap;
use std::fmt;

use adversary::MessageAdversary;
use consensus_obs::metrics::registry;
use consensus_obs::trace::tracer;
use dyngraph::{Digraph, GraphSeq, Lasso, Pid};
use json::Value as Json;
use ptgraph::{InfiniteRun, PrefixRun, Value, ViewId, ViewTable};

use crate::fair::ZeroChain;
use crate::solvability::SolvableCert;
use crate::space::PrefixSpace;

/// The certificate format version. Bump on any change to the JSON schema;
/// verifiers reject every version they were not built for.
pub const CERT_VERSION: &str = "consensus-cert/v1";

/// Graph codes use [`Digraph::code`], which packs the adjacency matrix
/// into a `u64` — certificates are therefore limited to `n ≤ 8` processes
/// (far above the catalog's sizes).
pub const MAX_CERT_N: usize = 8;

/// One decision-table entry: process `process`, holding the view with
/// structural digest `view`, decides `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionEntry {
    /// The deciding process.
    pub process: Pid,
    /// The structural digest of the view (see [`view_digest`]).
    pub view: u64,
    /// The decided value.
    pub value: Value,
}

/// One valent witness execution of a solvable certificate: on the
/// all-`value` input assignment, the `word` must be admissible and every
/// process must decide `value` by the certificate's depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessRun {
    /// The value all processes start with (and must decide).
    pub value: Value,
    /// The input assignment (all entries equal `value`).
    pub inputs: Vec<Value>,
    /// The graph word, one [`Digraph::code`] per round.
    pub word: Vec<u64>,
}

/// The strategy extracted from a [`Verdict::Solvable`](crate::solvability::Verdict)
/// outcome: the universal algorithm's decision table plus valent witnesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolvableCertificate {
    /// The adversary label (catalog name or canonical spec term).
    pub adversary: String,
    /// The adversary's structural fingerprint
    /// ([`MessageAdversary::fingerprint`]).
    pub fingerprint: u64,
    /// Number of processes.
    pub n: usize,
    /// The input domain the strategy was synthesized over.
    pub domain: Vec<Value>,
    /// The separating depth: every admissible run decides by this round.
    pub depth: usize,
    /// The decision table, sorted by `(process, view)`.
    pub decisions: Vec<DecisionEntry>,
    /// One witness execution per domain value, in domain order.
    pub witnesses: Vec<WitnessRun>,
}

/// One ultimately periodic run of an unsolvable certificate's chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertRun {
    /// The input assignment.
    pub inputs: Vec<Value>,
    /// The lasso's finite prefix, one [`Digraph::code`] per round.
    pub prefix: Vec<u64>,
    /// The lasso's repeated cycle (nonempty), one code per round.
    pub cycle: Vec<u64>,
}

/// The fair-execution witness extracted from a
/// [`Verdict::Unsolvable`](crate::solvability::Verdict) outcome: a
/// serialized [`ZeroChain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsolvableCertificate {
    /// The adversary label (catalog name or canonical spec term).
    pub adversary: String,
    /// The adversary's structural fingerprint.
    pub fingerprint: u64,
    /// Number of processes.
    pub n: usize,
    /// The input domain of the analysis.
    pub domain: Vec<Value>,
    /// The two distinct valences the chain connects.
    pub valences: (Value, Value),
    /// The chain's runs; the first is `valences.0`-valent, the last
    /// `valences.1`-valent.
    pub runs: Vec<CertRun>,
    /// `links[i]` is the process silent between `runs[i]` and `runs[i+1]`.
    pub links: Vec<Pid>,
}

/// A checkable certificate: the evidence behind a definitive verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Certificate {
    /// Consensus is solvable; carries the strategy (see module docs).
    Solvable(SolvableCertificate),
    /// Consensus is unsolvable; carries the broken ε-chain.
    Unsolvable(UnsolvableCertificate),
}

/// Why a certificate was rejected (or could not be decoded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertError {
    /// The JSON payload does not decode to a certificate.
    Encoding {
        /// What was malformed.
        reason: String,
    },
    /// The version string is not [`CERT_VERSION`].
    Version {
        /// The version string found in the payload.
        found: String,
    },
    /// The adversary label could not be resolved/built.
    Adversary {
        /// The builder's error.
        reason: String,
    },
    /// The certificate's fingerprint does not match the adversary it is
    /// being verified against — a stale or mismatched artifact.
    FingerprintMismatch {
        /// The verifying adversary's fingerprint.
        expected: u64,
        /// The certificate's fingerprint.
        found: u64,
    },
    /// The certificate's `n` does not match the adversary's.
    ProcessCountMismatch {
        /// The verifying adversary's process count.
        expected: usize,
        /// The certificate's process count.
        found: usize,
    },
    /// The decision table is structurally invalid (unsorted, duplicate
    /// keys, out-of-range process, value outside the domain).
    MalformedTable {
        /// What was malformed.
        reason: String,
    },
    /// A witness (or chain run) is structurally invalid.
    MalformedWitness {
        /// What was malformed.
        reason: String,
    },
    /// A witness word's length disagrees with the stated depth — a
    /// truncated witness or a tampered depth field.
    DepthMismatch {
        /// The certificate's stated depth.
        depth: usize,
        /// The witness word's actual round count.
        witness_rounds: usize,
    },
    /// A witness word is not admissible under the adversary.
    InadmissibleWitness {
        /// The valence of the rejected witness.
        value: Value,
    },
    /// Replaying a witness, a process's earliest table decision disagrees
    /// with the witness's valence.
    WrongDecision {
        /// The process whose decision disagrees.
        process: Pid,
        /// The witness's valence (the required decision).
        expected: Value,
        /// The decision the table actually yields.
        found: Value,
    },
    /// Replaying a witness, a process reaches the stated depth without any
    /// decision — the strategy does not terminate as claimed.
    Undecided {
        /// The undecided process.
        process: Pid,
        /// The valence of the witness being replayed.
        value: Value,
    },
    /// The chain's end runs do not carry the claimed distinct valences.
    ValenceMismatch {
        /// What was wrong.
        reason: String,
    },
    /// The chain is structurally sound but fails re-verification against
    /// the adversary (inadmissible lasso or a contaminated link).
    ChainRejected,
}

impl CertError {
    /// A stable machine-readable tag for the error class.
    pub fn kind(&self) -> &'static str {
        match self {
            CertError::Encoding { .. } => "encoding",
            CertError::Version { .. } => "version",
            CertError::Adversary { .. } => "adversary",
            CertError::FingerprintMismatch { .. } => "fingerprint-mismatch",
            CertError::ProcessCountMismatch { .. } => "process-count-mismatch",
            CertError::MalformedTable { .. } => "malformed-table",
            CertError::MalformedWitness { .. } => "malformed-witness",
            CertError::DepthMismatch { .. } => "depth-mismatch",
            CertError::InadmissibleWitness { .. } => "inadmissible-witness",
            CertError::WrongDecision { .. } => "wrong-decision",
            CertError::Undecided { .. } => "undecided",
            CertError::ValenceMismatch { .. } => "valence-mismatch",
            CertError::ChainRejected => "chain-rejected",
        }
    }
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::Encoding { reason } => write!(f, "malformed certificate: {reason}"),
            CertError::Version { found } => {
                write!(f, "unsupported certificate version {found:?} (expected {CERT_VERSION:?})")
            }
            CertError::Adversary { reason } => {
                write!(f, "cannot build the certificate's adversary: {reason}")
            }
            CertError::FingerprintMismatch { expected, found } => write!(
                f,
                "adversary fingerprint mismatch: certificate has {found:016x}, \
                 adversary is {expected:016x}"
            ),
            CertError::ProcessCountMismatch { expected, found } => {
                write!(
                    f,
                    "process count mismatch: certificate has n={found}, adversary n={expected}"
                )
            }
            CertError::MalformedTable { reason } => write!(f, "malformed decision table: {reason}"),
            CertError::MalformedWitness { reason } => write!(f, "malformed witness: {reason}"),
            CertError::DepthMismatch { depth, witness_rounds } => write!(
                f,
                "witness word has {witness_rounds} round(s) but the certificate \
                 states depth {depth}"
            ),
            CertError::InadmissibleWitness { value } => {
                write!(f, "the {value}-valent witness word is not admissible under the adversary")
            }
            CertError::WrongDecision { process, expected, found } => write!(
                f,
                "process {process} decides {found} on the {expected}-valent witness \
                 (must decide {expected})"
            ),
            CertError::Undecided { process, value } => write!(
                f,
                "process {process} is undecided at the stated depth on the \
                 {value}-valent witness"
            ),
            CertError::ValenceMismatch { reason } => write!(f, "valence mismatch: {reason}"),
            CertError::ChainRejected => write!(
                f,
                "the zero-chain fails re-verification (inadmissible lasso or \
                 contaminated link)"
            ),
        }
    }
}

impl std::error::Error for CertError {}

// ---------------------------------------------------------------------------
// Structural view digests
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(words: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// The interner-independent structural digest of a view.
///
/// Initial views hash `(process, input)`; round views hash the process,
/// the predecessor's digest, and the received `(sender, digest)` pairs in
/// sender order. Two views get equal digests iff they are structurally
/// equal, regardless of the interning order of the [`ViewTable`]s holding
/// them — which is what lets an offline verifier recompute them from
/// scratch.
pub fn view_digest(table: &ViewTable, id: ViewId, memo: &mut HashMap<ViewId, u64>) -> u64 {
    if let Some(&d) = memo.get(&id) {
        return d;
    }
    let data = table.data(id);
    let digest = match table.prev(id) {
        None => fnv(&[0, data.process as u64, u64::from(data.own_input())]),
        Some(prev) => {
            let mut words = vec![1, data.process as u64, view_digest(table, prev, memo)];
            let mut received: Vec<(u8, u64)> = table
                .received(id)
                .iter()
                .map(|&(q, v)| (q, view_digest(table, v, memo)))
                .collect();
            received.sort_unstable();
            for (q, d) in received {
                words.push(u64::from(q));
                words.push(d);
            }
            fnv(&words)
        }
    };
    memo.insert(id, digest);
    digest
}

// ---------------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------------

impl Certificate {
    /// Extract a solvable certificate from a checker outcome.
    ///
    /// `space` must be the prefix space `cert` was certified on (the
    /// separating depth's space — a cache hit, never a fresh expansion).
    /// Returns `None` when the space exceeds [`MAX_CERT_N`] processes or a
    /// domain value has no valent run to witness (neither occurs for the
    /// built-in catalog).
    pub fn from_solvable(
        cert: &SolvableCert,
        space: &PrefixSpace,
        adversary: &str,
        fingerprint: u64,
    ) -> Option<Certificate> {
        let _span = tracer().span("cert.extract").with_attr("verdict", "solvable");
        registry().counter("cert.extract").inc();
        let n = space.table().n();
        if n > MAX_CERT_N {
            return None;
        }
        let mut memo = HashMap::new();
        let decisions = cert.algorithm.with_view_table(|table| {
            let mut entries: Vec<DecisionEntry> = cert
                .algorithm
                .decision_table()
                .into_iter()
                .map(|(process, view, value)| DecisionEntry {
                    process,
                    view: view_digest(table, view, &mut memo),
                    value,
                })
                .collect();
            entries.sort_unstable_by_key(|e| (e.process, e.view));
            entries
        });
        let mut witnesses = Vec::with_capacity(space.values().len());
        for &value in space.values() {
            let run = space.runs().iter().find(|r| r.is_valent(value))?;
            witnesses.push(WitnessRun {
                value,
                inputs: run.inputs().to_vec(),
                word: (1..=run.rounds()).map(|t| run.seq().graph(t).code()).collect(),
            });
        }
        Some(Certificate::Solvable(SolvableCertificate {
            adversary: adversary.to_string(),
            fingerprint,
            n,
            domain: space.values().to_vec(),
            depth: cert.depth,
            decisions,
            witnesses,
        }))
    }

    /// Extract an unsolvable certificate from a [`ZeroChain`].
    ///
    /// Returns `None` when the chain exceeds [`MAX_CERT_N`] processes.
    pub fn from_unsolvable(
        chain: &ZeroChain,
        adversary: &str,
        fingerprint: u64,
        n: usize,
        domain: &[Value],
    ) -> Option<Certificate> {
        let _span = tracer().span("cert.extract").with_attr("verdict", "unsolvable");
        registry().counter("cert.extract").inc();
        if n > MAX_CERT_N {
            return None;
        }
        let runs = chain
            .runs
            .iter()
            .map(|run| {
                let lasso = run.lasso();
                CertRun {
                    inputs: run.inputs().to_vec(),
                    prefix: (1..=lasso.prefix_len()).map(|t| lasso.graph_at(t).code()).collect(),
                    cycle: (lasso.prefix_len() + 1..=lasso.prefix_len() + lasso.cycle_len())
                        .map(|t| lasso.graph_at(t).code())
                        .collect(),
                }
            })
            .collect();
        Some(Certificate::Unsolvable(UnsolvableCertificate {
            adversary: adversary.to_string(),
            fingerprint,
            n,
            domain: domain.to_vec(),
            valences: chain.valences,
            runs,
            links: chain.links.clone(),
        }))
    }

    /// The adversary label the certificate was issued for.
    pub fn adversary(&self) -> &str {
        match self {
            Certificate::Solvable(c) => &c.adversary,
            Certificate::Unsolvable(c) => &c.adversary,
        }
    }

    /// The verdict name: `"solvable"` or `"unsolvable"`.
    pub fn verdict(&self) -> &'static str {
        match self {
            Certificate::Solvable(_) => "solvable",
            Certificate::Unsolvable(_) => "unsolvable",
        }
    }
}

// ---------------------------------------------------------------------------
// Verification
// ---------------------------------------------------------------------------

/// Re-check `cert` against `ma` without expanding any prefix space.
///
/// Solvable certificates: fingerprint and process count must match; the
/// decision table must be sorted, duplicate-free, and range-valid; every
/// witness word must be admissible ([`MessageAdversary::admits_prefix`]),
/// exactly `depth` rounds long, and — replayed through a fresh view
/// interner — must have every process decide the witness's valence by
/// `depth` under the exported table.
///
/// Unsolvable certificates: the chain must be structurally sound (≥ 2
/// runs, one link per adjacent pair, distinct end valences carried by the
/// end runs), and the reconstructed [`ZeroChain`] must pass
/// [`ZeroChain::verify`] — admissible lassos, zero contamination across
/// every link.
///
/// The work is `O(n² · depth)` per witness plus the adversary's
/// admissibility predicates: milliseconds, versus the exponential
/// prefix-space expansion the original verdict required.
pub fn verify(cert: &Certificate, ma: &dyn MessageAdversary) -> Result<(), CertError> {
    let mut span = tracer().span("cert.verify").with_attr("verdict", cert.verdict());
    registry().counter("cert.verify").inc();
    let result = match cert {
        Certificate::Solvable(c) => verify_solvable(c, ma),
        Certificate::Unsolvable(c) => verify_unsolvable(c, ma),
    };
    span.set_attr("ok", result.is_ok());
    if result.is_err() {
        registry().counter("cert.verify.rejected").inc();
    }
    result
}

fn check_identity(ma: &dyn MessageAdversary, n: usize, fingerprint: u64) -> Result<(), CertError> {
    if ma.n() != n {
        return Err(CertError::ProcessCountMismatch { expected: ma.n(), found: n });
    }
    if ma.fingerprint() != fingerprint {
        return Err(CertError::FingerprintMismatch {
            expected: ma.fingerprint(),
            found: fingerprint,
        });
    }
    Ok(())
}

/// Decode a graph word, rejecting codes with bits outside the `n × n`
/// adjacency matrix (they would silently round-trip to a different word).
fn decode_word(n: usize, codes: &[u64], what: &str) -> Result<Vec<Digraph>, CertError> {
    if n == 0 || n > MAX_CERT_N {
        return Err(CertError::MalformedWitness { reason: format!("n = {n} out of range") });
    }
    let mask = if n * n == 64 {
        u64::MAX
    } else {
        (1u64 << (n * n)) - 1
    };
    codes
        .iter()
        .map(|&code| {
            if code & !mask != 0 {
                return Err(CertError::MalformedWitness {
                    reason: format!("{what}: graph code {code:#x} has bits outside n = {n}"),
                });
            }
            Ok(Digraph::from_code(n, code))
        })
        .collect()
}

fn verify_solvable(cert: &SolvableCertificate, ma: &dyn MessageAdversary) -> Result<(), CertError> {
    check_identity(ma, cert.n, cert.fingerprint)?;
    if cert.domain.is_empty() {
        return Err(CertError::MalformedTable { reason: "empty domain".into() });
    }
    // Table sanity: sorted, unique, range-valid. Entries off the witness
    // paths are unexercised but must still be well-formed.
    for pair in cert.decisions.windows(2) {
        if (pair[0].process, pair[0].view) >= (pair[1].process, pair[1].view) {
            return Err(CertError::MalformedTable {
                reason: "entries not strictly sorted by (process, view)".into(),
            });
        }
    }
    for entry in &cert.decisions {
        if entry.process >= cert.n {
            return Err(CertError::MalformedTable {
                reason: format!("process {} out of range (n = {})", entry.process, cert.n),
            });
        }
        if !cert.domain.contains(&entry.value) {
            return Err(CertError::MalformedTable {
                reason: format!("decision value {} outside the domain", entry.value),
            });
        }
    }
    let table: HashMap<(Pid, u64), Value> =
        cert.decisions.iter().map(|e| ((e.process, e.view), e.value)).collect();
    // Exactly one witness per domain value.
    let mut values: Vec<Value> = cert.witnesses.iter().map(|w| w.value).collect();
    values.sort_unstable();
    values.dedup();
    let mut domain = cert.domain.clone();
    domain.sort_unstable();
    domain.dedup();
    if values != domain {
        return Err(CertError::MalformedWitness {
            reason: "witness values do not cover the domain exactly once".into(),
        });
    }
    for witness in &cert.witnesses {
        verify_witness(cert, witness, &table, ma)?;
    }
    Ok(())
}

fn verify_witness(
    cert: &SolvableCertificate,
    witness: &WitnessRun,
    table: &HashMap<(Pid, u64), Value>,
    ma: &dyn MessageAdversary,
) -> Result<(), CertError> {
    let v = witness.value;
    if witness.inputs.len() != cert.n || witness.inputs.iter().any(|&x| x != v) {
        return Err(CertError::MalformedWitness {
            reason: format!("the {v}-valent witness's inputs are not all {v} over n = {}", cert.n),
        });
    }
    if witness.word.len() != cert.depth {
        return Err(CertError::DepthMismatch {
            depth: cert.depth,
            witness_rounds: witness.word.len(),
        });
    }
    let graphs = decode_word(cert.n, &witness.word, "witness word")?;
    let seq = GraphSeq::from_graphs(graphs);
    if !ma.admits_prefix(&seq) {
        return Err(CertError::InadmissibleWitness { value: v });
    }
    // Replay in a fresh interner: digests are structural, so they coincide
    // with the extraction-time digests without sharing any table state.
    let mut fresh = ViewTable::new(cert.n);
    let run = PrefixRun::compute(witness.inputs.clone(), &seq, &mut fresh);
    let mut memo = HashMap::new();
    for p in 0..cert.n {
        let mut decided = None;
        for t in 0..=cert.depth {
            let digest = view_digest(&fresh, run.view(p, t), &mut memo);
            if let Some(&value) = table.get(&(p, digest)) {
                decided = Some(value);
                break;
            }
        }
        match decided {
            Some(value) if value == v => {}
            Some(value) => {
                return Err(CertError::WrongDecision { process: p, expected: v, found: value })
            }
            None => return Err(CertError::Undecided { process: p, value: v }),
        }
    }
    Ok(())
}

fn verify_unsolvable(
    cert: &UnsolvableCertificate,
    ma: &dyn MessageAdversary,
) -> Result<(), CertError> {
    check_identity(ma, cert.n, cert.fingerprint)?;
    let (v, w) = cert.valences;
    if v == w {
        return Err(CertError::ValenceMismatch { reason: format!("valences are both {v}") });
    }
    if cert.runs.len() < 2 {
        return Err(CertError::MalformedWitness {
            reason: format!("a chain needs at least 2 runs, found {}", cert.runs.len()),
        });
    }
    if cert.links.len() + 1 != cert.runs.len() {
        return Err(CertError::MalformedWitness {
            reason: format!(
                "{} run(s) need {} link(s), found {}",
                cert.runs.len(),
                cert.runs.len() - 1,
                cert.links.len()
            ),
        });
    }
    if let Some(&p) = cert.links.iter().find(|&&p| p >= cert.n) {
        return Err(CertError::MalformedWitness {
            reason: format!("link process {p} out of range (n = {})", cert.n),
        });
    }
    let mut runs = Vec::with_capacity(cert.runs.len());
    for (i, run) in cert.runs.iter().enumerate() {
        if run.inputs.len() != cert.n {
            return Err(CertError::MalformedWitness {
                reason: format!("run {i}: {} input(s) for n = {}", run.inputs.len(), cert.n),
            });
        }
        if run.cycle.is_empty() {
            return Err(CertError::MalformedWitness {
                reason: format!("run {i}: empty lasso cycle"),
            });
        }
        let prefix = GraphSeq::from_graphs(decode_word(cert.n, &run.prefix, "lasso prefix")?);
        let cycle = GraphSeq::from_graphs(decode_word(cert.n, &run.cycle, "lasso cycle")?);
        runs.push(InfiniteRun::new(run.inputs.clone(), Lasso::new(prefix, cycle)));
    }
    let first_valent = runs.first().is_some_and(|r| r.is_valent(v));
    let last_valent = runs.last().is_some_and(|r| r.is_valent(w));
    if !first_valent || !last_valent {
        return Err(CertError::ValenceMismatch {
            reason: format!("end runs are not ({v}, {w})-valent as claimed"),
        });
    }
    let chain = ZeroChain { runs, links: cert.links.clone(), valences: cert.valences };
    if !chain.verify(ma) {
        return Err(CertError::ChainRejected);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// JSON codec
// ---------------------------------------------------------------------------

fn hex16(fp: u64) -> Json {
    Json::Str(format!("{fp:016x}"))
}

fn parse_hex16(value: &Json, what: &str) -> Result<u64, CertError> {
    let bad = || CertError::Encoding { reason: format!("{what} must be a 16-hex-digit string") };
    let s = value.as_str().ok_or_else(bad)?;
    if s.len() != 16 {
        return Err(bad());
    }
    u64::from_str_radix(s, 16).map_err(|_| bad())
}

fn values_arr(values: &[Value]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::Int(i64::from(v))).collect())
}

fn codes_arr(codes: &[u64]) -> Json {
    Json::Arr(codes.iter().map(|&c| Json::Int(c as i64)).collect())
}

fn parse_values(value: &Json, what: &str) -> Result<Vec<Value>, CertError> {
    let bad = |detail: &str| CertError::Encoding { reason: format!("{what}: {detail}") };
    let Json::Arr(items) = value else {
        return Err(bad("expected an array"));
    };
    items
        .iter()
        .map(|item| {
            item.as_i64()
                .and_then(|i| Value::try_from(i).ok())
                .ok_or_else(|| bad("expected non-negative integers"))
        })
        .collect()
}

fn parse_codes(value: &Json, what: &str) -> Result<Vec<u64>, CertError> {
    let bad = |detail: &str| CertError::Encoding { reason: format!("{what}: {detail}") };
    let Json::Arr(items) = value else {
        return Err(bad("expected an array"));
    };
    items
        .iter()
        .map(|item| {
            item.as_i64()
                .and_then(|i| u64::try_from(i).ok())
                .ok_or_else(|| bad("expected non-negative graph codes"))
        })
        .collect()
}

fn get<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, CertError> {
    obj.get(key)
        .ok_or_else(|| CertError::Encoding { reason: format!("missing field {key:?}") })
}

fn get_str(obj: &Json, key: &str) -> Result<String, CertError> {
    get(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| CertError::Encoding { reason: format!("field {key:?} must be a string") })
}

fn get_usize(obj: &Json, key: &str) -> Result<usize, CertError> {
    obj.get_usize(key).ok_or_else(|| CertError::Encoding {
        reason: format!("field {key:?} must be a non-negative integer"),
    })
}

impl Certificate {
    /// The stable JSON encoding; see `docs/certificates.md` for the schema.
    pub fn to_json(&self) -> Json {
        match self {
            Certificate::Solvable(c) => {
                let decisions = c
                    .decisions
                    .iter()
                    .map(|e| {
                        Json::Obj(vec![
                            ("process".into(), Json::Int(e.process as i64)),
                            ("view".into(), hex16(e.view)),
                            ("value".into(), Json::Int(i64::from(e.value))),
                        ])
                    })
                    .collect();
                let witnesses = c
                    .witnesses
                    .iter()
                    .map(|w| {
                        Json::Obj(vec![
                            ("value".into(), Json::Int(i64::from(w.value))),
                            ("inputs".into(), values_arr(&w.inputs)),
                            ("word".into(), codes_arr(&w.word)),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("certificate".into(), Json::Str(CERT_VERSION.into())),
                    ("verdict".into(), Json::Str("solvable".into())),
                    ("adversary".into(), Json::Str(c.adversary.clone())),
                    ("fingerprint".into(), hex16(c.fingerprint)),
                    ("n".into(), Json::Int(c.n as i64)),
                    ("domain".into(), values_arr(&c.domain)),
                    ("depth".into(), Json::Int(c.depth as i64)),
                    ("decisions".into(), Json::Arr(decisions)),
                    ("witnesses".into(), Json::Arr(witnesses)),
                ])
            }
            Certificate::Unsolvable(c) => {
                let runs = c
                    .runs
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("inputs".into(), values_arr(&r.inputs)),
                            ("prefix".into(), codes_arr(&r.prefix)),
                            ("cycle".into(), codes_arr(&r.cycle)),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("certificate".into(), Json::Str(CERT_VERSION.into())),
                    ("verdict".into(), Json::Str("unsolvable".into())),
                    ("adversary".into(), Json::Str(c.adversary.clone())),
                    ("fingerprint".into(), hex16(c.fingerprint)),
                    ("n".into(), Json::Int(c.n as i64)),
                    ("domain".into(), values_arr(&c.domain)),
                    (
                        "valences".into(),
                        Json::Arr(vec![
                            Json::Int(i64::from(c.valences.0)),
                            Json::Int(i64::from(c.valences.1)),
                        ]),
                    ),
                    ("runs".into(), Json::Arr(runs)),
                    (
                        "links".into(),
                        Json::Arr(c.links.iter().map(|&p| Json::Int(p as i64)).collect()),
                    ),
                ])
            }
        }
    }

    /// Decode a certificate, rejecting unknown versions and malformed
    /// payloads with typed [`CertError`]s.
    pub fn from_json(value: &Json) -> Result<Certificate, CertError> {
        let version = get_str(value, "certificate")?;
        if version != CERT_VERSION {
            return Err(CertError::Version { found: version });
        }
        let verdict = get_str(value, "verdict")?;
        let adversary = get_str(value, "adversary")?;
        let fingerprint = parse_hex16(get(value, "fingerprint")?, "fingerprint")?;
        let n = get_usize(value, "n")?;
        let domain = parse_values(get(value, "domain")?, "domain")?;
        match verdict.as_str() {
            "solvable" => {
                let depth = get_usize(value, "depth")?;
                let Json::Arr(entries) = get(value, "decisions")? else {
                    return Err(CertError::Encoding {
                        reason: "field \"decisions\" must be an array".into(),
                    });
                };
                let mut decisions = Vec::with_capacity(entries.len());
                for entry in entries {
                    decisions.push(DecisionEntry {
                        process: get_usize(entry, "process")?,
                        view: parse_hex16(get(entry, "view")?, "view")?,
                        value: get_usize(entry, "value")? as Value,
                    });
                }
                let Json::Arr(items) = get(value, "witnesses")? else {
                    return Err(CertError::Encoding {
                        reason: "field \"witnesses\" must be an array".into(),
                    });
                };
                let mut witnesses = Vec::with_capacity(items.len());
                for item in items {
                    witnesses.push(WitnessRun {
                        value: get_usize(item, "value")? as Value,
                        inputs: parse_values(get(item, "inputs")?, "inputs")?,
                        word: parse_codes(get(item, "word")?, "word")?,
                    });
                }
                Ok(Certificate::Solvable(SolvableCertificate {
                    adversary,
                    fingerprint,
                    n,
                    domain,
                    depth,
                    decisions,
                    witnesses,
                }))
            }
            "unsolvable" => {
                let valences = parse_values(get(value, "valences")?, "valences")?;
                let [v, w] = valences[..] else {
                    return Err(CertError::Encoding {
                        reason: "field \"valences\" must hold exactly 2 values".into(),
                    });
                };
                let Json::Arr(items) = get(value, "runs")? else {
                    return Err(CertError::Encoding {
                        reason: "field \"runs\" must be an array".into(),
                    });
                };
                let mut runs = Vec::with_capacity(items.len());
                for item in items {
                    runs.push(CertRun {
                        inputs: parse_values(get(item, "inputs")?, "inputs")?,
                        prefix: parse_codes(get(item, "prefix")?, "prefix")?,
                        cycle: parse_codes(get(item, "cycle")?, "cycle")?,
                    });
                }
                let links = parse_values(get(value, "links")?, "links")?
                    .into_iter()
                    .map(|p| p as usize)
                    .collect();
                Ok(Certificate::Unsolvable(UnsolvableCertificate {
                    adversary,
                    fingerprint,
                    n,
                    domain,
                    valences: (v, w),
                    runs,
                    links,
                }))
            }
            other => Err(CertError::Encoding { reason: format!("unknown verdict {other:?}") }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AnalysisConfig, ExpandConfig};
    use crate::solvability::{SolvabilityChecker, Verdict};
    use adversary::{GeneralMA, MessageAdversary};
    use dyngraph::generators;

    fn solvable_cert() -> (Certificate, GeneralMA) {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let fp = ma.fingerprint();
        let checker =
            SolvabilityChecker::new(GeneralMA::oblivious(generators::lossy_link_reduced()))
                .max_depth(2);
        let Verdict::Solvable(cert) = checker.check() else {
            panic!("solvable")
        };
        let space =
            PrefixSpace::expand(&ma, &[0, 1], cert.depth, &ExpandConfig::default()).unwrap();
        let cert = Certificate::from_solvable(&cert, &space, "reduced", fp).unwrap();
        (cert, ma)
    }

    fn message_loss_2_2() -> adversary::DynMA {
        adversary::catalog::by_name("message-loss-2-2").unwrap().build()
    }

    fn unsolvable_cert() -> (Certificate, adversary::DynMA) {
        let ma = message_loss_2_2();
        let fp = ma.fingerprint();
        let checker = SolvabilityChecker::with_config(
            message_loss_2_2(),
            AnalysisConfig::default(),
            ExpandConfig::default(),
        )
        .max_depth(2);
        let Verdict::Unsolvable(crate::solvability::UnsolvableCert::ZeroChain(chain)) =
            checker.check()
        else {
            panic!("unsolvable")
        };
        let cert =
            Certificate::from_unsolvable(&chain, "message-loss-2-2", fp, ma.n(), &[0, 1]).unwrap();
        (cert, ma)
    }

    #[test]
    fn solvable_certificate_roundtrips_and_verifies() {
        let (cert, ma) = solvable_cert();
        verify(&cert, &ma).unwrap();
        let decoded = Certificate::from_json(&cert.to_json()).unwrap();
        assert_eq!(decoded, cert);
        verify(&decoded, &ma).unwrap();
    }

    #[test]
    fn unsolvable_certificate_roundtrips_and_verifies() {
        let (cert, ma) = unsolvable_cert();
        verify(&cert, ma.as_ref()).unwrap();
        let decoded = Certificate::from_json(&cert.to_json()).unwrap();
        assert_eq!(decoded, cert);
        verify(&decoded, ma.as_ref()).unwrap();
    }

    #[test]
    fn digests_are_interning_order_independent() {
        // The same structural view interned in two different orders gets
        // the same digest.
        let seq = GraphSeq::parse2("-> <-").unwrap();
        let mut a = ViewTable::new(2);
        let run_a = PrefixRun::compute(vec![0, 1], &seq, &mut a);
        let mut b = ViewTable::new(2);
        // Intern an unrelated run first, skewing b's id order.
        PrefixRun::compute(vec![1, 0], &GraphSeq::parse2("<- ->").unwrap(), &mut b);
        let run_b = PrefixRun::compute(vec![0, 1], &seq, &mut b);
        let (mut ma, mut mb) = (HashMap::new(), HashMap::new());
        for p in 0..2 {
            for t in 0..=2 {
                assert_eq!(
                    view_digest(&a, run_a.view(p, t), &mut ma),
                    view_digest(&b, run_b.view(p, t), &mut mb),
                    "digest differs at ({p}, {t})"
                );
            }
        }
    }

    #[test]
    fn stale_fingerprint_is_rejected() {
        let (cert, ma) = solvable_cert();
        let Certificate::Solvable(mut c) = cert else {
            unreachable!()
        };
        c.fingerprint ^= 1;
        let err = verify(&Certificate::Solvable(c), &ma).unwrap_err();
        assert!(matches!(err, CertError::FingerprintMismatch { .. }), "{err}");
    }

    #[test]
    fn truncated_witness_and_wrong_depth_are_rejected() {
        let (cert, ma) = solvable_cert();
        let Certificate::Solvable(c) = cert else {
            unreachable!()
        };
        let mut truncated = c.clone();
        truncated.witnesses[0].word.pop();
        let err = verify(&Certificate::Solvable(truncated), &ma).unwrap_err();
        assert!(matches!(err, CertError::DepthMismatch { .. }), "{err}");
        let mut deeper = c;
        deeper.depth += 1;
        let err = verify(&Certificate::Solvable(deeper), &ma).unwrap_err();
        assert!(matches!(err, CertError::DepthMismatch { .. }), "{err}");
    }

    #[test]
    fn flipped_decision_is_rejected() {
        let (cert, ma) = solvable_cert();
        let Certificate::Solvable(c) = cert else {
            unreachable!()
        };
        // Flip every table entry's value: whichever entries the witness
        // replay hits now disagree with the witness valence.
        let mut flipped = c;
        for entry in &mut flipped.decisions {
            entry.value = 1 - entry.value;
        }
        let err = verify(&Certificate::Solvable(flipped), &ma).unwrap_err();
        assert!(matches!(err, CertError::WrongDecision { .. }), "{err}");
    }

    #[test]
    fn truncated_chain_is_rejected() {
        let (cert, ma) = unsolvable_cert();
        let Certificate::Unsolvable(c) = cert else {
            unreachable!()
        };
        let mut truncated = c.clone();
        truncated.runs.pop();
        let err = verify(&Certificate::Unsolvable(truncated), ma.as_ref()).unwrap_err();
        assert!(
            matches!(err, CertError::MalformedWitness { .. } | CertError::ValenceMismatch { .. }),
            "{err}"
        );
        let mut equal = c;
        equal.valences.1 = equal.valences.0;
        let err = verify(&Certificate::Unsolvable(equal), ma.as_ref()).unwrap_err();
        assert!(matches!(err, CertError::ValenceMismatch { .. }), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let (cert, _) = solvable_cert();
        let mut json = cert.to_json();
        let Json::Obj(fields) = &mut json else {
            unreachable!()
        };
        fields[0].1 = Json::Str("consensus-cert/v0".into());
        let err = Certificate::from_json(&json).unwrap_err();
        assert!(matches!(err, CertError::Version { .. }), "{err}");
    }
}
