//! The universal consensus algorithm of Theorem 5.5, synthesized from a
//! separated prefix space.
//!
//! # What the synthesized strategy *is*, in the paper's terms
//!
//! Nowak–Schmid–Winkler's universal algorithm is not a clever protocol — it
//! is the topology made executable. Every process keeps a full-information
//! view of the process-time graph (who it heard from, carrying what, in
//! which round: [`ptgraph::ViewTable`]). Process `p` decides value `v` at
//! time `t` as soon as the **ball** of admissible executions compatible
//! with its recorded view `V` — `{b ∈ PS : π_p(b^t) = V}` in the paper's
//! notation — is contained in the decision set `PS(v)`. Agreement follows
//! because the decision sets partition the connected components of the
//! space (Corollary 5.6: a solvable adversary admits no component whose
//! runs require different decisions), and validity because each component's
//! assigned value is one of its runs' inputs.
//!
//! Synthesis precomputes exactly that ball test on the finite prefix space:
//! for every time `s ≤ depth` and every `(process, view at s)` bucket, if
//! all runs compatible with the bucket lie in components assigned the same
//! value `v`, the bucket decides `v`. At `s = depth` every bucket decides
//! (buckets refine components), so the algorithm terminates by round
//! `depth` on every admissible run.
//!
//! The resulting decision table — the `(process, view) → value` map plus
//! its depth — is a complete, self-contained description of the strategy.
//! That is what a solvable [`certificate`](crate::certificate) exports:
//! [`UniversalAlgorithm::decision_table`] snapshots the map, and the
//! certificate verifier replays witness executions against it without
//! re-expanding the prefix space.

use std::collections::HashMap;

use dyngraph::Pid;
use ptgraph::{Value, ViewId, ViewTable};
use simulator::Algorithm;
use std::sync::Mutex;

use crate::space::PrefixSpace;

/// A synthesized universal consensus algorithm (Theorem 5.5).
///
/// Implements [`simulator::Algorithm`]: states are interned views plus the
/// decision; the runtime interner is seeded with the synthesis-time
/// [`ViewTable`] so that view identity at run time coincides with synthesis
/// time.
#[derive(Debug)]
pub struct UniversalAlgorithm {
    /// Runtime view interner (shared across the processes of an execution).
    table: Mutex<ViewTable>,
    /// `(p, view)` → decision value, for every bucket whose ball is
    /// decided.
    decisions: HashMap<(Pid, ViewId), Value>,
    /// The synthesis depth: every admissible run decides by this round.
    depth: usize,
}

/// State of [`UniversalAlgorithm`]: the interned view and the decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniversalState {
    /// The process's current interned view.
    pub view: ViewId,
    /// The decision, once taken (irrevocable).
    pub decided: Option<Value>,
}

impl UniversalAlgorithm {
    /// Synthesize from a prefix space whose valence labeling is separated.
    ///
    /// Returns `None` if the space is not separated (consensus not solvable
    /// at this resolution — Corollary 5.6).
    pub fn synthesize(space: &PrefixSpace) -> Option<Self> {
        Self::synthesize_from_assignment(space, space.component_assignment()?)
    }

    /// Synthesize under **strong validity**: decisions are always some
    /// process's input. Returns `None` if the space is not separated or no
    /// strong-validity assignment exists (see
    /// [`PrefixSpace::strong_component_assignment`]).
    pub fn synthesize_strong(space: &PrefixSpace) -> Option<Self> {
        Self::synthesize_from_assignment(space, space.strong_component_assignment()?)
    }

    fn synthesize_from_assignment(space: &PrefixSpace, assignment: Vec<Value>) -> Option<Self> {
        let depth = space.depth();
        // Earliest-decision tables: bucket (p, view at s) decides v iff all
        // runs sharing the bucket sit in components assigned v.
        let mut bucket_values: HashMap<(Pid, ViewId), Option<Value>> = HashMap::new();
        for (i, run) in space.runs().iter().enumerate() {
            let value = assignment[space.components().component_of(i)];
            for s in 0..=depth {
                for p in 0..run.n() {
                    let key = (p, run.view(p, s));
                    match bucket_values.entry(key) {
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(Some(value));
                        }
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            if *e.get() != Some(value) {
                                *e.get_mut() = None; // ambiguous ball: no decision yet
                            }
                        }
                    }
                }
            }
        }
        let decisions = bucket_values.into_iter().filter_map(|(k, v)| v.map(|v| (k, v))).collect();
        Some(UniversalAlgorithm { table: Mutex::new(space.table().clone()), decisions, depth })
    }

    /// The synthesis depth: the round by which every admissible run decides.
    pub fn decision_depth(&self) -> usize {
        self.depth
    }

    /// Number of `(process, view)` buckets with a decision entry.
    pub fn table_size(&self) -> usize {
        self.decisions.len()
    }

    /// The decision for a bucket, if the ball around the view is decided.
    pub fn bucket_decision(&self, p: Pid, view: ViewId) -> Option<Value> {
        self.decisions.get(&(p, view)).copied()
    }

    /// The full decision table as a sorted `(process, view, value)` list —
    /// the strategy itself, in exportable form.
    ///
    /// This is the payload a solvable [`certificate`](crate::certificate)
    /// carries: together with [`decision_depth`](Self::decision_depth) it
    /// determines the algorithm completely, and a verifier can check
    /// agreement/validity/termination against it by replaying executions,
    /// without access to the prefix space the table was synthesized from.
    pub fn decision_table(&self) -> Vec<(Pid, ViewId, Value)> {
        let mut table: Vec<(Pid, ViewId, Value)> =
            self.decisions.iter().map(|(&(p, view), &v)| (p, view, v)).collect();
        table.sort_unstable();
        table
    }

    /// Run `f` against the synthesis-time view interner.
    ///
    /// The [`ViewId`]s in the decision table are indices into this table;
    /// certificate extraction uses the structural data behind them (process,
    /// round, received views) to compute interner-independent view digests.
    pub fn with_view_table<R>(&self, f: impl FnOnce(&ViewTable) -> R) -> R {
        f(&self.table.lock().expect("interner lock poisoned"))
    }
}

impl Algorithm for UniversalAlgorithm {
    type State = UniversalState;

    fn init(&self, p: Pid, x: Value) -> UniversalState {
        let view = self.table.lock().expect("interner lock poisoned").intern_initial(p, x);
        UniversalState { view, decided: self.bucket_decision(p, view) }
    }

    fn step(
        &self,
        p: Pid,
        state: &UniversalState,
        received: &[(Pid, UniversalState)],
    ) -> UniversalState {
        let rec: Vec<(Pid, ViewId)> = received.iter().map(|&(q, ref s)| (q, s.view)).collect();
        let view = self
            .table
            .lock()
            .expect("interner lock poisoned")
            .intern_round(p, state.view, &rec);
        let decided = state.decided.or_else(|| self.bucket_decision(p, view));
        UniversalState { view, decided }
    }

    fn decision(&self, _p: Pid, state: &UniversalState) -> Option<Value> {
        state.decided
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adversary::GeneralMA;
    use dyngraph::{generators, GraphSeq};
    use simulator::{checker, engine};

    use crate::config::ExpandConfig;

    const CFG: ExpandConfig = ExpandConfig { threads: 1, max_runs: 1_000_000 };

    fn reduced_space(depth: usize) -> PrefixSpace {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        PrefixSpace::expand(&ma, &[0, 1], depth, &CFG).unwrap()
    }

    #[test]
    fn synthesis_fails_on_mixed_space() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let space = PrefixSpace::expand(&ma, &[0, 1], 2, &CFG).unwrap();
        assert!(UniversalAlgorithm::synthesize(&space).is_none());
    }

    #[test]
    fn synthesized_algorithm_solves_reduced_lossy_link() {
        let space = reduced_space(2);
        let alg = UniversalAlgorithm::synthesize(&space).unwrap();
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let report = checker::check(
            &alg,
            &ma,
            &[0, 1],
            &checker::CheckConfig::at_depth(2).max_runs(100_000),
        )
        .unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.undecided_runs, 0);
    }

    #[test]
    fn valent_runs_decide_at_round_one() {
        // On valent inputs decisions fire early — by round 2: the round-1
        // ball of the round-1 *sender* still straddles the valent component
        // and an unlabeled component (whose meta-procedure default may
        // differ), so round 1 is not always possible; the receiver's ball is
        // already pure at round 1.
        let space = reduced_space(3);
        let alg = UniversalAlgorithm::synthesize(&space).unwrap();
        for word in ["-> <- ->", "<- -> <-"] {
            for x in [[0, 0], [1, 1]] {
                let exec = engine::run(&alg, &x, &GraphSeq::parse2(word).unwrap());
                for p in 0..2 {
                    let (round, v) = exec.decision_of(p).unwrap();
                    assert!(round <= 2, "decision late: round {round} for {word} {x:?}");
                    assert_eq!(v, x[0], "validity");
                }
                // The round-1 receiver decides at round ≤ 1.
                let receiver = if word.starts_with("->") { 1 } else { 0 };
                assert!(exec.decision_of(receiver).unwrap().0 <= 1);
            }
            for x in [[0, 1], [1, 0]] {
                let exec = engine::run(&alg, &x, &GraphSeq::parse2(word).unwrap());
                for p in 0..2 {
                    let (round, _) = exec.decision_of(p).unwrap();
                    assert!(round <= 3, "must decide within depth");
                }
            }
        }
    }

    #[test]
    fn agrees_with_direction_rule_where_forced() {
        // Both algorithms solve {←, →}; their values must coincide wherever
        // the topology forces the decision — i.e. whenever the run is
        // connected to a valent run. The run (v, v̄) with round 1 delivering
        // p's input to the other process is view-connected to (v, v):
        // the round-1 *receiver* cannot distinguish them later when the
        // sender keeps sending, so compare on constant-direction sequences.
        let space = reduced_space(2);
        let alg = UniversalAlgorithm::synthesize(&space).unwrap();
        for (word, sender) in [("-> ->", 0usize), ("<- <-", 1usize)] {
            let seq = GraphSeq::parse2(word).unwrap();
            for x in [[0u32, 1], [1, 0]] {
                let ours = engine::run(&alg, &x, &seq).consensus_value().unwrap();
                let baseline = engine::run(&simulator::algorithms::DirectionRule, &x, &seq)
                    .consensus_value()
                    .unwrap();
                assert_eq!(baseline, x[sender]);
                assert_eq!(ours, baseline, "{word} {x:?}");
            }
        }
    }

    #[test]
    fn beyond_horizon_keeps_decision() {
        let space = reduced_space(1);
        let alg = UniversalAlgorithm::synthesize(&space).unwrap();
        // Run for 4 rounds, far past the synthesis depth.
        let exec = engine::run(&alg, &[0, 1], &GraphSeq::parse2("-> <- -> <-").unwrap());
        assert!(exec.all_decided());
        assert!(!exec.any_revoked());
        assert!(exec.agreement_holds());
    }

    #[test]
    fn validity_on_valent_inputs() {
        let space = reduced_space(1);
        let alg = UniversalAlgorithm::synthesize(&space).unwrap();
        for v in [0u32, 1] {
            for word in ["->", "<-"] {
                let exec = engine::run(&alg, &[v, v], &GraphSeq::parse2(word).unwrap());
                assert_eq!(exec.consensus_value(), Some(v));
            }
        }
    }

    #[test]
    fn table_size_positive() {
        let space = reduced_space(1);
        let alg = UniversalAlgorithm::synthesize(&space).unwrap();
        assert!(alg.table_size() > 0);
        assert_eq!(alg.decision_depth(), 1);
    }

    #[test]
    fn strong_validity_synthesis_ternary() {
        // With ternary inputs the weak default (0) may be nobody's input on
        // an unlabeled component; the strong synthesis picks from the
        // intersection instead, and passes the strong-validity checker.
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let space =
            PrefixSpace::expand(&ma, &[0, 1, 2], 2, &ExpandConfig::with_budget(4_000_000)).unwrap();
        let strong_cfg =
            checker::CheckConfig::at_depth(2).max_runs(4_000_000).strong_validity(true);
        let strong = UniversalAlgorithm::synthesize_strong(&space).unwrap();
        let report = checker::check(&strong, &ma, &[0, 1, 2], &strong_cfg).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);

        // The weak synthesis, by contrast, violates strong validity on some
        // mixed-input run (it defaults unlabeled components to value 0).
        let weak = UniversalAlgorithm::synthesize(&space).unwrap();
        let report = checker::check(&weak, &ma, &[0, 1, 2], &strong_cfg).unwrap();
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, simulator::checker::Violation::StrongValidity { .. })),
            "expected a strong-validity violation from the weak default: {:?}",
            report.violations
        );
    }

    #[test]
    fn strong_and_weak_agree_on_binary() {
        // On a binary domain every run's input set contains the weak
        // default or the component is pure — the two syntheses coincide.
        let space = reduced_space(2);
        let weak = UniversalAlgorithm::synthesize(&space).unwrap();
        let strong = UniversalAlgorithm::synthesize_strong(&space).unwrap();
        for word in ["-> <-", "<- ->"] {
            let seq = GraphSeq::parse2(word).unwrap();
            for x in [[0u32, 1], [1, 0], [1, 1], [0, 0]] {
                assert_eq!(
                    engine::run(&weak, &x, &seq).consensus_value(),
                    engine::run(&strong, &x, &seq).consensus_value()
                );
            }
        }
    }

    #[test]
    fn star_adversary_n3() {
        // Oblivious out-stars on 3 processes: round-1 center is common
        // knowledge → solvable; universal algorithm verifies exhaustively.
        let ma = GeneralMA::oblivious(generators::all_out_stars(3));
        let space = PrefixSpace::expand(&ma, &[0, 1], 2, &CFG).unwrap();
        assert!(space.separation().is_separated());
        let alg = UniversalAlgorithm::synthesize(&space).unwrap();
        let report =
            checker::check(&alg, &ma, &[0, 1], &checker::CheckConfig::at_depth(2)).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
    }
}
