//! The depth-`t` prefix space of an adversary and its ε-approximation
//! components.
//!
//! Two runs `a, b` satisfy `d_min(a, b) < ε = 2^{−t}` iff some process has
//! the same interned view at time `t` in both (views are cumulative). The
//! connected components of this "shares a view" relation over the admissible
//! depth-`t` runs are exactly the paper's ε-approximations `PS^ε_z`
//! (Definition 6.2) of the connected components of `PS` — the object on
//! which solvability is decided (Theorem 6.6).

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use adversary::{enumerate, MessageAdversary};
use consensus_obs::metrics::{registry, Histogram};
use consensus_obs::trace::tracer;
use dyngraph::Pid;
use ptgraph::{PrefixRun, Value, ViewId};
use topology::{components_by_dense_buckets, separation, Components};

use crate::config::ExpandConfig;
use crate::error::Error;

/// Registry histogram of expansion wall time (nanoseconds), shared by
/// the build and extension paths. The handle is cached so hot rebuild
/// loops don't pay a registry lock per space.
fn stage_expand() -> &'static Arc<Histogram> {
    static HIST: OnceLock<Arc<Histogram>> = OnceLock::new();
    HIST.get_or_init(|| registry().histogram("stage.expand"))
}

/// Registry histogram of component-decomposition wall time (nanoseconds).
fn stage_components() -> &'static Arc<Histogram> {
    static HIST: OnceLock<Arc<Histogram>> = OnceLock::new();
    HIST.get_or_init(|| registry().histogram("stage.components"))
}

/// The expanded and component-decomposed prefix space at one depth.
///
/// Cloning deep-copies the expansion and components; see
/// [`PrefixSpace::extend_from`] for why callers want that.
#[derive(Debug, Clone)]
pub struct PrefixSpace {
    expansion: enumerate::Expansion,
    components: Components,
}

/// Cheap size/shape statistics of a [`PrefixSpace`] — all O(1) reads of
/// already-computed state, safe to collect per scenario in hot sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceStats {
    /// The expansion depth `t`.
    pub depth: usize,
    /// Admissible runs (inputs × sequences).
    pub runs: usize,
    /// Distinct interned views.
    pub views: usize,
    /// ε-approximation components.
    pub components: usize,
}

impl PrefixSpace {
    /// Expand the adversary at `depth` over the input domain `values` and
    /// compute the ε-approximation components (`ε = 2^{−depth}`), under
    /// `cfg`'s worker-shard count and run budget. The space — runs, view
    /// ids, components — is byte-identical for every
    /// [`threads`](ExpandConfig::threads) value (see
    /// [`enumerate::expand_with`]).
    ///
    /// # Errors
    /// Returns [`Error::Budget`] if the space exceeds
    /// [`cfg.max_runs`](ExpandConfig::max_runs).
    pub fn expand(
        ma: &dyn MessageAdversary,
        values: &[Value],
        depth: usize,
        cfg: &ExpandConfig,
    ) -> Result<Self, Error> {
        Self::build_impl(ma, values, depth, cfg.max_runs, cfg.effective_threads())
            .map_err(Error::from)
    }

    /// Extend the space by one round incrementally: runs are extended in
    /// place (views interned once across the sweep) and components are
    /// recomputed at the new depth. On budget exhaustion the original space
    /// is returned unchanged as the error payload.
    ///
    /// # Errors
    /// Returns `(self, Error::Budget)` if the extension would exceed the
    /// budget (the space rides along in the error so callers keep it).
    #[allow(clippy::result_large_err)]
    pub fn extend(
        self,
        ma: &dyn MessageAdversary,
        cfg: &ExpandConfig,
    ) -> Result<Self, (Self, Error)> {
        self.extend_impl(ma, cfg.max_runs, cfg.effective_threads())
            .map_err(|(space, e)| (space, Error::from(e)))
    }

    /// Extend *a copy of* this space by one round, leaving `self` intact —
    /// the extension seam for caching [`SpaceSource`] implementations: a
    /// source holding this space (e.g. behind an `Arc`) can serve a
    /// depth-`t+1` request by laddering up from the cached depth-`t` space
    /// instead of re-expanding from scratch, while the depth-`t` entry
    /// stays live for other requesters. The runs/views/components produced
    /// are identical to a from-scratch [`PrefixSpace::expand`] at the
    /// deeper depth (runs are enumerated in the same input-major,
    /// breadth-first sequence order either way).
    ///
    /// # Errors
    /// Returns [`Error::Budget`] if the extension would exceed the budget;
    /// `self` is untouched either way.
    ///
    /// [`SpaceSource`]: crate::solvability::SpaceSource
    pub fn extend_from(
        &self,
        ma: &dyn MessageAdversary,
        cfg: &ExpandConfig,
    ) -> Result<Self, Error> {
        self.extend_from_impl(ma, cfg.max_runs, cfg.effective_threads())
            .map_err(Error::from)
    }

    /// [`expand`](Self::expand) with the budget-typed error of the
    /// [`SpaceSource`] seam: memoizing sources record failures, so they
    /// need a `Clone`-able error, which the crate-wide [`Error`] (it can
    /// hold an `io::Error`) is not. Prefer [`expand`](Self::expand)
    /// everywhere else.
    ///
    /// # Errors
    /// Returns [`enumerate::BudgetExceeded`] if the space exceeds
    /// [`cfg.max_runs`](ExpandConfig::max_runs).
    ///
    /// [`SpaceSource`]: crate::solvability::SpaceSource
    pub fn expand_budgeted(
        ma: &dyn MessageAdversary,
        values: &[Value],
        depth: usize,
        cfg: &ExpandConfig,
    ) -> Result<Self, enumerate::BudgetExceeded> {
        Self::build_impl(ma, values, depth, cfg.max_runs, cfg.effective_threads())
    }

    /// [`extend_from`](Self::extend_from) with the budget-typed error of
    /// the [`SpaceSource`] seam (see
    /// [`expand_budgeted`](Self::expand_budgeted)).
    ///
    /// # Errors
    /// Returns [`enumerate::BudgetExceeded`] if the extension would exceed
    /// the budget; `self` is untouched either way.
    ///
    /// [`SpaceSource`]: crate::solvability::SpaceSource
    pub fn extend_from_budgeted(
        &self,
        ma: &dyn MessageAdversary,
        cfg: &ExpandConfig,
    ) -> Result<Self, enumerate::BudgetExceeded> {
        self.extend_from_impl(ma, cfg.max_runs, cfg.effective_threads())
    }

    pub(crate) fn build_impl(
        ma: &dyn MessageAdversary,
        values: &[Value],
        depth: usize,
        max_runs: usize,
        threads: usize,
    ) -> Result<Self, enumerate::BudgetExceeded> {
        let expansion = {
            let mut span = tracer()
                .span("expand")
                .with_attr("mode", "build")
                .with_attr("depth", depth)
                .with_attr("threads", threads);
            let start = Instant::now();
            let expansion = enumerate::expand_with(ma, values, depth, max_runs, threads)?;
            stage_expand().record_duration(start.elapsed());
            span.set_attr("runs", expansion.runs.len());
            span.set_attr("views", expansion.table.len());
            expansion
        };
        Ok(Self::from_expansion(expansion))
    }

    #[allow(clippy::result_large_err)]
    pub(crate) fn extend_impl(
        self,
        ma: &dyn MessageAdversary,
        max_runs: usize,
        threads: usize,
    ) -> Result<Self, (Self, enumerate::BudgetExceeded)> {
        let mut expansion = self.expansion;
        let result = {
            let mut span = tracer()
                .span("expand")
                .with_attr("mode", "extend")
                .with_attr("depth", expansion.depth + 1)
                .with_attr("threads", threads);
            let start = Instant::now();
            let result = expansion.extend_with(ma, max_runs, threads);
            if result.is_ok() {
                stage_expand().record_duration(start.elapsed());
                span.set_attr("runs", expansion.runs.len());
            }
            result
        };
        match result {
            Ok(()) => Ok(Self::from_expansion(expansion)),
            Err(e) => Err((Self::from_expansion(expansion), e)),
        }
    }

    pub(crate) fn extend_from_impl(
        &self,
        ma: &dyn MessageAdversary,
        max_runs: usize,
        threads: usize,
    ) -> Result<Self, enumerate::BudgetExceeded> {
        let mut expansion = self.expansion.clone();
        {
            let mut span = tracer()
                .span("expand")
                .with_attr("mode", "extend")
                .with_attr("depth", expansion.depth + 1)
                .with_attr("threads", threads);
            let start = Instant::now();
            expansion.extend_with(ma, max_runs, threads)?;
            stage_expand().record_duration(start.elapsed());
            span.set_attr("runs", expansion.runs.len());
        }
        Ok(Self::from_expansion(expansion))
    }

    /// Legacy positional form of [`expand`](Self::expand).
    ///
    /// # Errors
    /// Returns [`enumerate::BudgetExceeded`] if the space exceeds
    /// `max_runs`.
    #[deprecated(
        since = "0.1.0",
        note = "use `PrefixSpace::expand` with an `ExpandConfig`"
    )]
    pub fn build(
        ma: &dyn MessageAdversary,
        values: &[Value],
        depth: usize,
        max_runs: usize,
    ) -> Result<Self, enumerate::BudgetExceeded> {
        Self::build_impl(ma, values, depth, max_runs, 1)
    }

    /// Legacy positional form of [`expand`](Self::expand) with a thread
    /// count.
    ///
    /// # Errors
    /// Returns [`enumerate::BudgetExceeded`] if the space exceeds
    /// `max_runs`.
    #[deprecated(
        since = "0.1.0",
        note = "use `PrefixSpace::expand` with an `ExpandConfig`"
    )]
    pub fn build_with(
        ma: &dyn MessageAdversary,
        values: &[Value],
        depth: usize,
        max_runs: usize,
        threads: usize,
    ) -> Result<Self, enumerate::BudgetExceeded> {
        Self::build_impl(ma, values, depth, max_runs, threads)
    }

    /// Legacy positional form of [`extend`](Self::extend).
    ///
    /// # Errors
    /// Returns `(self, BudgetExceeded)` if the extension would exceed
    /// `max_runs`.
    #[allow(clippy::result_large_err)]
    #[deprecated(
        since = "0.1.0",
        note = "use `PrefixSpace::extend` with an `ExpandConfig`"
    )]
    pub fn extended(
        self,
        ma: &dyn MessageAdversary,
        max_runs: usize,
    ) -> Result<Self, (Self, enumerate::BudgetExceeded)> {
        self.extend_impl(ma, max_runs, 1)
    }

    /// Legacy positional form of [`extend`](Self::extend) with a thread
    /// count.
    ///
    /// # Errors
    /// Returns `(self, BudgetExceeded)` if the extension would exceed
    /// `max_runs`.
    #[allow(clippy::result_large_err)]
    #[deprecated(
        since = "0.1.0",
        note = "use `PrefixSpace::extend` with an `ExpandConfig`"
    )]
    pub fn extended_with(
        self,
        ma: &dyn MessageAdversary,
        max_runs: usize,
        threads: usize,
    ) -> Result<Self, (Self, enumerate::BudgetExceeded)> {
        self.extend_impl(ma, max_runs, threads)
    }

    /// Legacy positional form of [`extend_from`](Self::extend_from).
    ///
    /// # Errors
    /// Returns [`enumerate::BudgetExceeded`] if the extension would exceed
    /// `max_runs`.
    #[deprecated(
        since = "0.1.0",
        note = "use `PrefixSpace::extend_from` with an `ExpandConfig`"
    )]
    pub fn extended_from(
        &self,
        ma: &dyn MessageAdversary,
        max_runs: usize,
    ) -> Result<Self, enumerate::BudgetExceeded> {
        self.extend_from_impl(ma, max_runs, 1)
    }

    /// Legacy positional form of [`extend_from`](Self::extend_from) with a
    /// thread count.
    ///
    /// # Errors
    /// Returns [`enumerate::BudgetExceeded`] if the extension would exceed
    /// `max_runs`.
    #[deprecated(
        since = "0.1.0",
        note = "use `PrefixSpace::extend_from` with an `ExpandConfig`"
    )]
    pub fn extended_from_with(
        &self,
        ma: &dyn MessageAdversary,
        max_runs: usize,
        threads: usize,
    ) -> Result<Self, enumerate::BudgetExceeded> {
        self.extend_from_impl(ma, max_runs, threads)
    }

    /// Component-decompose an existing expansion.
    ///
    /// Two runs are ε-close iff some process has the same interned view at
    /// the expansion depth in both; a view determines its owner, so the
    /// bucket key is the dense view id itself — one flat sweep over the run
    /// views, no hashing (see [`components_by_dense_buckets`]).
    pub fn from_expansion(expansion: enumerate::Expansion) -> Self {
        let mut span = tracer().span("components");
        let start = Instant::now();
        let depth = expansion.depth;
        let buckets = expansion
            .runs
            .iter()
            .enumerate()
            .flat_map(|(i, run)| run.views_at(depth).iter().map(move |v| (v.index(), i)));
        let components =
            components_by_dense_buckets(expansion.runs.len(), expansion.table.len(), buckets);
        stage_components().record_duration(start.elapsed());
        span.set_attr("runs", expansion.runs.len());
        span.set_attr("components", components.count());
        PrefixSpace { expansion, components }
    }

    /// The admissible runs.
    pub fn runs(&self) -> &[PrefixRun] {
        &self.expansion.runs
    }

    /// The shared view table.
    pub fn table(&self) -> &ptgraph::ViewTable {
        &self.expansion.table
    }

    /// The expansion depth `t`.
    pub fn depth(&self) -> usize {
        self.expansion.depth
    }

    /// The input domain.
    pub fn values(&self) -> &[Value] {
        &self.expansion.values
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.expansion.n()
    }

    /// The ε-approximation components.
    pub fn components(&self) -> &Components {
        &self.components
    }

    /// Telemetry of the engine pass that produced (or last extended) the
    /// underlying expansion.
    pub fn expand_stats(&self) -> enumerate::ExpandStats {
        self.expansion.stats
    }

    /// Size/shape statistics without recomputation (state-space telemetry
    /// for sweeps).
    pub fn stats(&self) -> SpaceStats {
        SpaceStats {
            depth: self.depth(),
            runs: self.expansion.runs.len(),
            views: self.expansion.table.len(),
            components: self.components.count(),
        }
    }

    /// Labels for the valent runs: run index → `v` for every `v`-valent run
    /// (all processes share input `v`).
    pub fn valence_labels(&self) -> HashMap<usize, Value> {
        let mut labels = HashMap::new();
        for (i, run) in self.expansion.runs.iter().enumerate() {
            let x0 = run.inputs()[0];
            if run.inputs().iter().all(|&x| x == x0) {
                labels.insert(i, x0);
            }
        }
        labels
    }

    /// The separation report of the valence labeling — Corollary 5.6 at this
    /// resolution: separated ⟺ no component contains two valences.
    pub fn separation(&self) -> separation::SeparationReport<Value> {
        separation::check_separation(&self.components, &self.valence_labels())
    }

    /// The total component → value assignment of the meta-procedure
    /// (§5.1 steps 2–3), if the labeling is separated: pure components keep
    /// their valence, unlabeled components decide the smallest domain value.
    pub fn component_assignment(&self) -> Option<Vec<Value>> {
        let rep = self.separation();
        if !rep.is_separated() {
            return None;
        }
        let default = *self.values().iter().min().expect("nonempty domain");
        Some(separation::total_assignment(&self.components, &self.valence_labels(), default))
    }

    /// The component assignment under **strong validity** (`y_p = x_q` for
    /// some `q`, the variant the paper notes after Definition 5.1): every
    /// component's value must be an input of *every* run in the component.
    ///
    /// Pure components keep their valence (then checked against the
    /// intersection); unlabeled components pick the smallest value in the
    /// intersection of their runs' input sets. Returns `None` if the
    /// labeling is not separated **or** some component has no legal value —
    /// strong-validity consensus is then unsolvable at this resolution even
    /// if weak-validity consensus is solvable.
    pub fn strong_component_assignment(&self) -> Option<Vec<Value>> {
        let rep = self.separation();
        if !rep.is_separated() {
            return None;
        }
        let labels = self.valence_labels();
        let mut assignment = Vec::with_capacity(self.components.count());
        for c in 0..self.components.count() {
            let members = self.components.members(c);
            // Intersection of input sets across the component's runs.
            let mut common: Option<std::collections::BTreeSet<Value>> = None;
            for &i in members {
                let set: std::collections::BTreeSet<Value> =
                    self.expansion.runs[i].inputs().iter().copied().collect();
                common = Some(match common {
                    None => set,
                    Some(cur) => cur.intersection(&set).copied().collect(),
                });
            }
            let common = common.expect("components are nonempty");
            // A pure component must keep its valence.
            let forced = members.iter().find_map(|i| labels.get(i)).copied();
            let value = match forced {
                Some(v) => {
                    if !common.contains(&v) {
                        return None;
                    }
                    v
                }
                None => *common.iter().next()?,
            };
            assignment.push(value);
        }
        Some(assignment)
    }

    /// The processes that have *broadcast within the horizon* in every run
    /// of component `c`: candidates per Definition 5.8 / Theorem 5.11.
    pub fn component_broadcasters(&self, c: usize) -> Vec<Pid> {
        let table = &self.expansion.table;
        (0..self.n())
            .filter(|&p| {
                self.components
                    .members(c)
                    .iter()
                    .all(|&i| self.expansion.runs[i].broadcast_complete(p, table).is_some())
            })
            .collect()
    }

    /// Whether every component is broadcastable within the horizon —
    /// the finite check behind Theorem 6.6.
    pub fn all_components_broadcastable(&self) -> bool {
        (0..self.components.count()).all(|c| !self.component_broadcasters(c).is_empty())
    }

    /// The decision map underlying the universal algorithm: for every
    /// `(process, view at depth)` bucket, the value of the (unique)
    /// component its runs belong to. `None` if the valence labeling is not
    /// separated.
    pub fn decision_views(&self) -> Option<HashMap<(Pid, ViewId), Value>> {
        let assignment = self.component_assignment()?;
        let depth = self.depth();
        let mut map = HashMap::new();
        for (i, run) in self.expansion.runs.iter().enumerate() {
            let value = assignment[self.components.component_of(i)];
            for p in 0..run.n() {
                map.insert((p, run.view(p, depth)), value);
            }
        }
        Some(map)
    }

    /// The component of the `v`-valent runs, if they all share one (they do
    /// whenever the `v`-valent runs are mutually connected; with a common
    /// graph pool every pair of equal-input runs may still fall into
    /// different components — then `None`).
    pub fn valent_component(&self, v: Value) -> Option<usize> {
        let mut comp = None;
        for (i, run) in self.expansion.runs.iter().enumerate() {
            if run.is_valent(v) {
                match comp {
                    None => comp = Some(self.components.component_of(i)),
                    Some(c) if c == self.components.component_of(i) => {}
                    Some(_) => return None,
                }
            }
        }
        comp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adversary::GeneralMA;
    use dyngraph::generators;

    const CFG: ExpandConfig = ExpandConfig { threads: 1, max_runs: 1_000_000 };

    fn reduced(depth: usize) -> PrefixSpace {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        PrefixSpace::expand(&ma, &[0, 1], depth, &CFG).unwrap()
    }

    fn full(depth: usize) -> PrefixSpace {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        PrefixSpace::expand(&ma, &[0, 1], depth, &CFG).unwrap()
    }

    #[test]
    fn depth_zero_single_component() {
        // At depth 0 every run shares the trivial structure only if inputs
        // agree per process; (0,0) and (0,1) share p0's initial view.
        let s = reduced(0);
        assert_eq!(s.runs().len(), 4);
        // Chain (0,0)–(0,1)–(1,1): one component.
        assert_eq!(s.components().count(), 1);
        let rep = s.separation();
        assert!(!rep.is_separated(), "depth 0 cannot separate valences");
    }

    #[test]
    fn reduced_lossy_link_separates_at_depth_one() {
        let s = reduced(1);
        let rep = s.separation();
        assert!(rep.is_separated(), "{:?}", rep.mixed_components);
        // Components: by round-1 direction and the surviving input info.
        assert!(s.components().count() >= 2);
        let assignment = s.component_assignment().unwrap();
        assert_eq!(assignment.len(), s.components().count());
    }

    #[test]
    fn full_lossy_link_never_separates() {
        for depth in 0..4 {
            let s = full(depth);
            assert!(
                !s.separation().is_separated(),
                "Santoro–Widmayer adversary separated at depth {depth}?!"
            );
        }
    }

    #[test]
    fn components_refine_with_depth() {
        // Lemma 6.3(ii): deeper components refine shallower ones. Compare on
        // a common run indexing: runs are ordered (inputs, sequences) and
        // sequences at depth d+1 extend those at depth d — indices do not
        // align directly, so check the valence-label side instead: the
        // number of components is non-decreasing with depth.
        let mut prev = reduced(0).components().count();
        for depth in 1..4 {
            let cur = reduced(depth).components().count();
            assert!(cur >= prev, "components must refine");
            prev = cur;
        }
    }

    #[test]
    fn broadcasters_reduced_lossy_link() {
        let s = reduced(1);
        // Every run: the round-1 sender has broadcast.
        for c in 0..s.components().count() {
            let b = s.component_broadcasters(c);
            // Components of depth 1 are per-direction: a single broadcaster.
            assert!(!b.is_empty(), "component {c} has no broadcaster");
        }
        assert!(s.all_components_broadcastable());
    }

    #[test]
    fn full_lossy_link_mixed_component_not_broadcastable() {
        let s = full(2);
        let rep = s.separation();
        for &c in &rep.mixed_components {
            assert!(
                s.component_broadcasters(c).is_empty(),
                "mixed component {c} must not be broadcastable (Thm 5.9)"
            );
        }
    }

    #[test]
    fn decision_views_cover_all_buckets() {
        let s = reduced(2);
        let map = s.decision_views().unwrap();
        for run in s.runs() {
            for p in 0..2 {
                assert!(map.contains_key(&(p, run.view(p, 2))));
            }
        }
    }

    #[test]
    fn decision_views_none_when_mixed() {
        assert!(full(2).decision_views().is_none());
        assert!(full(2).component_assignment().is_none());
    }

    #[test]
    fn valent_component_lookup() {
        let s = full(1);
        // All runs are interconnected across valences for the full pool at
        // low depth: z0 and z1 share their component.
        if let (Some(c0), Some(c1)) = (s.valent_component(0), s.valent_component(1)) {
            assert_eq!(c0, c1);
        }
    }

    #[test]
    fn incremental_extension_matches_rebuild() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let mut inc = PrefixSpace::expand(&ma, &[0, 1], 0, &CFG).unwrap();
        for depth in 1..=3 {
            inc = inc.extend(&ma, &CFG).unwrap();
            let direct = PrefixSpace::expand(&ma, &[0, 1], depth, &CFG).unwrap();
            assert_eq!(inc.depth(), direct.depth());
            assert_eq!(inc.runs().len(), direct.runs().len());
            assert_eq!(inc.components().count(), direct.components().count());
            assert_eq!(inc.separation().is_separated(), direct.separation().is_separated());
            // Component size multiset must agree (orderings may differ).
            let sizes = |s: &PrefixSpace| {
                let mut v: Vec<usize> = s.components().iter().map(|m| m.len()).collect();
                v.sort_unstable();
                v
            };
            assert_eq!(sizes(&inc), sizes(&direct));
        }
    }

    #[test]
    fn extended_from_leaves_base_intact_and_matches_rebuild() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let base = PrefixSpace::expand(&ma, &[0, 1], 1, &CFG).unwrap();
        let deeper = base.extend_from(&ma, &CFG).unwrap();
        // The base is untouched and still usable.
        assert_eq!(base.depth(), 1);
        assert_eq!(deeper.depth(), 2);
        let direct = PrefixSpace::expand(&ma, &[0, 1], 2, &CFG).unwrap();
        assert_eq!(deeper.runs().len(), direct.runs().len());
        assert_eq!(deeper.stats(), direct.stats());
        assert_eq!(deeper.separation().is_separated(), direct.separation().is_separated());
        // Run order matches the from-scratch enumeration exactly.
        for (a, b) in deeper.runs().iter().zip(direct.runs()) {
            assert_eq!(a.inputs(), b.inputs());
            assert_eq!(a.seq(), b.seq());
        }
        // Budget failure leaves the base intact too.
        assert!(base.extend_from(&ma, &ExpandConfig::with_budget(10)).is_err());
        assert_eq!(base.depth(), 1);
    }

    #[test]
    fn incremental_extension_budget_error_preserves_space() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let space = PrefixSpace::expand(&ma, &[0, 1], 2, &CFG).unwrap();
        let runs_before = space.runs().len();
        let (space, err) = space.extend(&ma, &ExpandConfig::with_budget(10)).unwrap_err();
        assert_eq!(space.runs().len(), runs_before);
        assert_eq!(space.depth(), 2);
        assert!(err.into_budget().unwrap().needed > 10);
    }

    #[test]
    fn parallel_build_identical_components_and_views() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        for depth in 0..4 {
            let serial = PrefixSpace::expand(&ma, &[0, 1], depth, &CFG).unwrap();
            for threads in [2, 8] {
                let par = PrefixSpace::expand(&ma, &[0, 1], depth, &CFG.threads(threads)).unwrap();
                assert_eq!(par.runs(), serial.runs(), "depth {depth}, threads {threads}");
                assert_eq!(par.table(), serial.table(), "depth {depth}, threads {threads}");
                assert_eq!(
                    par.components(),
                    serial.components(),
                    "depth {depth}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_ladder_identical_to_serial_ladder() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let base = PrefixSpace::expand(&ma, &[0, 1], 1, &CFG).unwrap();
        let serial = base.extend_from(&ma, &CFG).unwrap();
        let par = base.extend_from(&ma, &CFG.threads(8)).unwrap();
        assert_eq!(par.runs(), serial.runs());
        assert_eq!(par.table(), serial.table());
        assert_eq!(par.components(), serial.components());
        assert!(par.expand_stats().shards > 1);
    }

    #[test]
    fn theorem_5_9_broadcastable_components_have_small_diameter() {
        // Thm 5.9: a connected broadcastable set has d_min ≤ 1/2, i.e. the
        // broadcaster's input is constant on the component.
        let s = reduced(2);
        for c in 0..s.components().count() {
            for &p in &s.component_broadcasters(c) {
                let members = s.components().members(c);
                let x0 = s.runs()[members[0]].inputs()[p];
                for &i in members {
                    assert_eq!(
                        s.runs()[i].inputs()[p],
                        x0,
                        "broadcaster {p}'s input must be constant on component {c}"
                    );
                }
            }
        }
    }
}
