//! Typed configuration for the expansion engine, the analyses, and the
//! caching layers — the `Config` half of the [`Session`]/`Query` facade.
//!
//! Three PRs of engine growth (sweeps, persistence, parallel expansion)
//! each threaded a new knob through the stack as a positional parameter,
//! breeding `_with` variants at every seam (`PrefixSpace::build` /
//! `build_with` / `extended` / `extended_with` / …). These structs collapse
//! that sprawl: a knob is a named field with a documented default, and
//! adding the *next* knob is additive instead of signature-breaking.
//!
//! * [`ExpandConfig`] — how prefix spaces are expanded (worker shards,
//!   run budget);
//! * [`AnalysisConfig`] — what the solvability analyses do (depth ladder
//!   ceiling, validity flavor, chain search);
//! * [`CacheConfig`] — where answers are memoized (in-memory spaces,
//!   on-disk verdict journal), consumed by the lab's `Session`.
//!
//! All three are plain `Clone + Debug` data with builder-style setters, so
//! they can be constructed once and shared across a whole batch.
//!
//! [`Session`]: https://docs.rs/consensus-lab

use std::path::PathBuf;

/// Configuration of a prefix-space expansion pass.
///
/// Replaces the positional `(max_runs, threads)` tail of the old
/// `PrefixSpace::build_with` / `extended_with` / `extended_from_with`
/// family. The expanded space is **byte-identical for every `threads`
/// value** — the knob trades CPU for wall clock, never results.
///
/// ```
/// use consensus_core::config::ExpandConfig;
///
/// let cfg = ExpandConfig::new().threads(4).max_runs(500_000);
/// assert_eq!(cfg.threads, 4);
/// assert_eq!(cfg.max_runs, 500_000);
/// // Defaults: serial expansion, the 2·10⁶-run budget.
/// assert_eq!(ExpandConfig::default().threads, 1);
/// assert_eq!(ExpandConfig::default().max_runs, 2_000_000);
/// // 0 = all available cores (the facade-wide auto convention).
/// assert!(ExpandConfig::new().threads(0).effective_threads() >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpandConfig {
    /// Worker shards per expansion pass: `1` = serial (the default),
    /// `0` = all available cores — the same auto convention as the
    /// `Session` workers knob and the CLI's `--expand-threads`.
    pub threads: usize,
    /// Step budget: the maximum number of admissible runs an expansion may
    /// produce before it fails with [`Error::Budget`](crate::Error::Budget).
    pub max_runs: usize,
}

impl Default for ExpandConfig {
    fn default() -> Self {
        ExpandConfig { threads: 1, max_runs: 2_000_000 }
    }
}

impl ExpandConfig {
    /// The default configuration: serial expansion, 2·10⁶-run budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// A serial configuration with an explicit run budget.
    pub fn with_budget(max_runs: usize) -> Self {
        ExpandConfig { max_runs, ..Self::default() }
    }

    /// Set the worker-shard count (`1` = serial, `0` = all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the run budget.
    pub fn max_runs(mut self, max_runs: usize) -> Self {
        self.max_runs = max_runs;
        self
    }

    /// The effective worker count (`≥ 1`): `threads`, with `0` resolved
    /// to the available parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// Configuration of the solvability analysis — the depth ladder the
/// meta-procedure climbs and the flavor of consensus it decides.
///
/// ```
/// use consensus_core::config::AnalysisConfig;
///
/// let cfg = AnalysisConfig::new().max_depth(4).strong_validity(true);
/// assert_eq!(cfg.max_depth, 4);
/// assert!(cfg.strong_validity);
/// assert_eq!(cfg.max_chain_cycle, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Deepest resolution `t` of the ladder (`ε = 2^{−t}`); the checker
    /// sweeps depths `0..=max_depth` until the valences separate.
    ///
    /// Applies to direct `SolvabilityChecker` runs. `Session` queries
    /// carry their own depth, which takes precedence — a solvability
    /// query at depth `d` ladders to `d` regardless of this field.
    pub max_depth: usize,
    /// Require *strong validity* (every decision is some process's input,
    /// the variant the paper notes after Definition 5.1) instead of the
    /// default weak validity.
    pub strong_validity: bool,
    /// Maximum lasso cycle length searched for exact distance-0
    /// impossibility chains (phase 1 of the meta-procedure).
    pub max_chain_cycle: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig { max_depth: 6, strong_validity: false, max_chain_cycle: 3 }
    }
}

impl AnalysisConfig {
    /// The default configuration: depth ladder to 6, weak validity,
    /// chain cycles up to 3.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the deepest ladder resolution.
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }

    /// Require strong validity.
    pub fn strong_validity(mut self, enable: bool) -> Self {
        self.strong_validity = enable;
        self
    }

    /// Set the maximum lasso cycle length for exact chains.
    pub fn max_chain_cycle(mut self, cycle: usize) -> Self {
        self.max_chain_cycle = cycle;
        self
    }
}

/// Configuration of the caching layers a batch session holds.
///
/// Consumed by the lab's `Session`: `memory` governs the shared in-memory
/// prefix-space cache, `disk_dir` the persistent verdict journal, and
/// `resume` whether an existing journal may *answer* queries (it is always
/// written to).
///
/// ```
/// use consensus_core::config::CacheConfig;
///
/// let cfg = CacheConfig::new().disk_dir("sweep-cache");
/// assert!(cfg.memory);
/// assert!(cfg.resume);
/// assert_eq!(cfg.disk_dir.as_deref().unwrap().to_str(), Some("sweep-cache"));
/// assert_eq!(CacheConfig::default().disk_dir, None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Memoize prefix spaces in memory across queries of one batch session
    /// (the shared `SpaceCache`). Disabling makes every batch start cold.
    pub memory: bool,
    /// Directory of the persistent verdict journal; `None` disables
    /// persistence.
    pub disk_dir: Option<PathBuf>,
    /// Answer warm queries from an existing journal. When `false` the
    /// journal is still written, but prior entries are not consulted —
    /// every query recomputes.
    pub resume: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { memory: true, disk_dir: None, resume: true }
    }
}

impl CacheConfig {
    /// The default configuration: in-memory memoization, no persistence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable or disable in-memory prefix-space memoization.
    pub fn memory(mut self, enable: bool) -> Self {
        self.memory = enable;
        self
    }

    /// Persist verdicts to (and answer them from) this directory.
    pub fn disk_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.disk_dir = Some(dir.into());
        self
    }

    /// Allow or forbid answering queries from an existing journal.
    pub fn resume(mut self, enable: bool) -> Self {
        self.resume = enable;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_legacy_constructors() {
        // The legacy `SolvabilityChecker::new` / `PrefixSpace::build`
        // defaults, so config-free sessions reproduce historical outputs.
        let e = ExpandConfig::default();
        assert_eq!((e.threads, e.max_runs), (1, 2_000_000));
        let a = AnalysisConfig::default();
        assert_eq!((a.max_depth, a.strong_validity, a.max_chain_cycle), (6, false, 3));
        let c = CacheConfig::default();
        assert!(c.memory && c.resume && c.disk_dir.is_none());
    }

    #[test]
    fn builders_compose() {
        let e = ExpandConfig::with_budget(10).threads(0);
        assert_eq!(e.max_runs, 10);
        assert!(e.effective_threads() >= 1, "0 means all available cores");
        assert_eq!(ExpandConfig::new().effective_threads(), 1, "default is serial");
        let a = AnalysisConfig::new().max_chain_cycle(5).max_depth(2);
        assert_eq!((a.max_depth, a.max_chain_cycle), (2, 5));
        let c = CacheConfig::new().memory(false).resume(false);
        assert!(!c.memory && !c.resume);
    }
}
