//! Ablation variants of the core design choices, for the benchmark harness.
//!
//! DESIGN.md calls out three load-bearing choices; each has a deliberately
//! naive alternative here so the benches can quantify the gap:
//!
//! 1. **Union-find over view buckets** vs the paper-literal iterative
//!    ε-ball BFS of Definition 6.2 ([`components_by_ball_bfs`]);
//! 2. **Early-decision tables** (decide as soon as the view ball is pure)
//!    vs full-depth-only decisions ([`FullDepthAlgorithm`]);
//! 3. **Exact-chain pre-phase** in the checker vs depth sweep only
//!    ([`check_without_exact_phase`]).
//!
//! All variants are semantically equivalent on their domains (asserted in
//! tests) — only the costs differ.

use adversary::MessageAdversary;
use dyngraph::Pid;
use ptgraph::{Value, ViewId};
use simulator::Algorithm;
use std::sync::Mutex;
use topology::epsilon::BucketSpace;

use crate::space::PrefixSpace;

/// Components via the literal Definition 6.2 ball BFS (ablation of the
/// union-find fast path). Returns, for each run, its component id (ids
/// numbered by first seed).
pub fn components_by_ball_bfs(space: &PrefixSpace) -> Vec<usize> {
    let depth = space.depth();
    let pairs: Vec<((Pid, ViewId), usize)> = space
        .runs()
        .iter()
        .enumerate()
        .flat_map(|(i, run)| (0..run.n()).map(move |p| ((p, run.view(p, depth)), i)))
        .collect();
    let bucket_space = BucketSpace::new(space.runs().len(), pairs);
    let mut comp_of = vec![usize::MAX; space.runs().len()];
    let mut next = 0;
    for i in 0..space.runs().len() {
        if comp_of[i] != usize::MAX {
            continue;
        }
        let (members, _) = bucket_space.epsilon_approximation(i);
        for m in members {
            comp_of[m] = next;
        }
        next += 1;
    }
    comp_of
}

/// The universal algorithm restricted to full-depth decisions: processes
/// only consult the decision table at the synthesis depth, never earlier
/// (ablation of the early-decision tables). Decision *values* agree with
/// [`crate::universal::UniversalAlgorithm`]; decision *rounds* are later.
#[derive(Debug)]
pub struct FullDepthAlgorithm {
    table: Mutex<ptgraph::ViewTable>,
    decisions: std::collections::HashMap<(Pid, ViewId), Value>,
    depth: usize,
}

impl FullDepthAlgorithm {
    /// Synthesize from a separated space (like the universal algorithm, but
    /// tables only at the final depth).
    pub fn synthesize(space: &PrefixSpace) -> Option<Self> {
        let map = space.decision_views()?;
        Some(FullDepthAlgorithm {
            table: Mutex::new(space.table().clone()),
            decisions: map,
            depth: space.depth(),
        })
    }

    /// The synthesis depth.
    pub fn decision_depth(&self) -> usize {
        self.depth
    }
}

/// State of [`FullDepthAlgorithm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FullDepthState {
    /// Current interned view.
    pub view: ViewId,
    /// Rounds elapsed.
    pub round: usize,
    /// The decision once taken.
    pub decided: Option<Value>,
}

impl Algorithm for FullDepthAlgorithm {
    type State = FullDepthState;

    fn init(&self, p: Pid, x: Value) -> FullDepthState {
        let view = self.table.lock().expect("interner lock poisoned").intern_initial(p, x);
        let decided = (self.depth == 0).then(|| self.decisions.get(&(p, view)).copied()).flatten();
        FullDepthState { view, round: 0, decided }
    }

    fn step(
        &self,
        p: Pid,
        state: &FullDepthState,
        received: &[(Pid, FullDepthState)],
    ) -> FullDepthState {
        let rec: Vec<(Pid, ViewId)> = received.iter().map(|&(q, ref s)| (q, s.view)).collect();
        let view = self
            .table
            .lock()
            .expect("interner lock poisoned")
            .intern_round(p, state.view, &rec);
        let round = state.round + 1;
        let decided = state.decided.or_else(|| {
            (round == self.depth).then(|| self.decisions.get(&(p, view)).copied()).flatten()
        });
        FullDepthState { view, round, decided }
    }

    fn decision(&self, _p: Pid, state: &FullDepthState) -> Option<Value> {
        state.decided
    }
}

/// The solvability depth sweep without the exact-chain pre-phase (ablation
/// 3): returns `Some(depth)` at the first separating depth, `None` if none
/// within `max_depth`.
pub fn check_without_exact_phase(
    ma: &dyn MessageAdversary,
    values: &[Value],
    max_depth: usize,
    max_runs: usize,
) -> Option<usize> {
    for depth in 0..=max_depth {
        let cfg = crate::config::ExpandConfig::with_budget(max_runs);
        match PrefixSpace::expand(ma, values, depth, &cfg) {
            Ok(space) => {
                if space.separation().is_separated() {
                    return Some(depth);
                }
            }
            Err(_) => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use adversary::GeneralMA;
    use dyngraph::{generators, Digraph, GraphSeq};
    use simulator::{checker, engine};

    use crate::config::ExpandConfig;

    const CFG: ExpandConfig = ExpandConfig { threads: 1, max_runs: 1_000_000 };

    #[test]
    fn ball_bfs_matches_union_find() {
        for pool in [generators::lossy_link_full(), generators::lossy_link_reduced()] {
            let ma = GeneralMA::oblivious(pool);
            let space = PrefixSpace::expand(&ma, &[0, 1], 2, &CFG).unwrap();
            let bfs = components_by_ball_bfs(&space);
            for i in 0..space.runs().len() {
                for j in 0..space.runs().len() {
                    assert_eq!(
                        bfs[i] == bfs[j],
                        space.components().connected(i, j),
                        "runs {i}, {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn full_depth_algorithm_equivalent_values_later_rounds() {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let space = PrefixSpace::expand(&ma, &[0, 1], 2, &CFG).unwrap();
        let early = crate::universal::UniversalAlgorithm::synthesize(&space).unwrap();
        let late = FullDepthAlgorithm::synthesize(&space).unwrap();
        assert_eq!(late.decision_depth(), 2);

        let report = checker::check(
            &late,
            &ma,
            &[0, 1],
            &checker::CheckConfig::at_depth(2).max_runs(100_000),
        )
        .unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.max_decision_round, 2, "full-depth always decides at depth");

        for word in ["-> <-", "<- ->", "-> ->", "<- <-"] {
            let seq = GraphSeq::parse2(word).unwrap();
            for x in [[0u32, 1], [1, 0], [1, 1]] {
                let ve = engine::run(&early, &x, &seq).consensus_value();
                let vl = engine::run(&late, &x, &seq).consensus_value();
                assert_eq!(ve, vl, "{word} {x:?}");
                // Early decisions are never later than full-depth ones.
                let re = engine::run(&early, &x, &seq).decision_of(0).unwrap().0;
                let rl = engine::run(&late, &x, &seq).decision_of(0).unwrap().0;
                assert!(re <= rl);
            }
        }
    }

    #[test]
    fn sweep_without_exact_phase_agrees_on_separable() {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        assert_eq!(check_without_exact_phase(&ma, &[0, 1], 4, 1_000_000), Some(1));
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        assert_eq!(check_without_exact_phase(&ma, &[0, 1], 3, 1_000_000), None);
    }

    #[test]
    fn sweep_without_exact_phase_misses_exact_certificates() {
        // The ablated checker cannot conclude anything for the empty-graph
        // pool (it would sweep forever); the full checker's exact phase
        // nails it immediately — the point of the design choice.
        let ma = GeneralMA::oblivious(vec![Digraph::empty(2)]);
        assert_eq!(check_without_exact_phase(&ma, &[0, 1], 3, 1_000_000), None);
        assert!(crate::solvability::SolvabilityChecker::new(ma).check().is_unsolvable());
    }
}
