//! The crate-wide error type of the facade.
//!
//! Before the [`Session`]-facade refactor, errors leaked in three shapes:
//! `SpecError(pub String)` for adversary specs, `Result<_, String>` from
//! `Shard::parse`, and bare `Option`s from `AnalysisKind::parse`. [`Error`]
//! unifies them into one typed enum with [`Display`](std::fmt::Display)
//! and [`source`](std::error::Error::source) implementations, so callers
//! can match on the failure class instead of parsing messages.
//!
//! [`Session`]: https://docs.rs/consensus-lab

use std::fmt;
use std::io;

use adversary::enumerate::BudgetExceeded;

/// A structurally invalid adversary specification.
///
/// ```
/// use consensus_core::error::{Error, SpecError};
///
/// let err = Error::Spec(SpecError::UnknownCatalog { name: "nope".into() });
/// assert_eq!(err.to_string(), "bad adversary spec: unknown catalog entry \"nope\"");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// The named entry is not in [`adversary::catalog::entries`].
    UnknownCatalog {
        /// The unknown name.
        name: String,
    },
    /// A 2-process graph token did not parse.
    BadGraph {
        /// The offending token.
        token: String,
        /// The parser's complaint.
        reason: String,
    },
    /// A pool spec contained no graphs.
    EmptyPool,
    /// A spec string failed to parse ([`adversary::spec::SpecTerm::parse`]).
    Parse {
        /// Byte offset of the failure in the spec string.
        offset: usize,
        /// What the parser expected there.
        expected: String,
    },
    /// A spec term parsed but lowers to no valid adversary (empty pool,
    /// mismatched process counts, unreachable liveness, …).
    Invalid {
        /// What is wrong with the term.
        reason: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownCatalog { name } => write!(f, "unknown catalog entry {name:?}"),
            SpecError::BadGraph { token, reason } => {
                write!(f, "unparsable 2-process graph token {token:?}: {reason}")
            }
            SpecError::EmptyPool => f.write_str("empty pool"),
            SpecError::Parse { offset, expected } => {
                write!(f, "parse error at byte {offset}: expected {expected}")
            }
            SpecError::Invalid { reason } => f.write_str(reason),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<adversary::spec::TermError> for SpecError {
    fn from(err: adversary::spec::TermError) -> Self {
        use adversary::spec::TermError;
        match err {
            TermError::Parse { offset, expected } => SpecError::Parse { offset, expected },
            TermError::UnknownCatalog { name } => SpecError::UnknownCatalog { name },
            TermError::Invalid { reason } => SpecError::Invalid { reason },
            // `TermError` is non_exhaustive; future variants surface as
            // their rendered message rather than a crash.
            other => SpecError::Invalid { reason: other.to_string() },
        }
    }
}

impl From<adversary::spec::TermError> for Error {
    fn from(err: adversary::spec::TermError) -> Self {
        Error::Spec(SpecError::from(err))
    }
}

/// The unified error of the `Session`/`Query` facade; see the module docs.
///
/// ```
/// use consensus_core::{Error, ExpandConfig, PrefixSpace};
/// use adversary::GeneralMA;
/// use dyngraph::generators;
///
/// let ma = GeneralMA::oblivious(generators::lossy_link_full());
/// let err = PrefixSpace::expand(&ma, &[0, 1], 5, &ExpandConfig::with_budget(10)).unwrap_err();
/// match err {
///     Error::Budget(b) => assert_eq!(b.max_runs, 10),
///     other => panic!("expected a budget error, got {other}"),
/// }
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An adversary spec that names nothing buildable.
    Spec(SpecError),
    /// A prefix-space expansion (or exhaustive check) exceeded its run
    /// budget.
    Budget(BudgetExceeded),
    /// A filesystem operation of the persistence layer failed.
    Io {
        /// What was being attempted (e.g. `"opening cache dir \"x\""`).
        context: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// Persisted or resumed state is incompatible with the current run
    /// (e.g. a results file whose grid the current flags cannot re-create).
    CacheConflict {
        /// Why the cached state cannot be used.
        reason: String,
    },
    /// An analysis name outside the valid set.
    UnknownAnalysis {
        /// The unknown name.
        name: String,
        /// The valid machine names.
        valid: &'static [&'static str],
    },
    /// A malformed `i/n` shard spec.
    BadShard {
        /// The offending spec string.
        spec: String,
        /// What was wrong with it.
        reason: String,
    },
}

impl Error {
    /// Construct an [`Error::Io`] with context.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        Error::Io { context: context.into(), source }
    }

    /// A stable machine-readable class name, used as the `kind` field of
    /// structured error payloads (the `consensus-serve` HTTP API).
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Spec(_) => "spec",
            Error::Budget(_) => "budget",
            Error::Io { .. } => "io",
            Error::CacheConflict { .. } => "cache-conflict",
            Error::UnknownAnalysis { .. } => "unknown-analysis",
            Error::BadShard { .. } => "bad-shard",
        }
    }

    /// The HTTP status code this failure class maps to: `4xx` when the
    /// request itself is at fault (bad spec, unknown analysis, malformed
    /// shard), `409` when it conflicts with persisted state, `422` when
    /// the request is well-formed but exceeds the configured work budget,
    /// and `500` for engine-side I/O failures.
    pub fn status_code(&self) -> u16 {
        match self {
            Error::Spec(_) | Error::UnknownAnalysis { .. } | Error::BadShard { .. } => 400,
            Error::CacheConflict { .. } => 409,
            Error::Budget(_) => 422,
            Error::Io { .. } => 500,
        }
    }

    /// The budget payload, if this is a budget error — the inverse of the
    /// `From<BudgetExceeded>` conversion, used where a legacy seam still
    /// speaks [`BudgetExceeded`].
    pub fn into_budget(self) -> Option<BudgetExceeded> {
        match self {
            Error::Budget(b) => Some(b),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Spec(spec) => write!(f, "bad adversary spec: {spec}"),
            Error::Budget(budget) => budget.fmt(f),
            Error::Io { context, source } => write!(f, "{context}: {source}"),
            Error::CacheConflict { reason } => write!(f, "cache conflict: {reason}"),
            Error::UnknownAnalysis { name, valid } => {
                write!(f, "unknown analysis {name:?} (expected one of: {})", valid.join(", "))
            }
            Error::BadShard { reason, .. } => f.write_str(reason),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Spec(spec) => Some(spec),
            Error::Budget(budget) => Some(budget),
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<BudgetExceeded> for Error {
    fn from(err: BudgetExceeded) -> Self {
        Error::Budget(err)
    }
}

impl From<SpecError> for Error {
    fn from(err: SpecError) -> Self {
        Error::Spec(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_messages_are_stable() {
        // The spec messages are load-bearing: sweep error records embed
        // them, so they must match the legacy `SpecError(String)` output.
        let unknown = Error::from(SpecError::UnknownCatalog { name: "missing".into() });
        assert_eq!(unknown.to_string(), "bad adversary spec: unknown catalog entry \"missing\"");
        let graph = Error::from(SpecError::BadGraph { token: "zz".into(), reason: "nope".into() });
        assert_eq!(
            graph.to_string(),
            "bad adversary spec: unparsable 2-process graph token \"zz\": nope"
        );
        assert_eq!(Error::from(SpecError::EmptyPool).to_string(), "bad adversary spec: empty pool");
        let parse = Error::from(SpecError::Parse { offset: 7, expected: "`)`".into() });
        assert_eq!(parse.to_string(), "bad adversary spec: parse error at byte 7: expected `)`");
        let invalid = Error::from(SpecError::Invalid { reason: "union needs a member".into() });
        assert_eq!(invalid.to_string(), "bad adversary spec: union needs a member");
        let shard = Error::BadShard { spec: "3/2".into(), reason: "index out of range".into() };
        assert_eq!(shard.to_string(), "index out of range");
        let analysis = Error::UnknownAnalysis { name: "nope".into(), valid: &["a", "b"] };
        assert_eq!(analysis.to_string(), "unknown analysis \"nope\" (expected one of: a, b)");
    }

    #[test]
    fn term_errors_convert_losslessly() {
        use adversary::spec::TermError;
        // The conversions carry the structured payload through, so the
        // serve layer can keep mapping every spec failure to a 400 whose
        // message locates the problem.
        let err = Error::from(TermError::Parse { offset: 3, expected: "a graph".into() });
        assert_eq!(err.kind(), "spec");
        assert_eq!(err.status_code(), 400);
        assert_eq!(err.to_string(), "bad adversary spec: parse error at byte 3: expected a graph");
        let err = Error::from(TermError::UnknownCatalog { name: "ghost".into() });
        assert_eq!(err.to_string(), "bad adversary spec: unknown catalog entry \"ghost\"");
        let err = Error::from(TermError::Invalid { reason: "empty pool".into() });
        assert_eq!(err.to_string(), "bad adversary spec: empty pool");
    }

    #[test]
    fn kinds_and_status_codes_are_stable() {
        // The HTTP layer serializes these into responses; they are part of
        // the service contract, not free to drift.
        let cases: [(Error, &str, u16); 6] = [
            (Error::from(SpecError::EmptyPool), "spec", 400),
            (Error::UnknownAnalysis { name: "x".into(), valid: &["a"] }, "unknown-analysis", 400),
            (Error::BadShard { spec: "x".into(), reason: "r".into() }, "bad-shard", 400),
            (Error::CacheConflict { reason: "r".into() }, "cache-conflict", 409),
            (Error::Budget(BudgetExceeded { max_runs: 1, needed: 2 }), "budget", 422),
            (Error::io("ctx", io::Error::other("x")), "io", 500),
        ];
        for (err, kind, status) in cases {
            assert_eq!(err.kind(), kind, "{err}");
            assert_eq!(err.status_code(), status, "{err}");
        }
    }

    #[test]
    fn sources_chain() {
        let budget = BudgetExceeded { max_runs: 10, needed: 99 };
        let err = Error::from(budget.clone());
        assert_eq!(err.source().unwrap().to_string(), budget.to_string());
        assert_eq!(err.into_budget(), Some(budget));

        let io = Error::io("opening x", io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(io.source().is_some());
        assert_eq!(io.to_string(), "opening x: gone");
        assert!(io.into_budget().is_none());
    }
}
