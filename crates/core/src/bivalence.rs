//! Bivalence analysis (paper §6.1).
//!
//! # What the bivalence witness *is*, in the paper's terms
//!
//! The paper explains the classic bivalence technique [10, 21] topologically:
//! the forever bivalent run constructed in impossibility proofs is the
//! common limit of two sequences of executions from different decision sets
//! (Definition 5.16) — a *fair* or *unfair limit* sitting in the closure of
//! both `PS(0)` and `PS(1)`, which is exactly what a continuous decision
//! function cannot tolerate. This module reconstructs the combinatorial
//! side: for a *given* algorithm and adversary, it computes the valence of
//! prefixes (the set of consensus outcomes reachable by admissible
//! extensions within a horizon) and builds bivalent runs round by round.
//!
//! A [`BivalentRun`] is therefore a finite prefix of that limit object: an
//! input assignment plus a graph-word along which every prefix stays
//! obstructed (bivalent, or owning a disagreeing/undecided extension). For
//! an adversary where consensus is unsolvable, **every** algorithm that
//! always decides has either a disagreeing execution outright or a bivalent
//! prefix extensible forever; for a solvable adversary, the synthesized
//! universal algorithm's prefixes all become univalent by the decision
//! depth.
//!
//! The algorithm-independent form of this evidence — the broken ε-chain of
//! [`ZeroChain`](crate::fair::ZeroChain), two fair executions with distinct
//! valences linked by forever-silent processes — is what an unsolvable
//! [`certificate`](crate::certificate) exports: it condemns every algorithm
//! at once and re-verifies in milliseconds, where a `BivalentRun` indicts
//! only the one algorithm it was constructed against.

use std::collections::BTreeSet;

use adversary::MessageAdversary;
use dyngraph::GraphSeq;
use ptgraph::{all_inputs, Inputs, Value};
use simulator::{engine, Algorithm};

/// The set of consensus outcomes reachable from a prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Valence {
    /// Decision values of complete (all-decided, agreeing) extensions.
    pub outcomes: BTreeSet<Value>,
    /// Whether some extension ended with disagreement or no decision — the
    /// algorithm is then not a consensus algorithm for this adversary (or
    /// the horizon was too short to decide).
    pub improper_extension: bool,
}

impl Valence {
    /// Bivalent: at least two reachable outcomes.
    pub fn is_bivalent(&self) -> bool {
        self.outcomes.len() >= 2
    }

    /// Obstructed: bivalent **or** some extension is improper (disagreeing
    /// or undecided). A correct, terminating consensus algorithm has no
    /// obstructed prefix beyond its decision depth; the bivalence proofs of
    /// §6.1 show that under an unsolvable adversary *every* algorithm keeps
    /// an obstructed prefix forever — either it delays decisions (classic
    /// forever-bivalence) or it decides and some extension disagrees.
    pub fn is_obstructed(&self) -> bool {
        self.is_bivalent() || self.improper_extension
    }

    /// Univalent with the given value.
    pub fn is_univalent(&self) -> Option<Value> {
        if self.outcomes.len() == 1 && !self.improper_extension {
            self.outcomes.iter().next().copied()
        } else {
            None
        }
    }
}

/// Compute the valence of `(inputs, prefix)` for `alg` under `ma`, exploring
/// all admissible extensions up to `horizon` total rounds.
pub fn valence<A: Algorithm>(
    alg: &A,
    ma: &dyn MessageAdversary,
    inputs: &Inputs,
    prefix: &GraphSeq,
    horizon: usize,
) -> Valence {
    let mut outcomes = BTreeSet::new();
    let mut improper = false;
    let mut stack = vec![prefix.clone()];
    while let Some(seq) = stack.pop() {
        // Early cut: if the execution has already decided (all processes),
        // extensions cannot change the outcome (irrevocability).
        let exec = engine::run(alg, inputs, &seq);
        if exec.all_decided() || seq.rounds() >= horizon {
            match exec.consensus_value() {
                Some(v) => {
                    outcomes.insert(v);
                }
                None => improper = true,
            }
            continue;
        }
        for g in ma.extensions(&seq) {
            stack.push(seq.extended(g));
        }
    }
    Valence { outcomes, improper_extension: improper }
}

/// A step of an obstructed-run construction.
#[derive(Debug, Clone)]
pub struct BivalentStep {
    /// The graph appended in this round.
    pub graph: dyngraph::Digraph,
    /// The reachable outcomes after the step.
    pub outcomes: BTreeSet<Value>,
}

/// A (finite prefix of a) forever bivalent run: an initial input assignment
/// and a round-by-round extension along which the prefix stays bivalent.
#[derive(Debug, Clone)]
pub struct BivalentRun {
    /// The bivalent initial input assignment.
    pub inputs: Inputs,
    /// The bivalence-preserving rounds.
    pub steps: Vec<BivalentStep>,
}

impl BivalentRun {
    /// The constructed graph-sequence prefix.
    pub fn seq(&self) -> GraphSeq {
        self.steps.iter().map(|s| s.graph.clone()).collect()
    }
}

/// Construct an obstructed run of length `rounds` for `alg` under `ma`, if
/// one exists: find an obstructed initial assignment over `values` and
/// extend it round by round, keeping the obstruction (checked with
/// `lookahead` rounds beyond the current prefix, in the style of the
/// Santoro–Widmayer induction). An obstruction is bivalence or an improper
/// (disagreeing/undecided) extension; see [`Valence::is_obstructed`].
///
/// Returns `None` if no obstructed initial assignment exists or the
/// obstruction cannot be maintained — which is exactly what happens for a
/// correct algorithm on a solvable adversary once the lookahead covers its
/// decision depth.
pub fn bivalent_run<A: Algorithm>(
    alg: &A,
    ma: &dyn MessageAdversary,
    values: &[Value],
    rounds: usize,
    lookahead: usize,
) -> Option<BivalentRun> {
    // Find an initial configuration whose obstruction survives the whole
    // construction horizon (a short check would pick assignments that are
    // merely undecided early).
    let inputs = all_inputs(ma.n(), values)
        .into_iter()
        .find(|x| valence(alg, ma, x, &GraphSeq::new(), rounds + lookahead).is_obstructed())?;
    let mut run = BivalentRun { inputs: inputs.clone(), steps: Vec::new() };
    let mut seq = GraphSeq::new();
    for t in 0..rounds {
        let mut extended = None;
        for g in ma.extensions(&seq) {
            let cand = seq.extended(g.clone());
            let val = valence(alg, ma, &inputs, &cand, t + 1 + lookahead);
            if val.is_obstructed() {
                extended = Some((g, val.outcomes));
                break;
            }
        }
        let (g, outcomes) = extended?;
        seq.push(g.clone());
        run.steps.push(BivalentStep { graph: g, outcomes });
    }
    Some(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adversary::GeneralMA;
    use dyngraph::generators;
    use simulator::algorithms::FloodMin;

    #[test]
    fn initial_obstruction_floodmin_lossy_link() {
        // FloodMin(2) under {←, ↔, →} on x = (0, 1): some extensions decide
        // 0, others leave the processes disagreeing — an obstruction.
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let alg = FloodMin::new(2);
        let val = valence(&alg, &ma, &vec![0, 1], &GraphSeq::new(), 3);
        assert!(val.is_obstructed(), "{val:?}");
        assert!(val.improper_extension);
    }

    #[test]
    fn true_bivalence_direction_rule_on_full_pool() {
        // DirectionRule (correct for {←, →}) dropped into the full pool:
        // from x = (0, 1), the → extensions decide 0 and the ← extensions
        // decide 1 — genuine bivalence at the initial configuration.
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let alg = simulator::algorithms::DirectionRule;
        let val = valence(&alg, &ma, &vec![0, 1], &GraphSeq::new(), 2);
        assert!(val.is_bivalent(), "{val:?}");
        assert!(val.outcomes.contains(&0) && val.outcomes.contains(&1));
    }

    #[test]
    fn valent_inputs_univalent() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let alg = FloodMin::new(2);
        let val = valence(&alg, &ma, &vec![1, 1], &GraphSeq::new(), 3);
        assert_eq!(val.is_univalent(), Some(1));
    }

    #[test]
    fn obstructed_run_exists_for_floodmin_on_lossy_link() {
        // Santoro–Widmayer: any would-be algorithm admits the obstruction
        // under {←, ↔, →}; construct 3 obstruction-preserving rounds for
        // FloodMin(4) within and past its pre-decision window.
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let alg = FloodMin::new(4);
        let run = bivalent_run(&alg, &ma, &[0, 1], 3, 2).expect("obstructed run exists");
        assert_eq!(run.steps.len(), 3);
        assert_eq!(run.seq().rounds(), 3);
    }

    #[test]
    fn obstructed_run_extends_past_decision_round() {
        // Even past FloodMin's decision round the obstruction persists (as a
        // disagreeing extension), mirroring the "no escape" of §6.1.
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let alg = FloodMin::new(2);
        let run = bivalent_run(&alg, &ma, &[0, 1], 4, 2).expect("obstruction persists");
        assert_eq!(run.steps.len(), 4);
    }

    #[test]
    fn universal_algorithm_has_no_long_bivalent_run() {
        // On the solvable {←, →} the universal algorithm becomes univalent
        // quickly: no bivalent extension survives past its decision depth.
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let space = crate::space::PrefixSpace::expand(
            &ma,
            &[0, 1],
            2,
            &crate::config::ExpandConfig::default(),
        )
        .unwrap();
        let alg = crate::universal::UniversalAlgorithm::synthesize(&space).unwrap();
        let run = bivalent_run(&alg, &ma, &[0, 1], 3, 2);
        assert!(run.is_none(), "universal algorithm must not stay bivalent: {run:?}");
    }

    #[test]
    fn direction_rule_univalent_after_round_one() {
        // §6.1: for {←, →} all configurations after round 1 are univalent.
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let alg = simulator::algorithms::DirectionRule;
        for word in ["->", "<-"] {
            let seq = GraphSeq::parse2(word).unwrap();
            for x in [[0u32, 1], [1, 0], [0, 0], [1, 1]] {
                let val = valence(&alg, &ma, &x.to_vec(), &seq, 3);
                assert!(val.is_univalent().is_some(), "{word} {x:?}: {val:?}");
            }
        }
    }

    #[test]
    fn improper_extension_detected() {
        // FloodMin(1) under the empty-graph pool: processes decide their own
        // inputs — disagreement on mixed inputs → improper.
        let ma = GeneralMA::oblivious(vec![dyngraph::Digraph::empty(2)]);
        let alg = FloodMin::new(1);
        let val = valence(&alg, &ma, &vec![0, 1], &GraphSeq::new(), 2);
        assert!(val.improper_extension);
    }
}
