//! Component statistics and reports — the data behind the paper's Figures 4
//! and 5.
//!
//! Figure 4 depicts the decision sets of a *compact* adversary: closed
//! components at pairwise distance > 0. Figure 5 depicts a *non-compact*
//! adversary: components that come arbitrarily close, with their common
//! limit points excluded. [`SpaceReport`] quantifies exactly that for a
//! prefix space: per-component sizes, valences, broadcasters, and the
//! pairwise minimum distances between the valence classes across depths.

use std::collections::BTreeSet;
use std::fmt;

use adversary::MessageAdversary;
use ptgraph::{distance, Value};

use crate::{broadcast, space::PrefixSpace};

/// Statistics of one component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentStats {
    /// Component id.
    pub id: usize,
    /// Number of runs.
    pub size: usize,
    /// Valences of the valent runs inside (empty = unlabeled component).
    pub valences: BTreeSet<Value>,
    /// Broadcasters within the horizon, with worst-case completion rounds.
    pub broadcasters: Vec<(dyngraph::Pid, usize)>,
}

impl ComponentStats {
    /// Whether the component mixes valences.
    pub fn is_mixed(&self) -> bool {
        self.valences.len() >= 2
    }
}

/// A full report over a prefix space at one depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceReport {
    /// The depth `t` (`ε = 2^{−t}`).
    pub depth: usize,
    /// Total admissible runs.
    pub run_count: usize,
    /// Distinct interned views.
    pub view_count: usize,
    /// Per-component statistics.
    pub components: Vec<ComponentStats>,
    /// The smallest `d_min` between the decision classes `PS^ε(v)` and
    /// `PS^ε(w)` (unions of components containing `v`- resp. `w`-valent
    /// runs), minimized over value pairs. `Below(depth)` when some
    /// component contains both valences (the classes touch at this
    /// resolution — the Fig. 5 situation); a positive `Finite(t)` when the
    /// classes are separated (Fig. 4); `None` when a class is missing.
    pub min_class_distance: Option<distance::Distance>,
    /// Whether the valence labeling is separated at this depth.
    pub separated: bool,
}

impl SpaceReport {
    /// Number of mixed components.
    pub fn mixed_count(&self) -> usize {
        self.components.iter().filter(|c| c.is_mixed()).count()
    }
}

impl fmt::Display for SpaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "depth {} (ε=2^-{}): {} runs, {} views, {} components, separated: {}",
            self.depth,
            self.depth,
            self.run_count,
            self.view_count,
            self.components.len(),
            self.separated
        )?;
        for c in &self.components {
            let val: Vec<String> = c.valences.iter().map(|v| format!("z{v}")).collect();
            let bc: Vec<String> = c.broadcasters.iter().map(|(p, t)| format!("p{p}@{t}")).collect();
            writeln!(
                f,
                "  component {}: {} runs, valences [{}], broadcasters [{}]{}",
                c.id,
                c.size,
                val.join(", "),
                bc.join(", "),
                if c.is_mixed() { "  ← MIXED" } else { "" }
            )?;
        }
        if let Some(d) = self.min_class_distance {
            writeln!(f, "  min distance between valence classes: {}", d.as_f64())?;
        }
        Ok(())
    }
}

/// Compute the report for a prefix space.
pub fn report(space: &PrefixSpace) -> SpaceReport {
    let bc = broadcast::broadcast_report(space);
    let comps = space.components();
    let labels = space.valence_labels();
    let mut components = Vec::with_capacity(comps.count());
    for c in 0..comps.count() {
        let members = comps.members(c);
        let mut valences = BTreeSet::new();
        for &i in members {
            if let Some(&v) = labels.get(&i) {
                valences.insert(v);
            }
        }
        components.push(ComponentStats {
            id: c,
            size: members.len(),
            valences,
            broadcasters: bc.components[c].broadcasters.clone(),
        });
    }

    // Distance between the decision classes PS^ε(v): the union of
    // components containing a v-valent run (Definition 6.2). Touching
    // classes (a mixed component) register as Below(depth).
    let mut min_class_distance: Option<distance::Distance> = None;
    let values: Vec<Value> = space.values().to_vec();
    let class_runs = |v: Value| -> Vec<&ptgraph::PrefixRun> {
        let comp_ids: BTreeSet<usize> = space
            .runs()
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_valent(v))
            .map(|(i, _)| comps.component_of(i))
            .collect();
        space
            .runs()
            .iter()
            .enumerate()
            .filter(|(i, _)| comp_ids.contains(&comps.component_of(*i)))
            .map(|(_, r)| r)
            .collect()
    };
    for (i, &v) in values.iter().enumerate() {
        for &w in &values[i + 1..] {
            let vs = class_runs(v);
            let ws = class_runs(w);
            if let Some(d) = distance::set_distance_min(&vs, &ws) {
                min_class_distance = Some(match min_class_distance {
                    None => d,
                    Some(cur) => cur.min(d),
                });
            }
        }
    }

    SpaceReport {
        depth: space.depth(),
        run_count: space.runs().len(),
        view_count: space.table().len(),
        components,
        min_class_distance,
        separated: space.separation().is_separated(),
    }
}

/// Reports across a depth sweep — the raw series for the Figure 4/5
/// comparison and the Theorem 6.6 ε-search.
///
/// Depths whose expansion exceeds `max_runs` are skipped (the sweep stops).
pub fn depth_sweep(
    ma: &dyn MessageAdversary,
    values: &[Value],
    max_depth: usize,
    max_runs: usize,
) -> Vec<SpaceReport> {
    let mut out = Vec::new();
    for depth in 0..=max_depth {
        let cfg = crate::config::ExpandConfig::with_budget(max_runs);
        match PrefixSpace::expand(ma, values, depth, &cfg) {
            Ok(space) => out.push(report(&space)),
            Err(_) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adversary::GeneralMA;
    use dyngraph::{generators, Digraph};
    use ptgraph::distance::Distance;

    use crate::config::ExpandConfig;

    const CFG: ExpandConfig = ExpandConfig { threads: 1, max_runs: 1_000_000 };

    #[test]
    fn report_reduced_lossy_link() {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let space = PrefixSpace::expand(&ma, &[0, 1], 2, &CFG).unwrap();
        let rep = report(&space);
        assert!(rep.separated);
        assert_eq!(rep.mixed_count(), 0);
        assert_eq!(rep.run_count, 16);
        // Fig. 4 behavior: valence classes at positive distance.
        match rep.min_class_distance.unwrap() {
            Distance::Finite(t) => assert!(t <= 2),
            Distance::Below(_) => panic!("classes should be separated at finite distance"),
        }
        let text = rep.to_string();
        assert!(text.contains("separated: true"));
    }

    #[test]
    fn report_full_lossy_link_mixed() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let space = PrefixSpace::expand(&ma, &[0, 1], 2, &CFG).unwrap();
        let rep = report(&space);
        assert!(!rep.separated);
        assert!(rep.mixed_count() >= 1);
        assert!(rep.to_string().contains("MIXED"));
    }

    #[test]
    fn depth_sweep_monotone_views() {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let sweep = depth_sweep(&ma, &[0, 1], 3, 1_000_000);
        assert_eq!(sweep.len(), 4);
        for w in sweep.windows(2) {
            assert!(w[1].view_count >= w[0].view_count);
            assert!(w[1].run_count >= w[0].run_count);
        }
    }

    #[test]
    fn fig5_distance_shrinks_for_noncompact() {
        // Non-compact ♦stable(2): the valence classes keep touching at
        // every depth (distance below resolution — their separation only
        // happens in the limit via excluded sequences).
        let ma = GeneralMA::stabilizing(generators::lossy_link_full(), 2, None);
        let sweep = depth_sweep(&ma, &[0, 1], 3, 1_000_000);
        for rep in &sweep {
            match rep.min_class_distance.unwrap() {
                Distance::Below(t) => assert_eq!(t, rep.depth),
                Distance::Finite(t) => {
                    panic!("expected touching classes, got distance 2^-{t}")
                }
            }
        }
    }

    #[test]
    fn depth_sweep_respects_budget() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let sweep = depth_sweep(&ma, &[0, 1], 10, 500);
        assert!(sweep.len() < 11, "budget must cut the sweep");
    }

    #[test]
    fn report_single_graph_pool() {
        let ma = GeneralMA::oblivious(vec![Digraph::parse2("<->").unwrap()]);
        let space = PrefixSpace::expand(&ma, &[0, 1], 1, &ExpandConfig::with_budget(1000)).unwrap();
        let rep = report(&space);
        assert!(rep.separated);
        assert_eq!(rep.run_count, 4);
        // Components: all four input pairs distinguishable after ↔.
        assert_eq!(rep.components.len(), 4);
    }
}
