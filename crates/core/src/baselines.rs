//! Baseline criteria and algorithms used as ground truth.
//!
//! * [`kernel_classes`] / [`kernel_beta_solvable_n2`] — the kernel-based
//!   criterion for **`n = 2`** oblivious adversaries, equivalent on two
//!   processes to the Coulouma–Godard–Peters characterization \[8\] (and to
//!   the paper's broadcastability characterization, Theorem 5.11): group
//!   pool graphs by the transitive closure of "kernels intersect"; solvable
//!   iff every class has a nonempty common kernel intersection.
//!
//!   **Scope**: validated for `n = 2` (cross-checked in tests against the
//!   topological checker over all 15 pools). For `n ≥ 3` the full CGP
//!   characterization uses a finer relation than pairwise kernel
//!   intersection, so the function refuses larger `n`; the topological
//!   checker remains the authority there (see the `n = 3` cross-check
//!   test).
//!
//! * [`common_kernel_solvable`] — the sufficient condition for any `n`: if
//!   some process lies in the kernel of **every** pool graph it broadcasts
//!   within `n − 1` rounds in every sequence, so consensus is solvable with
//!   the [`CommonBroadcasterRule`] baseline algorithm.
//!
//! * [`has_unrooted_graph`] — if some pool graph has an empty kernel, its
//!   constant sequence has no broadcaster and the exact distance-0 chain of
//!   [`crate::fair`] applies: consensus is unsolvable.

use dyngraph::{Digraph, Pid, PidMask};
use ptgraph::Value;
use simulator::Algorithm;
use topology::components_by_edges;

/// Group `pool` by the transitive closure of "kernels intersect".
///
/// Returns the classes as index sets into `pool`.
pub fn kernel_classes(pool: &[Digraph]) -> Vec<Vec<usize>> {
    let kernels: Vec<PidMask> = pool.iter().map(Digraph::kernel_mask).collect();
    let mut edges = Vec::new();
    for i in 0..pool.len() {
        for j in i + 1..pool.len() {
            if kernels[i] & kernels[j] != 0 {
                edges.push((i, j));
            }
        }
    }
    let comps = components_by_edges(pool.len(), edges);
    (0..comps.count()).map(|c| comps.members(c).to_vec()).collect()
}

/// The kernel-based solvability criterion for `n = 2` oblivious adversaries
/// (\[8\] reformulated via Theorem 5.11): every kernel class must have a
/// nonempty common kernel intersection.
///
/// # Panics
/// Panics if the pool is empty or its graphs are not on 2 processes (the
/// pairwise-kernel relation is provably too coarse for `n ≥ 3`).
pub fn kernel_beta_solvable_n2(pool: &[Digraph]) -> bool {
    assert!(!pool.is_empty(), "pool must be nonempty");
    assert!(pool.iter().all(|g| g.n() == 2), "kernel_beta_solvable_n2 is only valid for n = 2");
    let kernels: Vec<PidMask> = pool.iter().map(Digraph::kernel_mask).collect();
    kernel_classes(pool).into_iter().all(|class| {
        let inter = class.iter().fold(u32::MAX, |acc, &i| acc & kernels[i]);
        inter != 0
    })
}

/// Whether some process lies in the kernel of every pool graph (sufficient
/// for solvability at any `n`). Returns the smallest such process.
pub fn common_kernel_solvable(pool: &[Digraph]) -> Option<Pid> {
    let inter = pool.iter().fold(u32::MAX, |acc, g| acc & g.kernel_mask());
    (0..pool.first()?.n()).find(|&p| inter & (1 << p) != 0)
}

/// Whether some pool graph is not rooted (`Ker(G) = ∅`) — then consensus is
/// unsolvable via the exact distance-0 chain over `G^ω`.
pub fn has_unrooted_graph(pool: &[Digraph]) -> bool {
    pool.iter().any(|g| !g.is_rooted())
}

/// The common-broadcaster baseline algorithm: if process `broadcaster` is in
/// every pool graph's kernel, its initial value reaches everyone within
/// `n − 1` rounds (the informed set grows every round); all processes decide
/// that value at round `decide_round = n − 1`.
#[derive(Debug, Clone)]
pub struct CommonBroadcasterRule {
    broadcaster: Pid,
    decide_round: usize,
}

impl CommonBroadcasterRule {
    /// Build for the given broadcaster and decision round (use `n − 1`).
    pub fn new(broadcaster: Pid, decide_round: usize) -> Self {
        CommonBroadcasterRule { broadcaster, decide_round }
    }
}

/// State of [`CommonBroadcasterRule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CbState {
    /// Initial values learned so far, sparse `(process, value)` sorted.
    pub known: Vec<(Pid, Value)>,
    /// Rounds elapsed.
    pub round: usize,
    /// The decision once taken.
    pub decided: Option<Value>,
}

impl Algorithm for CommonBroadcasterRule {
    type State = CbState;

    fn init(&self, p: Pid, x: Value) -> CbState {
        let known = vec![(p, x)];
        let decided = (self.decide_round == 0 && p == self.broadcaster).then_some(x);
        CbState { known, round: 0, decided }
    }

    fn step(&self, _p: Pid, state: &CbState, received: &[(Pid, CbState)]) -> CbState {
        let mut known = state.known.clone();
        for (_, s) in received {
            known.extend(s.known.iter().copied());
        }
        known.sort_unstable_by_key(|&(q, _)| q);
        known.dedup_by_key(|&mut (q, _)| q);
        let round = state.round + 1;
        let decided = state.decided.or_else(|| {
            (round >= self.decide_round)
                .then(|| known.iter().find(|&&(q, _)| q == self.broadcaster).map(|&(_, v)| v))
                .flatten()
        });
        CbState { known, round, decided }
    }

    fn decision(&self, _p: Pid, state: &CbState) -> Option<Value> {
        state.decided
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adversary::GeneralMA;
    use dyngraph::generators;
    use simulator::checker::{check, CheckConfig};

    #[test]
    fn kernel_classes_lossy_link() {
        // {←, ↔, →}: ↔'s kernel {0,1} intersects both → one class.
        let full = generators::lossy_link_full();
        assert_eq!(kernel_classes(&full).len(), 1);
        assert!(!kernel_beta_solvable_n2(&full));
        // {←, →}: kernels {1} and {0} disjoint → two classes, each fine.
        let reduced = generators::lossy_link_reduced();
        assert_eq!(kernel_classes(&reduced).len(), 2);
        assert!(kernel_beta_solvable_n2(&reduced));
    }

    #[test]
    fn kernel_beta_all_n2_pools_match_topological_checker() {
        // Ground-truth cross-validation over all 15 nonempty pools of the
        // four 2-process graphs: the kernel criterion ⟺ separation at depth
        // 3 of the ε-approximation components.
        let all: Vec<_> = generators::all_graphs(2).collect();
        for bits in 1u32..16 {
            let pool: Vec<_> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| bits & (1 << i) != 0)
                .map(|(_, g)| g.clone())
                .collect();
            let kernel_says = kernel_beta_solvable_n2(&pool);
            let ma = GeneralMA::oblivious(pool);
            let space = crate::space::PrefixSpace::expand(
                &ma,
                &[0, 1],
                3,
                &crate::config::ExpandConfig::default(),
            )
            .unwrap();
            let topo_says = space.separation().is_separated();
            assert_eq!(kernel_says, topo_says, "criteria disagree on pool bits {bits:#06b}");
        }
    }

    #[test]
    fn n3_two_chain_pool_checked_topologically() {
        // G1 = {0→1, 1→2} (Ker {0}), G2 = {2→1, 1→0} (Ker {2}): disjoint
        // kernels, two pairwise classes. On n = 3 the pairwise criterion is
        // out of scope; the topological checker is the authority. It
        // separates the valences at a small depth and the synthesized
        // universal algorithm verifies exhaustively — consensus is solvable
        // for this pool (round-1 reception patterns reveal which chain
        // graph was played, and its kernel process broadcasts).
        let g1 = Digraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let g2 = Digraph::from_edges(3, &[(2, 1), (1, 0)]).unwrap();
        let ma = GeneralMA::oblivious(vec![g1, g2]);
        let verdict = crate::solvability::SolvabilityChecker::new(ma).max_depth(4).check();
        match verdict {
            crate::solvability::Verdict::Solvable(cert) => {
                assert!(cert.verification.passed());
                assert!(cert.broadcast.all_broadcastable());
            }
            other => panic!("expected solvable: {other:?}"),
        }
    }

    #[test]
    fn common_kernel_gives_broadcaster_algorithm() {
        // Pool where process 0 is in every kernel: {→01·12, star(0)} on n=3.
        let g1 = Digraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let g2 = generators::star_out(3, 0);
        let pool = vec![g1, g2];
        let p = common_kernel_solvable(&pool).unwrap();
        assert_eq!(p, 0);
        let alg = CommonBroadcasterRule::new(p, 2);
        let ma = GeneralMA::oblivious(pool);
        let report =
            check(&alg, &ma, &[0, 1], &CheckConfig::at_depth(3).max_runs(1_000_000)).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
    }

    #[test]
    fn common_kernel_none_for_disjoint_kernels() {
        assert!(common_kernel_solvable(&generators::lossy_link_reduced()).is_none());
        assert_eq!(common_kernel_solvable(&[Digraph::parse2("->").unwrap()]), Some(0));
    }

    #[test]
    fn unrooted_detection() {
        assert!(has_unrooted_graph(&[Digraph::empty(2)]));
        assert!(!has_unrooted_graph(&generators::lossy_link_full()));
    }

    #[test]
    #[should_panic(expected = "only valid for n = 2")]
    fn kernel_beta_rejects_n3() {
        let _ = kernel_beta_solvable_n2(&[Digraph::empty(3)]);
    }
}
