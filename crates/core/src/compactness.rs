//! Quantifying (non-)compactness at finite depth — the boundary structure
//! behind the paper's Figure 5 and Lemma 6.8.
//!
//! A compact adversary is limit-closed: at every depth, every pool-valid
//! prefix that can be continued admissibly *is* admissible. A non-compact
//! adversary (or a deadline approximation of one) has a *boundary*: prefixes
//! over the pool that are dead (no admissible extension) even though
//! arbitrarily close admissible prefixes exist. Lemma 6.8 shows the set of
//! to-be-excluded limit points of a decision set is compact; at finite depth
//! its shadow is exactly these dead prefixes, which this module counts and
//! exhibits.

use adversary::MessageAdversary;
use dyngraph::GraphSeq;

/// Prefix census at one depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryReport {
    /// The depth `t`.
    pub depth: usize,
    /// Pool-valid prefixes of length `t` (the closure's shadow).
    pub pool_valid: usize,
    /// Admissible prefixes (the adversary's shadow).
    pub admissible: usize,
    /// Dead prefixes: pool-valid but inadmissible (the boundary shadow —
    /// the × marks of Fig. 5).
    pub dead: usize,
    /// Example dead prefixes (up to 5).
    pub dead_examples: Vec<GraphSeq>,
}

impl BoundaryReport {
    /// Whether the adversary looks limit-closed at this depth.
    pub fn closed_at_depth(&self) -> bool {
        self.dead == 0
    }
}

/// Count pool-valid vs admissible prefixes of length `depth`.
///
/// Requires a pool hint; returns `None` otherwise. The pool tree is pruned
/// by pool-validity only, so the census costs `O(|pool|^depth)` — keep the
/// depth modest.
pub fn boundary_report(ma: &dyn MessageAdversary, depth: usize) -> Option<BoundaryReport> {
    let pool = ma.pool_hint()?;
    let mut frontier = vec![GraphSeq::new()];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * pool.len());
        for seq in &frontier {
            for g in &pool {
                next.push(seq.extended(g.clone()));
            }
        }
        frontier = next;
    }
    let pool_valid = frontier.len();
    let mut admissible = 0;
    let mut dead_examples = Vec::new();
    for seq in &frontier {
        if ma.admits_prefix(seq) {
            admissible += 1;
        } else if dead_examples.len() < 5 {
            dead_examples.push(seq.clone());
        }
    }
    Some(BoundaryReport {
        depth,
        pool_valid,
        admissible,
        dead: pool_valid - admissible,
        dead_examples,
    })
}

/// Boundary census across a depth sweep.
pub fn boundary_sweep(ma: &dyn MessageAdversary, max_depth: usize) -> Vec<BoundaryReport> {
    (0..=max_depth).map_while(|d| boundary_report(ma, d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adversary::{GeneralMA, MessageAdversary};
    use dyngraph::{generators, Digraph};

    #[test]
    fn oblivious_is_closed_everywhere() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        for rep in boundary_sweep(&ma, 4) {
            assert!(rep.closed_at_depth());
            assert_eq!(rep.pool_valid, 3usize.pow(rep.depth as u32));
            assert_eq!(rep.admissible, rep.pool_valid);
        }
    }

    #[test]
    fn noncompact_eventually_has_no_dead_prefixes() {
        // Without a deadline every pool prefix stays alive — the boundary
        // sits at infinity (the excluded limits), not at finite depth.
        let ma = GeneralMA::eventually_graph(
            generators::lossy_link_full(),
            Digraph::parse2("<->").unwrap(),
            None,
        );
        for rep in boundary_sweep(&ma, 4) {
            assert!(rep.closed_at_depth());
        }
    }

    #[test]
    fn deadline_approximation_has_boundary() {
        // "↔ within 2": at depth ≥ 2 the swap-free prefixes die — the
        // finite shadow of the excluded limits (Lemma 6.8's compact set).
        let ma = GeneralMA::eventually_graph(
            generators::lossy_link_full(),
            Digraph::parse2("<->").unwrap(),
            Some(2),
        );
        let rep = boundary_report(&ma, 2).unwrap();
        assert_eq!(rep.pool_valid, 9);
        assert_eq!(rep.admissible, 5);
        assert_eq!(rep.dead, 4); // {←,→}² prefixes
        assert!(!rep.closed_at_depth());
        assert!(!rep.dead_examples.is_empty());
        for ex in &rep.dead_examples {
            assert!(!ma.admits_prefix(ex));
            assert!(ex.iter().all(|g| g.arrow2() != Some("<->")));
        }
    }

    #[test]
    fn boundary_grows_with_depth() {
        let ma = GeneralMA::stabilizing(generators::lossy_link_full(), 2, Some(3));
        let sweep = boundary_sweep(&ma, 4);
        // Dead counts are non-decreasing once the deadline passes.
        let dead: Vec<usize> = sweep.iter().map(|r| r.dead).collect();
        assert!(dead[3] > 0, "deadline 3 must kill unstable prefixes: {dead:?}");
        assert!(dead[4] >= dead[3]);
    }

    #[test]
    fn no_pool_hint_returns_none() {
        struct NoPool;
        impl MessageAdversary for NoPool {
            fn n(&self) -> usize {
                2
            }
            fn extensions(&self, _: &GraphSeq) -> Vec<Digraph> {
                vec![]
            }
            fn admits_prefix(&self, _: &GraphSeq) -> bool {
                true
            }
            fn admits_lasso(&self, _: &dyngraph::Lasso) -> Option<bool> {
                None
            }
            fn is_compact(&self) -> bool {
                true
            }
            fn describe(&self) -> String {
                "no-pool".into()
            }
        }
        assert!(boundary_report(&NoPool, 2).is_none());
    }
}
