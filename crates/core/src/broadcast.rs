//! Broadcastability of connected components (Theorem 5.11 / Theorem 6.6).
//!
//! A set `A ⊆ PS` is *broadcastable by `p`* (Definition 5.8) if in every
//! `a ∈ A` there is a round `T(a)` by which every process has `p`'s initial
//! value in its view. Theorem 5.11: consensus is solvable iff every
//! connected component of `PS` is broadcastable by some process. Theorem 5.9
//! gives the mechanism: on a connected broadcastable set the broadcaster's
//! input is constant, so valences cannot mix.
//!
//! On the finite prefix space, broadcastability is checked *within the
//! horizon* (the paper's §6.2 closing remark justifies finite-prefix
//! checking for compact adversaries). [`BroadcastReport`] records, per
//! component, the broadcasters and the worst-case completion round `T̂`.

use dyngraph::Pid;

use crate::space::PrefixSpace;

/// Broadcastability data for one component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentBroadcast {
    /// The component id.
    pub component: usize,
    /// Component size (number of runs).
    pub size: usize,
    /// Processes that broadcast in **every** run of the component within
    /// the horizon, each with its worst-case completion round `T̂`.
    pub broadcasters: Vec<(Pid, usize)>,
}

impl ComponentBroadcast {
    /// Whether the component is broadcastable within the horizon.
    pub fn is_broadcastable(&self) -> bool {
        !self.broadcasters.is_empty()
    }

    /// The best (earliest-completing) broadcaster.
    pub fn best(&self) -> Option<(Pid, usize)> {
        self.broadcasters.iter().copied().min_by_key(|&(_, t)| t)
    }
}

/// Per-component broadcastability of a prefix space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastReport {
    /// One entry per component, in component order.
    pub components: Vec<ComponentBroadcast>,
    /// The space's depth (horizon).
    pub depth: usize,
}

impl BroadcastReport {
    /// Whether every component is broadcastable — the Theorem 6.6 check at
    /// this ε.
    pub fn all_broadcastable(&self) -> bool {
        self.components.iter().all(ComponentBroadcast::is_broadcastable)
    }

    /// Ids of non-broadcastable components.
    pub fn failing_components(&self) -> Vec<usize> {
        self.components
            .iter()
            .filter(|c| !c.is_broadcastable())
            .map(|c| c.component)
            .collect()
    }
}

/// Compute the broadcast report of a prefix space.
pub fn broadcast_report(space: &PrefixSpace) -> BroadcastReport {
    let table = space.table();
    let comps = space.components();
    let mut out = Vec::with_capacity(comps.count());
    for c in 0..comps.count() {
        let members = comps.members(c);
        let mut broadcasters = Vec::new();
        'procs: for p in 0..space.n() {
            let mut worst = 0usize;
            for &i in members {
                match space.runs()[i].broadcast_complete(p, table) {
                    Some(t) => worst = worst.max(t),
                    None => continue 'procs,
                }
            }
            broadcasters.push((p, worst));
        }
        out.push(ComponentBroadcast { component: c, size: members.len(), broadcasters });
    }
    BroadcastReport { components: out, depth: space.depth() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adversary::GeneralMA;
    use dyngraph::generators;

    use crate::config::ExpandConfig;

    const CFG: ExpandConfig = ExpandConfig { threads: 1, max_runs: 1_000_000 };

    #[test]
    fn reduced_lossy_link_broadcastable() {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let space = PrefixSpace::expand(&ma, &[0, 1], 2, &CFG).unwrap();
        let rep = broadcast_report(&space);
        assert!(rep.all_broadcastable());
        assert!(rep.failing_components().is_empty());
        for c in &rep.components {
            let (_, t) = c.best().unwrap();
            assert!(t <= 2);
        }
    }

    #[test]
    fn full_lossy_link_mixed_component_fails() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let space = PrefixSpace::expand(&ma, &[0, 1], 3, &CFG).unwrap();
        let rep = broadcast_report(&space);
        assert!(!rep.all_broadcastable());
        // Theorem 5.11 agreement: separation fails ⟺ some component is not
        // broadcastable (at the same resolution the implications line up for
        // these adversaries; asserted as a cross-check).
        assert!(!space.separation().is_separated());
    }

    #[test]
    fn characterizations_agree_on_oblivious_n2_families() {
        // Corollary 5.6 (valence purity) vs Theorem 5.11 (broadcastability)
        // on every nonempty subset of the four 2-process graphs, at depth 3:
        // purity ⟸ broadcastability always (Thm 5.9); for these compact
        // families they coincide at a modest depth.
        let all: Vec<_> = generators::all_graphs(2).collect();
        for bits in 1u32..16 {
            let pool: Vec<_> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| bits & (1 << i) != 0)
                .map(|(_, g)| g.clone())
                .collect();
            let ma = GeneralMA::oblivious(pool);
            let space = PrefixSpace::expand(&ma, &[0, 1], 3, &CFG).unwrap();
            let pure = space.separation().is_separated();
            let broadcastable = broadcast_report(&space).all_broadcastable();
            if broadcastable {
                assert!(pure, "broadcastable but not pure for bits {bits:#b}");
            }
            // At depth 3 the n=2 families have converged: the two
            // characterizations agree.
            assert_eq!(pure, broadcastable, "characterizations disagree at bits {bits:#b}");
        }
    }

    #[test]
    fn single_process_trivially_broadcastable() {
        let ma = GeneralMA::oblivious(vec![dyngraph::Digraph::empty(1)]);
        let space = PrefixSpace::expand(&ma, &[0, 1], 1, &ExpandConfig::with_budget(1000)).unwrap();
        let rep = broadcast_report(&space);
        assert!(rep.all_broadcastable());
    }
}
