//! **Topological characterization of consensus under general message
//! adversaries** — the executable core of *Nowak, Schmid, Winkler* (PODC
//! 2019, arXiv:1905.09590).
//!
//! The paper proves that consensus under a message adversary is solvable iff
//! the space `PS` of admissible process-time graph sequences can be
//! partitioned into decision sets that are open in the *minimum topology*
//! (Theorem 5.5), equivalently iff no connected component of `PS` contains
//! differently-valent sequences (Corollary 5.6), equivalently iff every
//! component is *broadcastable* (Theorem 5.11). For compact adversaries this
//! reduces to a finite check on ε-approximations (Theorem 6.6).
//!
//! This crate makes those theorems executable:
//!
//! * [`space::PrefixSpace`] — the depth-`t` prefix space of an adversary
//!   with its ε-approximation components (`ε = 2^{−t}`);
//! * [`solvability`] — the three-valued solvability checker and the
//!   meta-procedure of §5.1;
//! * [`universal`] — synthesis of the universal algorithm from the proof of
//!   Theorem 5.5, as a runnable [`simulator::Algorithm`];
//! * [`broadcast`] — broadcastability of components (Theorem 5.11 /
//!   Theorem 6.6);
//! * [`fair`] — fair/unfair limit machinery (Definition 5.16): exact
//!   distance-0 chains over lasso runs (rigorous impossibility
//!   certificates) and per-depth ε-chains (the finite shadows of forever
//!   bivalent runs);
//! * [`bivalence`] — the classic bivalence analysis of §6.1, reconstructed
//!   on top of the topological machinery;
//! * [`certificate`] — portable, independently checkable certificates for
//!   definitive verdicts: the synthesized decision table (solvable) or the
//!   broken ε-chain (unsolvable), re-verifiable in milliseconds without
//!   re-expanding the prefix space;
//! * [`baselines`] — the kernel-based criterion for `n = 2` oblivious
//!   adversaries (\[8\]) and simple sufficient conditions, used as ground
//!   truth in cross-validation;
//! * [`analysis`] — component statistics reports (the data behind the
//!   paper's Figures 4 and 5).
//!
//! # Quickstart
//!
//! ```
//! use consensus_core::solvability::{SolvabilityChecker, Verdict};
//! use adversary::GeneralMA;
//! use dyngraph::generators;
//!
//! // The reduced lossy link {←, →}: solvable (paper §6.1, [8]).
//! let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
//! let verdict = SolvabilityChecker::new(ma).max_depth(4).check();
//! match verdict {
//!     Verdict::Solvable(cert) => {
//!         assert_eq!(cert.depth, 1); // separation already at depth 1
//!     }
//!     other => panic!("expected solvable, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod analysis;
pub mod baselines;
pub mod bivalence;
pub mod broadcast;
pub mod certificate;
pub mod compactness;
pub mod config;
pub mod error;
pub mod fair;
pub mod solvability;
pub mod space;
pub mod universal;

pub use certificate::{CertError, Certificate};
pub use config::{AnalysisConfig, CacheConfig, ExpandConfig};
pub use error::{Error, SpecError};
pub use solvability::{SolvabilityChecker, Verdict};
pub use space::PrefixSpace;
pub use universal::UniversalAlgorithm;
