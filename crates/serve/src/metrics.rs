//! Per-process service telemetry: request counters, latency histograms
//! (a legacy fixed-bucket one plus per-endpoint log-bucketed
//! [`consensus_obs`] histograms), and connection counters — everything
//! `GET /metrics` exposes beyond the cache counters it reads from the
//! shared [`Session`](consensus_lab::session::Session).
//!
//! Lock-free: every datum is an atomic, so the hot path records a request
//! with a handful of relaxed increments and readers never contend with
//! workers.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use consensus_obs::metrics::Histogram;
use consensus_obs::prom;
use json::Value;

/// The service's routed endpoints, in stable reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/check`.
    Check,
    /// `POST /v1/sweep`.
    Sweep,
    /// `GET /v1/journal/segment`.
    Segment,
    /// `GET /v1/trace`.
    Trace,
    /// `GET /v1/catalog`.
    Catalog,
    /// `GET /v1/stats`.
    Stats,
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
}

impl Endpoint {
    /// All endpoints, in reporting order.
    pub const ALL: [Endpoint; 8] = [
        Endpoint::Check,
        Endpoint::Sweep,
        Endpoint::Segment,
        Endpoint::Trace,
        Endpoint::Catalog,
        Endpoint::Stats,
        Endpoint::Healthz,
        Endpoint::Metrics,
    ];

    /// The stable key used in the metrics JSON.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Check => "check",
            Endpoint::Sweep => "sweep",
            Endpoint::Segment => "segment",
            Endpoint::Trace => "trace",
            Endpoint::Catalog => "catalog",
            Endpoint::Stats => "stats",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
        }
    }

    fn index(self) -> usize {
        Endpoint::ALL.iter().position(|x| *x == self).expect("listed endpoint")
    }
}

/// Upper bucket bounds of the legacy fixed-bucket latency histogram, in
/// milliseconds; an implicit overflow bucket catches everything beyond
/// the last bound.
pub const LATENCY_BOUNDS_MS: [f64; 10] =
    [0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 1000.0];

/// The percentiles reported per endpoint, as `(json key, quantile)`.
const ENDPOINT_QUANTILES: [(&str, f64); 3] = [("p50_ms", 0.5), ("p90_ms", 0.9), ("p99_ms", 0.99)];

/// Lock-free request/latency/connection counters; see the module docs.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    accepted: AtomicUsize,
    active: AtomicUsize,
    by_endpoint: [AtomicUsize; Endpoint::ALL.len()],
    /// Per-endpoint handling latency in nanoseconds (log-bucketed,
    /// quantile-queryable — the p50/p90/p99 source).
    latency_by_endpoint: [Histogram; Endpoint::ALL.len()],
    not_found: AtomicUsize,
    errors_4xx: AtomicUsize,
    errors_5xx: AtomicUsize,
    buckets: [AtomicUsize; LATENCY_BOUNDS_MS.len() + 1],
    latency_count: AtomicUsize,
    latency_total_ns: AtomicU64,
    latency_max_ns: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Zeroed counters, uptime starting now.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            accepted: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            by_endpoint: Default::default(),
            latency_by_endpoint: [const { Histogram::new() }; Endpoint::ALL.len()],
            not_found: AtomicUsize::new(0),
            errors_4xx: AtomicUsize::new(0),
            errors_5xx: AtomicUsize::new(0),
            buckets: Default::default(),
            latency_count: AtomicUsize::new(0),
            latency_total_ns: AtomicU64::new(0),
            latency_max_ns: AtomicU64::new(0),
        }
    }

    /// Record an accepted connection.
    pub fn connection_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark a connection as being handled; the returned guard decrements
    /// the active gauge when dropped.
    pub fn connection_active(&self) -> ActiveConnection<'_> {
        self.active.fetch_add(1, Ordering::Relaxed);
        ActiveConnection { metrics: self }
    }

    /// Record one routed (or unrouted) request and its handling latency.
    /// Client errors (4xx) and server errors (5xx) count separately.
    pub fn record(&self, endpoint: Option<Endpoint>, status: u16, elapsed: Duration) {
        match endpoint {
            Some(e) => {
                self.by_endpoint[e.index()].fetch_add(1, Ordering::Relaxed);
                self.latency_by_endpoint[e.index()].record_duration(elapsed);
            }
            None => {
                self.not_found.fetch_add(1, Ordering::Relaxed);
            }
        }
        if (400..500).contains(&status) {
            self.errors_4xx.fetch_add(1, Ordering::Relaxed);
        } else if status >= 500 {
            self.errors_5xx.fetch_add(1, Ordering::Relaxed);
        }
        let ms = elapsed.as_secs_f64() * 1e3;
        let bucket = LATENCY_BOUNDS_MS
            .iter()
            .position(|bound| ms <= *bound)
            .unwrap_or(LATENCY_BOUNDS_MS.len());
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.latency_total_ns.fetch_add(ns, Ordering::Relaxed);
        self.latency_max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Total requests recorded (routed plus unrouted).
    pub fn requests_total(&self) -> usize {
        self.latency_count.load(Ordering::Relaxed)
    }

    /// Milliseconds since the metrics (≈ the server) started.
    pub fn uptime_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    /// The per-endpoint latency quantile blocks:
    /// `name → {count, p50_ms, p90_ms, p99_ms, max_ms}` in reporting
    /// order.
    pub fn endpoints_json(&self) -> Vec<(String, Value)> {
        Endpoint::ALL
            .iter()
            .map(|endpoint| {
                let hist = &self.latency_by_endpoint[endpoint.index()];
                let mut fields: Vec<(String, Value)> =
                    vec![("count".into(), Value::Int(hist.count() as i64))];
                for (key, q) in ENDPOINT_QUANTILES {
                    fields.push((key.into(), Value::Float(round_ms(hist.quantile(q)))));
                }
                fields.push(("max_ms".into(), Value::Float(round_ms(hist.max()))));
                (endpoint.name().to_string(), Value::Obj(fields))
            })
            .collect()
    }

    /// The `connections`/`requests`/`endpoints`/`latency_ms` blocks of
    /// the metrics payload (the cache blocks are appended by the API
    /// layer, which owns the `Session`). Key order is fixed — two
    /// serializations of the same counters are byte-identical.
    pub fn to_json(&self) -> Vec<(String, Value)> {
        let mut requests: Vec<(String, Value)> =
            vec![("total".into(), Value::Int(self.requests_total() as i64))];
        for (endpoint, count) in Endpoint::ALL.iter().zip(&self.by_endpoint) {
            requests
                .push((endpoint.name().into(), Value::Int(count.load(Ordering::Relaxed) as i64)));
        }
        let errors_4xx = self.errors_4xx.load(Ordering::Relaxed);
        let errors_5xx = self.errors_5xx.load(Ordering::Relaxed);
        requests
            .push(("not_found".into(), Value::Int(self.not_found.load(Ordering::Relaxed) as i64)));
        // `errors` (the historical total) stays for dashboard
        // compatibility; the split counters are what new tooling reads.
        requests.push(("errors".into(), Value::Int((errors_4xx + errors_5xx) as i64)));
        requests.push(("errors_4xx".into(), Value::Int(errors_4xx as i64)));
        requests.push(("errors_5xx".into(), Value::Int(errors_5xx as i64)));

        let mut buckets = Vec::with_capacity(self.buckets.len());
        for (i, count) in self.buckets.iter().enumerate() {
            buckets.push(Value::Obj(vec![
                (
                    "le".into(),
                    // The overflow bucket has no upper bound.
                    LATENCY_BOUNDS_MS.get(i).map_or(Value::Null, |b| Value::Float(*b)),
                ),
                ("count".into(), Value::Int(count.load(Ordering::Relaxed) as i64)),
            ]));
        }
        let total_ns = self.latency_total_ns.load(Ordering::Relaxed);
        let max_ns = self.latency_max_ns.load(Ordering::Relaxed);
        let latency = Value::Obj(vec![
            ("count".into(), Value::Int(self.latency_count.load(Ordering::Relaxed) as i64)),
            ("total".into(), Value::Float(round_ms(total_ns))),
            ("max".into(), Value::Float(round_ms(max_ns))),
            ("buckets".into(), Value::Arr(buckets)),
        ]);
        vec![
            ("uptime_ms".into(), Value::Float(round3(self.uptime_ms()))),
            (
                "connections".into(),
                Value::Obj(vec![
                    ("accepted".into(), Value::Int(self.accepted.load(Ordering::Relaxed) as i64)),
                    ("active".into(), Value::Int(self.active.load(Ordering::Relaxed) as i64)),
                ]),
            ),
            ("requests".into(), Value::Obj(requests)),
            ("endpoints".into(), Value::Obj(self.endpoints_json())),
            ("latency_ms".into(), latency),
        ]
    }

    /// Render this struct's families as Prometheus text exposition: the
    /// request/connection counters and one latency summary per endpoint
    /// with p50/p90/p99 series (the API layer appends the cache gauges
    /// and the shared registry).
    pub fn render_prometheus(&self, out: &mut String) {
        prom::write_type(out, "consensus_uptime_ms", "gauge");
        prom::write_sample(out, "consensus_uptime_ms", &[], round3(self.uptime_ms()));
        prom::write_type(out, "consensus_connections_accepted_total", "counter");
        prom::write_sample(
            out,
            "consensus_connections_accepted_total",
            &[],
            self.accepted.load(Ordering::Relaxed) as f64,
        );
        prom::write_type(out, "consensus_connections_active", "gauge");
        prom::write_sample(
            out,
            "consensus_connections_active",
            &[],
            self.active.load(Ordering::Relaxed) as f64,
        );
        prom::write_type(out, "consensus_http_requests_total", "counter");
        for (endpoint, count) in Endpoint::ALL.iter().zip(&self.by_endpoint) {
            prom::write_sample(
                out,
                "consensus_http_requests_total",
                &[("endpoint", endpoint.name())],
                count.load(Ordering::Relaxed) as f64,
            );
        }
        prom::write_type(out, "consensus_http_requests_not_found_total", "counter");
        prom::write_sample(
            out,
            "consensus_http_requests_not_found_total",
            &[],
            self.not_found.load(Ordering::Relaxed) as f64,
        );
        prom::write_type(out, "consensus_http_errors_total", "counter");
        prom::write_sample(
            out,
            "consensus_http_errors_total",
            &[("class", "4xx")],
            self.errors_4xx.load(Ordering::Relaxed) as f64,
        );
        prom::write_sample(
            out,
            "consensus_http_errors_total",
            &[("class", "5xx")],
            self.errors_5xx.load(Ordering::Relaxed) as f64,
        );
        prom::write_type(out, "consensus_http_request_duration_ms", "summary");
        for endpoint in Endpoint::ALL {
            let hist = &self.latency_by_endpoint[endpoint.index()];
            for (_, q) in ENDPOINT_QUANTILES {
                prom::write_sample(
                    out,
                    "consensus_http_request_duration_ms",
                    &[("endpoint", endpoint.name()), ("quantile", quantile_label(q))],
                    round_ms(hist.quantile(q)),
                );
            }
            prom::write_sample(
                out,
                "consensus_http_request_duration_ms_max",
                &[("endpoint", endpoint.name())],
                round_ms(hist.max()),
            );
            prom::write_sample(
                out,
                "consensus_http_request_duration_ms_sum",
                &[("endpoint", endpoint.name())],
                round3(hist.sum() as f64 / 1e6),
            );
            prom::write_sample(
                out,
                "consensus_http_request_duration_ms_count",
                &[("endpoint", endpoint.name())],
                hist.count() as f64,
            );
        }
    }
}

fn quantile_label(q: f64) -> &'static str {
    if q == 0.5 {
        "0.5"
    } else if q == 0.9 {
        "0.9"
    } else {
        "0.99"
    }
}

/// Round milliseconds to 3 decimals — the one precision every emitted
/// `*_ms` field of this crate uses (metrics, healthz, the bench datum).
pub(crate) fn round3(ms: f64) -> f64 {
    (ms * 1e3).round() / 1e3
}

fn round_ms(ns: u64) -> f64 {
    round3(ns as f64 / 1e6)
}

/// Guard returned by [`Metrics::connection_active`].
#[derive(Debug)]
pub struct ActiveConnection<'a> {
    metrics: &'a Metrics,
}

impl Drop for ActiveConnection<'_> {
    fn drop(&mut self) {
        self.metrics.active.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_serialize() {
        let m = Metrics::new();
        m.connection_accepted();
        {
            let _active = m.connection_active();
            m.record(Some(Endpoint::Check), 200, Duration::from_micros(300));
            m.record(Some(Endpoint::Check), 422, Duration::from_millis(3));
            m.record(Some(Endpoint::Sweep), 500, Duration::from_millis(1));
            m.record(None, 404, Duration::from_millis(30));
        }
        assert_eq!(m.requests_total(), 4);
        let fields = Value::Obj(m.to_json());
        let requests = fields.get("requests").unwrap();
        assert_eq!(requests.get_usize("total"), Some(4));
        assert_eq!(requests.get_usize("check"), Some(2));
        assert_eq!(requests.get_usize("sweep"), Some(1));
        assert_eq!(requests.get_usize("not_found"), Some(1));
        // 4xx (422 + 404) and 5xx (500) count separately; `errors` stays
        // as their total for dashboard compatibility.
        assert_eq!(requests.get_usize("errors_4xx"), Some(2));
        assert_eq!(requests.get_usize("errors_5xx"), Some(1));
        assert_eq!(requests.get_usize("errors"), Some(3));
        let connections = fields.get("connections").unwrap();
        assert_eq!(connections.get_usize("accepted"), Some(1));
        assert_eq!(connections.get_usize("active"), Some(0), "guard must decrement");
        let latency = fields.get("latency_ms").unwrap();
        assert_eq!(latency.get_usize("count"), Some(4));
        let Some(Value::Arr(buckets)) = latency.get("buckets") else {
            panic!("buckets must be an array");
        };
        assert_eq!(buckets.len(), LATENCY_BOUNDS_MS.len() + 1);
        let counted: usize = buckets.iter().map(|b| b.get_usize("count").unwrap()).sum();
        assert_eq!(counted, 4, "every request lands in exactly one bucket");
        // 0.3 ms → the 0.5 bucket; 1 ms → 1.0; 3 ms → 5.0; 30 ms → 50.0.
        assert_eq!(buckets[1].get_usize("count"), Some(1));
        assert_eq!(buckets[2].get_usize("count"), Some(1));
        assert_eq!(buckets[4].get_usize("count"), Some(1));
        assert_eq!(buckets[7].get_usize("count"), Some(1));
    }

    #[test]
    fn per_endpoint_quantiles_track_latency() {
        let m = Metrics::new();
        for us in [100u64, 200, 400, 800, 10_000] {
            m.record(Some(Endpoint::Check), 200, Duration::from_micros(us));
        }
        let endpoints = Value::Obj(m.endpoints_json());
        let check = endpoints.get("check").unwrap();
        assert_eq!(check.get_usize("count"), Some(5));
        let p50 = check.get("p50_ms").and_then(Value::as_f64).unwrap();
        let p99 = check.get("p99_ms").and_then(Value::as_f64).unwrap();
        let max = check.get("max_ms").and_then(Value::as_f64).unwrap();
        assert!((0.4..1.0).contains(&p50), "p50 = {p50}");
        assert!(p99 >= 10.0, "p99 = {p99}");
        assert_eq!(max, 10.0, "max is exact");
        assert!(p50 <= p99);
        // Untouched endpoints report zeroed blocks, in reporting order.
        let sweep = endpoints.get("sweep").unwrap();
        assert_eq!(sweep.get_usize("count"), Some(0));
    }

    #[test]
    fn to_json_key_order_is_deterministic() {
        let m = Metrics::new();
        m.record(Some(Endpoint::Catalog), 200, Duration::from_micros(50));
        m.record(None, 404, Duration::from_micros(10));
        let keys = |fields: &[(String, Value)]| -> Vec<String> {
            fields.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>()
        };
        let a = m.to_json();
        let b = m.to_json();
        assert_eq!(keys(&a), keys(&b));
        // The serialized bodies agree byte-for-byte except uptime.
        let strip = |fields: Vec<(String, Value)>| {
            Value::Obj(fields).without_keys(&["uptime_ms"]).to_string()
        };
        assert_eq!(strip(a), strip(b));
    }

    #[test]
    fn prometheus_text_carries_per_endpoint_quantiles() {
        let m = Metrics::new();
        m.record(Some(Endpoint::Check), 200, Duration::from_micros(500));
        m.record(Some(Endpoint::Check), 503, Duration::from_micros(100));
        let mut out = String::new();
        m.render_prometheus(&mut out);
        assert!(out.contains("# TYPE consensus_http_request_duration_ms summary\n"));
        for q in ["0.5", "0.9", "0.99"] {
            assert!(
                out.contains(&format!(
                    "consensus_http_request_duration_ms{{endpoint=\"check\",quantile=\"{q}\"}}"
                )),
                "missing quantile {q} in:\n{out}"
            );
        }
        assert!(out.contains("consensus_http_errors_total{class=\"5xx\"} 1\n"));
        assert!(out.contains("consensus_http_errors_total{class=\"4xx\"} 0\n"));
        assert!(out.contains("consensus_http_request_duration_ms_count{endpoint=\"check\"} 2\n"));
        // Exactly one TYPE header per family.
        let headers = out.matches("# TYPE consensus_http_request_duration_ms ").count();
        assert_eq!(headers, 1);
    }
}
