//! Per-process service telemetry: request counters, a fixed-bucket latency
//! histogram, and connection counters — everything `GET /metrics` exposes
//! beyond the cache counters it reads from the shared
//! [`Session`](consensus_lab::session::Session).
//!
//! Lock-free: every datum is an atomic, so the hot path records a request
//! with a handful of relaxed increments and readers never contend with
//! workers.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use json::Value;

/// The service's routed endpoints, in stable reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/check`.
    Check,
    /// `POST /v1/sweep`.
    Sweep,
    /// `GET /v1/catalog`.
    Catalog,
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
}

impl Endpoint {
    /// All endpoints, in reporting order.
    pub const ALL: [Endpoint; 5] = [
        Endpoint::Check,
        Endpoint::Sweep,
        Endpoint::Catalog,
        Endpoint::Healthz,
        Endpoint::Metrics,
    ];

    /// The stable key used in the metrics JSON.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Check => "check",
            Endpoint::Sweep => "sweep",
            Endpoint::Catalog => "catalog",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
        }
    }
}

/// Upper bucket bounds of the latency histogram, in milliseconds; an
/// implicit overflow bucket catches everything beyond the last bound.
pub const LATENCY_BOUNDS_MS: [f64; 10] =
    [0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 1000.0];

/// Lock-free request/latency/connection counters; see the module docs.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    accepted: AtomicUsize,
    active: AtomicUsize,
    by_endpoint: [AtomicUsize; Endpoint::ALL.len()],
    not_found: AtomicUsize,
    errors: AtomicUsize,
    buckets: [AtomicUsize; LATENCY_BOUNDS_MS.len() + 1],
    latency_count: AtomicUsize,
    latency_total_ns: AtomicU64,
    latency_max_ns: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Zeroed counters, uptime starting now.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            accepted: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            by_endpoint: Default::default(),
            not_found: AtomicUsize::new(0),
            errors: AtomicUsize::new(0),
            buckets: Default::default(),
            latency_count: AtomicUsize::new(0),
            latency_total_ns: AtomicU64::new(0),
            latency_max_ns: AtomicU64::new(0),
        }
    }

    /// Record an accepted connection.
    pub fn connection_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark a connection as being handled; the returned guard decrements
    /// the active gauge when dropped.
    pub fn connection_active(&self) -> ActiveConnection<'_> {
        self.active.fetch_add(1, Ordering::Relaxed);
        ActiveConnection { metrics: self }
    }

    /// Record one routed (or unrouted) request and its handling latency.
    pub fn record(&self, endpoint: Option<Endpoint>, status: u16, elapsed: Duration) {
        match endpoint {
            Some(e) => {
                let index = Endpoint::ALL.iter().position(|x| *x == e).expect("listed endpoint");
                self.by_endpoint[index].fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.not_found.fetch_add(1, Ordering::Relaxed);
            }
        }
        if status >= 400 {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let ms = elapsed.as_secs_f64() * 1e3;
        let bucket = LATENCY_BOUNDS_MS
            .iter()
            .position(|bound| ms <= *bound)
            .unwrap_or(LATENCY_BOUNDS_MS.len());
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.latency_total_ns.fetch_add(ns, Ordering::Relaxed);
        self.latency_max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Total requests recorded (routed plus unrouted).
    pub fn requests_total(&self) -> usize {
        self.latency_count.load(Ordering::Relaxed)
    }

    /// Milliseconds since the metrics (≈ the server) started.
    pub fn uptime_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    /// The `connections`/`requests`/`latency_ms` blocks of the metrics
    /// payload (the cache blocks are appended by the API layer, which owns
    /// the `Session`).
    pub fn to_json(&self) -> Vec<(String, Value)> {
        let mut requests: Vec<(String, Value)> =
            vec![("total".into(), Value::Int(self.requests_total() as i64))];
        for (endpoint, count) in Endpoint::ALL.iter().zip(&self.by_endpoint) {
            requests
                .push((endpoint.name().into(), Value::Int(count.load(Ordering::Relaxed) as i64)));
        }
        requests
            .push(("not_found".into(), Value::Int(self.not_found.load(Ordering::Relaxed) as i64)));
        requests.push(("errors".into(), Value::Int(self.errors.load(Ordering::Relaxed) as i64)));

        let mut buckets = Vec::with_capacity(self.buckets.len());
        for (i, count) in self.buckets.iter().enumerate() {
            buckets.push(Value::Obj(vec![
                (
                    "le".into(),
                    // The overflow bucket has no upper bound.
                    LATENCY_BOUNDS_MS.get(i).map_or(Value::Null, |b| Value::Float(*b)),
                ),
                ("count".into(), Value::Int(count.load(Ordering::Relaxed) as i64)),
            ]));
        }
        let total_ns = self.latency_total_ns.load(Ordering::Relaxed);
        let max_ns = self.latency_max_ns.load(Ordering::Relaxed);
        let latency = Value::Obj(vec![
            ("count".into(), Value::Int(self.latency_count.load(Ordering::Relaxed) as i64)),
            ("total".into(), Value::Float(round_ms(total_ns))),
            ("max".into(), Value::Float(round_ms(max_ns))),
            ("buckets".into(), Value::Arr(buckets)),
        ]);
        vec![
            ("uptime_ms".into(), Value::Float(round3(self.uptime_ms()))),
            (
                "connections".into(),
                Value::Obj(vec![
                    ("accepted".into(), Value::Int(self.accepted.load(Ordering::Relaxed) as i64)),
                    ("active".into(), Value::Int(self.active.load(Ordering::Relaxed) as i64)),
                ]),
            ),
            ("requests".into(), Value::Obj(requests)),
            ("latency_ms".into(), latency),
        ]
    }
}

/// Round milliseconds to 3 decimals — the one precision every emitted
/// `*_ms` field of this crate uses (metrics, healthz, the bench datum).
pub(crate) fn round3(ms: f64) -> f64 {
    (ms * 1e3).round() / 1e3
}

fn round_ms(ns: u64) -> f64 {
    round3(ns as f64 / 1e6)
}

/// Guard returned by [`Metrics::connection_active`].
#[derive(Debug)]
pub struct ActiveConnection<'a> {
    metrics: &'a Metrics,
}

impl Drop for ActiveConnection<'_> {
    fn drop(&mut self) {
        self.metrics.active.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_serialize() {
        let m = Metrics::new();
        m.connection_accepted();
        {
            let _active = m.connection_active();
            m.record(Some(Endpoint::Check), 200, Duration::from_micros(300));
            m.record(Some(Endpoint::Check), 422, Duration::from_millis(3));
            m.record(None, 404, Duration::from_millis(30));
        }
        assert_eq!(m.requests_total(), 3);
        let fields = Value::Obj(m.to_json());
        let requests = fields.get("requests").unwrap();
        assert_eq!(requests.get_usize("total"), Some(3));
        assert_eq!(requests.get_usize("check"), Some(2));
        assert_eq!(requests.get_usize("sweep"), Some(0));
        assert_eq!(requests.get_usize("not_found"), Some(1));
        assert_eq!(requests.get_usize("errors"), Some(2));
        let connections = fields.get("connections").unwrap();
        assert_eq!(connections.get_usize("accepted"), Some(1));
        assert_eq!(connections.get_usize("active"), Some(0), "guard must decrement");
        let latency = fields.get("latency_ms").unwrap();
        assert_eq!(latency.get_usize("count"), Some(3));
        let Some(Value::Arr(buckets)) = latency.get("buckets") else {
            panic!("buckets must be an array");
        };
        assert_eq!(buckets.len(), LATENCY_BOUNDS_MS.len() + 1);
        let counted: usize = buckets.iter().map(|b| b.get_usize("count").unwrap()).sum();
        assert_eq!(counted, 3, "every request lands in exactly one bucket");
        // 0.3 ms → the 0.5 bucket; 3 ms → the 5.0 bucket; 30 ms → 50.0.
        assert_eq!(buckets[1].get_usize("count"), Some(1));
        assert_eq!(buckets[4].get_usize("count"), Some(1));
        assert_eq!(buckets[7].get_usize("count"), Some(1));
    }
}
