//! The service API: routing and JSON request/response shapes over one
//! shared [`Session`].
//!
//! Every data-plane request is answered by the *same* long-lived
//! [`Session`] — that is the point of the service: the first query warms
//! the in-memory [`SpaceCache`](consensus_lab::cache::SpaceCache) (and the
//! verdict journal, when configured), and every request after it is a
//! cache hit. [`App`] is [`Sync`]; the server's worker threads share one
//! instance behind an [`std::sync::Arc`].
//!
//! | Method | Path          | Body                                   | Answer |
//! |--------|---------------|----------------------------------------|--------|
//! | POST   | `/v1/check`   | one query object                       | the [`ScenarioRecord`] JSON |
//! | POST   | `/v1/sweep`   | a grid (`catalog`+`max_depth` or `queries`), optional `"shard":"i/n"` | `records` + `meta` |
//! | GET    | `/v1/journal/segment` | —                              | the verdict journal as an absorbable warm-start segment |
//! | GET    | `/v1/trace?since=ID` | —                               | this worker's span-ring fragment past the cursor (non-destructive) |
//! | GET    | `/v1/catalog` | —                                      | the built-in adversary registry |
//! | GET    | `/v1/stats`   | —                                      | structured [`consensus_obs`] registry snapshot |
//! | GET    | `/healthz`    | —                                      | liveness |
//! | GET    | `/metrics`    | —                                      | request/latency/cache counters (JSON) |
//! | GET    | `/metrics?format=prometheus` | —                       | the same counters as Prometheus text |
//!
//! Every request gets a process-unique id, carried as the `id` attribute
//! of its `http.request` trace span and (when request logging is enabled,
//! as the `serve` subcommand does) echoed in one structured completion
//! line on stderr. Every response also carries an `x-request-id` header
//! (propagated from the request when supplied, generated otherwise), and
//! an `x-consensus-trace` request header parents the request's span under
//! the remote caller — see [`App::handle`].
//!
//! Failures are structured: `{"error":{"status":…,"kind":…,"message":…}}`,
//! with the status class decided by [`Error::status_code`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use consensus_core::error::Error;
use consensus_lab::report::SweepMeta;
use consensus_lab::scenario::{AdversarySpec, AnalysisKind, Shard};
use consensus_lab::session::{Query, Session};
use consensus_lab::store::ScenarioRecord;
use consensus_obs::metrics::registry;
use consensus_obs::prom;
use consensus_obs::trace::{trace_id, tracer, TraceContext, TRACE_HEADER};
use json::Value;

use crate::http::Request;
use crate::metrics::{Endpoint, Metrics};

/// Refuse `/v1/sweep` grids larger than this many scenarios — a bound on
/// per-request work, not a scalability limit (shard bigger grids across
/// requests, exactly as the CLI shards them across processes).
pub const MAX_SWEEP_SCENARIOS: usize = 65_536;

/// One HTTP answer: a status, a body, its content type, and any extra
/// response headers (the `x-request-id` correlation echo).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// The `Content-Type` of the body (`application/json` for every
    /// route except the Prometheus exposition).
    pub content_type: &'static str,
    /// Extra response header fields, written verbatim after the framing
    /// headers (today: the `x-request-id` echo stamped by
    /// [`App::handle`]).
    pub headers: Vec<(String, String)>,
}

/// The default body content type.
const JSON_CONTENT_TYPE: &str = "application/json";

impl Response {
    /// A `200` with the given JSON body.
    pub fn ok(body: String) -> Self {
        Response { status: 200, body, content_type: JSON_CONTENT_TYPE, headers: Vec::new() }
    }

    /// A `200` with a plain-text body of the given content type.
    pub fn text(body: String, content_type: &'static str) -> Self {
        Response { status: 200, body, content_type, headers: Vec::new() }
    }

    /// A structured error payload; see the module docs.
    pub fn error(status: u16, kind: &str, message: &str) -> Self {
        let body = Value::Obj(vec![(
            "error".into(),
            Value::Obj(vec![
                ("status".into(), Value::Int(i64::from(status))),
                ("kind".into(), Value::Str(kind.to_string())),
                ("message".into(), Value::Str(message.to_string())),
            ]),
        )]);
        Response {
            status,
            body: body.to_string(),
            content_type: JSON_CONTENT_TYPE,
            headers: Vec::new(),
        }
    }

    /// The structured form of a typed facade [`Error`], via its
    /// [`status_code`](Error::status_code)/[`kind`](Error::kind) mapping.
    pub fn from_error(err: &Error) -> Self {
        Response::error(err.status_code(), err.kind(), &err.to_string())
    }
}

/// The routable application: one shared warm [`Session`] plus telemetry.
#[derive(Debug)]
pub struct App {
    session: Session,
    metrics: Metrics,
    /// The `/v1/catalog` payload, rendered once — the registry is static
    /// for the process lifetime, so requests must not rebuild every
    /// adversary just to re-serialize an identical body.
    catalog_body: String,
    /// The next request id — process-unique, monotone, shared by the
    /// `http.request` span and the request log line.
    next_request_id: AtomicU64,
    /// Emit one structured completion line per request on stderr (the
    /// `serve` subcommand turns this on; tests and benches stay quiet).
    log_requests: bool,
}

impl App {
    /// An app answering from `session`.
    pub fn new(session: Session) -> Self {
        App {
            session,
            metrics: Metrics::new(),
            catalog_body: render_catalog(),
            next_request_id: AtomicU64::new(1),
            log_requests: false,
        }
    }

    /// Enable (or disable) the per-request completion log line.
    #[must_use]
    pub fn log_requests(mut self, enabled: bool) -> Self {
        self.log_requests = enabled;
        self
    }

    /// The shared session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The service telemetry (the server layer records connections here).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Route and answer one request, recording telemetry: the latency
    /// histograms, an `http.request` span carrying the request id (which
    /// parents any session spans the handler opens on this thread), and
    /// optionally one structured completion line.
    ///
    /// Distributed context: an `x-consensus-trace` request header (see
    /// [`TraceContext`]) parents this request's span under the remote
    /// caller — directly via [`consensus_obs::trace::Tracer::span_under`]
    /// when the caller shares
    /// this process's trace id (the in-process cluster shape), or as
    /// `remote_trace`/`remote_parent` span attributes a coordinator uses
    /// to re-parent the stitched fragment. An `x-request-id` header is
    /// echoed on the response (generated when absent), so cluster retry
    /// and rebalance log lines correlate with worker completion lines.
    pub fn handle(&self, request: &Request) -> Response {
        let start = Instant::now();
        let request_id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        let remote = request.header(TRACE_HEADER).and_then(TraceContext::parse);
        let mut span = match remote {
            Some(ctx) if ctx.is_local() => {
                tracer().span_under("http.request", Some(ctx.parent_span))
            }
            _ => tracer().span("http.request"),
        };
        span.set_attr("id", request_id);
        span.set_attr("method", request.method.as_str());
        span.set_attr("target", request.target.as_str());
        if let Some(ctx) = remote.filter(|ctx| !ctx.is_local()) {
            // A foreign caller: record its context so a coordinator can
            // re-parent this fragment when stitching the cluster trace.
            span.set_attr("remote_trace", format!("{:032x}", ctx.trace_id));
            span.set_attr("remote_parent", ctx.parent_span);
        }
        let echo_id = match request.header("x-request-id") {
            Some(supplied) => supplied.to_string(),
            // Prefix the per-process counter with the trace id's top 32
            // bits so ids stay unique across a fleet of workers.
            None => format!("{:08x}-{request_id}", (trace_id() >> 96) as u32),
        };
        let (endpoint, mut response) = self.route(request);
        response.headers.push(("x-request-id".into(), echo_id.clone()));
        let elapsed = start.elapsed();
        span.set_attr("endpoint", endpoint.map_or("-", Endpoint::name));
        span.set_attr("status", u64::from(response.status));
        drop(span);
        self.metrics.record(endpoint, response.status, elapsed);
        if self.log_requests {
            let line = Value::Obj(vec![
                ("event".into(), Value::Str("http.request".into())),
                ("id".into(), Value::Int(request_id as i64)),
                ("request_id".into(), Value::Str(echo_id)),
                ("method".into(), Value::Str(request.method.clone())),
                ("target".into(), Value::Str(request.target.clone())),
                ("endpoint".into(), Value::Str(endpoint.map_or("-", Endpoint::name).to_string())),
                ("status".into(), Value::Int(i64::from(response.status))),
                ("dur_us".into(), Value::Int(elapsed.as_micros().min(i64::MAX as u128) as i64)),
            ]);
            eprintln!("{line}");
        }
        response
    }

    fn route(&self, request: &Request) -> (Option<Endpoint>, Response) {
        let method = request.method.as_str();
        // Split the origin-form target into path and query (`/metrics` is
        // the only route that reads its query string today).
        let (path, query) = request
            .target
            .split_once('?')
            .map_or((request.target.as_str(), ""), |(p, q)| (p, q));
        match path {
            "/v1/check" => {
                (Some(Endpoint::Check), self.expect_post(method, request, |body| self.check(body)))
            }
            "/v1/sweep" => {
                (Some(Endpoint::Sweep), self.expect_post(method, request, |body| self.sweep(body)))
            }
            "/v1/journal/segment" => {
                (Some(Endpoint::Segment), self.expect_get(method, Self::journal_segment))
            }
            "/v1/trace" => {
                let response = if method == "GET" {
                    self.trace_body(query)
                } else {
                    Response::error(405, "method-not-allowed", "use GET")
                };
                (Some(Endpoint::Trace), response)
            }
            "/v1/catalog" => (Some(Endpoint::Catalog), self.expect_get(method, Self::catalog)),
            "/v1/stats" => (Some(Endpoint::Stats), self.expect_get(method, Self::stats_body)),
            "/healthz" => (Some(Endpoint::Healthz), self.expect_get(method, Self::healthz)),
            "/metrics" if query.split('&').any(|kv| kv == "format=prometheus") => {
                (Some(Endpoint::Metrics), self.expect_get(method, Self::metrics_prometheus))
            }
            "/metrics" => (Some(Endpoint::Metrics), self.expect_get(method, Self::metrics_body)),
            other => (None, Response::error(404, "not-found", &format!("no route for {other:?}"))),
        }
    }

    fn expect_post(
        &self,
        method: &str,
        request: &Request,
        handler: impl FnOnce(&Value) -> Response,
    ) -> Response {
        if method != "POST" {
            return Response::error(405, "method-not-allowed", "use POST");
        }
        let text = match request.body_str() {
            Ok(text) => text,
            Err(e) => return Response::error(400, "bad-body", &e.to_string()),
        };
        match json::parse(text) {
            Ok(value) => handler(&value),
            Err(e) => Response::error(400, "bad-body", &e.to_string()),
        }
    }

    fn expect_get(&self, method: &str, handler: impl FnOnce(&Self) -> Response) -> Response {
        if method != "GET" {
            return Response::error(405, "method-not-allowed", "use GET");
        }
        handler(self)
    }

    fn check(&self, body: &Value) -> Response {
        let query = match parse_query(body) {
            Ok(query) => query,
            Err(response) => return response,
        };
        match self.session.check(&query) {
            Ok(record) => Response::ok(record.to_json().to_string()),
            Err(err) => Response::from_error(&err),
        }
    }

    fn sweep(&self, body: &Value) -> Response {
        let (entries, shard) = match parse_sweep(body) {
            Ok(parsed) => parsed,
            Err(response) => return response,
        };
        if shard.is_some() {
            registry().counter("sweep.shard_requests").inc();
        }
        let report = self.session.check_many_indexed(&entries);
        // The same counters a CLI sweep writes to sweep-meta.json — note
        // the cache block (disk hits included, filled in by the runner) is
        // the session-cumulative view, matching `/metrics`.
        let meta = SweepMeta {
            scenarios: entries.len(),
            threads: report.threads,
            cache: report.cache,
            expand: report.expand,
        };
        let records: Vec<Value> =
            report.store.records().iter().map(ScenarioRecord::to_json).collect();
        Response::ok(
            Value::Obj(vec![
                ("records".into(), Value::Arr(records)),
                ("meta".into(), meta.to_json()),
            ])
            .to_string(),
        )
    }

    fn catalog(&self) -> Response {
        Response::ok(self.catalog_body.clone())
    }

    /// `GET /v1/journal/segment`: this worker's verdict journal as one
    /// absorbable segment — the peer tier of the memory → disk → peer
    /// warm-start ladder (`serve --warm-from` on the receiving side). The
    /// payload carries the journal [`cache_salt`](consensus_lab::persist::cache_salt)
    /// so the receiver can refuse segments from a different code version,
    /// exactly as it refuses a stale local journal. A worker running
    /// without a cache directory answers `{"enabled": false}` and no
    /// entries.
    fn journal_segment(&self) -> Response {
        registry().counter("journal.segments_served").inc();
        let (enabled, entries) = match self.session.disk_cache() {
            None => (false, Vec::new()),
            Some(disk) => (true, disk.export_entries()),
        };
        Response::ok(
            Value::Obj(vec![
                ("enabled".into(), Value::Bool(enabled)),
                ("salt".into(), Value::Str(consensus_lab::persist::cache_salt())),
                ("count".into(), Value::Int(entries.len() as i64)),
                ("entries".into(), Value::Arr(entries)),
            ])
            .to_string(),
        )
    }

    /// `GET /v1/trace?since=ID`: this worker's span-ring fragment — every
    /// finished span with id greater than `since` (default 0), oldest
    /// first, **without** disturbing the ring (so it composes with a
    /// concurrent `--trace-out` flusher). The payload carries the
    /// process trace id (hex), the tracer's enabled flag, the `dropped`
    /// overwrite counter, and a `cursor` (the max id returned, or the
    /// request's `since` when nothing is new) the caller resumes from —
    /// the drain half of cross-node trace stitching.
    fn trace_body(&self, query: &str) -> Response {
        let mut since = 0u64;
        for kv in query.split('&').filter(|kv| !kv.is_empty()) {
            let Some(("since", value)) = kv.split_once('=') else {
                return Response::error(400, "bad-request", &format!("unknown query {kv:?}"));
            };
            since = match value.parse() {
                Ok(n) => n,
                Err(_) => {
                    return Response::error(
                        400,
                        "bad-request",
                        &format!("\"since\" must be a span id, got {value:?}"),
                    );
                }
            };
        }
        let t = tracer();
        let spans = t.spans_since(since);
        let cursor = spans.iter().map(|s| s.id).max().unwrap_or(since);
        // SpanRecord::to_jsonl already renders each span as one JSON
        // object — splice them into the array verbatim.
        let mut body = format!(
            "{{\"trace_id\":\"{:032x}\",\"enabled\":{},\"dropped\":{},\"cursor\":{cursor},\
             \"spans\":[",
            trace_id(),
            t.is_enabled(),
            t.dropped(),
        );
        for (i, span) in spans.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&span.to_jsonl());
        }
        body.push_str("]}");
        Response::ok(body)
    }

    fn healthz(&self) -> Response {
        Response::ok(
            Value::Obj(vec![
                ("status".into(), Value::Str("ok".into())),
                (
                    "uptime_ms".into(),
                    Value::Float(crate::metrics::round3(self.metrics.uptime_ms())),
                ),
            ])
            .to_string(),
        )
    }

    /// The cache hierarchy, exactly as a SweepReport accounts it: space
    /// counters from the shared SpaceCache, scenario-level disk hits from
    /// the journal.
    fn cache_stats(&self) -> consensus_lab::cache::CacheStats {
        let mut stats = self.session.space_cache().stats();
        if let Some(disk) = self.session.disk_cache() {
            stats.disk_hits = disk.hits();
        }
        stats
    }

    fn metrics_body(&self) -> Response {
        let mut fields = self.metrics.to_json();
        let stats = self.cache_stats();
        fields.push((
            "cache".into(),
            Value::Obj(vec![
                ("hits".into(), Value::Int(stats.hits as i64)),
                ("builds".into(), Value::Int(stats.builds as i64)),
                ("ladder_hits".into(), Value::Int(stats.ladder_hits as i64)),
                ("disk_hits".into(), Value::Int(stats.disk_hits as i64)),
                ("budget_misses".into(), Value::Int(stats.budget_misses as i64)),
            ]),
        ));
        let disk = match self.session.disk_cache() {
            None => Value::Obj(vec![("enabled".into(), Value::Bool(false))]),
            Some(disk) => Value::Obj(vec![
                ("enabled".into(), Value::Bool(true)),
                ("loaded".into(), Value::Int(disk.loaded() as i64)),
                ("hits".into(), Value::Int(disk.hits() as i64)),
                ("stores".into(), Value::Int(disk.stores() as i64)),
            ]),
        };
        fields.push(("disk".into(), disk));
        Response::ok(Value::Obj(fields).to_string())
    }

    /// `GET /v1/stats`: the structured [`consensus_obs`] registry
    /// snapshot (stage histograms in nanoseconds, cache/journal counters)
    /// plus the per-endpoint latency blocks and tracer counters — the
    /// machine-readable twin of the Prometheus page.
    fn stats_body(&self) -> Response {
        let snap = registry().snapshot();
        let counters: Vec<(String, Value)> =
            snap.counters.iter().map(|(n, v)| (n.clone(), Value::Int(*v as i64))).collect();
        let gauges: Vec<(String, Value)> =
            snap.gauges.iter().map(|(n, v)| (n.clone(), Value::Int(*v as i64))).collect();
        let histograms: Vec<(String, Value)> = snap
            .histograms
            .iter()
            .map(|(n, h)| {
                // Raw (bound, count) bucket pairs ride along so a fleet
                // coordinator can merge histograms exactly (bucket-wise
                // addition is commutative/associative) instead of
                // averaging quantiles.
                let buckets: Vec<Value> = h
                    .buckets
                    .iter()
                    .map(|(bound, count)| {
                        Value::Arr(vec![Value::Int(*bound as i64), Value::Int(*count as i64)])
                    })
                    .collect();
                (
                    n.clone(),
                    Value::Obj(vec![
                        ("count".into(), Value::Int(h.count as i64)),
                        ("sum".into(), Value::Int(h.sum as i64)),
                        ("max".into(), Value::Int(h.max as i64)),
                        ("p50".into(), Value::Int(h.quantile(0.5) as i64)),
                        ("p90".into(), Value::Int(h.quantile(0.9) as i64)),
                        ("p99".into(), Value::Int(h.quantile(0.99) as i64)),
                        ("buckets".into(), Value::Arr(buckets)),
                    ]),
                )
            })
            .collect();
        let t = tracer();
        Response::ok(
            Value::Obj(vec![
                (
                    "uptime_ms".into(),
                    Value::Float(crate::metrics::round3(self.metrics.uptime_ms())),
                ),
                (
                    "registry".into(),
                    Value::Obj(vec![
                        ("counters".into(), Value::Obj(counters)),
                        ("gauges".into(), Value::Obj(gauges)),
                        ("histograms_ns".into(), Value::Obj(histograms)),
                    ]),
                ),
                ("endpoints".into(), Value::Obj(self.metrics.endpoints_json())),
                (
                    "trace".into(),
                    Value::Obj(vec![
                        ("enabled".into(), Value::Bool(t.is_enabled())),
                        ("spans_started".into(), Value::Int(t.spans_started() as i64)),
                        ("dropped".into(), Value::Int(t.dropped() as i64)),
                    ]),
                ),
            ])
            .to_string(),
        )
    }

    /// `GET /metrics?format=prometheus`: the same counters as the JSON
    /// page, rendered as Prometheus text exposition (version 0.0.4) —
    /// request counters and per-endpoint latency summaries from
    /// [`Metrics`], cache counters from the shared session, and the full
    /// [`consensus_obs`] registry (name-sorted, so the page layout is
    /// deterministic).
    fn metrics_prometheus(&self) -> Response {
        let mut out = String::new();
        self.metrics.render_prometheus(&mut out);
        let stats = self.cache_stats();
        prom::write_type(&mut out, "consensus_cache_events_total", "counter");
        for (kind, value) in [
            ("hits", stats.hits),
            ("builds", stats.builds),
            ("ladder_hits", stats.ladder_hits),
            ("disk_hits", stats.disk_hits),
            ("budget_misses", stats.budget_misses),
        ] {
            prom::write_sample(
                &mut out,
                "consensus_cache_events_total",
                &[("kind", kind)],
                value as f64,
            );
        }
        let snap = registry().snapshot();
        for (name, value) in &snap.counters {
            let name = format!("consensus_{}_total", prom::metric_name(name));
            prom::write_type(&mut out, &name, "counter");
            prom::write_sample(&mut out, &name, &[], *value as f64);
        }
        for (name, value) in &snap.gauges {
            let name = format!("consensus_{}", prom::metric_name(name));
            prom::write_type(&mut out, &name, "gauge");
            prom::write_sample(&mut out, &name, &[], *value as f64);
        }
        for (name, hist) in &snap.histograms {
            let name = format!("consensus_{}_ns", prom::metric_name(name));
            prom::write_type(&mut out, &name, "summary");
            for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
                prom::write_sample(
                    &mut out,
                    &name,
                    &[("quantile", label)],
                    hist.quantile(q) as f64,
                );
            }
            prom::write_sample(&mut out, &format!("{name}_sum"), &[], hist.sum as f64);
            prom::write_sample(&mut out, &format!("{name}_count"), &[], hist.count as f64);
        }
        Response::text(out, prom::CONTENT_TYPE)
    }
}

fn render_catalog() -> String {
    let entries: Vec<Value> = adversary::catalog::entries()
        .iter()
        .map(|entry| {
            let ma = entry.build();
            Value::Obj(vec![
                ("name".into(), Value::Str(entry.name.to_string())),
                ("n".into(), Value::Int(ma.n() as i64)),
                ("compact".into(), Value::Bool(ma.is_compact())),
                (
                    "expected".into(),
                    Value::Str(
                        match entry.expected {
                            Some(true) => "solvable",
                            Some(false) => "unsolvable",
                            None => "mixed",
                        }
                        .to_string(),
                    ),
                ),
                ("summary".into(), Value::Str(entry.summary.to_string())),
                ("spec".into(), Value::Str(entry.spec.to_string())),
            ])
        })
        .collect();
    Value::Obj(vec![("entries".into(), Value::Arr(entries))]).to_string()
}

fn bad_request(message: &str) -> Response {
    Response::error(400, "bad-request", message)
}

fn object_keys<'a>(value: &'a Value, allowed: &[&str]) -> Result<&'a [(String, Value)], Response> {
    let Value::Obj(fields) = value else {
        return Err(bad_request("request body must be a JSON object"));
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(bad_request(&format!(
                "unknown field {key:?} (expected one of: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(fields)
}

/// Parse one query object: `{"spec": term, depth, [analysis],
/// [certificate]}` — the
/// shared spec language ([`adversary::spec`]) used by `consensus-lab check
/// --spec`. The pre-redesign vocabulary (`"adversary"` for catalog names,
/// `"pool"`/`"eventually"`/`"by"` for 2-process pools) is kept as compat
/// aliases lowering to the same terms, so alias and `"spec"` requests for
/// one adversary produce byte-identical records — with one intentional
/// tightening: an `"eventually"` target absent from the `"pool"` word is
/// now a 400 (the shared `eventually(pool, target)` rule), where the
/// pre-redesign path silently checked a vacuous adversary admitting no
/// sequence at all (see [`AdversarySpec::pool`]).
fn parse_query(value: &Value) -> Result<Query, Response> {
    object_keys(
        value,
        &[
            "spec",
            "adversary",
            "pool",
            "eventually",
            "by",
            "depth",
            "analysis",
            "certificate",
        ],
    )?;
    let spec = match (value.get("spec"), value.get("adversary"), value.get("pool")) {
        (Some(_), Some(_), _) | (Some(_), _, Some(_)) => {
            return Err(bad_request(
                "\"spec\" and the \"adversary\"/\"pool\" compat aliases are mutually exclusive",
            ));
        }
        (Some(spec), None, None) => {
            if value.get("eventually").is_some() || value.get("by").is_some() {
                return Err(bad_request(
                    "\"eventually\"/\"by\" only apply to \"pool\" queries — spell the liveness \
                     inside \"spec\" (e.g. \"eventually(<->, by=2)\")",
                ));
            }
            let Some(spec) = spec.as_str() else {
                return Err(bad_request("\"spec\" must be a spec-language string"));
            };
            AdversarySpec::parse(spec).map_err(|e| Response::from_error(&e))?
        }
        (None, Some(_), Some(_)) => {
            return Err(bad_request("\"adversary\" and \"pool\" are mutually exclusive"));
        }
        (None, Some(name), None) => {
            if value.get("eventually").is_some() || value.get("by").is_some() {
                return Err(bad_request("\"eventually\"/\"by\" only apply to \"pool\" queries"));
            }
            match name.as_str() {
                Some(name) => AdversarySpec::catalog(name),
                None => return Err(bad_request("\"adversary\" must be a catalog name string")),
            }
        }
        (None, None, Some(word)) => {
            let Some(word) = word.as_str() else {
                return Err(bad_request("\"pool\" must be a graph-word string"));
            };
            let eventually = match value.get("eventually") {
                None => {
                    if value.get("by").is_some() {
                        return Err(bad_request("\"by\" requires \"eventually\""));
                    }
                    None
                }
                Some(target) => {
                    let Some(target) = target.as_str() else {
                        return Err(bad_request("\"eventually\" must be a graph-token string"));
                    };
                    let deadline = match value.get("by") {
                        None => None,
                        Some(_) => Some(value.get_usize("by").ok_or_else(|| {
                            bad_request("\"by\" must be a non-negative round number")
                        })?),
                    };
                    Some((target.to_string(), deadline))
                }
            };
            AdversarySpec::pool(word, eventually.as_ref().map(|(t, by)| (t.as_str(), *by)))
                .map_err(|e| Response::from_error(&e))?
        }
        (None, None, None) => {
            return Err(bad_request(
                "query needs \"spec\", \"adversary\" (catalog name), or \"pool\"",
            ));
        }
    };
    let depth = value
        .get_usize("depth")
        .ok_or_else(|| bad_request("query needs a non-negative integer \"depth\""))?;
    let analysis = match value.get("analysis") {
        None => AnalysisKind::Solvability,
        Some(name) => {
            let Some(name) = name.as_str() else {
                return Err(bad_request("\"analysis\" must be an analysis-name string"));
            };
            AnalysisKind::parse(name).map_err(|e| Response::from_error(&e))?
        }
    };
    let certificate = match value.get("certificate") {
        None => false,
        Some(Value::Bool(b)) => *b,
        Some(_) => return Err(bad_request("\"certificate\" must be a boolean")),
    };
    let query = Query::new(spec, depth, analysis);
    Ok(if certificate {
        query.with_certificate()
    } else {
        query
    })
}

/// A parsed sweep body: the globally indexed queries to run (already
/// restricted to the requested shard, when one was given) plus that
/// shard.
type SweepRequest = (Vec<(usize, Query)>, Option<Shard>);

/// Parse a sweep body into globally indexed queries: either an explicit
/// `"queries"` array (indices are array positions) or the catalog grid
/// (`"catalog": true` + `"max_depth"` + optional `"analyses"`), whose
/// indices — and therefore whose records — match `consensus-lab sweep`
/// exactly. An optional `"shard": "i/n"` field (the CLI `--shard`
/// grammar, via [`Shard::parse`]) restricts the computed slice while
/// keeping the *global* indices, so shard responses from different
/// workers merge byte-stably.
fn parse_sweep(value: &Value) -> Result<SweepRequest, Response> {
    let fields = object_keys(value, &["queries", "catalog", "max_depth", "analyses", "shard"])?;
    let shard = match value.get("shard") {
        None => None,
        Some(spec) => {
            let Some(spec) = spec.as_str() else {
                return Err(bad_request("\"shard\" must be an \"i/n\" string"));
            };
            Some(Shard::parse(spec).map_err(|e| Response::from_error(&e))?)
        }
    };
    let grid_fields = fields.len() - usize::from(shard.is_some());
    let queries = if let Some(list) = value.get("queries") {
        if grid_fields > 1 {
            return Err(bad_request("\"queries\" excludes the catalog-grid fields"));
        }
        let Value::Arr(items) = list else {
            return Err(bad_request("\"queries\" must be an array of query objects"));
        };
        let mut queries = Vec::with_capacity(items.len());
        for item in items {
            queries.push(parse_query(item)?);
        }
        queries
    } else {
        if value.get("catalog").and_then(Value::as_bool) != Some(true) {
            return Err(bad_request("sweep needs \"queries\" or \"catalog\": true"));
        }
        let max_depth = value
            .get_usize("max_depth")
            .ok_or_else(|| bad_request("catalog sweep needs an integer \"max_depth\""))?;
        let analyses = match value.get("analyses") {
            None => AnalysisKind::ALL.to_vec(),
            Some(Value::Arr(names)) => {
                let mut kinds = Vec::with_capacity(names.len());
                for name in names {
                    let Some(name) = name.as_str() else {
                        return Err(bad_request("\"analyses\" must be analysis-name strings"));
                    };
                    kinds.push(AnalysisKind::parse(name).map_err(|e| Response::from_error(&e))?);
                }
                kinds
            }
            Some(_) => return Err(bad_request("\"analyses\" must be an array")),
        };
        Query::catalog_grid(max_depth, &analyses)
    };
    if queries.is_empty() {
        return Err(bad_request("sweep grid is empty"));
    }
    if queries.len() > MAX_SWEEP_SCENARIOS {
        return Err(bad_request(&format!(
            "sweep grid of {} scenarios exceeds the per-request bound of {MAX_SWEEP_SCENARIOS}; \
             shard it across requests",
            queries.len()
        )));
    }
    let grid_len = queries.len();
    let entries: Vec<(usize, Query)> = queries
        .into_iter()
        .enumerate()
        .filter(|(i, _)| shard.as_ref().is_none_or(|shard| shard.selects(*i)))
        .collect();
    if entries.is_empty() {
        return Err(bad_request(&format!(
            "shard {} selects no scenarios from a grid of {grid_len}",
            shard.expect("only a shard can empty a non-empty grid")
        )));
    }
    Ok((entries, shard))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, target: &str, body: &str) -> Request {
        Request {
            method: method.to_string(),
            target: target.to_string(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            keep_alive: true,
        }
    }

    fn app() -> App {
        App::new(Session::new())
    }

    #[test]
    fn check_answers_a_record() {
        let app = app();
        let response = app.handle(&request(
            "POST",
            "/v1/check",
            r#"{"adversary":"cgp-reduced-lossy-link","depth":3,"analysis":"solvability"}"#,
        ));
        assert_eq!(response.status, 200, "{}", response.body);
        let record = json::parse(&response.body).unwrap();
        assert_eq!(record.get("verdict").unwrap().as_str(), Some("solvable"));
        assert_eq!(record.get_usize("index"), Some(0));
    }

    #[test]
    fn check_defaults_to_solvability_and_accepts_pools() {
        let app = app();
        let response =
            app.handle(&request("POST", "/v1/check", r#"{"pool":"-> <- <->","depth":2}"#));
        assert_eq!(response.status, 200, "{}", response.body);
        let record = json::parse(&response.body).unwrap();
        assert_eq!(record.get("analysis").unwrap().as_str(), Some("solvability"));
        // The label is the canonical (sorted) spec string.
        assert_eq!(record.get("adversary").unwrap().as_str(), Some("pool(<- -> <->)"));
    }

    #[test]
    fn spec_field_and_compat_aliases_answer_identical_records() {
        use consensus_lab::store::TIMING_FIELDS;
        let app = app();
        // Each alias body and its spec-language spelling must produce
        // byte-identical records (modulo timing fields).
        for (alias_body, spec_body) in [
            (
                r#"{"adversary":"cgp-reduced-lossy-link","depth":2}"#,
                r#"{"spec":"catalog(cgp-reduced-lossy-link)","depth":2}"#,
            ),
            (r#"{"pool":"-> <- <->","depth":2}"#, r#"{"spec":"pool(<-> <- ->)","depth":2}"#),
            (
                r#"{"pool":"-> <- <->","eventually":"<->","by":2,"depth":2}"#,
                r#"{"spec":"eventually(-> <- <->, <->, by=2)","depth":2}"#,
            ),
        ] {
            let alias = app.handle(&request("POST", "/v1/check", alias_body));
            assert_eq!(alias.status, 200, "{alias_body} → {}", alias.body);
            let spec = app.handle(&request("POST", "/v1/check", spec_body));
            assert_eq!(spec.status, 200, "{spec_body} → {}", spec.body);
            assert_eq!(
                json::parse(&alias.body).unwrap().without_keys(TIMING_FIELDS),
                json::parse(&spec.body).unwrap().without_keys(TIMING_FIELDS),
                "{alias_body} vs {spec_body}"
            );
        }
    }

    #[test]
    fn alias_liveness_target_outside_pool_is_a_400() {
        // Intentional tightening of the alias surface (see parse_query):
        // the pre-redesign path accepted this shape and checked a vacuous
        // adversary; the shared lowering rejects it like eventually(..)
        // does, with a typed spec error.
        let app = app();
        let response = app.handle(&request(
            "POST",
            "/v1/check",
            r#"{"pool":"-> <-","eventually":"<->","depth":2}"#,
        ));
        assert_eq!(response.status, 400, "{}", response.body);
        let err = json::parse(&response.body).unwrap();
        let err = err.get("error").unwrap();
        assert_eq!(err.get("kind").unwrap().as_str(), Some("spec"));
        assert!(
            err.get("message").unwrap().as_str().unwrap().contains("not in the pool"),
            "{}",
            response.body
        );
    }

    #[test]
    fn composed_specs_check_end_to_end() {
        let app = app();
        let response = app.handle(&request(
            "POST",
            "/v1/check",
            r#"{"spec":"union(pool(->), pool(<-))","depth":2}"#,
        ));
        assert_eq!(response.status, 200, "{}", response.body);
        let record = json::parse(&response.body).unwrap();
        assert_eq!(record.get("adversary").unwrap().as_str(), Some("union(pool(->), pool(<-))"));
        assert_eq!(record.get("verdict").unwrap().as_str(), Some("solvable"));
    }

    #[test]
    fn malformed_specs_are_400_with_an_offset() {
        let app = app();
        let response =
            app.handle(&request("POST", "/v1/check", r#"{"spec":"union(pool(->)","depth":2}"#));
        assert_eq!(response.status, 400, "{}", response.body);
        let err = json::parse(&response.body).unwrap();
        let err = err.get("error").unwrap();
        assert_eq!(err.get("kind").unwrap().as_str(), Some("spec"));
        assert!(
            err.get("message").unwrap().as_str().unwrap().contains("at byte 14"),
            "{}",
            response.body
        );
        // "spec" excludes the compat aliases.
        let response = app.handle(&request(
            "POST",
            "/v1/check",
            r#"{"spec":"pool(->)","adversary":"sw-lossy-link","depth":2}"#,
        ));
        assert_eq!(response.status, 400);
        assert!(response.body.contains("mutually exclusive"), "{}", response.body);
    }

    #[test]
    fn typed_errors_map_to_status_codes() {
        let app = app();
        // Unknown catalog entry → Error::Spec → 400.
        let response =
            app.handle(&request("POST", "/v1/check", r#"{"adversary":"no-such","depth":2}"#));
        assert_eq!(response.status, 400, "{}", response.body);
        let err = json::parse(&response.body).unwrap();
        assert_eq!(err.get("error").unwrap().get("kind").unwrap().as_str(), Some("spec"));
        // Unknown analysis name → 400 with the valid set in the message.
        let response = app.handle(&request(
            "POST",
            "/v1/check",
            r#"{"adversary":"sw-lossy-link","depth":2,"analysis":"nope"}"#,
        ));
        assert_eq!(response.status, 400);
        assert!(response.body.contains("unknown-analysis"), "{}", response.body);
        // Malformed JSON → 400 bad-body.
        let response = app.handle(&request("POST", "/v1/check", "{"));
        assert_eq!(response.status, 400);
        assert!(response.body.contains("bad-body"), "{}", response.body);
        // Unknown body fields fail loudly, like unknown CLI flags.
        let response = app.handle(&request(
            "POST",
            "/v1/check",
            r#"{"adversary":"sw-lossy-link","depth":2,"depht":3}"#,
        ));
        assert_eq!(response.status, 400);
        assert!(response.body.contains("depht"), "{}", response.body);
    }

    #[test]
    fn budget_exhaustion_is_422() {
        use consensus_core::config::{AnalysisConfig, CacheConfig, ExpandConfig};
        let app = App::new(
            Session::with_configs(
                ExpandConfig::with_budget(10),
                AnalysisConfig::default(),
                CacheConfig::default(),
            )
            .unwrap(),
        );
        let response = app.handle(&request(
            "POST",
            "/v1/check",
            r#"{"adversary":"sw-lossy-link","depth":4,"analysis":"component-stats"}"#,
        ));
        assert_eq!(response.status, 422, "{}", response.body);
        let err = json::parse(&response.body).unwrap();
        assert_eq!(err.get("error").unwrap().get("kind").unwrap().as_str(), Some("budget"));
    }

    #[test]
    fn sweep_matches_direct_session_records() {
        use consensus_lab::store::TIMING_FIELDS;
        let app = app();
        let response = app.handle(&request(
            "POST",
            "/v1/sweep",
            r#"{"catalog":true,"max_depth":2,"analyses":["solvability","bivalence"]}"#,
        ));
        assert_eq!(response.status, 200, "{}", response.body);
        let payload = json::parse(&response.body).unwrap();
        let Some(Value::Arr(records)) = payload.get("records") else {
            panic!("records must be an array");
        };
        let queries = Query::catalog_grid(2, &[AnalysisKind::Solvability, AnalysisKind::Bivalence]);
        assert_eq!(records.len(), queries.len());
        let direct = Session::new().check_many(&queries);
        for (served, direct) in records.iter().zip(direct.store.records()) {
            assert_eq!(
                served.without_keys(TIMING_FIELDS),
                direct.to_json().without_keys(TIMING_FIELDS)
            );
        }
        let meta = payload.get("meta").unwrap();
        assert_eq!(meta.get_usize("scenarios"), Some(queries.len()));
        assert!(meta.get("cache").unwrap().get_usize("builds").unwrap() > 0);
    }

    #[test]
    fn sweep_validates_its_grid() {
        let app = app();
        for (body, fragment) in [
            (r#"{"max_depth":2}"#, "catalog"),
            (r#"{"catalog":true}"#, "max_depth"),
            (r#"{"queries":[]}"#, "empty"),
            (r#"{"queries":[{"depth":1}]}"#, "adversary"),
            (r#"{"catalog":true,"max_depth":2,"queries":[]}"#, "excludes"),
        ] {
            let response = app.handle(&request("POST", "/v1/sweep", body));
            assert_eq!(response.status, 400, "{body} → {}", response.body);
            assert!(response.body.contains(fragment), "{body} → {}", response.body);
        }
    }

    #[test]
    fn sharded_sweeps_union_to_the_full_grid() {
        use consensus_lab::store::TIMING_FIELDS;
        let app = app();
        let full = app.handle(&request(
            "POST",
            "/v1/sweep",
            r#"{"catalog":true,"max_depth":1,"analyses":["solvability"]}"#,
        ));
        assert_eq!(full.status, 200, "{}", full.body);
        let full = json::parse(&full.body).unwrap();
        let Some(Value::Arr(full_records)) = full.get("records") else {
            panic!("records must be an array");
        };
        // The two shard slices carry global indices and union to the full
        // grid, record for record.
        let mut sharded: Vec<(usize, Value)> = Vec::new();
        for shard in ["0/2", "1/2"] {
            let body = format!(
                r#"{{"catalog":true,"max_depth":1,"analyses":["solvability"],"shard":"{shard}"}}"#
            );
            let slice = app.handle(&request("POST", "/v1/sweep", &body));
            assert_eq!(slice.status, 200, "{}", slice.body);
            let slice = json::parse(&slice.body).unwrap();
            let Some(Value::Arr(records)) = slice.get("records") else {
                panic!("records must be an array");
            };
            for record in records {
                sharded.push((record.get_usize("index").unwrap(), record.clone()));
            }
        }
        sharded.sort_by_key(|(index, _)| *index);
        assert_eq!(sharded.len(), full_records.len());
        for ((index, shard_record), full_record) in sharded.iter().zip(full_records) {
            assert_eq!(*index, full_record.get_usize("index").unwrap());
            assert_eq!(
                shard_record.without_keys(TIMING_FIELDS),
                full_record.without_keys(TIMING_FIELDS)
            );
        }
    }

    #[test]
    fn malformed_shards_are_typed_400s() {
        let app = app();
        for (body, fragment) in [
            (r#"{"catalog":true,"max_depth":1,"shard":"2/2"}"#, "bad-shard"),
            (r#"{"catalog":true,"max_depth":1,"shard":"nope"}"#, "bad-shard"),
            (r#"{"catalog":true,"max_depth":1,"shard":"0/0"}"#, "bad-shard"),
            (r#"{"catalog":true,"max_depth":1,"shard":3}"#, "i/n"),
        ] {
            let response = app.handle(&request("POST", "/v1/sweep", body));
            assert_eq!(response.status, 400, "{body} → {}", response.body);
            assert!(response.body.contains(fragment), "{body} → {}", response.body);
        }
    }

    #[test]
    fn journal_segment_without_a_cache_is_disabled() {
        let app = app();
        let response = app.handle(&request("GET", "/v1/journal/segment", ""));
        assert_eq!(response.status, 200, "{}", response.body);
        let segment = json::parse(&response.body).unwrap();
        assert_eq!(segment.get("enabled").and_then(Value::as_bool), Some(false));
        assert_eq!(segment.get_usize("count"), Some(0));
        assert_eq!(
            segment.get("salt").unwrap().as_str(),
            Some(consensus_lab::persist::cache_salt().as_str())
        );
        assert_eq!(app.handle(&request("POST", "/v1/journal/segment", "")).status, 405);
    }

    #[test]
    fn catalog_health_metrics_and_routing() {
        let app = app();
        let response = app.handle(&request("GET", "/v1/catalog", ""));
        assert_eq!(response.status, 200);
        let catalog = json::parse(&response.body).unwrap();
        let Some(Value::Arr(entries)) = catalog.get("entries") else {
            panic!("entries must be an array");
        };
        assert_eq!(entries.len(), adversary::catalog::entries().len());
        // Every entry publishes its canonical spec string.
        for entry in entries {
            let spec = entry.get("spec").unwrap().as_str().unwrap();
            assert!(adversary::SpecTerm::parse(spec).is_ok(), "{spec}");
        }

        assert_eq!(app.handle(&request("GET", "/healthz", "")).status, 200);
        assert_eq!(app.handle(&request("GET", "/nope", "")).status, 404);
        assert_eq!(app.handle(&request("GET", "/v1/check", "")).status, 405);
        assert_eq!(app.handle(&request("POST", "/metrics", "")).status, 405);

        let response = app.handle(&request("GET", "/metrics", ""));
        assert_eq!(response.status, 200);
        let metrics = json::parse(&response.body).unwrap();
        let requests = metrics.get("requests").unwrap();
        // catalog + healthz + not-found + 405 check + 405 metrics.
        assert_eq!(requests.get_usize("catalog"), Some(1));
        assert_eq!(requests.get_usize("healthz"), Some(1));
        assert_eq!(requests.get_usize("not_found"), Some(1));
        // All three failures (404 + 405 + 405) are client errors.
        assert_eq!(requests.get_usize("errors"), Some(3));
        assert_eq!(requests.get_usize("errors_4xx"), Some(3));
        assert_eq!(requests.get_usize("errors_5xx"), Some(0));
        let endpoints = metrics.get("endpoints").unwrap();
        assert_eq!(endpoints.get("catalog").unwrap().get_usize("count"), Some(1));
        assert!(endpoints
            .get("healthz")
            .unwrap()
            .get("p99_ms")
            .and_then(Value::as_f64)
            .is_some());
        assert_eq!(metrics.get("cache").unwrap().get_usize("builds"), Some(0));
        let disk = metrics.get("disk").unwrap();
        assert_eq!(disk.get("enabled").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn stats_returns_the_registry_snapshot() {
        let app = app();
        // One answered query populates the obs registry stage histograms.
        let response = app.handle(&request(
            "POST",
            "/v1/check",
            r#"{"adversary":"cgp-reduced-lossy-link","depth":2}"#,
        ));
        assert_eq!(response.status, 200, "{}", response.body);
        let response = app.handle(&request("GET", "/v1/stats", ""));
        assert_eq!(response.status, 200);
        assert_eq!(response.content_type, "application/json");
        let stats = json::parse(&response.body).unwrap();
        let registry = stats.get("registry").unwrap();
        for block in ["counters", "gauges", "histograms_ns"] {
            assert!(registry.get(block).is_some(), "missing {block}");
        }
        // The check above went through the cache, so its counters exist
        // (the registry is process-global — only presence is asserted).
        assert!(registry.get("counters").unwrap().get("cache.builds").is_some());
        let expand = registry.get("histograms_ns").unwrap().get("stage.expand").unwrap();
        assert!(expand.get_usize("count").unwrap() >= 1);
        assert!(expand.get_usize("p99").unwrap() >= expand.get_usize("p50").unwrap());
        let endpoints = stats.get("endpoints").unwrap();
        assert_eq!(endpoints.get("check").unwrap().get_usize("count"), Some(1));
        let trace = stats.get("trace").unwrap();
        assert!(trace.get("enabled").and_then(Value::as_bool).is_some());
    }

    #[test]
    fn request_id_is_echoed_or_generated() {
        let app = app();
        // Supplied: propagated verbatim.
        let mut req = request("GET", "/healthz", "");
        req.headers.push(("x-request-id".into(), "cluster-7-retry-2".into()));
        let response = app.handle(&req);
        let echo = response.headers.iter().find(|(k, _)| k == "x-request-id");
        assert_eq!(echo.map(|(_, v)| v.as_str()), Some("cluster-7-retry-2"));
        // Absent: generated, unique per request, prefixed by the process
        // trace-id nibble so ids differ across a fleet.
        let a = app.handle(&request("GET", "/healthz", ""));
        let b = app.handle(&request("GET", "/healthz", ""));
        let id = |r: &Response| {
            r.headers
                .iter()
                .find(|(k, _)| k == "x-request-id")
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_ne!(id(&a), id(&b));
        let prefix = format!("{:08x}-", (trace_id() >> 96) as u32);
        assert!(id(&a).starts_with(&prefix), "{}", id(&a));
        // Errors carry the echo too — correlation matters most there.
        let not_found = app.handle(&request("GET", "/nope", ""));
        assert!(not_found.headers.iter().any(|(k, _)| k == "x-request-id"));
    }

    #[test]
    fn trace_endpoint_serves_a_nondestructive_cursor_fragment() {
        let app = app();
        // The tracer is process-global: serialize against other tests via
        // the disable/drain preamble and a fresh read of our own spans.
        tracer().disable();
        let _ = tracer().drain();
        tracer().enable();
        let warm = app.handle(&request("GET", "/healthz", ""));
        assert_eq!(warm.status, 200);
        let response = app.handle(&request("GET", "/v1/trace", ""));
        tracer().disable();
        assert_eq!(response.status, 200, "{}", response.body);
        let payload = json::parse(&response.body).unwrap();
        let hex = payload.get("trace_id").unwrap().as_str().unwrap().to_string();
        assert_eq!(hex, format!("{:032x}", trace_id()));
        assert_eq!(payload.get("enabled").and_then(Value::as_bool), Some(true));
        let Some(Value::Arr(spans)) = payload.get("spans") else {
            panic!("spans must be an array: {}", response.body);
        };
        // The healthz request span is in the fragment; the ring still
        // holds it (non-destructive).
        assert!(
            spans.iter().any(|s| s.get("span").unwrap().as_str() == Some("http.request")),
            "{}",
            response.body
        );
        let cursor = payload.get_usize("cursor").unwrap();
        assert!(cursor >= 1);
        assert!(!tracer().spans_since(0).is_empty(), "/v1/trace must not drain the ring");
        let _ = tracer().drain();
        // Resuming from the cursor returns nothing new.
        let empty = app.handle(&request("GET", &format!("/v1/trace?since={cursor}"), ""));
        let empty = json::parse(&empty.body).unwrap();
        let Some(Value::Arr(spans)) = empty.get("spans") else {
            panic!("spans must be an array");
        };
        assert!(spans.is_empty());
        assert_eq!(empty.get_usize("cursor"), Some(cursor));
        // Bad queries are typed 400s; wrong method is 405.
        assert_eq!(app.handle(&request("GET", "/v1/trace?since=x", "")).status, 400);
        assert_eq!(app.handle(&request("GET", "/v1/trace?nope=1", "")).status, 400);
        assert_eq!(app.handle(&request("POST", "/v1/trace", "")).status, 405);
    }

    #[test]
    fn remote_trace_context_is_recorded_for_stitching() {
        let app = app();
        tracer().disable();
        let _ = tracer().drain();
        tracer().enable();
        // A foreign trace id (not ours): the span records the remote
        // context as attributes instead of parenting under a local id.
        let foreign = TraceContext { trace_id: trace_id() ^ 1, parent_span: 99 };
        let mut req = request("GET", "/healthz", "");
        req.headers.push((TRACE_HEADER.into(), foreign.to_header()));
        assert_eq!(app.handle(&req).status, 200);
        // A local context parents directly under the given span id.
        let mut req = request("GET", "/healthz", "");
        req.headers.push((TRACE_HEADER.into(), TraceContext::local(12345).to_header()));
        assert_eq!(app.handle(&req).status, 200);
        tracer().disable();
        let spans = tracer().drain();
        let foreign_span = spans
            .iter()
            .find(|s| s.to_jsonl().contains("remote_parent"))
            .expect("foreign context span");
        assert!(foreign_span
            .to_jsonl()
            .contains(&format!("\"remote_trace\":\"{:032x}\"", foreign.trace_id)));
        assert!(foreign_span.to_jsonl().contains("\"remote_parent\":99"));
        assert_eq!(foreign_span.parent, None, "foreign context must not fake a local parent");
        let local_span = spans
            .iter()
            .find(|s| s.parent == Some(12345))
            .expect("local context parents under the caller's span id");
        assert_eq!(local_span.name, "http.request");
    }

    #[test]
    fn metrics_renders_prometheus_on_request() {
        let app = app();
        assert_eq!(app.handle(&request("GET", "/healthz", "")).status, 200);
        let response = app.handle(&request("GET", "/metrics?format=prometheus", ""));
        assert_eq!(response.status, 200);
        assert_eq!(response.content_type, consensus_obs::prom::CONTENT_TYPE);
        let page = &response.body;
        assert!(page.contains("# TYPE consensus_http_requests_total counter\n"), "{page}");
        assert!(page.contains("consensus_http_requests_total{endpoint=\"healthz\"} 1\n"), "{page}");
        assert!(
            page.contains(
                "consensus_http_request_duration_ms{endpoint=\"healthz\",quantile=\"0.99\"}"
            ),
            "{page}"
        );
        assert!(page.contains("consensus_cache_events_total{kind=\"builds\"}"), "{page}");
        // An unknown format falls back to the JSON page.
        let response = app.handle(&request("GET", "/metrics?format=json", ""));
        assert_eq!(response.content_type, "application/json");
        assert!(json::parse(&response.body).is_ok());
    }
}
