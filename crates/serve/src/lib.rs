//! **The consensus service** — a multi-threaded HTTP solvability query
//! service over the lab's [`Session`](consensus_lab::session::Session)
//! facade, plus the built-in load-generator bench behind
//! `consensus-lab serve-bench`.
//!
//! The sweep engine answers the paper's question — *is consensus solvable
//! under adversary `A` at resolution `d`?* — one process at a time. This
//! crate turns that machinery into an always-warm network oracle: a single
//! long-lived `Session` (shared space cache, optional persistent verdict
//! journal) behind a bounded worker pool, so the first query pays for the
//! expansion and every later query — from any connection — is a cache hit.
//!
//! * [`http`] — hand-rolled HTTP/1.1 framing over `std::net` (the build
//!   environment is registry-less; no tokio/hyper);
//! * [`server`] — acceptor + bounded worker-thread pool, keep-alive,
//!   graceful shutdown;
//! * [`api`] — the endpoints (`POST /v1/check`, `POST /v1/sweep` with an
//!   optional `"shard":"i/n"` slice, `GET /v1/journal/segment`,
//!   `GET /v1/catalog`, `GET /v1/stats`, `GET /healthz`, `GET /metrics`
//!   with an optional `?format=prometheus`), per-request ids + tracing
//!   spans, and the typed [`Error`](consensus_core::error::Error) →
//!   structured `4xx`/`5xx` mapping;
//! * [`metrics`] — lock-free request counters split 4xx/5xx, per-endpoint
//!   latency histograms (p50/p90/p99), and Prometheus text rendering;
//! * [`client`] — a minimal keep-alive client;
//! * [`loadgen`] — the `serve-bench` load generator emitting
//!   `BENCH_serve.json`.
//!
//! The `consensus-lab` binary (grown in `crates/lab`, moved here when it
//! gained the service subcommands, and now living in `crates/cluster`
//! above the coordinator) exposes all of this as `consensus-lab serve`
//! and `consensus-lab serve-bench`.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use consensus_serve::api::App;
//! use consensus_serve::client::Client;
//! use consensus_serve::server::{ServeConfig, Server};
//! use consensus_lab::session::Session;
//!
//! let app = Arc::new(App::new(Session::new()));
//! let server = Server::bind(app, &ServeConfig::default()).unwrap();
//! let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
//! let answer = client
//!     .post_json("/v1/check", r#"{"adversary":"cgp-reduced-lossy-link","depth":3}"#)
//!     .unwrap();
//! assert_eq!(answer.status, 200);
//! assert!(answer.body.contains("\"verdict\":\"solvable\""));
//! server.stop();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod server;

pub use api::{App, Response};
pub use client::{Client, HttpResult};
pub use loadgen::{LoadGenConfig, LoadGenReport};
pub use metrics::Metrics;
pub use server::{ServeConfig, Server};
