//! Hand-rolled HTTP/1.1 framing over blocking byte streams.
//!
//! The build environment is registry-less, so there is no hyper/tokio to
//! lean on — exactly as `crates/compat` hand-rolled the serde surface, this
//! module hand-rolls the small, strict slice of HTTP/1.1 the service
//! needs: request-line + header parsing, `Content-Length`-framed bodies,
//! and keep-alive negotiation. Everything outside that slice (chunked
//! transfer coding, upgrades, trailers) is rejected loudly with a `4xx`
//! rather than half-supported.

use std::fmt;
use std::io::{self, BufRead, Write};
use std::time::{Duration, Instant};

/// Upper bound on the request line plus header block, in bytes.
pub const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Upper bound on the number of header fields.
pub const MAX_HEADERS: usize = 100;
/// Upper bound on an accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Hard wall-clock budget for reading one complete request. The socket's
/// per-read timeout bounds *idle* gaps; this bounds a trickling client
/// that sends a byte just often enough to keep resetting it (slowloris),
/// which would otherwise pin a pool worker indefinitely.
pub const MAX_REQUEST_READ: Duration = Duration::from_secs(30);

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method (`GET`, `POST`, …), uppercased by the client.
    pub method: String,
    /// The request target (origin form, e.g. `/v1/check`).
    pub target: String,
    /// Header fields in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The `Content-Length`-framed body (empty when absent).
    pub body: Vec<u8>,
    /// Whether the connection may carry another request after this one
    /// (HTTP/1.1 default, overridden by `Connection: close`).
    pub keep_alive: bool,
}

impl Request {
    /// The first value of the named header (name matched
    /// case-insensitively; stored lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8.
    ///
    /// # Errors
    /// Returns [`HttpError::Bad`] on invalid UTF-8.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Bad("request body is not valid UTF-8".into()))
    }
}

/// A framing failure while reading a request.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed framing; answered with `400` and the connection closed.
    Bad(String),
    /// A framing limit was exceeded; answered with `413`.
    TooLarge(&'static str),
    /// The underlying stream failed (includes idle-timeout expiry); the
    /// connection is dropped without a response.
    Io(io::Error),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Bad(m) => write!(f, "bad request: {m}"),
            HttpError::TooLarge(what) => write!(f, "request too large: {what}"),
            HttpError::Io(e) => write!(f, "connection error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn read_crlf_line(
    reader: &mut impl BufRead,
    budget: &mut usize,
    deadline: Instant,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None); // clean EOF between requests
                }
                return Err(HttpError::Bad("unexpected EOF inside header block".into()));
            }
            Ok(_) => {
                if Instant::now() >= deadline {
                    return Err(HttpError::Bad("request read deadline exceeded".into()));
                }
                if *budget == 0 {
                    return Err(HttpError::TooLarge("header block"));
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line)
                        .map_err(|_| HttpError::Bad("header line is not valid UTF-8".into()))?;
                    return Ok(Some(text));
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Read one request from `reader`. `Ok(None)` means the peer closed the
/// connection cleanly before sending another request (the normal end of a
/// keep-alive exchange).
///
/// # Errors
/// [`HttpError::Bad`]/[`HttpError::TooLarge`] for malformed, oversized, or
/// deadline-overrunning framing (the caller should answer and close),
/// [`HttpError::Io`] when the stream itself fails (the caller should just
/// close).
pub fn read_request(reader: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    // The deadline includes any idle wait before the first byte, but idle
    // connections die of the (much shorter) per-read socket timeout first;
    // only a byte-trickling client ever reaches it.
    read_request_by(reader, Instant::now() + MAX_REQUEST_READ)
}

fn read_request_by(
    reader: &mut impl BufRead,
    deadline: Instant,
) -> Result<Option<Request>, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    // Tolerate stray blank lines between pipelined requests (RFC 9112 §2.2).
    let request_line = loop {
        match read_crlf_line(reader, &mut budget, deadline)? {
            None => return Ok(None),
            Some(line) if line.is_empty() => continue,
            Some(line) => break line,
        }
    };
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Bad(format!("malformed request line {request_line:?}")));
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Bad(format!("unsupported protocol version {version:?}")));
    }
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 must opt in.
    let mut keep_alive = version == "HTTP/1.1";

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match read_crlf_line(reader, &mut budget, deadline)? {
            None => return Err(HttpError::Bad("unexpected EOF inside header block".into())),
            Some(line) => line,
        };
        if line.is_empty() {
            break;
        }
        if headers.len() == MAX_HEADERS {
            return Err(HttpError::TooLarge("header count"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Bad(format!("malformed header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let header = |name: &str| headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str());
    // `Connection` carries a comma-separated token list (RFC 9110 §7.6.1);
    // `close`/`keep-alive` count as members, not as the exact value.
    if let Some(value) = header("connection") {
        for token in value.split(',').map(str::trim) {
            if token.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if token.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    if header("transfer-encoding").is_some() {
        return Err(HttpError::Bad("chunked transfer coding is not supported".into()));
    }
    // Conflicting lengths desynchronize keep-alive framing (the classic
    // request-smuggling ambiguity) — reject, per RFC 9112 §6.3.
    let mut lengths = headers.iter().filter(|(k, _)| k == "content-length").map(|(_, v)| v);
    let content_length = match (lengths.next(), lengths.next()) {
        (Some(_), Some(_)) => {
            return Err(HttpError::Bad("multiple Content-Length headers".into()));
        }
        (None, _) => 0,
        (Some(v), None) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Bad(format!("bad Content-Length {v:?}")))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("request body"));
    }
    // Chunked reads (rather than one `read_exact`) so a trickled body hits
    // the deadline instead of resetting the socket timeout byte by byte.
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        if Instant::now() >= deadline {
            return Err(HttpError::Bad("request read deadline exceeded".into()));
        }
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(HttpError::Bad("unexpected EOF inside body".into())),
            Ok(n) => filled += n,
            Err(e) => return Err(HttpError::Io(e)),
        }
    }

    Ok(Some(Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body,
        keep_alive,
    }))
}

/// The canonical reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one `Content-Length`-framed response with the given
/// `Content-Type` (`application/json` everywhere except the Prometheus
/// exposition).
///
/// # Errors
/// Propagates stream write failures.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write_response_with(writer, status, content_type, &[], body, keep_alive)
}

/// [`write_response`] with extra response header fields (e.g. the
/// `x-request-id` correlation echo) appended after the framing headers.
/// Header names and values are written verbatim — callers own validity.
///
/// # Errors
/// Propagates stream write failures.
pub fn write_response_with(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(String, String)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {len}\r\nConnection: {conn}\r\n",
        reason = reason(status),
        len = body.len(),
        conn = if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(text.as_bytes()))
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let req = parse(
            "POST /v1/check HTTP/1.1\r\nContent-Type: application/json\r\n\
             Content-Length: 11\r\n\r\n{\"depth\":3}",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.body_str().unwrap(), "{\"depth\":3}");
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.1\r\nConnection: close, TE\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive, "close must be honored inside a token list");
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap().unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn clean_eof_is_none_and_torn_requests_are_bad() {
        assert!(parse("").unwrap().is_none());
        assert!(matches!(parse("GET /x HTTP/1.1\r\nHost"), Err(HttpError::Bad(_))));
        assert!(matches!(parse("nonsense\r\n\r\n"), Err(HttpError::Bad(_))));
        assert!(matches!(parse("GET /x SPDY/3\r\n\r\n"), Err(HttpError::Bad(_))));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::Bad(_))
        ));
        // Conflicting body framings are rejected, not first-wins.
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 50\r\n\r\nhelloXXX"),
            Err(HttpError::Bad(_))
        ));
    }

    #[test]
    fn oversized_framing_is_rejected() {
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        assert!(matches!(parse(&huge), Err(HttpError::TooLarge(_))));
        let body = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(parse(&body), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn expired_deadline_fails_a_request_in_progress() {
        // An already-expired deadline models a client still trickling bytes
        // when the wall-clock budget runs out: the read fails instead of
        // pinning the worker for as long as bytes keep coming.
        let text = "POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let expired =
            Instant::now().checked_sub(Duration::from_secs(1)).unwrap_or_else(Instant::now);
        let result = read_request_by(&mut BufReader::new(text.as_bytes()), expired);
        match result {
            Err(HttpError::Bad(message)) => assert!(message.contains("deadline"), "{message}"),
            other => panic!("expected a deadline failure, got {other:?}"),
        }
    }

    #[test]
    fn response_is_length_framed() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let mut out = Vec::new();
        write_response(&mut out, 422, "application/json", b"{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 422 Unprocessable Entity\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        // The content type is caller-chosen — the Prometheus page is text.
        let mut out = Vec::new();
        write_response(&mut out, 200, "text/plain; version=0.0.4", b"x 1\n", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"), "{text}");
    }

    #[test]
    fn extra_response_headers_ride_the_head() {
        let mut out = Vec::new();
        let extra = vec![("x-request-id".to_string(), "42".to_string())];
        write_response_with(&mut out, 200, "application/json", &extra, b"{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\r\nx-request-id: 42\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }
}
