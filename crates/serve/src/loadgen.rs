//! The built-in load generator behind `consensus-lab serve-bench`.
//!
//! Drives a server — an external one (`--addr`) or an in-process one it
//! spawns itself — through the full request mix:
//!
//! 1. `GET /healthz` + `GET /v1/catalog` (liveness, registry sanity),
//! 2. a **cold pass**: one connection walks a catalog × depth × analysis
//!    grid through `POST /v1/check`, populating the server's shared
//!    session cache (sequential, so the cache-counter deltas are exactly
//!    reproducible — the bench gate pins them to the digit),
//! 3. one `POST /v1/sweep` over the same grid (whose records the CI smoke
//!    job diffs byte-for-byte against a direct `consensus-lab sweep`),
//! 4. a **warm pass**: N connections × M requests in parallel against the
//!    now-warm session,
//!
//! reading `/metrics` between phases. The emitted datum
//! (`BENCH_serve.json`) carries the phase wall-clocks plus the cache
//! deltas; a warm pass that triggers any new prefix-space expansion is a
//! caching regression, surfaced as `warm_new_builds` and fatal under
//! `--assert-warm`.

use std::sync::Arc;
use std::time::Instant;

use consensus_obs::metrics::Histogram;

use consensus_lab::scenario::{AdversarySpec, AnalysisKind};
use consensus_lab::session::{Query, Session};
use json::Value;

use crate::api::App;
use crate::client::Client;
use crate::server::{ServeConfig, Server};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Target server; `None` spawns an in-process server on an ephemeral
    /// port (the self-contained bench mode).
    pub addr: Option<String>,
    /// Worker threads for the in-process server (`0` = available
    /// parallelism; ignored with `addr`).
    pub server_threads: usize,
    /// Concurrent client connections of the warm pass.
    pub connections: usize,
    /// Requests per connection in the warm pass (`0` = one walk of the
    /// grid per connection).
    pub requests: usize,
    /// Grid depth ceiling (depths `1..=max_depth`).
    pub max_depth: usize,
    /// Grid analyses.
    pub analyses: Vec<AnalysisKind>,
    /// Fail if the warm pass triggered any new prefix-space expansion.
    pub assert_warm: bool,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            addr: None,
            server_threads: 0,
            connections: 4,
            requests: 0,
            max_depth: 3,
            analyses: AnalysisKind::ALL.to_vec(),
            assert_warm: false,
        }
    }
}

/// What one load-generator run measured.
#[derive(Debug)]
pub struct LoadGenReport {
    /// The order-stable bench datum (the `BENCH_serve.json` payload).
    pub datum: Value,
    /// The `/v1/sweep` records as JSONL, byte-comparable (modulo timing
    /// fields) with a direct `consensus-lab sweep`'s `results.jsonl`.
    pub records_jsonl: String,
    /// Prefix-space expansions the warm pass triggered (0 on a healthy
    /// server).
    pub warm_new_builds: usize,
    /// One-paragraph human summary.
    pub summary: String,
}

/// The cache counters scraped from one `/metrics` read.
#[derive(Debug, Clone, Copy, Default)]
struct CacheSnapshot {
    builds: usize,
    ladder_hits: usize,
    requests_total: usize,
}

fn scrape(client: &mut Client) -> Result<CacheSnapshot, String> {
    let result = client.get("/metrics").map_err(|e| format!("GET /metrics: {e}"))?;
    if result.status != 200 {
        return Err(format!("GET /metrics answered {}: {}", result.status, result.body));
    }
    let metrics = result.json().map_err(|e| format!("GET /metrics: {e}"))?;
    let cache = metrics.get("cache").ok_or("metrics payload lacks \"cache\"")?;
    let snapshot = CacheSnapshot {
        builds: cache.get_usize("builds").ok_or("metrics cache lacks \"builds\"")?,
        ladder_hits: cache.get_usize("ladder_hits").ok_or("metrics cache lacks \"ladder_hits\"")?,
        requests_total: metrics
            .get("requests")
            .and_then(|r| r.get_usize("total"))
            .ok_or("metrics payload lacks \"requests\".\"total\"")?,
    };
    Ok(snapshot)
}

/// A latency quantile of `hist` (nanosecond samples) in rounded ms.
fn quantile_ms(hist: &Histogram, q: f64) -> f64 {
    crate::metrics::round3(hist.quantile(q) as f64 / 1e6)
}

fn check_body(query: &Query) -> Value {
    // Catalog terms go through the "adversary" alias (the hot production
    // shape); anything else is sent as its canonical spec string.
    let spec_field = match &query.spec {
        AdversarySpec::Term(adversary::SpecTerm::Catalog(name)) => {
            ("adversary".to_string(), Value::Str(name.clone()))
        }
        other => ("spec".to_string(), Value::Str(other.label())),
    };
    Value::Obj(vec![
        spec_field,
        ("depth".into(), Value::Int(query.depth as i64)),
        ("analysis".into(), Value::Str(query.analysis.name().into())),
    ])
}

fn expect_ok(
    label: &str,
    result: std::io::Result<crate::client::HttpResult>,
) -> Result<String, String> {
    let result = result.map_err(|e| format!("{label}: {e}"))?;
    if result.status != 200 {
        return Err(format!("{label} answered {}: {}", result.status, result.body));
    }
    Ok(result.body)
}

/// Run the load generator; see the module docs.
///
/// # Errors
/// Returns a description of the first failed phase: unreachable server,
/// non-200 answer, metrics drift, or (under
/// [`assert_warm`](LoadGenConfig::assert_warm)) a warm-pass expansion.
pub fn run(cfg: &LoadGenConfig) -> Result<LoadGenReport, String> {
    let connections = cfg.connections.max(1);
    // In-process server, unless aimed at an external one.
    let server = match &cfg.addr {
        Some(_) => None,
        None => {
            let serve_cfg = ServeConfig {
                // The bench drives `connections` warm clients plus its own
                // scrape connection; a smaller default pool would serialize
                // them behind idle keep-alive workers.
                threads: if cfg.server_threads > 0 {
                    cfg.server_threads
                } else {
                    connections + 1
                },
                ..ServeConfig::default()
            };
            Some(
                Server::bind(Arc::new(App::new(Session::new())), &serve_cfg)
                    .map_err(|e| format!("starting in-process server: {e}"))?,
            )
        }
    };
    let addr = match &cfg.addr {
        Some(addr) => addr.clone(),
        None => server.as_ref().expect("spawned above").local_addr().to_string(),
    };
    let finish = |report: Result<LoadGenReport, String>| {
        if let Some(server) = server {
            server.stop();
        }
        report
    };
    match drive(cfg, &addr, connections) {
        Ok(report) => finish(Ok(report)),
        Err(e) => finish(Err(e)),
    }
}

fn drive(cfg: &LoadGenConfig, addr: &str, connections: usize) -> Result<LoadGenReport, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    let health = expect_ok("GET /healthz", client.get("/healthz"))?;
    if !health.contains("\"ok\"") {
        return Err(format!("unhealthy server: {health}"));
    }
    expect_ok("GET /v1/catalog", client.get("/v1/catalog"))?;

    let grid = Query::catalog_grid(cfg.max_depth, &cfg.analyses);
    if grid.is_empty() {
        return Err("empty scenario grid (no analyses?)".to_string());
    }
    let bodies: Vec<String> = grid.iter().map(|q| check_body(q).to_string()).collect();

    // Cold pass: sequential, one connection → deterministic cache deltas.
    let before = scrape(&mut client)?;
    let t0 = Instant::now();
    for body in &bodies {
        expect_ok("POST /v1/check", client.post_json("/v1/check", body))?;
    }
    let cold_wall = t0.elapsed();
    let after_cold = scrape(&mut client)?;

    // One sweep over the same grid; its records are the smoke-test datum.
    let analyses_json =
        Value::Arr(cfg.analyses.iter().map(|k| Value::Str(k.name().into())).collect());
    let sweep_body = Value::Obj(vec![
        ("catalog".into(), Value::Bool(true)),
        ("max_depth".into(), Value::Int(cfg.max_depth as i64)),
        ("analyses".into(), analyses_json),
    ])
    .to_string();
    let t1 = Instant::now();
    let sweep = expect_ok("POST /v1/sweep", client.post_json("/v1/sweep", &sweep_body))?;
    let sweep_wall = t1.elapsed();
    let after_sweep = scrape(&mut client)?;
    let payload = json::parse(&sweep).map_err(|e| format!("POST /v1/sweep: {e}"))?;
    let Some(Value::Arr(records)) = payload.get("records") else {
        return Err("sweep payload lacks a \"records\" array".to_string());
    };
    if records.len() != grid.len() {
        return Err(format!(
            "sweep answered {} records for a {}-scenario grid",
            records.len(),
            grid.len()
        ));
    }
    let mut records_jsonl = String::new();
    for record in records {
        records_jsonl.push_str(&record.to_string());
        records_jsonl.push('\n');
    }

    // Warm pass: N connections × M requests against the warm session. The
    // scrape connection goes idle for the whole pass — release it so it
    // does not pin a server worker (the post-pass scrape re-dials).
    client.close();
    let per_connection = if cfg.requests > 0 {
        cfg.requests
    } else {
        bodies.len()
    };
    // Each connection buckets its own request latencies; the per-worker
    // histograms merge afterwards (the merge is associative, so the
    // combined quantiles see every request without any locking mid-pass).
    let warm_latency = Histogram::new();
    let t2 = Instant::now();
    std::thread::scope(|scope| -> Result<(), String> {
        let mut handles = Vec::with_capacity(connections);
        for connection in 0..connections {
            let bodies = &bodies;
            handles.push(scope.spawn(move || -> Result<Histogram, String> {
                let latency = Histogram::new();
                let mut client =
                    Client::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
                for k in 0..per_connection {
                    // Offset per connection so concurrent requests spread
                    // over the grid instead of marching in lockstep.
                    let body = &bodies[(connection + k) % bodies.len()];
                    let t = Instant::now();
                    expect_ok("POST /v1/check", client.post_json("/v1/check", body))?;
                    latency.record_duration(t.elapsed());
                }
                Ok(latency)
            }));
        }
        for handle in handles {
            warm_latency.merge_from(&handle.join().expect("warm-pass client panicked")?);
        }
        Ok(())
    })?;
    let warm_wall = t2.elapsed();
    let after_warm = scrape(&mut client)?;

    let warm_requests = connections * per_connection;
    let warm_new_builds = after_warm.builds - after_sweep.builds;
    if cfg.assert_warm && warm_new_builds > 0 {
        return Err(format!(
            "--assert-warm: {warm_new_builds} prefix-space expansion(s) on a warm server"
        ));
    }

    // Certificate phase (after the last pinned counter scrape, so it
    // cannot disturb the gated cache deltas): fetch one checkable answer
    // for a solvable catalog entry — the decision-table variant, the
    // heavier of the two to re-check — then re-verify it offline the way
    // `consensus-lab verify-cert` does. `cert_verify_ms` is the mean
    // offline verify latency over 1000 rounds, enough to be gateable.
    let cert_body = Value::Obj(vec![
        ("adversary".into(), Value::Str("cgp-reduced-lossy-link".into())),
        ("depth".into(), Value::Int(3)),
        ("analysis".into(), Value::Str("solvability".into())),
        ("certificate".into(), Value::Bool(true)),
    ])
    .to_string();
    let cert_response =
        expect_ok("POST /v1/check (certificate)", client.post_json("/v1/check", &cert_body))?;
    let cert_record = json::parse(&cert_response).map_err(|e| format!("certificate check: {e}"))?;
    let Some(cert_json) = cert_record.get("certificate") else {
        return Err("certificate-requesting check answered without a certificate".to_string());
    };
    let cert = consensus_core::Certificate::from_json(cert_json)
        .map_err(|e| format!("served certificate does not decode: {e}"))?;
    let ma = consensus_lab::session::certificate_adversary(cert.adversary())
        .map_err(|e| format!("served certificate names an unbuildable adversary: {e}"))?;
    const CERT_VERIFY_ROUNDS: u32 = 1000;
    let t3 = Instant::now();
    for _ in 0..CERT_VERIFY_ROUNDS {
        consensus_core::certificate::verify(&cert, ma.as_ref())
            .map_err(|e| format!("served certificate failed verification: {e}"))?;
    }
    let cert_verify_ms =
        crate::metrics::round3(t3.elapsed().as_secs_f64() * 1e3 / f64::from(CERT_VERIFY_ROUNDS));
    let ms = |d: std::time::Duration| crate::metrics::round3(d.as_secs_f64() * 1e3);
    let warm_rps = warm_requests as f64 / warm_wall.as_secs_f64().max(1e-9);
    let datum = Value::Obj(vec![
        ("bench".into(), Value::Str("serve".into())),
        ("scenarios".into(), Value::Int(grid.len() as i64)),
        ("connections".into(), Value::Int(connections as i64)),
        ("requests_warm".into(), Value::Int(warm_requests as i64)),
        ("builds_cold".into(), Value::Int((after_cold.builds - before.builds) as i64)),
        (
            "ladder_hits_cold".into(),
            Value::Int((after_cold.ladder_hits - before.ladder_hits) as i64),
        ),
        ("sweep_new_builds".into(), Value::Int((after_sweep.builds - after_cold.builds) as i64)),
        ("warm_new_builds".into(), Value::Int(warm_new_builds as i64)),
        ("cold_ms".into(), Value::Float(ms(cold_wall))),
        ("sweep_ms".into(), Value::Float(ms(sweep_wall))),
        ("warm_ms".into(), Value::Float(ms(warm_wall))),
        ("warm_p50_ms".into(), Value::Float(quantile_ms(&warm_latency, 0.5))),
        ("warm_p90_ms".into(), Value::Float(quantile_ms(&warm_latency, 0.9))),
        ("warm_p99_ms".into(), Value::Float(quantile_ms(&warm_latency, 0.99))),
        ("warm_rps".into(), Value::Float(crate::metrics::round3(warm_rps))),
        ("cert_verify_ms".into(), Value::Float(cert_verify_ms)),
    ]);
    let summary = format!(
        "{scenarios} scenarios against {addr}: cold pass {cold:.1?} \
         ({builds} expansions, {ladders} ladder extensions), sweep {sweep:.1?}, \
         warm pass {warm:.1?} ({connections} conns × {per_connection} reqs, \
         {warm_new_builds} new expansions, {rps:.0} req/s); \
         {total} requests served",
        scenarios = grid.len(),
        cold = cold_wall,
        builds = after_cold.builds - before.builds,
        ladders = after_cold.ladder_hits - before.ladder_hits,
        sweep = sweep_wall,
        warm = warm_wall,
        rps = warm_rps,
        total = after_warm.requests_total,
    );
    Ok(LoadGenReport { datum, records_jsonl, warm_new_builds, summary })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_contained_run_is_warm_after_cold() {
        let cfg = LoadGenConfig {
            connections: 2,
            requests: 3,
            max_depth: 2,
            analyses: vec![AnalysisKind::Solvability, AnalysisKind::ComponentStats],
            assert_warm: true,
            server_threads: 2,
            ..LoadGenConfig::default()
        };
        let report = run(&cfg).expect("self-contained bench run");
        assert_eq!(report.warm_new_builds, 0);
        assert_eq!(report.datum.get("bench").unwrap().as_str(), Some("serve"));
        let scenarios = report.datum.get_usize("scenarios").unwrap();
        assert_eq!(scenarios, report.records_jsonl.lines().count());
        assert_eq!(report.datum.get_usize("requests_warm"), Some(6));
        assert!(report.datum.get_usize("builds_cold").unwrap() > 0);
        assert_eq!(report.datum.get_usize("sweep_new_builds"), Some(0));
        assert_eq!(report.datum.get_usize("warm_new_builds"), Some(0));
        // The merged per-connection histograms yield ordered percentiles.
        let q = |key: &str| report.datum.get(key).and_then(Value::as_f64).unwrap();
        assert!(q("warm_p50_ms") > 0.0);
        assert!(q("warm_p50_ms") <= q("warm_p90_ms"));
        assert!(q("warm_p90_ms") <= q("warm_p99_ms"));
        // The served certificate decoded, verified offline, and timed in
        // well under the "milliseconds" budget the docs promise.
        assert!(q("cert_verify_ms") > 0.0);
        assert!(q("cert_verify_ms") < 100.0, "{}", q("cert_verify_ms"));
    }
}
