//! A minimal blocking HTTP/1.1 client — the other half of the hand-rolled
//! protocol, used by the `serve-bench` load generator, the CI smoke job,
//! and the integration tests.
//!
//! One [`Client`] is one (lazily re-established) keep-alive connection: a
//! request rides the open socket when there is one, and a connection the
//! server closed (idle timeout, `Connection: close`) is transparently
//! re-dialed once before the request is reported as failed.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One HTTP exchange's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResult {
    /// The response status code.
    pub status: u16,
    /// The response body.
    pub body: String,
}

impl HttpResult {
    /// The parsed JSON body.
    ///
    /// # Errors
    /// Returns the codec's parse error on a non-JSON body.
    pub fn json(&self) -> Result<json::Value, json::ParseError> {
        json::parse(&self.body)
    }
}

/// A keep-alive HTTP/1.1 client for one server address.
#[derive(Debug)]
pub struct Client {
    addr: String,
    stream: Option<BufReader<TcpStream>>,
    reconnects: usize,
    timeout: Duration,
}

impl Client {
    /// Connect to `addr` (e.g. `"127.0.0.1:7171"`).
    ///
    /// # Errors
    /// Propagates the connection failure.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let mut client = Client {
            addr: addr.to_string(),
            stream: None,
            reconnects: 0,
            timeout: Duration::from_secs(30),
        };
        client.stream = Some(client.dial()?);
        Ok(client)
    }

    /// How often an already-established connection had to be re-dialed.
    pub fn reconnects(&self) -> usize {
        self.reconnects
    }

    /// Close the current connection (the next request re-dials). An idle
    /// keep-alive connection pins a server worker until the idle timeout;
    /// a client that will pause for a while should let go of it.
    pub fn close(&mut self) {
        self.stream = None;
    }

    fn dial(&self) -> io::Result<BufReader<TcpStream>> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;
        Ok(BufReader::new(stream))
    }

    /// `GET path`.
    ///
    /// # Errors
    /// Propagates connection and framing failures.
    pub fn get(&mut self, path: &str) -> io::Result<HttpResult> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    /// Propagates connection and framing failures.
    pub fn post_json(&mut self, path: &str, body: &str) -> io::Result<HttpResult> {
        self.request("POST", path, Some(body))
    }

    fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> io::Result<HttpResult> {
        for attempt in 0..2 {
            if self.stream.is_none() {
                self.stream = Some(self.dial()?);
                if attempt > 0 {
                    self.reconnects += 1;
                }
            }
            match self.try_request(method, path, body) {
                Ok(result) => return Ok(result),
                Err(e) => {
                    // The server may have closed an idle keep-alive
                    // connection between requests; re-dial exactly once.
                    self.stream = None;
                    if attempt > 0 {
                        return Err(e);
                    }
                }
            }
        }
        unreachable!("attempt 1 either returned or errored")
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResult> {
        let reader = self.stream.as_mut().expect("connected before request");
        let head = match body {
            None => format!("{method} {path} HTTP/1.1\r\nHost: {}\r\n\r\n", self.addr),
            Some(body) => format!(
                "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                self.addr,
                body.len()
            ),
        };
        reader.get_mut().write_all(head.as_bytes())?;

        let mut status_line = String::new();
        if reader.read_line(&mut status_line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"));
        }
        let status: u16 =
            status_line.split(' ').nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed status line {status_line:?}"),
                )
            })?;

        let mut content_length = 0usize;
        let mut close = false;
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated headers"));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let value = value.trim();
                match name.trim().to_ascii_lowercase().as_str() {
                    "content-length" => {
                        content_length = value.parse().map_err(|_| {
                            io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("bad Content-Length {value:?}"),
                            )
                        })?;
                    }
                    "connection" if value.eq_ignore_ascii_case("close") => close = true,
                    _ => {}
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        if close {
            self.stream = None;
        }
        let body = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
        Ok(HttpResult { status, body })
    }
}
