//! A minimal blocking HTTP/1.1 client — the other half of the hand-rolled
//! protocol, used by the `serve-bench` load generator, the cluster
//! coordinator, the CI smoke jobs, and the integration tests.
//!
//! One [`Client`] is one (lazily re-established) keep-alive connection: a
//! request rides the open socket when there is one, and a connection the
//! server closed (idle timeout, `Connection: close`) is transparently
//! re-dialed once before the request is reported as failed.
//!
//! Every exchange is bounded: the dial uses a connect timeout, the socket
//! carries read/write timeouts, and the whole request — dial included —
//! runs under a per-request deadline, so a hung or half-dead worker can
//! never block the caller forever. The coordinator reads the
//! [`reconnects`](Client::reconnects)/[`timeouts`](Client::timeouts)
//! counters as its per-worker health view.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// One HTTP exchange's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResult {
    /// The response status code.
    pub status: u16,
    /// The response body.
    pub body: String,
    /// The server's `x-request-id` correlation echo, when present.
    pub request_id: Option<String>,
}

impl HttpResult {
    /// The parsed JSON body.
    ///
    /// # Errors
    /// Returns the codec's parse error on a non-JSON body.
    pub fn json(&self) -> Result<json::Value, json::ParseError> {
        json::parse(&self.body)
    }
}

/// A keep-alive HTTP/1.1 client for one server address.
#[derive(Debug)]
pub struct Client {
    addr: String,
    stream: Option<BufReader<TcpStream>>,
    reconnects: usize,
    timeouts: usize,
    /// Per-request deadline: dial + write + read of one exchange must
    /// complete within this budget.
    deadline: Duration,
}

/// The default per-request deadline.
const DEFAULT_DEADLINE: Duration = Duration::from_secs(30);

impl Client {
    /// Connect to `addr` (e.g. `"127.0.0.1:7171"`) with the default
    /// 30-second per-request deadline.
    ///
    /// # Errors
    /// Propagates the connection failure.
    pub fn connect(addr: &str) -> io::Result<Client> {
        Client::connect_with_deadline(addr, DEFAULT_DEADLINE)
    }

    /// Connect with an explicit per-request deadline, which also bounds
    /// this initial dial.
    ///
    /// # Errors
    /// Propagates the connection failure (including a dial timeout).
    pub fn connect_with_deadline(addr: &str, deadline: Duration) -> io::Result<Client> {
        let mut client =
            Client { addr: addr.to_string(), stream: None, reconnects: 0, timeouts: 0, deadline };
        client.stream = Some(client.dial(deadline)?);
        Ok(client)
    }

    /// Replace the per-request deadline (dial + write + read budget).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// The per-request deadline in effect.
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// How often an already-established connection had to be re-dialed.
    pub fn reconnects(&self) -> usize {
        self.reconnects
    }

    /// How many requests failed on a timeout (dial, write, or read) —
    /// the stall half of the coordinator's health view, next to
    /// [`reconnects`](Self::reconnects).
    pub fn timeouts(&self) -> usize {
        self.timeouts
    }

    /// Close the current connection (the next request re-dials). An idle
    /// keep-alive connection pins a server worker until the idle timeout;
    /// a client that will pause for a while should let go of it.
    pub fn close(&mut self) {
        self.stream = None;
    }

    fn dial(&self, remaining: Duration) -> io::Result<BufReader<TcpStream>> {
        // `TcpStream::connect` has no timeout; resolve and dial the first
        // address under the remaining request budget instead.
        let addr = self.addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        let stream = TcpStream::connect_timeout(&addr, remaining.max(Duration::from_millis(1)))?;
        stream.set_read_timeout(Some(self.deadline))?;
        stream.set_write_timeout(Some(self.deadline))?;
        stream.set_nodelay(true)?;
        Ok(BufReader::new(stream))
    }

    /// `GET path`.
    ///
    /// # Errors
    /// Propagates connection and framing failures.
    pub fn get(&mut self, path: &str) -> io::Result<HttpResult> {
        self.request("GET", path, None, &[])
    }

    /// `GET path` with extra request headers (e.g. the
    /// `x-consensus-trace` propagation context).
    ///
    /// # Errors
    /// Propagates connection and framing failures.
    pub fn get_with(&mut self, path: &str, headers: &[(&str, &str)]) -> io::Result<HttpResult> {
        self.request("GET", path, None, headers)
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    /// Propagates connection and framing failures.
    pub fn post_json(&mut self, path: &str, body: &str) -> io::Result<HttpResult> {
        self.request("POST", path, Some(body), &[])
    }

    /// `POST path` with a JSON body and extra request headers (e.g. the
    /// `x-consensus-trace` propagation context stamped by the cluster
    /// coordinator on every dispatch).
    ///
    /// # Errors
    /// Propagates connection and framing failures.
    pub fn post_json_with(
        &mut self,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> io::Result<HttpResult> {
        self.request("POST", path, Some(body), headers)
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> io::Result<HttpResult> {
        let started = Instant::now();
        for attempt in 0..2 {
            let remaining = match self.deadline.checked_sub(started.elapsed()) {
                Some(left) if !left.is_zero() => left,
                _ => {
                    self.timeouts += 1;
                    self.stream = None;
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("request deadline of {:?} exhausted", self.deadline),
                    ));
                }
            };
            if self.stream.is_none() {
                self.stream = Some(match self.dial(remaining) {
                    Ok(stream) => stream,
                    Err(e) => {
                        if is_timeout(&e) {
                            self.timeouts += 1;
                        }
                        return Err(e);
                    }
                });
                if attempt > 0 {
                    self.reconnects += 1;
                }
            }
            match self.try_request(method, path, body, headers, started) {
                Ok(result) => return Ok(result),
                Err(e) => {
                    // The server may have closed an idle keep-alive
                    // connection between requests; re-dial exactly once.
                    // A timeout is not that — the peer is stalled, and a
                    // retry would just burn the rest of the deadline.
                    self.stream = None;
                    if is_timeout(&e) {
                        self.timeouts += 1;
                        return Err(e);
                    }
                    if attempt > 0 {
                        return Err(e);
                    }
                }
            }
        }
        unreachable!("attempt 1 either returned or errored")
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
        started: Instant,
    ) -> io::Result<HttpResult> {
        let deadline = self.deadline;
        let reader = self.stream.as_mut().expect("connected before request");
        // Tighten the socket timeouts to the remaining request budget, so
        // the deadline holds within (coarsely) one blocking call of slack.
        let remaining = deadline
            .checked_sub(started.elapsed())
            .filter(|left| !left.is_zero())
            .ok_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "request deadline exhausted"))?;
        reader.get_ref().set_read_timeout(Some(remaining))?;
        reader.get_ref().set_write_timeout(Some(remaining))?;
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {}\r\n", self.addr);
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        match body {
            None => head.push_str("\r\n"),
            Some(body) => {
                head.push_str(&format!(
                    "Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                ));
            }
        }
        reader.get_mut().write_all(head.as_bytes())?;

        let mut status_line = String::new();
        if reader.read_line(&mut status_line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"));
        }
        let status: u16 =
            status_line.split(' ').nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed status line {status_line:?}"),
                )
            })?;

        let mut content_length = 0usize;
        let mut close = false;
        let mut request_id = None;
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated headers"));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let value = value.trim();
                match name.trim().to_ascii_lowercase().as_str() {
                    "content-length" => {
                        content_length = value.parse().map_err(|_| {
                            io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("bad Content-Length {value:?}"),
                            )
                        })?;
                    }
                    "connection" if value.eq_ignore_ascii_case("close") => close = true,
                    "x-request-id" => request_id = Some(value.to_string()),
                    _ => {}
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        if close {
            self.stream = None;
        }
        let body = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
        Ok(HttpResult { status, body, request_id })
    }
}

/// Whether an I/O error is a timeout (`TimedOut`, or the `WouldBlock` some
/// platforms report for an expired socket timeout).
fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn deadline_bounds_a_stalled_server() {
        // A listener that accepts and then never answers: the request must
        // come back as a timeout within (roughly) the deadline, and the
        // timeout counter must tick.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let mut client = Client::connect_with_deadline(&addr, Duration::from_millis(200)).unwrap();
        let started = Instant::now();
        let err = client.get("/healthz").unwrap_err();
        assert!(is_timeout(&err), "expected a timeout, got {err}");
        assert!(started.elapsed() < Duration::from_secs(5));
        assert_eq!(client.timeouts(), 1);
        drop(hold.join());
    }

    #[test]
    fn dead_address_fails_fast_not_forever() {
        // Bind then drop: the port refuses connections immediately.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let started = Instant::now();
        assert!(Client::connect_with_deadline(&addr, Duration::from_millis(500)).is_err());
        assert!(started.elapsed() < Duration::from_secs(5));
    }
}
