//! The multi-threaded TCP server: an acceptor thread feeding a bounded
//! pool of connection workers over a condvar-backed queue, with keep-alive
//! connection handling and graceful shutdown.
//!
//! Built on `std::net` alone (the environment is registry-less — no
//! tokio/hyper), which shapes the design: blocking reads with a read
//! timeout bound how long an idle keep-alive connection can pin a worker,
//! and shutdown wakes the blocked acceptor by connecting to its own
//! listener.

use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use consensus_core::error::Error;

use crate::api::{App, Response};
use crate::http::{self, HttpError};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port (tests, in-process
    /// benches).
    pub addr: String,
    /// Worker threads handling connections (`0` = available parallelism).
    pub threads: usize,
    /// How long a worker blocks on an idle keep-alive connection before
    /// closing it (also the granularity at which workers notice shutdown
    /// mid-connection).
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            read_timeout: Duration::from_secs(5),
        }
    }
}

impl ServeConfig {
    /// The worker count with `0` resolved to available parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        }
    }
}

/// Upper bound on connections waiting for a worker; connections beyond it
/// are shed with a `503` instead of queueing (each queued connection holds
/// an open fd — an unbounded queue turns a connection flood into fd
/// exhaustion).
const MAX_PENDING_CONNECTIONS: usize = 1024;

/// The accepted-connection queue feeding the worker pool.
#[derive(Debug, Default)]
struct ConnQueue {
    pending: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

impl ConnQueue {
    /// Enqueue a connection, or hand it back when the queue is full.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut pending = self.pending.lock().expect("queue lock poisoned");
        if pending.len() >= MAX_PENDING_CONNECTIONS {
            return Err(stream);
        }
        pending.push_back(stream);
        drop(pending);
        self.ready.notify_one();
        Ok(())
    }

    /// Pop a connection, blocking until one arrives or shutdown is
    /// signalled (`None` = drain complete, worker should exit).
    fn pop(&self, shutdown: &AtomicBool) -> Option<TcpStream> {
        let mut pending = self.pending.lock().expect("queue lock poisoned");
        loop {
            if let Some(stream) = pending.pop_front() {
                return Some(stream);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(pending, Duration::from_millis(50))
                .expect("queue lock poisoned");
            pending = guard;
        }
    }
}

/// A running server; dropping without [`stop`](Server::stop)/
/// [`wait`](Server::wait) detaches the threads (the process exits anyway).
#[derive(Debug)]
pub struct Server {
    app: Arc<App>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `cfg.addr` and start the acceptor plus the worker pool.
    ///
    /// # Errors
    /// Returns [`Error::Io`] when the address cannot be bound.
    pub fn bind(app: Arc<App>, cfg: &ServeConfig) -> Result<Server, Error> {
        // A restarted server races its predecessor's TIME_WAIT sockets on
        // the same port (std's TcpListener does not set SO_REUSEADDR, and
        // this workspace forbids the unsafe needed to set it by hand), so
        // retry AddrInUse briefly instead of failing the restart.
        let mut listener = TcpListener::bind(&cfg.addr);
        for _ in 0..20 {
            match &listener {
                Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                    std::thread::sleep(Duration::from_millis(250));
                    listener = TcpListener::bind(&cfg.addr);
                }
                _ => break,
            }
        }
        let listener = listener.map_err(|e| Error::io(format!("binding {}", cfg.addr), e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::io(format!("resolving local address of {}", cfg.addr), e))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(ConnQueue::default());

        let acceptor = {
            let app = Arc::clone(&app);
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            app.metrics().connection_accepted();
                            if let Err(mut shed) = queue.push(stream) {
                                // Overloaded: shed the connection with a
                                // 503 rather than queueing unboundedly.
                                let response = Response::error(
                                    503,
                                    "overloaded",
                                    "connection queue full; retry later",
                                );
                                let _ = write(&mut shed, &response, false);
                            }
                        }
                        // Transient accept failures (per-connection
                        // resets, fd exhaustion) must not kill the server —
                        // but some (EMFILE) persist, so back off instead of
                        // spinning the acceptor at 100% CPU.
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
                queue.ready.notify_all();
            })
        };

        let workers = (0..cfg.effective_threads())
            .map(|_| {
                let app = Arc::clone(&app);
                let queue = Arc::clone(&queue);
                let shutdown = Arc::clone(&shutdown);
                let read_timeout = cfg.read_timeout;
                std::thread::spawn(move || {
                    while let Some(stream) = queue.pop(&shutdown) {
                        handle_connection(&app, stream, read_timeout, &shutdown);
                    }
                })
            })
            .collect();

        Ok(Server { app, addr, shutdown, acceptor: Some(acceptor), workers })
    }

    /// The bound address (the actual port when `addr` asked for `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared application.
    pub fn app(&self) -> &Arc<App> {
        &self.app
    }

    /// Signal shutdown and join every thread: in-flight requests complete,
    /// queued connections drain, new connections stop being accepted.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking `accept` with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        self.join();
    }

    /// Block until the server exits (i.e. until another handle — or a
    /// signal-induced process death — ends it). The CLI foreground path.
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Serve one connection: keep-alive request loop until the peer closes,
/// framing fails, the idle timeout fires, or shutdown is signalled.
fn handle_connection(app: &App, stream: TcpStream, read_timeout: Duration, shutdown: &AtomicBool) {
    let _active = app.metrics().connection_active();
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        // No shutdown check before the read: a connection popped during
        // shutdown drains — its already-sent request is answered (with
        // `Connection: close`) rather than reset.
        match http::read_request(&mut reader) {
            Ok(None) => return,
            Ok(Some(request)) => {
                let response = app.handle(&request);
                // Shutdown closes after the in-flight answer, not before.
                let keep_alive = request.keep_alive && !shutdown.load(Ordering::SeqCst);
                if write(&mut writer, &response, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(HttpError::Io(_)) => return, // peer gone or idle timeout
            Err(HttpError::Bad(message)) => {
                let response = Response::error(400, "bad-request", &message);
                let _ = write(&mut writer, &response, false);
                return;
            }
            Err(HttpError::TooLarge(what)) => {
                let response =
                    Response::error(413, "too-large", &format!("request too large: {what}"));
                let _ = write(&mut writer, &response, false);
                return;
            }
        }
    }
}

fn write(writer: &mut impl Write, response: &Response, keep_alive: bool) -> std::io::Result<()> {
    http::write_response_with(
        writer,
        response.status,
        response.content_type,
        &response.headers,
        response.body.as_bytes(),
        keep_alive,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use consensus_lab::session::Session;

    fn start(threads: usize) -> Server {
        let cfg = ServeConfig { threads, ..ServeConfig::default() };
        Server::bind(Arc::new(App::new(Session::new())), &cfg).unwrap()
    }

    #[test]
    fn serves_keep_alive_requests_on_one_connection() {
        let server = start(2);
        let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
        for _ in 0..3 {
            let result = client.get("/healthz").unwrap();
            assert_eq!(result.status, 200);
            assert!(result.body.contains("\"ok\""));
        }
        assert_eq!(client.reconnects(), 0, "keep-alive must reuse the connection");
        let metrics = json::parse(&client.get("/metrics").unwrap().body).unwrap();
        let connections = metrics.get("connections").unwrap();
        assert_eq!(connections.get_usize("accepted"), Some(1));
        // Close the connection before stopping so the worker is not left
        // blocked in an idle read for the full timeout.
        drop(client);
        server.stop();
    }

    #[test]
    fn answers_in_flight_then_refuses_after_stop() {
        let server = start(1);
        let addr = server.local_addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        drop(client);
        server.stop();
        let mut fresh = Client::connect(&addr);
        let dead = match fresh.as_mut() {
            Err(_) => true, // nothing listening any more
            Ok(client) => client.get("/healthz").is_err(),
        };
        assert!(dead, "a stopped server must not answer new connections");
    }

    #[test]
    fn malformed_requests_get_a_400_and_a_closed_connection() {
        use std::io::{Read, Write};
        let server = start(1);
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"total nonsense\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("Connection: close"), "{response}");
        server.stop();
    }
}
