//! The tracer: hierarchical spans with monotonic timings and typed
//! attributes, recorded into a bounded ring buffer.
//!
//! One process-global [`Tracer`] (see [`tracer`]) is shared by every
//! layer. It is **disabled by default** and the disabled fast path is a
//! single relaxed atomic load plus a branch — no allocation, no lock, no
//! clock read — so instrumentation can live in hot loops permanently.
//!
//! A [`SpanGuard`] measures from creation to drop. Same-thread nesting is
//! automatic (a thread-local span stack); cross-thread nesting is explicit
//! via [`Tracer::current_id`] + [`Tracer::span_under`]. Finished spans are
//! pushed into a bounded ring (oldest records are overwritten under
//! pressure, counted by [`Tracer::dropped`]) and harvested with
//! [`Tracer::drain`], e.g. for `--trace-out` JSONL export.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Spans the ring holds before overwriting the oldest; generous enough
/// for a full catalog sweep, small enough to bound memory (~100 B/span).
const RING_CAPACITY: usize = 65_536;

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (counts, sizes).
    Uint(u64),
    /// A float (ratios, rates). Non-finite values serialize as `null`.
    Float(f64),
    /// A string (names, outcomes).
    Str(String),
    /// A boolean flag.
    Bool(bool),
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Uint(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Uint(v as u64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// A finished span: what the ring buffer stores and [`Tracer::drain`]
/// returns, in **completion order** (children before their parents).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The span name (`expand`, `cache.lookup`, `http.request`, …).
    pub name: &'static str,
    /// Process-unique span id (monotonically assigned, starts at 1).
    pub id: u64,
    /// The enclosing span's id, if any.
    pub parent: Option<u64>,
    /// Microseconds from the process trace epoch to span open.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Typed attributes, in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Render the record as one JSONL line (no trailing newline):
    /// `{"span":NAME,"id":N,"parent":N|null,"start_us":N,"dur_us":N,"attrs":{...}}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"span\":\"");
        escape_into(&mut out, self.name);
        out.push_str("\",\"id\":");
        out.push_str(&self.id.to_string());
        out.push_str(",\"parent\":");
        match self.parent {
            Some(p) => out.push_str(&p.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"start_us\":");
        out.push_str(&self.start_us.to_string());
        out.push_str(",\"dur_us\":");
        out.push_str(&self.dur_us.to_string());
        out.push_str(",\"attrs\":{");
        for (i, (key, value)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, key);
            out.push_str("\":");
            match value {
                AttrValue::Int(v) => out.push_str(&v.to_string()),
                AttrValue::Uint(v) => out.push_str(&v.to_string()),
                AttrValue::Float(v) if v.is_finite() => out.push_str(&v.to_string()),
                AttrValue::Float(_) => out.push_str("null"),
                AttrValue::Str(v) => {
                    out.push('"');
                    escape_into(&mut out, v);
                    out.push('"');
                }
                AttrValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            }
        }
        out.push_str("}}");
        out
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Fixed-capacity overwrite-oldest ring of finished spans.
#[derive(Debug)]
struct Ring {
    buf: Vec<SpanRecord>,
    /// Next slot to overwrite once `buf` has reached capacity.
    head: usize,
}

impl Ring {
    const fn new() -> Ring {
        Ring { buf: Vec::new(), head: 0 }
    }

    /// Push a record; returns `true` when an old record was overwritten.
    fn push(&mut self, record: SpanRecord) -> bool {
        if self.buf.len() < RING_CAPACITY {
            self.buf.push(record);
            false
        } else {
            self.buf[self.head] = record;
            self.head = (self.head + 1) % RING_CAPACITY;
            true
        }
    }

    /// Take every record, oldest first, leaving the ring empty.
    fn drain(&mut self) -> Vec<SpanRecord> {
        let head = std::mem::take(&mut self.head);
        let mut buf = std::mem::take(&mut self.buf);
        let len = buf.len().max(1);
        buf.rotate_left(head % len);
        buf
    }
}

thread_local! {
    /// Open span ids on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The process-global span recorder. See the [module docs](self).
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    next_id: AtomicU64,
    started: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<Ring>,
}

/// The process-global tracer instance.
static TRACER: Tracer = Tracer::new();

/// The process trace epoch: all span `start_us` offsets are relative to
/// the first clock read after the tracer is first touched.
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// The process-global [`Tracer`].
pub fn tracer() -> &'static Tracer {
    &TRACER
}

/// The process-scoped 128-bit trace id, lazily minted on first use from
/// the wall clock and the process id. Every span this process records
/// belongs to this one trace; a remote caller's context whose trace id
/// differs marks a cross-process edge (see [`TraceContext`]).
static TRACE_ID: OnceLock<u128> = OnceLock::new();

/// The process-scoped 128-bit trace id (stable for the process lifetime).
pub fn trace_id() -> u128 {
    *TRACE_ID.get_or_init(|| {
        let nanos = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos()).unwrap_or(0);
        // XOR the pid into the low bits so two processes started within
        // one clock tick (a coordinator forking its fleet) still differ.
        nanos ^ u128::from(std::process::id())
    })
}

/// The request header carrying a [`TraceContext`] across processes.
pub const TRACE_HEADER: &str = "x-consensus-trace";

/// A `traceparent`-style cross-process trace context: which trace a
/// request belongs to and which span it should parent under.
///
/// Wire format (the value of [`TRACE_HEADER`]):
/// `<trace_id as 32 lowercase hex digits>-<parent span id, decimal>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The caller's process-scoped 128-bit trace id.
    pub trace_id: u128,
    /// The caller-side span the receiver's work should parent under.
    pub parent_span: u64,
}

impl TraceContext {
    /// The context for a span of the **local** trace — what a caller
    /// stamps on an outgoing request.
    pub fn local(parent_span: u64) -> TraceContext {
        TraceContext { trace_id: trace_id(), parent_span }
    }

    /// Render the header value: `{trace_id:032x}-{parent_span}`.
    pub fn to_header(&self) -> String {
        format!("{:032x}-{}", self.trace_id, self.parent_span)
    }

    /// Parse a header value produced by [`to_header`](Self::to_header).
    /// Returns `None` on any malformed input (wrong field count, bad hex,
    /// bad decimal) — a bad header is ignored, never an error.
    pub fn parse(value: &str) -> Option<TraceContext> {
        let (hex, span) = value.trim().split_once('-')?;
        if hex.len() != 32 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let trace_id = u128::from_str_radix(hex, 16).ok()?;
        let parent_span = span.parse::<u64>().ok()?;
        Some(TraceContext { trace_id, parent_span })
    }

    /// Whether this context belongs to the local process's trace — if so
    /// the parent span id is directly meaningful and the receiver can
    /// parent under it with [`Tracer::span_under`] (the in-process
    /// cluster shape: coordinator and "workers" share one tracer).
    pub fn is_local(&self) -> bool {
        self.trace_id == trace_id()
    }
}

impl Tracer {
    const fn new() -> Tracer {
        Tracer {
            enabled: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            started: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(Ring::new()),
        }
    }

    /// Turn span recording on.
    pub fn enable(&self) {
        epoch(); // pin the epoch before the first span opens
        self.enabled.store(true, Ordering::SeqCst);
    }

    /// Turn span recording off. Already-recorded spans stay in the ring;
    /// guards still open when tracing is disabled record on drop.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::SeqCst);
    }

    /// Whether spans are being recorded (one relaxed atomic load — the
    /// whole cost of a disabled [`span`](Self::span) call is this load
    /// plus a branch).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Open a span parented to the innermost open span on this thread
    /// (none ⇒ a root span). Returns an inert no-allocation guard when
    /// tracing is disabled.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard { inner: None, _not_send: PhantomData };
        }
        let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
        self.open(name, parent)
    }

    /// Open a span under an explicit parent — the cross-thread seam: the
    /// spawning thread captures [`current_id`](Self::current_id), workers
    /// open their spans under it. The new span still joins the worker
    /// thread's own stack, so spans it opens nest beneath it.
    #[inline]
    pub fn span_under(&self, name: &'static str, parent: Option<u64>) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard { inner: None, _not_send: PhantomData };
        }
        self.open(name, parent)
    }

    fn open(&self, name: &'static str, parent: Option<u64>) -> SpanGuard {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.started.fetch_add(1, Ordering::Relaxed);
        let start_us = us_since_epoch();
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        SpanGuard {
            inner: Some(Box::new(ActiveSpan { name, id, parent, start_us, attrs: Vec::new() })),
            _not_send: PhantomData,
        }
    }

    /// The innermost open span id on this thread, if any.
    pub fn current_id(&self) -> Option<u64> {
        if !self.is_enabled() {
            return None;
        }
        SPAN_STACK.with(|s| s.borrow().last().copied())
    }

    /// Take every finished span, oldest first, leaving the ring empty.
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.ring.lock().expect("tracer ring poisoned").drain()
    }

    /// Every finished span with `id > since_id`, oldest first, **without**
    /// emptying the ring — the cursor read behind `GET /v1/trace?since=ID`.
    /// Non-destructive so it coexists with a concurrent `--trace-out`
    /// flusher calling [`drain`](Self::drain); callers resume from the
    /// max id they have seen. Spans overwritten by ring pressure before
    /// the read are gone (count them via [`dropped`](Self::dropped)).
    pub fn spans_since(&self, since_id: u64) -> Vec<SpanRecord> {
        let ring = self.ring.lock().expect("tracer ring poisoned");
        let len = ring.buf.len().max(1);
        let mut out: Vec<SpanRecord> = Vec::new();
        // Walk oldest → newest without disturbing the ring.
        for offset in 0..ring.buf.len() {
            let record = &ring.buf[(ring.head + offset) % len];
            if record.id > since_id {
                out.push(record.clone());
            }
        }
        out
    }

    /// Total spans ever opened while enabled — the tracer's only
    /// allocation site, so a zero delta proves the disabled path
    /// allocated nothing.
    pub fn spans_started(&self) -> u64 {
        self.started.load(Ordering::Relaxed)
    }

    /// Finished spans overwritten by ring-buffer pressure before being
    /// drained.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn record(&self, record: SpanRecord) {
        let overwrote = self.ring.lock().expect("tracer ring poisoned").push(record);
        if overwrote {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn us_since_epoch() -> u64 {
    u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[derive(Debug)]
struct ActiveSpan {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start_us: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// An open span; measures from creation to drop and records itself into
/// the tracer's ring on drop. Inert (and allocation-free) when tracing
/// was disabled at creation.
///
/// Guards must be dropped on the thread that opened them, innermost
/// first — the natural shape of scope-based use. The type is `!Send` so
/// the compiler enforces the thread half.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<Box<ActiveSpan>>,
    /// Guards pop a thread-local stack on drop, so they must stay on
    /// their opening thread.
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Attach (or overwrite) a typed attribute. No-op on an inert guard.
    pub fn set_attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(span) = self.inner.as_deref_mut() {
            let value = value.into();
            match span.attrs.iter_mut().find(|(k, _)| *k == key) {
                Some(slot) => slot.1 = value,
                None => span.attrs.push((key, value)),
            }
        }
    }

    /// Builder-style [`set_attr`](Self::set_attr).
    #[must_use]
    pub fn with_attr(mut self, key: &'static str, value: impl Into<AttrValue>) -> Self {
        self.set_attr(key, value);
        self
    }

    /// The span id, or `None` on an inert guard.
    pub fn id(&self) -> Option<u64> {
        self.inner.as_deref().map(|s| s.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.inner.take() else {
            return;
        };
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            debug_assert_eq!(stack.last(), Some(&span.id), "span guards must drop innermost-first");
            if let Some(pos) = stack.iter().rposition(|&id| id == span.id) {
                stack.remove(pos);
            }
        });
        let end_us = us_since_epoch();
        TRACER.record(SpanRecord {
            name: span.name,
            id: span.id,
            parent: span.parent,
            start_us: span.start_us,
            dur_us: end_us.saturating_sub(span.start_us),
            attrs: span.attrs,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex as StdMutex, OnceLock as StdOnceLock};

    /// The tracer is process-global; tests that enable it must not
    /// interleave. (Cargo runs tests in one process.)
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: StdOnceLock<StdMutex<()>> = StdOnceLock::new();
        match LOCK.get_or_init(StdMutex::default).lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn disabled_path_records_nothing_and_allocates_nothing() {
        let _serial = serial();
        tracer().disable();
        let _ = tracer().drain();
        let started_before = tracer().spans_started();
        for _ in 0..1000 {
            let mut guard = tracer().span("expand");
            guard.set_attr("runs", 1u64); // must be a no-op
            assert!(guard.id().is_none());
        }
        // `spans_started` counts the tracer's only allocation site: a zero
        // delta means the loop above allocated nothing and recorded
        // nothing.
        assert_eq!(tracer().spans_started(), started_before);
        assert!(tracer().drain().is_empty());
    }

    #[test]
    fn same_thread_spans_nest_via_the_stack() {
        let _serial = serial();
        tracer().disable();
        let _ = tracer().drain();
        tracer().enable();
        {
            let outer = tracer().span("expand");
            let outer_id = outer.id().unwrap();
            {
                let inner = tracer().span("shard");
                assert_eq!(tracer().current_id(), inner.id());
            }
            assert_eq!(tracer().current_id(), Some(outer_id));
        }
        tracer().disable();
        let spans = tracer().drain();
        assert_eq!(spans.len(), 2);
        let (inner, outer) = (&spans[0], &spans[1]);
        assert_eq!(inner.name, "shard");
        assert_eq!(outer.name, "expand");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        // Temporal containment: the child lives inside the parent.
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us);
    }

    #[test]
    fn cross_thread_parenting_via_span_under() {
        let _serial = serial();
        tracer().disable();
        let _ = tracer().drain();
        tracer().enable();
        {
            let root = tracer().span("expand");
            let parent = tracer().current_id();
            assert_eq!(parent, root.id());
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    scope.spawn(move || {
                        let shard = tracer().span_under("shard", parent);
                        // The worker's own children nest under the shard.
                        assert_eq!(tracer().current_id(), shard.id());
                        let _inner = tracer().span("absorb");
                    });
                }
            });
        }
        tracer().disable();
        let spans = tracer().drain();
        let root_id = spans.iter().find(|s| s.name == "expand").unwrap().id;
        let shards: Vec<_> = spans.iter().filter(|s| s.name == "shard").collect();
        assert_eq!(shards.len(), 2);
        for shard in &shards {
            assert_eq!(shard.parent, Some(root_id));
        }
        for absorb in spans.iter().filter(|s| s.name == "absorb") {
            assert!(shards.iter().any(|s| Some(s.id) == absorb.parent));
        }
    }

    #[test]
    fn jsonl_rendering_escapes_and_types_attrs() {
        let record = SpanRecord {
            name: "cache.lookup",
            id: 7,
            parent: Some(3),
            start_us: 10,
            dur_us: 2,
            attrs: vec![
                ("outcome", AttrValue::Str("hit \"quoted\"\n".into())),
                ("runs", AttrValue::Uint(36)),
                ("delta", AttrValue::Int(-2)),
                ("ratio", AttrValue::Float(0.5)),
                ("bad", AttrValue::Float(f64::NAN)),
                ("warm", AttrValue::Bool(true)),
            ],
        };
        assert_eq!(
            record.to_jsonl(),
            "{\"span\":\"cache.lookup\",\"id\":7,\"parent\":3,\"start_us\":10,\"dur_us\":2,\
             \"attrs\":{\"outcome\":\"hit \\\"quoted\\\"\\n\",\"runs\":36,\"delta\":-2,\
             \"ratio\":0.5,\"bad\":null,\"warm\":true}}"
        );
        let root = SpanRecord { parent: None, attrs: Vec::new(), ..record };
        assert!(root.to_jsonl().contains("\"parent\":null"));
        assert!(root.to_jsonl().ends_with("\"attrs\":{}}"));
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut ring = Ring::new();
        let record = |id: u64| SpanRecord {
            name: "x",
            id,
            parent: None,
            start_us: 0,
            dur_us: 0,
            attrs: Vec::new(),
        };
        for id in 0..RING_CAPACITY as u64 {
            assert!(!ring.push(record(id)));
        }
        assert!(ring.push(record(RING_CAPACITY as u64)));
        let drained = ring.drain();
        assert_eq!(drained.len(), RING_CAPACITY);
        // Oldest first, record 0 was overwritten.
        assert_eq!(drained[0].id, 1);
        assert_eq!(drained.last().unwrap().id, RING_CAPACITY as u64);
    }

    #[test]
    fn trace_context_round_trips_and_rejects_garbage() {
        let ctx =
            TraceContext { trace_id: 0xdead_beef_0123_4567_89ab_cdef_0011_2233, parent_span: 42 };
        let header = ctx.to_header();
        assert_eq!(header, "deadbeef0123456789abcdef00112233-42");
        assert_eq!(TraceContext::parse(&header), Some(ctx));
        // The local constructor uses the process trace id, which is stable.
        let local = TraceContext::local(7);
        assert!(local.is_local());
        assert_eq!(TraceContext::parse(&local.to_header()), Some(local));
        assert!(!ctx.is_local() || trace_id() == ctx.trace_id);

        for bad in [
            "",
            "deadbeef",
            "deadbeef0123456789abcdef00112233",     // no span
            "deadbeef0123456789abcdef00112233-",    // empty span
            "deadbeef0123456789abcdef00112233-x",   // non-decimal span
            "deadbeef0123456789abcdef0011223-42",   // 31 hex digits
            "zzadbeef0123456789abcdef00112233-42",  // non-hex
            "deadbeef0123456789abcdef001122334-42", // 33 hex digits
        ] {
            assert_eq!(TraceContext::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn spans_since_is_a_nondestructive_cursor() {
        let _serial = serial();
        tracer().disable();
        let _ = tracer().drain();
        tracer().enable();
        drop(tracer().span("expand"));
        let first = tracer().spans_since(0);
        assert_eq!(first.len(), 1);
        let cursor = first[0].id;
        drop(tracer().span("shard"));
        tracer().disable();
        // The cursor read returns only the new span, and the ring still
        // holds both for the destructive drain.
        let fresh = tracer().spans_since(cursor);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].name, "shard");
        assert_eq!(tracer().spans_since(fresh[0].id).len(), 0);
        assert_eq!(tracer().drain().len(), 2);
    }

    #[test]
    fn attrs_overwrite_by_key() {
        let _serial = serial();
        tracer().disable();
        let _ = tracer().drain();
        tracer().enable();
        {
            let mut span = tracer().span("cache.lookup");
            span.set_attr("outcome", "miss");
            span.set_attr("outcome", "build");
        }
        tracer().disable();
        let spans = tracer().drain();
        assert_eq!(spans[0].attrs, vec![("outcome", AttrValue::Str("build".into()))]);
    }
}
