//! **Structured observability for the consensus workspace** — spans,
//! counters, gauges, and log-bucketed histograms, with zero dependencies
//! (pure `std`) so it can sit *below* every other crate: the expansion
//! engine, the sweep lab, the `Session` facade, and the HTTP service all
//! record into the same process-global substrate.
//!
//! Two halves:
//!
//! * [`trace`] — a lock-cheap [`Tracer`] with hierarchical
//!   spans (`expand`, `shard`, `absorb`, `components`, `analysis.<kind>`,
//!   `cache.lookup`, `journal.load`, `http.request`, …) carrying monotonic
//!   timings and typed attributes, recorded into a bounded ring buffer and
//!   drainable as JSONL. Tracing is **off by default**: the disabled path
//!   is one relaxed atomic load plus a branch, and allocates nothing, so
//!   instrumented hot loops cost nothing when nobody is listening.
//! * [`metrics`] — a process-global [`Registry`] of
//!   named lock-free [`Counter`]s,
//!   [`Gauge`]s, and mergeable log-bucketed
//!   [`Histogram`]s (p50/p90/p99/max with bounded
//!   relative error), plus [`prom`] renderers for Prometheus text
//!   exposition.
//!
//! # Span hierarchy
//!
//! Spans nest automatically through a thread-local stack: a span opened
//! while another is live on the same thread becomes its child. Work that
//! crosses threads (sharded expansion, sweep workers) propagates the
//! parent explicitly: capture [`Tracer::current_id`] on the spawning
//! thread and open the child with [`Tracer::span_under`] on the worker.
//!
//! ```
//! use consensus_obs::trace::tracer;
//!
//! tracer().enable();
//! {
//!     let _root = tracer().span("expand");
//!     let mut shard = tracer().span("shard");
//!     shard.set_attr("runs", 42u64);
//! } // guards record on drop, children before parents
//! let spans = tracer().drain();
//! assert_eq!(spans.len(), 2);
//! assert_eq!(spans[0].name, "shard");
//! assert_eq!(spans[0].parent, Some(spans[1].id));
//! tracer().disable();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod prom;
pub mod trace;

pub use metrics::{registry, Counter, Gauge, Histogram, Registry};
pub use trace::{trace_id, tracer, SpanGuard, SpanRecord, TraceContext, Tracer, TRACE_HEADER};
