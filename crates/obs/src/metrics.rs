//! Lock-free named metrics: counters, gauges, and mergeable log-bucketed
//! histograms, plus the process-global [`Registry`].
//!
//! # Histogram buckets
//!
//! [`Histogram`] buckets `u64` samples (conventionally **nanoseconds**)
//! into a log-linear layout: four sub-buckets per power of two, so any
//! quantile estimate is off by at most one sub-bucket width — ≤ 25%
//! relative error — while the whole `u64` range fits in 253 fixed
//! buckets of one `AtomicU64` each. Values `0..=4` get exact buckets,
//! and every bucket *upper bound* is exactly representable: a histogram
//! fed only bucket-boundary values reports exact quantiles (see the
//! bucket-boundary test). Merging adds per-bucket counts, so merge is
//! commutative and associative — per-worker histograms combine into one
//! without coordination.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of histogram buckets covering all of `u64`.
pub const NUM_BUCKETS: usize = 253;

/// The bucket index for a sample: `0 → 0`, `1..=4` exact, then four
/// sub-buckets per octave `(2^m, 2^{m+1}]`.
fn bucket_index(v: u64) -> usize {
    if v <= 4 {
        return v as usize;
    }
    // v ≥ 5 ⇒ v − 1 ≥ 4 ⇒ m = ⌊log₂(v−1)⌋ ≥ 2, and 2^m < v ≤ 2^{m+1}.
    let m = 63 - (v - 1).leading_zeros() as usize;
    let width = 1u64 << (m - 2);
    let sub = (v - (1u64 << m)).div_ceil(width); // 1..=4
    4 + (m - 2) * 4 + sub as usize
}

/// The inclusive upper bound of bucket `idx` (saturating at `u64::MAX`
/// for the last bucket, whose true bound is 2^64).
pub fn bucket_bound(idx: usize) -> u64 {
    if idx <= 4 {
        return idx as u64;
    }
    let off = idx - 5;
    let m = 2 + off / 4;
    let sub = (off % 4 + 1) as u64;
    let base = 1u64 << m;
    let width = 1u64 << (m - 2);
    base.saturating_add(sub * width)
}

/// A monotonically increasing lock-free counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free gauge: a value that can move both ways (queue depths,
/// hit rates in percent, loaded-entry counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Replace the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A mergeable log-bucketed histogram over `u64` samples; see the
/// [module docs](self) for the bucket layout.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds (saturating).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping only past ~584 years of nanoseconds).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample recorded (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding the rank-⌈q·count⌉ sample; `0` on an empty histogram.
    /// Exact when samples sit on bucket bounds, ≤ 25% high otherwise.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                return bucket_bound(idx);
            }
        }
        self.max() // racing writers bumped buckets after `count` was read
    }

    /// Fold `other`'s samples into `self` (per-bucket addition — the
    /// merge is commutative and associative, so per-worker histograms
    /// combine in any order).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// An immutable snapshot (non-empty buckets only).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (idx, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((bucket_bound(idx), n));
            }
        }
        HistogramSnapshot { count: self.count(), sum: self.sum(), max: self.max(), buckets }
    }
}

/// A point-in-time copy of a [`Histogram`]: `(bucket upper bound, count)`
/// pairs for the non-empty buckets, in increasing bound order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample (exact).
    pub max: u64,
    /// Non-empty `(upper bound, count)` buckets, increasing.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The `q`-quantile of the snapshot (same semantics as
    /// [`Histogram::quantile`]).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for &(bound, n) in &self.buckets {
            cumulative += n;
            if cumulative >= rank {
                return bound;
            }
        }
        self.max
    }
}

/// Named metric handles, shared process-wide: layers ask for a metric by
/// name ([`Registry::counter`] & co.) and get the same `Arc`-shared
/// instance every time — register-once semantics without init ordering.
#[derive(Debug)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

static REGISTRY: Registry = Registry::new();

/// The process-global [`Registry`].
pub fn registry() -> &'static Registry {
    &REGISTRY
}

impl Registry {
    /// An empty registry (the global one is created this way; tests may
    /// build private ones).
    pub const fn new() -> Registry {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("registry lock poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("registry lock poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("registry lock poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// A point-in-time snapshot of every metric, name-sorted (the
    /// `BTreeMap` order) so renderings are deterministic.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .counters
            .lock()
            .expect("registry lock poisoned")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("registry lock poisoned")
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("registry lock poisoned")
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        RegistrySnapshot { counters, gauges, histograms }
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

/// A name-sorted point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bound_are_inverse_enough() {
        // Every value lands in a bucket whose bound is ≥ it and whose
        // predecessor's bound is < it.
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7, 8, 9, 100, 1_000, 1 << 20, u64::MAX] {
            let idx = bucket_index(v);
            assert!(bucket_bound(idx) >= v, "bound({idx}) < {v}");
            if idx > 0 {
                assert!(bucket_bound(idx - 1) < v, "bound({}) ≥ {v}", idx - 1);
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_bound(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_boundaries_are_exact() {
        // A histogram fed only bucket upper bounds reports those very
        // values back as quantiles: boundary samples lose nothing.
        for idx in 0..NUM_BUCKETS - 1 {
            let bound = bucket_bound(idx);
            assert_eq!(bucket_index(bound), idx, "bound {bound} must map to its own bucket");
        }
        let h = Histogram::new();
        let bounds = [1u64, 4, 8, 16, 1024, 1536];
        for &b in &bounds {
            assert_eq!(bucket_bound(bucket_index(b)), b, "{b} is a boundary");
            h.record(b);
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(0.5), 8);
        assert_eq!(h.quantile(1.0), 1536);
        assert_eq!(h.max(), 1536);
        assert_eq!(h.sum(), bounds.iter().sum::<u64>());
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in (5u64..10_000).step_by(7) {
            let bound = bucket_bound(bucket_index(v));
            assert!(bound >= v);
            assert!((bound - v) as f64 <= 0.25 * v as f64, "error at {v}: bound {bound}");
        }
    }

    #[test]
    fn concurrent_increments_are_exact_under_8_threads() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record(t as u64 * PER_THREAD + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
        let expected_sum: u64 = (0..THREADS as u64 * PER_THREAD).sum();
        assert_eq!(h.sum(), expected_sum);
        assert_eq!(h.max(), THREADS as u64 * PER_THREAD - 1);
        let total: u64 = h.snapshot().buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, h.count(), "no increment may be lost");
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let samples_a = [1u64, 5, 9, 1000, 12345];
        let samples_b = [2u64, 5, 777, 1 << 30];
        let samples_c = [0u64, 3, 4, 999_999_999];
        let fill = |samples: &[u64]| {
            let h = Histogram::new();
            for &s in samples {
                h.record(s);
            }
            h
        };
        // h1 ∪ h2 == h2 ∪ h1
        let ab = fill(&samples_a);
        ab.merge_from(&fill(&samples_b));
        let ba = fill(&samples_b);
        ba.merge_from(&fill(&samples_a));
        assert_eq!(ab.snapshot(), ba.snapshot());
        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let ab_c = fill(&samples_a);
        ab_c.merge_from(&fill(&samples_b));
        ab_c.merge_from(&fill(&samples_c));
        let bc = fill(&samples_b);
        bc.merge_from(&fill(&samples_c));
        let a_bc = fill(&samples_a);
        a_bc.merge_from(&bc);
        assert_eq!(ab_c.snapshot(), a_bc.snapshot());
        // The merged quantiles see every sample.
        assert_eq!(ab_c.count(), (samples_a.len() + samples_b.len() + samples_c.len()) as u64);
        assert_eq!(ab_c.max(), 1 << 30);
    }

    #[test]
    fn quantiles_interleave_ranks_correctly() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!((50..=63).contains(&p50), "p50 = {p50}");
        assert!((90..=112).contains(&p90), "p90 = {p90}");
        assert!((99..=124).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p90 && p90 <= p99);
        assert_eq!(h.quantile(1.0), bucket_bound(bucket_index(100)));
    }

    #[test]
    fn registry_hands_out_shared_instances_sorted() {
        let registry = Registry::new();
        registry.counter("b.count").add(2);
        registry.counter("a.count").inc();
        registry.counter("b.count").inc(); // the same instance again
        registry.gauge("z.gauge").set(7);
        registry.histogram("lat").record(5);
        let snap = registry.snapshot();
        assert_eq!(snap.counters, vec![("a.count".to_string(), 1), ("b.count".to_string(), 3)]);
        assert_eq!(snap.gauges, vec![("z.gauge".to_string(), 7)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
    }

    #[test]
    fn snapshot_quantile_matches_histogram_quantile() {
        let h = Histogram::new();
        for v in [3u64, 17, 98, 1024, 70_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), h.quantile(q), "q = {q}");
        }
    }
}
