//! Prometheus text-exposition rendering (version 0.0.4): small
//! push-style helpers a server composes into one page. Callers emit one
//! [`write_type`] header per metric family, then any number of
//! [`write_sample`] lines — which keeps multi-series families (one
//! summary per endpoint, say) to a single `# TYPE` line, as the format
//! requires.

/// The `Content-Type` for Prometheus text exposition.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Map a dotted metric name to the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every illegal character becomes `_`.
pub fn metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for (i, c) in raw.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Append a `# TYPE` header. `kind` is `counter`, `gauge`, `summary`, or
/// `histogram`.
pub fn write_type(out: &mut String, name: &str, kind: &str) {
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Append one sample line: `name{labels} value`. Labels are rendered in
/// the order given; an empty slice omits the braces. Non-finite values
/// render as `NaN` per the exposition format.
pub fn write_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (key, val)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(key);
            out.push_str("=\"");
            for c in val.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    if value.is_finite() {
        // Integral values print without a fraction — Prometheus accepts
        // both, and this keeps counters byte-stable.
        if value.fract() == 0.0 && value.abs() < 1e15 {
            out.push_str(&format!("{}", value as i64));
        } else {
            out.push_str(&format!("{value}"));
        }
    } else {
        out.push_str("NaN");
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitized() {
        assert_eq!(metric_name("cache.hits"), "cache_hits");
        assert_eq!(metric_name("stage.expand-ns"), "stage_expand_ns");
        assert_eq!(metric_name("9lives"), "_lives");
        assert_eq!(metric_name("ok_name:sub9"), "ok_name:sub9");
        assert_eq!(metric_name(""), "_");
    }

    #[test]
    fn samples_render_labels_and_values() {
        let mut out = String::new();
        write_type(&mut out, "http_requests_total", "counter");
        write_sample(&mut out, "http_requests_total", &[], 42.0);
        write_sample(
            &mut out,
            "http_request_duration_ms",
            &[("endpoint", "check"), ("quantile", "0.5")],
            1.25,
        );
        write_sample(&mut out, "weird", &[("v", "a\"b\\c\nd")], f64::NAN);
        assert_eq!(
            out,
            "# TYPE http_requests_total counter\n\
             http_requests_total 42\n\
             http_request_duration_ms{endpoint=\"check\",quantile=\"0.5\"} 1.25\n\
             weird{v=\"a\\\"b\\\\c\\nd\"} NaN\n"
        );
    }
}
