//! Property-style tests for the graph substrate.
//!
//! Driven by a seeded deterministic generator (the offline stand-in for
//! proptest; see `crates/compat/README.md`).

use dyngraph::{generators, influence::InfluenceTracker, mask, scc, Digraph, GraphSeq};
use rand::{rngs::StdRng, Rng, SeedableRng};

const CASES: usize = 128;

fn arb_graph(rng: &mut StdRng, n: usize) -> Digraph {
    let max_code: u64 = 1 << (n * n);
    Digraph::from_code(n, rng.random_range(0..max_code)).normalized()
}

fn arb_graphs(rng: &mut StdRng, n: usize, min_len: usize, max_len: usize) -> Vec<Digraph> {
    let len = rng.random_range(min_len..max_len);
    (0..len).map(|_| arb_graph(rng, n)).collect()
}

/// Kernel members are exactly the nodes whose reach mask is full.
#[test]
fn kernel_iff_full_reach() {
    let mut rng = StdRng::seed_from_u64(0xD901);
    for _ in 0..CASES {
        let g = arb_graph(&mut rng, 4);
        let full = mask::full(4);
        for p in 0..4 {
            let in_kernel = g.kernel().contains(&p);
            assert_eq!(in_kernel, g.reach_mask(p) == full);
        }
    }
}

/// The kernel of a graph equals the kernel of its reflexive closure.
#[test]
fn kernel_reflexive_invariant() {
    let mut rng = StdRng::seed_from_u64(0xD902);
    for _ in 0..CASES {
        let g = arb_graph(&mut rng, 4);
        assert_eq!(g.kernel_mask(), g.reflexive().kernel_mask());
    }
}

/// Transposition swaps reach: q ∈ reach_g(p) ⟺ p ∈ reach_gT(q).
#[test]
fn transpose_reach_duality() {
    let mut rng = StdRng::seed_from_u64(0xD903);
    for _ in 0..CASES {
        let g = arb_graph(&mut rng, 4);
        let gt = g.transpose();
        for p in 0..4 {
            for q in 0..4 {
                assert_eq!(mask::contains(g.reach_mask(p), q), mask::contains(gt.reach_mask(q), p));
            }
        }
    }
}

/// SCC membership is symmetric mutual reachability.
#[test]
fn scc_is_mutual_reach() {
    let mut rng = StdRng::seed_from_u64(0xD904);
    for _ in 0..CASES {
        let g = arb_graph(&mut rng, 4);
        let d = scc::decompose(&g);
        for p in 0..4 {
            for q in 0..4 {
                let mutual =
                    mask::contains(g.reach_mask(p), q) && mask::contains(g.reach_mask(q), p);
                assert_eq!(d.same_component(p, q), mutual);
            }
        }
    }
}

/// Root components are exactly the SCCs no outside node reaches into.
#[test]
fn root_components_no_inbound() {
    let mut rng = StdRng::seed_from_u64(0xD905);
    for _ in 0..CASES {
        let g = arb_graph(&mut rng, 4);
        let roots = scc::root_components(&g);
        assert!(!roots.is_empty());
        for &root in &roots {
            for (p, q) in g.edges() {
                // No edge from outside the root into it.
                if mask::contains(root, q) {
                    assert!(mask::contains(root, p), "edge {p}→{q} enters root {root:#b}");
                }
            }
        }
    }
}

/// A graph is rooted iff it has a unique root component.
#[test]
fn rooted_iff_unique_root() {
    let mut rng = StdRng::seed_from_u64(0xD906);
    for _ in 0..CASES {
        let g = arb_graph(&mut rng, 4);
        let roots = scc::root_components(&g);
        assert_eq!(g.is_rooted(), roots.len() == 1);
    }
}

/// Influence after composing rounds equals path reachability in the
/// layered (reflexive) product.
#[test]
fn influence_matches_reflexive_composition() {
    let mut rng = StdRng::seed_from_u64(0xD907);
    for _ in 0..CASES {
        let gs = arb_graphs(&mut rng, 3, 1, 5);
        let mut tracker = InfluenceTracker::new(3);
        let mut product = Digraph::empty(3).reflexive();
        for g in &gs {
            tracker.step(g);
            product = product.compose(&g.reflexive());
        }
        for p in 0..3 {
            for q in 0..3 {
                assert_eq!(tracker.heard(q, p), product.has_edge(p, q), "p={p} q={q}");
            }
        }
    }
}

/// Lasso unrolls are consistent under cycle rotation by one period.
#[test]
fn lasso_periodicity() {
    let mut rng = StdRng::seed_from_u64(0xD908);
    for _ in 0..CASES {
        let gs = arb_graphs(&mut rng, 2, 1, 4);
        let lasso = dyngraph::Lasso::new(GraphSeq::new(), GraphSeq::from_graphs(gs));
        let c = lasso.cycle_len();
        for t in 1..=(2 * c) {
            assert_eq!(lasso.graph_at(t), lasso.graph_at(t + c));
        }
    }
}

/// Broadcast rounds computed on a lasso agree with long finite unrolls.
#[test]
fn lasso_broadcast_matches_unroll() {
    let mut rng = StdRng::seed_from_u64(0xD909);
    for _ in 0..CASES {
        let gs = arb_graphs(&mut rng, 3, 1, 4);
        let lasso = dyngraph::Lasso::new(GraphSeq::new(), GraphSeq::from_graphs(gs));
        let horizon = 40; // ≫ n² · cycle for these sizes
        let unrolled = lasso.unroll(horizon);
        for p in 0..3 {
            assert_eq!(lasso.broadcast_round(p), unrolled.broadcast_round(p));
        }
    }
}

/// Graph codes roundtrip.
#[test]
fn code_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xD90A);
    for _ in 0..CASES {
        let g = arb_graph(&mut rng, 4);
        assert_eq!(Digraph::from_code(4, g.code()), g);
    }
}

#[test]
fn rooted_graph_count_n3_matches_bruteforce() {
    // Sanity anchor for the generators: count rooted graphs two ways.
    let via_generator = generators::rooted_graphs(3).count();
    let via_filter = generators::all_graphs(3).filter(|g| g.kernel_mask() != 0).count();
    assert_eq!(via_generator, via_filter);
}
