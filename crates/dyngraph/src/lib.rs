//! Directed communication graphs and dynamic graph sequences.
//!
//! This crate is the bottom-most substrate of the reproduction of
//! *Nowak, Schmid, Winkler — "Topological Characterization of Consensus under
//! General Message Adversaries"* (PODC 2019). It models the synchronous
//! directed dynamic networks of the paper's Section 2:
//!
//! * [`Digraph`] — a directed communication graph `G = ([n], E)` on the
//!   process set `[n] = {0, …, n−1}` (the paper uses `{1, …, n}`; we use
//!   zero-based indices throughout). An edge `(p, q)` means *process `q`
//!   receives process `p`'s round message*.
//! * [`GraphSeq`] — a finite prefix of a graph sequence `(G_t)_{t ≥ 1}`.
//! * [`Lasso`] — an ultimately periodic infinite graph sequence
//!   `prefix · cycle^ω`, the fragment on which limit behaviour is exactly
//!   computable (used for the fair/unfair limit certificates of the paper's
//!   Definition 5.16).
//! * [`scc`] — Tarjan strongly connected components, condensations, *root
//!   components* (source SCCs) and graph *kernels*
//!   `Ker(G) = {p : p reaches every q}`, the objects driving the
//!   broadcastability characterization (paper Theorem 5.11).
//! * [`generators`] — enumerators and samplers for graph families (all
//!   graphs, rooted graphs, the lossy-link family for `n = 2`, stars,
//!   cycles, random graphs).
//! * [`influence`] — causal influence tracking (“who has heard from whom by
//!   round t”), the reachability skeleton of process-time graphs.
//!
//! # Quickstart
//!
//! ```
//! use dyngraph::{Digraph, GraphSeq};
//!
//! // The three lossy-link graphs for n = 2 (paper §1): ←, ↔, →.
//! let right = Digraph::parse2("->").unwrap();  // process 0 → process 1
//! let left  = Digraph::parse2("<-").unwrap();
//! let both  = Digraph::parse2("<->").unwrap();
//! assert_eq!(right.kernel(), vec![0]);
//! assert_eq!(left.kernel(),  vec![1]);
//! assert_eq!(both.kernel(),  vec![0, 1]);
//!
//! // A 3-round dynamic network: → then ← then ↔.
//! let seq = GraphSeq::from_graphs(vec![right, left, both]);
//! assert_eq!(seq.rounds(), 3);
//! // After round 1 everyone has heard from process 0; after round 2 from both.
//! assert_eq!(seq.broadcast_round(0), Some(1));
//! assert_eq!(seq.broadcast_round(1), Some(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
mod graph;
pub mod influence;
pub mod metrics;
pub mod notation;
pub mod scc;
mod seq;

pub use graph::{Digraph, EdgeError, Edges, InNeighbors, OutNeighbors, MAX_N};
pub use seq::{GraphSeq, Lasso};

/// A process identifier, `0 ≤ pid < n`.
///
/// The paper indexes processes `1 … n`; this crate is zero-based.
pub type Pid = usize;

/// A (one-based) round number; round `t` uses communication graph `G_t`.
///
/// Round `0` denotes the initial time before any communication, matching the
/// paper's process-time graph node `(p, 0, x_p)`.
pub type Round = usize;

/// A bitmask over process ids (`bit p` set ⟺ process `p` in the set).
///
/// [`MAX_N`] is 32, so a `u32` suffices; helper functions for mask
/// manipulation live in [`mask`].
pub type PidMask = u32;

/// Helpers for [`PidMask`] process-set bitmasks.
pub mod mask {
    use super::{Pid, PidMask};

    /// The full mask `{0, …, n−1}`.
    ///
    /// # Panics
    /// Panics if `n` exceeds [`crate::MAX_N`].
    #[inline]
    pub fn full(n: usize) -> PidMask {
        assert!(n <= crate::MAX_N, "n = {n} exceeds MAX_N = {}", crate::MAX_N);
        if n == 32 {
            u32::MAX
        } else {
            (1u32 << n) - 1
        }
    }

    /// The singleton mask `{p}`.
    #[inline]
    pub fn singleton(p: Pid) -> PidMask {
        1u32 << p
    }

    /// Whether `p ∈ m`.
    #[inline]
    pub fn contains(m: PidMask, p: Pid) -> bool {
        m & (1 << p) != 0
    }

    /// Iterate over the members of `m` in increasing order.
    pub fn iter(m: PidMask) -> impl Iterator<Item = Pid> {
        (0..32u32).filter(move |p| m & (1 << p) != 0).map(|p| p as Pid)
    }

    /// The members of `m` as a sorted `Vec`.
    pub fn to_vec(m: PidMask) -> Vec<Pid> {
        iter(m).collect()
    }

    /// Build a mask from an iterator of pids.
    pub fn from_iter<I: IntoIterator<Item = Pid>>(pids: I) -> PidMask {
        pids.into_iter().fold(0, |m, p| m | singleton(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_roundtrip() {
        let m = mask::from_iter([0, 3, 7]);
        assert_eq!(mask::to_vec(m), vec![0, 3, 7]);
        assert!(mask::contains(m, 3));
        assert!(!mask::contains(m, 1));
    }

    #[test]
    fn mask_full_small_and_max() {
        assert_eq!(mask::full(1), 0b1);
        assert_eq!(mask::full(3), 0b111);
        assert_eq!(mask::full(32), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_N")]
    fn mask_full_rejects_large_n() {
        let _ = mask::full(33);
    }
}
