//! Causal influence tracking across rounds.
//!
//! [`InfluenceTracker`] maintains, per process `q`, the bitmask of processes
//! whose *initial* state is in `q`'s causal past — the reachability skeleton
//! of the paper's process-time graphs (§3). One [`InfluenceTracker::step`]
//! per round applies the reflexive closure of the round graph.

use serde::{Deserialize, Serialize};

use crate::{mask, Digraph, Pid, PidMask};

/// Tracks which processes have (transitively) heard from which.
///
/// ```
/// use dyngraph::{influence::InfluenceTracker, Digraph};
/// let mut t = InfluenceTracker::new(3);
/// // Round 1: 0 → 1. Round 2: 1 → 2.
/// t.step(&Digraph::from_edges(3, &[(0, 1)]).unwrap());
/// t.step(&Digraph::from_edges(3, &[(1, 2)]).unwrap());
/// assert!(t.heard(2, 0)); // 2 heard from 0 via 1
/// assert!(!t.heard(0, 1));
/// assert!(t.has_broadcast(0)); // 0's initial state reached everyone
/// assert!(!t.has_broadcast(1)); // 1 never reached 0
/// assert_eq!(t.heard_mask(2), 0b111);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InfluenceTracker {
    n: usize,
    /// `heard[q]` = processes whose initial state reached `q`.
    heard: Vec<PidMask>,
    rounds: usize,
}

impl InfluenceTracker {
    /// A fresh tracker at time 0: everyone has heard only themselves.
    ///
    /// # Panics
    /// Panics if `n == 0` or `n > MAX_N`.
    pub fn new(n: usize) -> Self {
        assert!((1..=crate::MAX_N).contains(&n));
        InfluenceTracker { n, heard: (0..n).map(mask::singleton).collect(), rounds: 0 }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of rounds applied so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Apply one communication round with graph `g`.
    ///
    /// # Panics
    /// Panics if `g.n() != self.n()`.
    pub fn step(&mut self, g: &Digraph) {
        assert_eq!(g.n(), self.n, "graph has mismatched n");
        let old = self.heard.clone();
        for q in 0..self.n {
            let mut m = old[q];
            for p in mask::iter(g.in_mask(q)) {
                m |= old[p];
            }
            self.heard[q] = m;
        }
        self.rounds += 1;
    }

    /// Whether `q` has heard from `p` (i.e. `p`'s initial state is in `q`'s
    /// causal past). Always true for `p == q`.
    pub fn heard(&self, q: Pid, p: Pid) -> bool {
        mask::contains(self.heard[q], p)
    }

    /// Bitmask of processes `q` has heard from.
    pub fn heard_mask(&self, q: Pid) -> PidMask {
        self.heard[q]
    }

    /// Bitmask of processes that have heard from `p`.
    pub fn reached_mask(&self, p: Pid) -> PidMask {
        mask::from_iter((0..self.n).filter(|&q| self.heard(q, p)))
    }

    /// Whether every process has heard from `p` — `p` has *broadcast*
    /// (paper Definition 5.8).
    pub fn has_broadcast(&self, p: Pid) -> bool {
        self.reached_mask(p) == mask::full(self.n)
    }

    /// Bitmask of processes that have broadcast.
    pub fn broadcasters(&self) -> PidMask {
        mask::from_iter((0..self.n).filter(|&p| self.has_broadcast(p)))
    }

    /// Whether every process has heard from every process.
    pub fn all_heard_all(&self) -> bool {
        let full = mask::full(self.n);
        self.heard.iter().all(|&m| m == full)
    }

    /// Whether the tracker is at a fixpoint for graph `g` (stepping with `g`
    /// would change nothing). Influence is monotone, so a fixpoint for every
    /// graph of a lasso's cycle means the infinite suffix adds nothing.
    pub fn is_fixpoint_for(&self, g: &Digraph) -> bool {
        let mut copy = self.clone();
        copy.step(g);
        copy.heard == self.heard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn initial_state() {
        let t = InfluenceTracker::new(3);
        for q in 0..3 {
            assert_eq!(t.heard_mask(q), mask::singleton(q));
            assert!(t.heard(q, q));
        }
        assert_eq!(t.broadcasters(), 0);
        assert_eq!(t.rounds(), 0);
    }

    #[test]
    fn single_process_broadcasts_immediately() {
        let t = InfluenceTracker::new(1);
        assert!(t.has_broadcast(0));
        assert!(t.all_heard_all());
    }

    #[test]
    fn star_broadcast_one_round() {
        let mut t = InfluenceTracker::new(4);
        t.step(&generators::star_out(4, 2));
        assert!(t.has_broadcast(2));
        assert_eq!(t.broadcasters(), mask::singleton(2));
    }

    #[test]
    fn influence_is_monotone() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut t = InfluenceTracker::new(5);
        let mut prev: Vec<PidMask> = (0..5).map(|q| t.heard_mask(q)).collect();
        for _ in 0..12 {
            let p_edge = rng.random_range(0.0..0.6);
            let g = generators::random_graph(&mut rng, 5, p_edge);
            t.step(&g);
            let cur: Vec<PidMask> = (0..5).map(|q| t.heard_mask(q)).collect();
            for (a, b) in prev.iter().zip(cur.iter()) {
                assert_eq!(a & b, *a, "influence must be monotone");
            }
            prev = cur;
        }
    }

    #[test]
    fn cycle_diameter() {
        let g = generators::cycle(4);
        let mut t = InfluenceTracker::new(4);
        for r in 1..=4 {
            t.step(&g);
            if r < 3 {
                assert!(!t.all_heard_all());
            }
        }
        assert!(t.all_heard_all());
    }

    #[test]
    fn fixpoint_detection() {
        let mut t = InfluenceTracker::new(2);
        let right = crate::Digraph::parse2("->").unwrap();
        assert!(!t.is_fixpoint_for(&right));
        t.step(&right);
        assert!(t.is_fixpoint_for(&right), "repeating → adds nothing after round 1");
        let left = crate::Digraph::parse2("<-").unwrap();
        assert!(!t.is_fixpoint_for(&left));
    }

    #[test]
    fn empty_graph_is_always_fixpoint() {
        let t = InfluenceTracker::new(3);
        assert!(t.is_fixpoint_for(&crate::Digraph::empty(3)));
    }

    #[test]
    fn reached_mask_transpose_of_heard() {
        let mut t = InfluenceTracker::new(3);
        t.step(&crate::Digraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap());
        for p in 0..3 {
            for q in 0..3 {
                assert_eq!(t.heard(q, p), mask::contains(t.reached_mask(p), q));
            }
        }
    }
}
