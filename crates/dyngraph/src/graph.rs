//! The [`Digraph`] communication-graph type.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{mask, Pid, PidMask};

/// Maximum supported number of processes.
///
/// Rows are stored as `u32` bitmasks, so the node set is limited to 32
/// processes. The consensus-solvability machinery is combinatorial and is
/// typically exercised with `n ≤ 6`; the limit is generous.
pub const MAX_N: usize = 32;

/// A directed communication graph `G = ([n], E)` (paper §2).
///
/// An edge `(p, q)` means process `q` receives process `p`'s message in the
/// round where this graph is in force. Self-loops are permitted in the edge
/// set (the paper allows `E ⊆ [n] × [n]`), but they carry no information:
/// every process always knows its own state. [`Digraph::normalized`] strips
/// them; all graphs produced by [`crate::generators`] are self-loop-free.
///
/// The representation is one out-neighbor bitmask per process, so graphs are
/// cheap to clone, hash, and compare — they are used as interned keys
/// throughout the prefix-space machinery.
///
/// ```
/// use dyngraph::Digraph;
/// let mut g = Digraph::empty(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert!(g.has_edge(0, 1));
/// assert_eq!(g.out_degree(0), 1);
/// assert_eq!(g.in_neighbors(2).collect::<Vec<_>>(), vec![1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Digraph {
    n: usize,
    /// `out[p]` holds the bitmask of receivers of `p`'s message.
    out: Vec<PidMask>,
}

/// Error returned when an edge endpoint is out of range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeError {
    /// The offending process id.
    pub pid: Pid,
    /// The graph's node count.
    pub n: usize,
}

impl fmt::Display for EdgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "process id {} out of range for n = {}", self.pid, self.n)
    }
}

impl std::error::Error for EdgeError {}

impl Digraph {
    /// The edgeless graph on `n` processes.
    ///
    /// # Panics
    /// Panics if `n == 0` or `n > MAX_N`.
    pub fn empty(n: usize) -> Self {
        assert!(n >= 1, "a communication graph needs at least one process");
        assert!(n <= MAX_N, "n = {n} exceeds MAX_N = {MAX_N}");
        Digraph { n, out: vec![0; n] }
    }

    /// The complete graph on `n` processes (all edges except self-loops).
    pub fn complete(n: usize) -> Self {
        let mut g = Self::empty(n);
        let full = mask::full(n);
        for p in 0..n {
            g.out[p] = full & !mask::singleton(p);
        }
        g
    }

    /// Build a graph from an explicit edge list.
    ///
    /// # Errors
    /// Returns [`EdgeError`] if any endpoint is `≥ n`.
    pub fn from_edges(n: usize, edges: &[(Pid, Pid)]) -> Result<Self, EdgeError> {
        let mut g = Self::empty(n);
        for &(p, q) in edges {
            g.try_add_edge(p, q)?;
        }
        Ok(g)
    }

    /// Decode a graph from its [`Digraph::code`] integer.
    ///
    /// Bit `p * n + q` of `code` is the edge `(p, q)`; self-loop bits are
    /// ignored. Inverse of [`Digraph::code`] for self-loop-free graphs.
    pub fn from_code(n: usize, code: u64) -> Self {
        let mut g = Self::empty(n);
        for p in 0..n {
            for q in 0..n {
                if p != q && code & (1u64 << (p * n + q)) != 0 {
                    g.add_edge(p, q);
                }
            }
        }
        g
    }

    /// A compact integer encoding of the (self-loop-free) edge set.
    ///
    /// Only meaningful for `n * n ≤ 64`, i.e. `n ≤ 8`.
    ///
    /// # Panics
    /// Panics if `n > 8`.
    pub fn code(&self) -> u64 {
        assert!(self.n <= 8, "code() requires n ≤ 8");
        let mut code = 0u64;
        for (p, q) in self.edges() {
            if p != q {
                code |= 1u64 << (p * self.n + q);
            }
        }
        code
    }

    /// Number of processes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether edge `(p, q)` is present.
    ///
    /// # Panics
    /// Panics if `p ≥ n` or `q ≥ n`.
    #[inline]
    pub fn has_edge(&self, p: Pid, q: Pid) -> bool {
        assert!(q < self.n);
        mask::contains(self.out[p], q)
    }

    /// Insert edge `(p, q)`.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range; see [`Digraph::try_add_edge`]
    /// for the fallible variant.
    #[inline]
    pub fn add_edge(&mut self, p: Pid, q: Pid) {
        self.try_add_edge(p, q).expect("edge endpoint out of range");
    }

    /// Insert edge `(p, q)`, rejecting out-of-range endpoints.
    ///
    /// # Errors
    /// Returns [`EdgeError`] if `p ≥ n` or `q ≥ n`.
    pub fn try_add_edge(&mut self, p: Pid, q: Pid) -> Result<(), EdgeError> {
        for pid in [p, q] {
            if pid >= self.n {
                return Err(EdgeError { pid, n: self.n });
            }
        }
        self.out[p] |= mask::singleton(q);
        Ok(())
    }

    /// Remove edge `(p, q)` (no-op if absent).
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    #[inline]
    pub fn remove_edge(&mut self, p: Pid, q: Pid) {
        assert!(p < self.n && q < self.n);
        self.out[p] &= !mask::singleton(q);
    }

    /// The bitmask of receivers of `p`'s message (excluding any self-loop
    /// normalization — exactly the stored row).
    #[inline]
    pub fn out_mask(&self, p: Pid) -> PidMask {
        self.out[p]
    }

    /// The bitmask of processes whose message `q` receives.
    #[inline]
    pub fn in_mask(&self, q: Pid) -> PidMask {
        let mut m = 0;
        for p in 0..self.n {
            if mask::contains(self.out[p], q) {
                m |= mask::singleton(p);
            }
        }
        m
    }

    /// Iterator over `p`'s out-neighbors in increasing order.
    pub fn out_neighbors(&self, p: Pid) -> OutNeighbors {
        OutNeighbors { mask: self.out[p], n: self.n, next: 0 }
    }

    /// Iterator over `q`'s in-neighbors in increasing order.
    pub fn in_neighbors(&self, q: Pid) -> InNeighbors {
        InNeighbors { mask: self.in_mask(q), n: self.n, next: 0 }
    }

    /// Out-degree of `p`.
    #[inline]
    pub fn out_degree(&self, p: Pid) -> usize {
        self.out[p].count_ones() as usize
    }

    /// In-degree of `q`.
    #[inline]
    pub fn in_degree(&self, q: Pid) -> usize {
        self.in_mask(q).count_ones() as usize
    }

    /// Total number of edges (including self-loops, if any).
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(|m| m.count_ones() as usize).sum()
    }

    /// Iterator over all edges `(p, q)` in lexicographic order.
    pub fn edges(&self) -> Edges<'_> {
        Edges { graph: self, p: 0, inner: OutNeighbors { mask: self.out[0], n: self.n, next: 0 } }
    }

    /// A copy with all self-loops removed.
    ///
    /// Self-loops carry no information in the model: every process knows its
    /// own state regardless of the graph.
    pub fn normalized(&self) -> Self {
        let mut g = self.clone();
        for p in 0..self.n {
            g.out[p] &= !mask::singleton(p);
        }
        g
    }

    /// Whether the graph has no self-loops.
    pub fn is_normalized(&self) -> bool {
        (0..self.n).all(|p| !mask::contains(self.out[p], p))
    }

    /// The graph with every edge reversed.
    pub fn transpose(&self) -> Self {
        let mut g = Self::empty(self.n);
        for (p, q) in self.edges() {
            g.add_edge(q, p);
        }
        g
    }

    /// Union of the edge sets of `self` and `other`.
    ///
    /// # Panics
    /// Panics if the node counts differ.
    pub fn union(&self, other: &Digraph) -> Self {
        assert_eq!(self.n, other.n, "union requires equal n");
        let mut g = self.clone();
        for p in 0..self.n {
            g.out[p] |= other.out[p];
        }
        g
    }

    /// Composition `self ∘ other`: edge `(p, r)` iff there is `q` with
    /// `(p, q)` in `self` and `(q, r)` in `other`.
    ///
    /// With reflexive closure applied first on both operands this is the
    /// round-to-round propagation of causal influence; see
    /// [`crate::influence`].
    ///
    /// # Panics
    /// Panics if the node counts differ.
    pub fn compose(&self, other: &Digraph) -> Self {
        assert_eq!(self.n, other.n, "compose requires equal n");
        let mut g = Self::empty(self.n);
        for p in 0..self.n {
            let mut m = 0;
            for q in mask::iter(self.out[p]) {
                m |= other.out[q];
            }
            g.out[p] = m;
        }
        g
    }

    /// The reflexive closure (self-loop at every node).
    pub fn reflexive(&self) -> Self {
        let mut g = self.clone();
        for p in 0..self.n {
            g.out[p] |= mask::singleton(p);
        }
        g
    }

    /// Bitmask of all nodes reachable from `p` (including `p` itself) by a
    /// directed path of length ≥ 0.
    pub fn reach_mask(&self, p: Pid) -> PidMask {
        let mut reached = mask::singleton(p);
        loop {
            let mut next = reached;
            for q in mask::iter(reached) {
                next |= self.out[q];
            }
            if next == reached {
                return reached;
            }
            reached = next;
        }
    }

    /// The *kernel* `Ker(G) = {p : p reaches every process}`.
    ///
    /// Kernel members are exactly the potential broadcasters of a round
    /// (paper Theorem 5.11 characterizes consensus via broadcastability of
    /// connected components; for oblivious adversaries kernel intersections
    /// drive the Coulouma–Godard–Peters criterion \[8\]).
    pub fn kernel(&self) -> Vec<Pid> {
        mask::to_vec(self.kernel_mask())
    }

    /// [`Digraph::kernel`] as a bitmask.
    pub fn kernel_mask(&self) -> PidMask {
        let full = mask::full(self.n);
        mask::from_iter((0..self.n).filter(|&p| self.reach_mask(p) == full))
    }

    /// Whether some process reaches every other (`Ker(G) ≠ ∅`).
    ///
    /// Equivalently, the condensation has a unique source SCC that reaches
    /// all SCCs; see [`crate::scc::root_components`].
    pub fn is_rooted(&self) -> bool {
        self.kernel_mask() != 0
    }

    /// Whether the graph is strongly connected.
    pub fn is_strongly_connected(&self) -> bool {
        let full = mask::full(self.n);
        (0..self.n).all(|p| self.reach_mask(p) == full)
    }
}

impl fmt::Debug for Digraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digraph(n={}, edges={:?})", self.n, self.edges().collect::<Vec<_>>())
    }
}

impl fmt::Display for Digraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::notation::fmt_graph(self, f)
    }
}

/// Iterator over out-neighbors; see [`Digraph::out_neighbors`].
#[derive(Debug, Clone)]
pub struct OutNeighbors {
    mask: PidMask,
    n: usize,
    next: usize,
}

impl Iterator for OutNeighbors {
    type Item = Pid;

    fn next(&mut self) -> Option<Pid> {
        while self.next < self.n {
            let p = self.next;
            self.next += 1;
            if mask::contains(self.mask, p) {
                return Some(p);
            }
        }
        None
    }
}

/// Iterator over in-neighbors; see [`Digraph::in_neighbors`].
#[derive(Debug, Clone)]
pub struct InNeighbors {
    mask: PidMask,
    n: usize,
    next: usize,
}

impl Iterator for InNeighbors {
    type Item = Pid;

    fn next(&mut self) -> Option<Pid> {
        while self.next < self.n {
            let p = self.next;
            self.next += 1;
            if mask::contains(self.mask, p) {
                return Some(p);
            }
        }
        None
    }
}

/// Iterator over all edges; see [`Digraph::edges`].
#[derive(Debug, Clone)]
pub struct Edges<'a> {
    graph: &'a Digraph,
    p: Pid,
    inner: OutNeighbors,
}

impl Iterator for Edges<'_> {
    type Item = (Pid, Pid);

    fn next(&mut self) -> Option<(Pid, Pid)> {
        loop {
            if let Some(q) = self.inner.next() {
                return Some((self.p, q));
            }
            self.p += 1;
            if self.p >= self.graph.n {
                return None;
            }
            self.inner = OutNeighbors { mask: self.graph.out[self.p], n: self.graph.n, next: 0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_complete() {
        let e = Digraph::empty(4);
        assert_eq!(e.edge_count(), 0);
        let k = Digraph::complete(4);
        assert_eq!(k.edge_count(), 12);
        assert!(k.is_strongly_connected());
        assert!(k.is_normalized());
    }

    #[test]
    fn edge_manipulation() {
        let mut g = Digraph::empty(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(2, 1);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(1), 2);
        g.remove_edge(0, 1);
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        let err = Digraph::from_edges(2, &[(0, 5)]).unwrap_err();
        assert_eq!(err.pid, 5);
        assert_eq!(err.n, 2);
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn edges_iterator_lexicographic() {
        let g = Digraph::from_edges(3, &[(2, 0), (0, 2), (0, 1)]).unwrap();
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(0, 1), (0, 2), (2, 0)]);
    }

    #[test]
    fn code_roundtrip() {
        for code in 0..64u64 {
            let g = Digraph::from_code(3, code << 1); // arbitrary spread
            let back = Digraph::from_code(3, g.code());
            assert_eq!(g, back);
        }
        let g = Digraph::from_edges(2, &[(0, 1), (1, 0)]).unwrap();
        assert_eq!(Digraph::from_code(2, g.code()), g);
    }

    #[test]
    fn normalize_strips_self_loops() {
        let mut g = Digraph::empty(2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        assert!(!g.is_normalized());
        let h = g.normalized();
        assert!(h.is_normalized());
        assert_eq!(h.edge_count(), 1);
    }

    #[test]
    fn transpose_involution() {
        let g = Digraph::from_edges(4, &[(0, 1), (1, 2), (3, 0), (2, 3)]).unwrap();
        assert_eq!(g.transpose().transpose(), g);
        assert!(g.transpose().has_edge(1, 0));
    }

    #[test]
    fn reachability_and_kernel() {
        // 0 → 1 → 2, 2 → 1: kernel = {0}.
        let g = Digraph::from_edges(3, &[(0, 1), (1, 2), (2, 1)]).unwrap();
        assert_eq!(g.reach_mask(0), 0b111);
        assert_eq!(g.reach_mask(1), 0b110);
        assert_eq!(g.kernel(), vec![0]);
        assert!(g.is_rooted());
        assert!(!g.is_strongly_connected());
    }

    #[test]
    fn kernel_empty_for_disconnected() {
        let g = Digraph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(g.kernel().is_empty());
        assert!(!g.is_rooted());
    }

    #[test]
    fn cycle_strongly_connected() {
        let g = Digraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(g.is_strongly_connected());
        assert_eq!(g.kernel(), vec![0, 1, 2]);
    }

    #[test]
    fn compose_is_two_hop_paths() {
        let a = Digraph::from_edges(3, &[(0, 1)]).unwrap();
        let b = Digraph::from_edges(3, &[(1, 2)]).unwrap();
        let c = a.compose(&b);
        assert!(c.has_edge(0, 2));
        assert_eq!(c.edge_count(), 1);
    }

    #[test]
    fn union_merges_edges() {
        let a = Digraph::from_edges(2, &[(0, 1)]).unwrap();
        let b = Digraph::from_edges(2, &[(1, 0)]).unwrap();
        let u = a.union(&b);
        assert!(u.has_edge(0, 1) && u.has_edge(1, 0));
    }

    #[test]
    fn reflexive_adds_loops() {
        let g = Digraph::empty(2).reflexive();
        assert!(g.has_edge(0, 0) && g.has_edge(1, 1));
    }

    #[test]
    fn in_out_masks_consistent() {
        let g = Digraph::from_edges(4, &[(0, 3), (1, 3), (2, 0)]).unwrap();
        assert_eq!(g.in_mask(3), 0b0011);
        assert_eq!(g.out_mask(0), 0b1000);
        assert_eq!(g.in_neighbors(3).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn single_process_graph() {
        let g = Digraph::empty(1);
        assert!(g.is_strongly_connected());
        assert_eq!(g.kernel(), vec![0]);
    }
}
