//! Human-readable notation for communication graphs.
//!
//! For `n = 2` the paper writes the three lossy-link graphs as `←`, `↔`,
//! `→`; this module parses and prints the ASCII forms `"<-"`, `"<->"`,
//! `"->"` and `"."` (the edgeless graph). For general `n`, graphs print as
//! edge lists and export to Graphviz DOT.

use std::fmt;

use crate::{Digraph, Pid};

/// Error from [`Digraph::parse2`] / [`parse_arrows`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArrowError {
    token: String,
}

impl fmt::Display for ParseArrowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unrecognized 2-process graph token `{}` (expected `->`, `<-`, `<->` or `.`)",
            self.token
        )
    }
}

impl std::error::Error for ParseArrowError {}

impl Digraph {
    /// Parse one of the `n = 2` arrow tokens: `"->"` (edge 0→1), `"<-"`
    /// (edge 1→0), `"<->"` (both), `"."` (edgeless). Unicode `←`, `→`, `↔`
    /// are accepted too.
    ///
    /// # Errors
    /// Returns [`ParseArrowError`] on any other token.
    ///
    /// ```
    /// use dyngraph::Digraph;
    /// assert!(Digraph::parse2("->").unwrap().has_edge(0, 1));
    /// assert!(Digraph::parse2("↔").unwrap().has_edge(1, 0));
    /// assert!(Digraph::parse2("xx").is_err());
    /// ```
    pub fn parse2(token: &str) -> Result<Self, ParseArrowError> {
        let edges: &[(Pid, Pid)] = match token.trim() {
            "->" | "→" => &[(0, 1)],
            "<-" | "←" => &[(1, 0)],
            "<->" | "↔" => &[(0, 1), (1, 0)],
            "." | "·" | "" => &[],
            other => return Err(ParseArrowError { token: other.to_string() }),
        };
        Ok(Digraph::from_edges(2, edges).expect("static edges in range"))
    }

    /// The arrow token for an `n = 2` graph, if it is one.
    pub fn arrow2(&self) -> Option<&'static str> {
        if self.n() != 2 {
            return None;
        }
        let g = self.normalized();
        Some(match (g.has_edge(0, 1), g.has_edge(1, 0)) {
            (true, true) => "<->",
            (true, false) => "->",
            (false, true) => "<-",
            (false, false) => ".",
        })
    }

    /// Graphviz DOT rendering of the graph.
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph {name} {{");
        let _ = writeln!(s, "  rankdir=LR;");
        for p in 0..self.n() {
            let _ = writeln!(s, "  p{p} [label=\"{p}\"];");
        }
        for (p, q) in self.edges() {
            let _ = writeln!(s, "  p{p} -> p{q};");
        }
        s.push_str("}\n");
        s
    }
}

/// Parse a whitespace-separated word of `n = 2` arrow tokens into a graph
/// sequence prefix, e.g. `"-> -> <-> <-"`.
///
/// # Errors
/// Returns [`ParseArrowError`] on the first bad token.
pub fn parse_arrows(word: &str) -> Result<Vec<Digraph>, ParseArrowError> {
    word.split_whitespace().map(Digraph::parse2).collect()
}

/// Render a graph: arrow token for `n = 2`, edge list otherwise.
pub(crate) fn fmt_graph(g: &Digraph, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if let Some(tok) = g.arrow2() {
        return f.write_str(tok);
    }
    write!(f, "{{")?;
    for (i, (p, q)) in g.edges().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{p}→{q}")?;
    }
    write!(f, "}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse2_all_tokens() {
        for (tok, expect_01, expect_10) in [
            ("->", true, false),
            ("<-", false, true),
            ("<->", true, true),
            (".", false, false),
        ] {
            let g = Digraph::parse2(tok).unwrap();
            assert_eq!(g.has_edge(0, 1), expect_01, "token {tok}");
            assert_eq!(g.has_edge(1, 0), expect_10, "token {tok}");
            assert_eq!(g.arrow2().unwrap(), tok);
        }
    }

    #[test]
    fn parse2_unicode() {
        assert_eq!(Digraph::parse2("→").unwrap(), Digraph::parse2("->").unwrap());
        assert_eq!(Digraph::parse2("←").unwrap(), Digraph::parse2("<-").unwrap());
        assert_eq!(Digraph::parse2("↔").unwrap(), Digraph::parse2("<->").unwrap());
    }

    #[test]
    fn parse2_error_display() {
        let err = Digraph::parse2("=>").unwrap_err();
        assert!(err.to_string().contains("=>"));
    }

    #[test]
    fn parse_arrow_word() {
        let seq = parse_arrows("-> <- <-> .").unwrap();
        assert_eq!(seq.len(), 4);
        assert_eq!(format!("{}", seq[2]), "<->");
    }

    #[test]
    fn display_general_graph_as_edge_list() {
        let g = Digraph::from_edges(3, &[(0, 1), (2, 0)]).unwrap();
        assert_eq!(format!("{g}"), "{0→1, 2→0}");
    }

    #[test]
    fn arrow2_none_for_larger_n() {
        assert!(Digraph::empty(3).arrow2().is_none());
    }

    #[test]
    fn dot_output_contains_edges() {
        let g = Digraph::from_edges(2, &[(0, 1)]).unwrap();
        let dot = g.to_dot("g");
        assert!(dot.contains("digraph g"));
        assert!(dot.contains("p0 -> p1;"));
    }
}
