//! Finite graph-sequence prefixes and ultimately periodic (lasso) sequences.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{influence::InfluenceTracker, Digraph, Round};

/// A finite prefix `(G_1, …, G_T)` of a communication-graph sequence.
///
/// Rounds are one-based as in the paper: `graph(1)` is the round-1 graph.
///
/// ```
/// use dyngraph::{Digraph, GraphSeq};
/// let seq = GraphSeq::parse2("-> -> <-").unwrap();
/// assert_eq!(seq.rounds(), 3);
/// assert_eq!(seq.graph(3).arrow2().unwrap(), "<-");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GraphSeq {
    graphs: Vec<Digraph>,
}

impl GraphSeq {
    /// The empty (0-round) sequence.
    pub fn new() -> Self {
        GraphSeq { graphs: Vec::new() }
    }

    /// Build from a vector of per-round graphs.
    ///
    /// # Panics
    /// Panics if the graphs do not all have the same number of processes.
    pub fn from_graphs(graphs: Vec<Digraph>) -> Self {
        if let Some(first) = graphs.first() {
            assert!(
                graphs.iter().all(|g| g.n() == first.n()),
                "all graphs in a sequence must have the same n"
            );
        }
        GraphSeq { graphs }
    }

    /// Parse an `n = 2` arrow word, e.g. `"-> <-> <-"`.
    ///
    /// # Errors
    /// Propagates [`crate::notation::ParseArrowError`].
    pub fn parse2(word: &str) -> Result<Self, crate::notation::ParseArrowError> {
        Ok(Self::from_graphs(crate::notation::parse_arrows(word)?))
    }

    /// Number of rounds `T` in the prefix.
    pub fn rounds(&self) -> usize {
        self.graphs.len()
    }

    /// Whether the prefix is empty.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Number of processes, or `None` for the empty sequence.
    pub fn n(&self) -> Option<usize> {
        self.graphs.first().map(Digraph::n)
    }

    /// The graph of (one-based) round `t`.
    ///
    /// # Panics
    /// Panics if `t == 0` or `t > rounds()`.
    pub fn graph(&self, t: Round) -> &Digraph {
        assert!(t >= 1 && t <= self.graphs.len(), "round {t} out of range");
        &self.graphs[t - 1]
    }

    /// Iterate over the graphs in round order.
    pub fn iter(&self) -> std::slice::Iter<'_, Digraph> {
        self.graphs.iter()
    }

    /// Append a round.
    ///
    /// # Panics
    /// Panics if `g` has a different number of processes.
    pub fn push(&mut self, g: Digraph) {
        if let Some(n) = self.n() {
            assert_eq!(g.n(), n, "pushed graph has mismatched n");
        }
        self.graphs.push(g);
    }

    /// A copy extended by one round.
    pub fn extended(&self, g: Digraph) -> Self {
        let mut s = self.clone();
        s.push(g);
        s
    }

    /// The first `t` rounds as a new sequence.
    ///
    /// # Panics
    /// Panics if `t > rounds()`.
    pub fn prefix(&self, t: usize) -> Self {
        assert!(t <= self.graphs.len());
        GraphSeq { graphs: self.graphs[..t].to_vec() }
    }

    /// Whether `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &GraphSeq) -> bool {
        self.graphs.len() <= other.graphs.len()
            && self.graphs.iter().zip(other.graphs.iter()).all(|(a, b)| a == b)
    }

    /// The concatenation `self · other`.
    pub fn concat(&self, other: &GraphSeq) -> Self {
        let mut graphs = self.graphs.clone();
        graphs.extend(other.graphs.iter().cloned());
        Self::from_graphs(graphs)
    }

    /// `self` repeated `k` times.
    pub fn repeat(&self, k: usize) -> Self {
        let mut graphs = Vec::with_capacity(self.graphs.len() * k);
        for _ in 0..k {
            graphs.extend(self.graphs.iter().cloned());
        }
        GraphSeq { graphs }
    }

    /// The earliest round by which `p`'s initial state has reached **every**
    /// process through the sequence, or `None` if it never does within the
    /// prefix. `Some(0)` for `n = 1`.
    ///
    /// This is the per-process broadcast time `T(a)` of the paper's
    /// Definition 5.8 restricted to the prefix.
    pub fn broadcast_round(&self, p: crate::Pid) -> Option<Round> {
        let n = match self.n() {
            Some(n) => n,
            None => return Some(0), // empty sequence: vacuous only for n=1; treat as unknown
        };
        let mut tracker = InfluenceTracker::new(n);
        if tracker.has_broadcast(p) {
            return Some(0);
        }
        for (i, g) in self.graphs.iter().enumerate() {
            tracker.step(g);
            if tracker.has_broadcast(p) {
                return Some(i + 1);
            }
        }
        None
    }

    /// The *dynamic diameter* of the prefix: the earliest `t` such that every
    /// process has heard from every other by round `t`, or `None` if the
    /// prefix is too short.
    pub fn dynamic_diameter(&self) -> Option<Round> {
        let n = self.n()?;
        let mut tracker = InfluenceTracker::new(n);
        if tracker.all_heard_all() {
            return Some(0);
        }
        for (i, g) in self.graphs.iter().enumerate() {
            tracker.step(g);
            if tracker.all_heard_all() {
                return Some(i + 1);
            }
        }
        None
    }
}

impl Default for GraphSeq {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for GraphSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GraphSeq[{self}]")
    }
}

impl fmt::Display for GraphSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, g) in self.graphs.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{g}")?;
        }
        Ok(())
    }
}

impl FromIterator<Digraph> for GraphSeq {
    fn from_iter<I: IntoIterator<Item = Digraph>>(iter: I) -> Self {
        Self::from_graphs(iter.into_iter().collect())
    }
}

impl Extend<Digraph> for GraphSeq {
    fn extend<I: IntoIterator<Item = Digraph>>(&mut self, iter: I) {
        for g in iter {
            self.push(g);
        }
    }
}

/// An ultimately periodic infinite graph sequence `prefix · cycle^ω`.
///
/// Lassos are the fragment of infinite sequences on which the paper's limit
/// structure is *exactly* computable (DESIGN.md §3): the zero-distance test
/// `d_{p}(a, b) = 0` between two lassos is decidable via the contamination
/// calculus in the `ptgraph` crate.
///
/// ```
/// use dyngraph::{Digraph, GraphSeq, Lasso};
/// // → forever.
/// let l = Lasso::constant(Digraph::parse2("->").unwrap());
/// assert_eq!(l.graph_at(1), l.graph_at(100));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Lasso {
    prefix: GraphSeq,
    cycle: GraphSeq,
}

impl Lasso {
    /// Build `prefix · cycle^ω`.
    ///
    /// # Panics
    /// Panics if `cycle` is empty or the parts disagree on `n`.
    pub fn new(prefix: GraphSeq, cycle: GraphSeq) -> Self {
        assert!(!cycle.is_empty(), "lasso cycle must be nonempty");
        if let (Some(a), Some(b)) = (prefix.n(), cycle.n()) {
            assert_eq!(a, b, "prefix and cycle disagree on n");
        }
        Lasso { prefix, cycle }
    }

    /// The constant sequence `g^ω`.
    pub fn constant(g: Digraph) -> Self {
        Lasso { prefix: GraphSeq::new(), cycle: GraphSeq::from_graphs(vec![g]) }
    }

    /// Parse `"prefix | cycle"` in `n = 2` arrow notation, e.g.
    /// `"-> -> | <-"` for `→ → ←^ω`. An omitted `|` means no prefix.
    ///
    /// # Errors
    /// Propagates token errors from [`Digraph::parse2`].
    ///
    /// # Panics
    /// Panics if the cycle part is empty.
    pub fn parse2(word: &str) -> Result<Self, crate::notation::ParseArrowError> {
        let (pre, cyc) = match word.split_once('|') {
            Some((a, b)) => (a, b),
            None => ("", word),
        };
        Ok(Self::new(GraphSeq::parse2(pre)?, GraphSeq::parse2(cyc)?))
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.cycle.n().expect("cycle is nonempty")
    }

    /// Length of the non-periodic prefix.
    pub fn prefix_len(&self) -> usize {
        self.prefix.rounds()
    }

    /// Length of the repeating cycle.
    pub fn cycle_len(&self) -> usize {
        self.cycle.rounds()
    }

    /// The graph of (one-based) round `t`.
    ///
    /// # Panics
    /// Panics if `t == 0`.
    pub fn graph_at(&self, t: Round) -> &Digraph {
        assert!(t >= 1, "rounds are one-based");
        if t <= self.prefix.rounds() {
            self.prefix.graph(t)
        } else {
            let i = (t - self.prefix.rounds() - 1) % self.cycle.rounds();
            self.cycle.graph(i + 1)
        }
    }

    /// The finite unrolling `(G_1, …, G_T)`.
    pub fn unroll(&self, t: usize) -> GraphSeq {
        (1..=t).map(|r| self.graph_at(r).clone()).collect()
    }

    /// The earliest round by which `p` has broadcast to all, or `None` if it
    /// **never** does (decided exactly: influence growth saturates within
    /// `prefix_len + n · cycle_len` rounds).
    pub fn broadcast_round(&self, p: crate::Pid) -> Option<Round> {
        let n = self.n();
        let mut tracker = InfluenceTracker::new(n);
        if tracker.has_broadcast(p) {
            return Some(0);
        }
        // Influence masks are monotone with at most n·n bit flips; after the
        // prefix, one full cycle without progress means a fixpoint.
        let horizon = self.prefix_len() + (n * n + 1) * self.cycle_len();
        for t in 1..=horizon {
            tracker.step(self.graph_at(t));
            if tracker.has_broadcast(p) {
                return Some(t);
            }
        }
        None
    }

    /// A lasso equal to `self` but with the first `t` rounds replaced by
    /// `new_prefix` (used to build “deviate then rejoin” sequences).
    ///
    /// # Panics
    /// Panics if `new_prefix` disagrees on `n`.
    pub fn with_prefix(&self, new_prefix: GraphSeq) -> Self {
        Self::new(new_prefix, self.cycle.clone())
    }
}

impl fmt::Debug for Lasso {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lasso[{self}]")
    }
}

impl fmt::Display for Lasso {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.prefix.is_empty() {
            write!(f, "{} ", self.prefix)?;
        }
        write!(f, "({})^ω", self.cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn seq_basics() {
        let seq = GraphSeq::parse2("-> <- <->").unwrap();
        assert_eq!(seq.rounds(), 3);
        assert_eq!(seq.n(), Some(2));
        assert_eq!(seq.graph(1).arrow2().unwrap(), "->");
        assert_eq!(format!("{seq}"), "-> <- <->");
    }

    #[test]
    fn prefix_and_concat() {
        let seq = GraphSeq::parse2("-> <- <->").unwrap();
        let p = seq.prefix(2);
        assert!(p.is_prefix_of(&seq));
        assert!(!seq.is_prefix_of(&p));
        let c = p.concat(&GraphSeq::parse2("<->").unwrap());
        assert_eq!(c, seq);
    }

    #[test]
    fn repeat_length() {
        let seq = GraphSeq::parse2("->").unwrap().repeat(5);
        assert_eq!(seq.rounds(), 5);
    }

    #[test]
    fn broadcast_round_n2() {
        // → delivers 0's value to 1 in round 1; 1 never reaches 0.
        let seq = GraphSeq::parse2("-> -> ->").unwrap();
        assert_eq!(seq.broadcast_round(0), Some(1));
        assert_eq!(seq.broadcast_round(1), None);
    }

    #[test]
    fn broadcast_round_star() {
        let star = generators::star_out(4, 1);
        let seq = GraphSeq::from_graphs(vec![star]);
        assert_eq!(seq.broadcast_round(1), Some(1));
        assert_eq!(seq.broadcast_round(0), None);
    }

    #[test]
    fn dynamic_diameter_cycle() {
        // On the 3-cycle, info needs 2 rounds to reach everyone.
        let c = generators::cycle(3);
        let seq = GraphSeq::from_graphs(vec![c.clone(), c.clone(), c]);
        assert_eq!(seq.dynamic_diameter(), Some(2));
    }

    #[test]
    fn dynamic_diameter_too_short() {
        let c = generators::cycle(3);
        let seq = GraphSeq::from_graphs(vec![c]);
        assert_eq!(seq.dynamic_diameter(), None);
    }

    #[test]
    fn lasso_indexing() {
        let l = Lasso::parse2("-> -> | <- <->").unwrap();
        assert_eq!(l.prefix_len(), 2);
        assert_eq!(l.cycle_len(), 2);
        assert_eq!(l.graph_at(1).arrow2().unwrap(), "->");
        assert_eq!(l.graph_at(2).arrow2().unwrap(), "->");
        assert_eq!(l.graph_at(3).arrow2().unwrap(), "<-");
        assert_eq!(l.graph_at(4).arrow2().unwrap(), "<->");
        assert_eq!(l.graph_at(5).arrow2().unwrap(), "<-");
        assert_eq!(l.graph_at(7).arrow2().unwrap(), "<-");
    }

    #[test]
    fn lasso_unroll_matches_graph_at() {
        let l = Lasso::parse2("-> | <-").unwrap();
        let u = l.unroll(5);
        for t in 1..=5 {
            assert_eq!(u.graph(t), l.graph_at(t));
        }
    }

    #[test]
    fn lasso_broadcast_decided_exactly() {
        // →^ω: 0 broadcasts at round 1; 1 never broadcasts.
        let l = Lasso::constant(Digraph::parse2("->").unwrap());
        assert_eq!(l.broadcast_round(0), Some(1));
        assert_eq!(l.broadcast_round(1), None);
        // → then ←^ω: 1 broadcasts at round 2.
        let l = Lasso::parse2("-> | <-").unwrap();
        assert_eq!(l.broadcast_round(1), Some(2));
    }

    #[test]
    fn lasso_display() {
        let l = Lasso::parse2("-> | <-").unwrap();
        assert_eq!(format!("{l}"), "-> (<-)^ω");
        let c = Lasso::constant(Digraph::parse2("<->").unwrap());
        assert_eq!(format!("{c}"), "(<->)^ω");
    }

    #[test]
    #[should_panic(expected = "cycle must be nonempty")]
    fn lasso_rejects_empty_cycle() {
        let _ = Lasso::new(GraphSeq::new(), GraphSeq::new());
    }

    #[test]
    #[should_panic(expected = "mismatched n")]
    fn push_rejects_mismatched_n() {
        let mut s = GraphSeq::parse2("->").unwrap();
        s.push(Digraph::empty(3));
    }
}
