//! Worst-case influence metrics over graph pools.
//!
//! The eventually-stabilizing adversaries of [6, 23] solve consensus when
//! the stability window exceeds the *dynamic diameter*: the worst-case
//! number of rounds for a root member's initial state to reach every
//! process across adversarial choices from the pool. This module computes
//! those bounds exactly by breadth-first search over influence-mask states
//! (the state space is `≤ 2^n` per process tracked, so exact worst cases
//! are cheap for the system sizes the checker handles).

use std::collections::{HashMap, VecDeque};

use crate::{mask, Digraph, Pid, PidMask};

/// The worst-case number of rounds for `p`'s initial state to reach every
/// process, over **all** infinite sequences from `pool`; `None` if the
/// adversary can prevent the broadcast forever.
///
/// Computed by BFS on the reachable "informed set" states: from state `K`
/// (processes that know `p`'s input), each pool graph `g` moves to
/// `K ∪ {q : some r ∈ K with (r, q) ∈ g}`; the adversary picks the
/// minimizing successor, so the worst case is the longest shortest path to
/// the full mask under adversarial choice — a max-min reachability game on
/// at most `2^n` states, solved by backward induction.
///
/// # Panics
/// Panics if the pool is empty or mixes `n`.
pub fn worst_case_broadcast(pool: &[Digraph], p: Pid) -> Option<usize> {
    assert!(!pool.is_empty(), "pool must be nonempty");
    let n = pool[0].n();
    assert!(pool.iter().all(|g| g.n() == n), "pool graphs must agree on n");
    assert!(p < n);
    let full = mask::full(n);

    // Game: state = informed mask; adversary picks g minimizing progress.
    // value(K) = 0 if K = full; else 1 + min_g value(step(K, g)).
    // Monotone: informed masks only grow; compute by iterating from full.
    let step = |k: PidMask, g: &Digraph| -> PidMask {
        let mut next = k;
        for q in 0..n {
            if g.in_mask(q) & k != 0 {
                next |= mask::singleton(q);
            }
        }
        next
    };

    // Value iteration over the (monotone, acyclic up to stationarity) game.
    let mut value: HashMap<PidMask, usize> = HashMap::new();
    value.insert(full, 0);
    // Iterate until fixpoint: at most n rounds of useful growth per state,
    // and 2^n states; a simple round-robin relaxation converges quickly.
    let start = mask::singleton(p);
    let mut states = vec![start];
    let mut seen: HashMap<PidMask, Vec<PidMask>> = HashMap::new(); // state -> successors
    let mut queue = VecDeque::from([start]);
    while let Some(k) = queue.pop_front() {
        if seen.contains_key(&k) {
            continue;
        }
        let succs: Vec<PidMask> = pool.iter().map(|g| step(k, g)).collect();
        for &s in &succs {
            if s != k && !seen.contains_key(&s) {
                queue.push_back(s);
                states.push(s);
            }
        }
        seen.insert(k, succs);
    }
    // Backward relaxation: repeat until stable.
    let mut changed = true;
    while changed {
        changed = false;
        for (&k, succs) in &seen {
            if k == full {
                continue;
            }
            // The adversary picks the graph that hurts most: the value is
            // the MAX over successors of 1 + value(successor), where a
            // stalling successor (s == k, no progress possible to force)
            // means ∞ (`None`).
            let mut worst: Option<usize> = Some(0);
            for &s in succs {
                if s == k {
                    worst = None;
                    break;
                }
                match value.get(&s) {
                    Some(&v) => {
                        worst = worst.map(|w| w.max(v + 1));
                    }
                    None => {
                        worst = None;
                        break;
                    }
                }
            }
            match worst {
                Some(w) => {
                    if value.get(&k) != Some(&w) {
                        value.insert(k, w);
                        changed = true;
                    }
                }
                None => {
                    if value.remove(&k).is_some() {
                        changed = true;
                    }
                }
            }
        }
    }
    value.get(&start).copied()
}

/// The *dynamic diameter* of a pool: the worst case of
/// [`worst_case_broadcast`] over all processes; `None` if some process can
/// be silenced forever.
pub fn dynamic_diameter(pool: &[Digraph]) -> Option<usize> {
    let n = pool.first()?.n();
    let mut worst = 0;
    for p in 0..n {
        worst = worst.max(worst_case_broadcast(pool, p)?);
    }
    Some(worst)
}

/// The worst-case broadcast time of the common-kernel members: the bound
/// realized by the `CommonBroadcasterRule` baseline. `None` if the pool has
/// no common kernel member.
pub fn common_kernel_broadcast_bound(pool: &[Digraph]) -> Option<(Pid, usize)> {
    let n = pool.first()?.n();
    let inter = pool.iter().fold(u32::MAX, |acc, g| acc & g.kernel_mask());
    let p = (0..n).find(|&p| mask::contains(inter, p))?;
    worst_case_broadcast(pool, p).map(|t| (p, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn single_arrow_pool() {
        let pool = vec![Digraph::parse2("->").unwrap()];
        assert_eq!(worst_case_broadcast(&pool, 0), Some(1));
        assert_eq!(worst_case_broadcast(&pool, 1), None);
        assert_eq!(dynamic_diameter(&pool), None);
    }

    #[test]
    fn lossy_link_diameter() {
        // {←, ↔, →}: the adversary can always pick the graph not delivering
        // p's message… for p = 0 it picks ←, forever. No broadcast.
        let pool = generators::lossy_link_full();
        assert_eq!(worst_case_broadcast(&pool, 0), None);
        assert_eq!(dynamic_diameter(&pool), None);
    }

    #[test]
    fn complete_graph_diameter_one() {
        let pool = vec![Digraph::complete(4)];
        assert_eq!(dynamic_diameter(&pool), Some(1));
    }

    #[test]
    fn cycle_diameter() {
        let pool = vec![generators::cycle(4)];
        assert_eq!(dynamic_diameter(&pool), Some(3));
    }

    #[test]
    fn stars_diameter() {
        // Rotating stars: the adversary avoids p's star forever → None for
        // broadcast of a FIXED p… unless n = 1.
        let pool = generators::all_out_stars(3);
        assert_eq!(worst_case_broadcast(&pool, 0), None);
    }

    #[test]
    fn mixed_strongly_connected_pool() {
        // Two strongly connected graphs: worst case bounded by n − 1.
        let pool = vec![generators::cycle(3), Digraph::complete(3)];
        let d = dynamic_diameter(&pool).unwrap();
        assert!((1..=2).contains(&d), "d = {d}");
    }

    #[test]
    fn common_kernel_bound() {
        let g1 = Digraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let g2 = generators::star_out(3, 0);
        let (p, t) = common_kernel_broadcast_bound(&[g1, g2]).unwrap();
        assert_eq!(p, 0);
        assert!(t <= 2);
        assert!(common_kernel_broadcast_bound(&generators::lossy_link_reduced()).is_none());
    }

    #[test]
    fn single_process() {
        let pool = vec![Digraph::empty(1)];
        assert_eq!(dynamic_diameter(&pool), Some(0));
        assert_eq!(worst_case_broadcast(&pool, 0), Some(0));
    }
}
