//! Generators and enumerators for communication-graph families.
//!
//! The oblivious message adversaries of the paper (§1, [8, 21]) are
//! determined by a *set of possible graphs*; this module produces the
//! standard sets: all graphs on `n` nodes, all rooted graphs, the `n = 2`
//! lossy-link families, structured graphs (stars, cycles, paths), and random
//! graphs for sampling-based tests.

use rand::Rng;

use crate::{Digraph, Pid};

/// Iterator over **all** self-loop-free digraphs on `n` nodes, in increasing
/// [`Digraph::code`] order. There are `2^(n(n−1))` of them.
///
/// # Panics
/// Panics if `n > 5` (2^20 graphs is the practical enumeration ceiling for
/// the adversary machinery; the iterator itself would work up to `n = 8`).
pub fn all_graphs(n: usize) -> impl Iterator<Item = Digraph> {
    assert!(n <= 5, "all_graphs(n) enumeration is capped at n = 5 (2^20 graphs)");
    // Enumerate via n(n-1)-bit counters mapped onto off-diagonal positions.
    let positions: Vec<(Pid, Pid)> = (0..n)
        .flat_map(|p| (0..n).filter(move |&q| q != p).map(move |q| (p, q)))
        .collect();
    let total: u64 = 1u64 << positions.len();
    (0..total).map(move |bits| {
        let mut g = Digraph::empty(n);
        for (i, &(p, q)) in positions.iter().enumerate() {
            if bits & (1 << i) != 0 {
                g.add_edge(p, q);
            }
        }
        g
    })
}

/// All rooted graphs on `n` nodes (nonempty kernel); see
/// [`Digraph::is_rooted`].
pub fn rooted_graphs(n: usize) -> impl Iterator<Item = Digraph> {
    all_graphs(n).filter(Digraph::is_rooted)
}

/// All strongly connected graphs on `n` nodes.
pub fn strongly_connected_graphs(n: usize) -> impl Iterator<Item = Digraph> {
    all_graphs(n).filter(Digraph::is_strongly_connected)
}

/// The full lossy-link graph set for `n = 2`: `{←, ↔, →}` (paper §1, \[21\]).
///
/// Under the oblivious adversary over this set, consensus is **impossible**
/// (Santoro–Widmayer); the reproduction's experiment T1.
pub fn lossy_link_full() -> Vec<Digraph> {
    ["<-", "<->", "->"]
        .iter()
        .map(|t| Digraph::parse2(t).expect("static"))
        .collect()
}

/// The reduced lossy-link set `{←, →}` (paper §1, \[8\]).
///
/// Under the oblivious adversary over this set, consensus **is** solvable;
/// the reproduction's experiment T2.
pub fn lossy_link_reduced() -> Vec<Digraph> {
    ["<-", "->"].iter().map(|t| Digraph::parse2(t).expect("static")).collect()
}

/// The out-star centered at `c`: edges `c → q` for all `q ≠ c`.
pub fn star_out(n: usize, c: Pid) -> Digraph {
    let mut g = Digraph::empty(n);
    for q in 0..n {
        if q != c {
            g.add_edge(c, q);
        }
    }
    g
}

/// The in-star centered at `c`: edges `q → c` for all `q ≠ c`.
pub fn star_in(n: usize, c: Pid) -> Digraph {
    star_out(n, c).transpose()
}

/// The directed cycle `0 → 1 → … → n−1 → 0`.
pub fn cycle(n: usize) -> Digraph {
    let mut g = Digraph::empty(n);
    for p in 0..n {
        g.add_edge(p, (p + 1) % n);
    }
    g
}

/// The directed path `0 → 1 → … → n−1`.
pub fn path(n: usize) -> Digraph {
    let mut g = Digraph::empty(n);
    for p in 0..n.saturating_sub(1) {
        g.add_edge(p, p + 1);
    }
    g
}

/// All out-stars on `n` nodes, one per center.
///
/// The oblivious adversary over this set is a classic broadcastable-by-round
/// family: the round-1 star center is a broadcaster known to everyone.
pub fn all_out_stars(n: usize) -> Vec<Digraph> {
    (0..n).map(|c| star_out(n, c)).collect()
}

/// A random self-loop-free graph with independent edge probability `p_edge`.
///
/// # Panics
/// Panics if `p_edge` is not within `[0, 1]`.
pub fn random_graph<R: Rng + ?Sized>(rng: &mut R, n: usize, p_edge: f64) -> Digraph {
    assert!((0.0..=1.0).contains(&p_edge), "edge probability must be in [0, 1]");
    let mut g = Digraph::empty(n);
    for p in 0..n {
        for q in 0..n {
            if p != q && rng.random_bool(p_edge) {
                g.add_edge(p, q);
            }
        }
    }
    g
}

/// A random **rooted** graph obtained by rejection sampling.
///
/// # Panics
/// Panics if `p_edge` is not within `[0, 1]`. With very small `p_edge` and
/// large `n` this can loop long; intended for test workloads.
pub fn random_rooted_graph<R: Rng + ?Sized>(rng: &mut R, n: usize, p_edge: f64) -> Digraph {
    loop {
        let g = random_graph(rng, n, p_edge);
        if g.is_rooted() {
            return g;
        }
    }
}

/// Graphs obtained from the complete graph by removing the out-edges of at
/// most `k` processes towards a single target each — the “up to `k` lost
/// messages per round” family of Santoro–Widmayer \[21\] restricted to losses
/// targeting distinct receivers.
///
/// For `k = n − 1` this family makes consensus impossible (paper §1).
pub fn complete_minus_losses(n: usize, k: usize) -> Vec<Digraph> {
    let complete = Digraph::complete(n);
    let mut out = vec![complete.clone()];
    // Remove subsets of ≤ k distinct edges; enumerate edge subsets of size ≤ k.
    let edges: Vec<(Pid, Pid)> = complete.edges().collect();
    let m = edges.len();
    // Iterate bitmasks with popcount ≤ k. Cap at 2^20 subsets.
    assert!(m <= 20, "complete_minus_losses is capped at 20 edges");
    for bits in 1u32..(1 << m) {
        if (bits.count_ones() as usize) <= k {
            let mut g = complete.clone();
            for (i, &(p, q)) in edges.iter().enumerate() {
                if bits & (1 << i) != 0 {
                    g.remove_edge(p, q);
                }
            }
            out.push(g);
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_graphs_counts() {
        assert_eq!(all_graphs(1).count(), 1);
        assert_eq!(all_graphs(2).count(), 4);
        assert_eq!(all_graphs(3).count(), 64);
    }

    #[test]
    fn all_graphs_distinct_and_normalized() {
        let gs: Vec<_> = all_graphs(3).collect();
        let mut dedup = gs.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), gs.len());
        assert!(gs.iter().all(Digraph::is_normalized));
    }

    #[test]
    fn rooted_graph_counts_n2() {
        // On 2 nodes: →, ←, ↔ are rooted; the empty graph is not.
        assert_eq!(rooted_graphs(2).count(), 3);
    }

    #[test]
    fn strongly_connected_subset_of_rooted() {
        let sc: Vec<_> = strongly_connected_graphs(3).collect();
        assert!(sc.iter().all(Digraph::is_rooted));
        // The 3-cycle is there.
        assert!(sc.contains(&cycle(3)));
    }

    #[test]
    fn lossy_link_families() {
        let full = lossy_link_full();
        assert_eq!(full.len(), 3);
        let reduced = lossy_link_reduced();
        assert_eq!(reduced.len(), 2);
        assert!(full.iter().all(|g| g.is_rooted()));
        // reduced ⊂ full
        assert!(reduced.iter().all(|g| full.contains(g)));
    }

    #[test]
    fn star_kernels() {
        let g = star_out(4, 2);
        assert_eq!(g.kernel(), vec![2]);
        let h = star_in(4, 2);
        assert!(h.kernel().is_empty() || h.n() == 1);
    }

    #[test]
    fn cycle_and_path() {
        assert!(cycle(4).is_strongly_connected());
        let p = path(4);
        assert_eq!(p.kernel(), vec![0]);
        assert!(!p.is_strongly_connected());
    }

    #[test]
    fn all_out_stars_cover_centers() {
        let stars = all_out_stars(3);
        assert_eq!(stars.len(), 3);
        for (c, g) in stars.iter().enumerate() {
            assert_eq!(g.kernel(), vec![c]);
        }
    }

    #[test]
    fn random_graph_edge_probability_extremes() {
        let mut rng = rand::rng();
        let g0 = random_graph(&mut rng, 5, 0.0);
        assert_eq!(g0.edge_count(), 0);
        let g1 = random_graph(&mut rng, 5, 1.0);
        assert_eq!(g1, Digraph::complete(5));
    }

    #[test]
    fn random_rooted_graph_is_rooted() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..10 {
            assert!(random_rooted_graph(&mut rng, 4, 0.4).is_rooted());
        }
    }

    #[test]
    fn complete_minus_losses_n2() {
        // n=2: complete = ↔ (2 edges). k=1: {↔, →, ←}. That is the full
        // lossy-link adversary of Santoro–Widmayer.
        let fam = complete_minus_losses(2, 1);
        let mut expect = lossy_link_full();
        expect.sort();
        let mut got = fam.clone();
        got.sort();
        assert_eq!(got, expect);
        // k = n−1 = 1 already contains the impossibility family.
    }

    #[test]
    fn complete_minus_losses_includes_empty_at_full_k() {
        let fam = complete_minus_losses(2, 2);
        assert!(fam.contains(&Digraph::empty(2)));
        assert_eq!(fam.len(), 4);
    }
}
