//! Strongly connected components, condensations, and root components.
//!
//! A *root component* (also "source component" in the paper's VSSC
//! terminology, [6, 23]) is an SCC with no incoming edges from outside. A
//! graph is *rooted* iff it has exactly one root component and that component
//! reaches every node — equivalently, `Ker(G) ≠ ∅`; the kernel is then
//! exactly the node set of the unique root component that reaches all.

use crate::{mask, Digraph, Pid, PidMask};

/// The strongly-connected-component decomposition of a [`Digraph`].
///
/// Components are numbered in *reverse topological order of discovery* by
/// Tarjan's algorithm: if there is an edge from component `a` to component
/// `b` (with `a ≠ b`) then `comp_id` of the source is **greater** than that
/// of the target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccDecomposition {
    n: usize,
    /// `comp_of[p]` is the component id of process `p`.
    comp_of: Vec<usize>,
    /// `members[c]` is the bitmask of component `c`'s members.
    members: Vec<PidMask>,
}

impl SccDecomposition {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// Component id of process `p`.
    pub fn component_of(&self, p: Pid) -> usize {
        self.comp_of[p]
    }

    /// Members of component `c` as a bitmask.
    pub fn members(&self, c: usize) -> PidMask {
        self.members[c]
    }

    /// Iterate over all components as bitmasks.
    pub fn iter(&self) -> impl Iterator<Item = PidMask> + '_ {
        self.members.iter().copied()
    }

    /// Whether `p` and `q` are in the same SCC.
    pub fn same_component(&self, p: Pid, q: Pid) -> bool {
        self.comp_of[p] == self.comp_of[q]
    }
}

/// Compute the SCC decomposition with an iterative Tarjan algorithm.
///
/// ```
/// use dyngraph::{Digraph, scc};
/// let g = Digraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]).unwrap();
/// let d = scc::decompose(&g);
/// assert_eq!(d.count(), 2);
/// assert!(d.same_component(0, 1));
/// assert!(d.same_component(2, 3));
/// assert!(!d.same_component(1, 2));
/// ```
pub fn decompose(g: &Digraph) -> SccDecomposition {
    let n = g.n();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<Pid> = Vec::new();
    let mut comp_of = vec![UNSET; n];
    let mut members: Vec<PidMask> = Vec::new();
    let mut next_index = 0usize;

    // Explicit DFS stack: (node, iterator position over out-neighbors).
    enum Frame {
        Enter(Pid),
        Resume(Pid, usize),
    }

    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        let mut frames = vec![Frame::Enter(start)];
        while let Some(frame) = frames.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    frames.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut i) => {
                    let succs: Vec<Pid> = g.out_neighbors(v).collect();
                    let mut descended = false;
                    while i < succs.len() {
                        let w = succs[i];
                        i += 1;
                        if index[w] == UNSET {
                            frames.push(Frame::Resume(v, i));
                            frames.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            lowlink[v] = lowlink[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All successors done: close the SCC if v is a root.
                    if lowlink[v] == index[v] {
                        let c = members.len();
                        let mut m = 0;
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp_of[w] = c;
                            m |= mask::singleton(w);
                            if w == v {
                                break;
                            }
                        }
                        members.push(m);
                    }
                    // Propagate lowlink to parent (if any).
                    if let Some(Frame::Resume(parent, _)) = frames.last() {
                        let parent = *parent;
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                }
            }
        }
    }

    SccDecomposition { n, comp_of, members }
}

/// The condensation: a DAG on the SCCs of `g`.
///
/// Node `c` of the returned graph is component `c` of [`decompose`].
pub fn condensation(g: &Digraph) -> (SccDecomposition, Digraph) {
    let d = decompose(g);
    let mut dag = Digraph::empty(d.count().max(1));
    for (p, q) in g.edges() {
        let (a, b) = (d.comp_of[p], d.comp_of[q]);
        if a != b {
            dag.add_edge(a, b);
        }
    }
    (d, dag)
}

/// The *root components* of `g`: SCCs with no incoming edge from outside.
///
/// Every graph has at least one root component. A graph is rooted (has a
/// nonempty kernel) iff it has exactly **one** root component *and* that
/// component reaches every node; for arbitrary graphs, members of a unique
/// all-reaching root component are exactly [`Digraph::kernel`].
///
/// ```
/// use dyngraph::{Digraph, scc};
/// // Two isolated nodes: two root components.
/// let g = Digraph::empty(2);
/// assert_eq!(scc::root_components(&g).len(), 2);
/// // 0 → 1: one root component {0}.
/// let g = Digraph::from_edges(2, &[(0, 1)]).unwrap();
/// assert_eq!(scc::root_components(&g), vec![0b01]);
/// ```
pub fn root_components(g: &Digraph) -> Vec<PidMask> {
    let (d, dag) = condensation(g);
    (0..d.count())
        .filter(|&c| dag.in_degree(c) == 0)
        .map(|c| d.members(c))
        .collect()
}

/// The unique root component if `g` is rooted, else `None`.
pub fn rooted_source(g: &Digraph) -> Option<PidMask> {
    let roots = root_components(g);
    if roots.len() == 1 && g.kernel_mask() != 0 {
        Some(roots[0])
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_one_component() {
        let g = Digraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let d = decompose(&g);
        assert_eq!(d.count(), 1);
        assert_eq!(d.members(0), 0b11111);
    }

    #[test]
    fn dag_components_are_singletons() {
        let g = Digraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let d = decompose(&g);
        assert_eq!(d.count(), 3);
        for p in 0..3 {
            assert_eq!(d.members(d.component_of(p)), mask::singleton(p));
        }
    }

    #[test]
    fn topological_numbering() {
        // Edge (0,1): component of 0 must have a larger id than component of 1.
        let g = Digraph::from_edges(2, &[(0, 1)]).unwrap();
        let d = decompose(&g);
        assert!(d.component_of(0) > d.component_of(1));
    }

    #[test]
    fn condensation_is_dag() {
        let g = Digraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (0, 3)]).unwrap();
        let (d, dag) = condensation(&g);
        assert_eq!(d.count(), 2);
        assert_eq!(dag.edge_count(), 1);
        // The DAG has no cycles: kernel of the transpose-free check.
        assert!(decompose(&dag).count() == dag.n());
    }

    #[test]
    fn root_components_of_empty_graph() {
        let g = Digraph::empty(3);
        let roots = root_components(&g);
        assert_eq!(roots.len(), 3);
    }

    #[test]
    fn rooted_source_matches_kernel() {
        let g = Digraph::from_edges(3, &[(0, 1), (1, 0), (1, 2)]).unwrap();
        let src = rooted_source(&g).unwrap();
        assert_eq!(src, 0b011);
        assert_eq!(g.kernel_mask(), 0b011);
    }

    #[test]
    fn two_roots_means_not_rooted() {
        // 0 → 2 ← 1: roots {0} and {1}, no kernel.
        let g = Digraph::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        assert_eq!(root_components(&g).len(), 2);
        assert!(rooted_source(&g).is_none());
        assert!(!g.is_rooted());
    }

    #[test]
    fn unique_root_not_reaching_all_is_not_rooted() {
        // 0→1 and isolated 2: single root comp {0}? No — {2} is also a root.
        let g = Digraph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(root_components(&g).len(), 2);
        assert!(rooted_source(&g).is_none());
    }

    #[test]
    fn large_random_graph_component_partition() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let n = rng.random_range(1..=10);
            let mut g = Digraph::empty(n);
            for p in 0..n {
                for q in 0..n {
                    if p != q && rng.random_bool(0.3) {
                        g.add_edge(p, q);
                    }
                }
            }
            let d = decompose(&g);
            // Partition property: each process in exactly the claimed mask.
            let mut seen = 0u32;
            for c in 0..d.count() {
                assert_eq!(seen & d.members(c), 0, "components overlap");
                seen |= d.members(c);
                for p in mask::iter(d.members(c)) {
                    assert_eq!(d.component_of(p), c);
                }
            }
            assert_eq!(seen, mask::full(n));
            // Mutual reachability within components.
            for c in 0..d.count() {
                let ms = mask::to_vec(d.members(c));
                for &p in &ms {
                    for &q in &ms {
                        assert!(mask::contains(g.reach_mask(p), q));
                    }
                }
            }
        }
    }
}
