//! Epistemic queries over views.
//!
//! Process-time graphs were introduced for reasoning about knowledge in
//! distributed systems (Ben-Zvi–Moses \[3\], cited by the paper §3): `p`
//! knows a fact at time `t` iff the fact holds in every run compatible with
//! `p`'s view. For facts about *initial values* and *other processes'
//! views*, the structural view representation answers such queries
//! directly:
//!
//! * [`knows_input`] — `K_p(x_q = v)`: `q`'s initial node is in `p`'s
//!   causal past (then the value is determined);
//! * [`latest_view_of`] — the most recent view of `q` inside `p`'s causal
//!   past, if any;
//! * [`knows_that_knows`] — `K_p K_q (x_r = ·)`: inside `p`'s view, `q`'s
//!   latest embedded view already contains `r`'s initial node. Nested
//!   knowledge of inputs is what consensus decisions are made of: the
//!   universal algorithm's ball condition is exactly "the decision value is
//!   common to every run compatible with the view".

use dyngraph::Pid;

use crate::{Value, ViewId, ViewTable};

/// Whether the owner of `view` knows `q`'s initial value (i.e. `(q, 0, x_q)`
/// is in its causal past); returns the value if so.
pub fn knows_input(table: &ViewTable, view: ViewId, q: Pid) -> Option<Value> {
    table.data(view).input_of(q)
}

/// The most recent view of process `q` embedded in `view`'s causal past:
/// the latest state of `q` the owner has (transitively) received. For the
/// owner itself this is the view given.
///
/// Returns `None` if the owner has never heard from `q`.
pub fn latest_view_of(table: &ViewTable, view: ViewId, q: Pid) -> Option<ViewId> {
    let owner = table.data(view).process;
    if owner == q {
        return Some(view);
    }
    // DFS over the view DAG, tracking the latest (max time) view of q.
    let mut best: Option<ViewId> = None;
    let mut stack = vec![view];
    let mut seen = std::collections::HashSet::new();
    while let Some(v) = stack.pop() {
        if !seen.insert(v) {
            continue;
        }
        let d = table.data(v);
        if d.process == q {
            best = match best {
                Some(b) if table.data(b).time >= d.time => Some(b),
                _ => Some(v),
            };
            // q's own past cannot contain a later view of q.
            continue;
        }
        if let Some(prev) = table.prev(v) {
            stack.push(prev);
        }
        for &(_, rv) in table.received(v) {
            stack.push(rv);
        }
    }
    best
}

/// Nested knowledge `K_p K_q (x_r)`: in the owner's view, does `q`'s latest
/// embedded view contain `r`'s initial value? Returns that value if so.
///
/// Note the asymmetry of knowledge under message loss: after a `→` round on
/// two processes, `K_1 (x_0)` holds but `K_0 K_1 (x_0)` does **not** — the
/// sender cannot know its message arrived. This is the coordinated-attack
/// phenomenon behind the lossy-link impossibility (§6.1).
pub fn knows_that_knows(table: &ViewTable, view: ViewId, q: Pid, r: Pid) -> Option<Value> {
    let q_view = latest_view_of(table, view, q)?;
    knows_input(table, q_view, r)
}

/// The depth of mutual input knowledge along a chain `p₀ → p₁ → … → p_k`:
/// checks `K_{p0} K_{p1} … K_{pk} (x_target)` by following latest embedded
/// views.
pub fn knows_chain(table: &ViewTable, view: ViewId, chain: &[Pid], target: Pid) -> Option<Value> {
    let mut current = view;
    for &q in chain {
        current = latest_view_of(table, current, q)?;
    }
    knows_input(table, current, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrefixRun;
    use dyngraph::GraphSeq;

    fn run2(word: &str, x: [u32; 2]) -> (PrefixRun, ViewTable) {
        let mut table = ViewTable::new(2);
        let run = PrefixRun::compute(x.to_vec(), &GraphSeq::parse2(word).unwrap(), &mut table);
        (run, table)
    }

    #[test]
    fn first_order_knowledge_after_delivery() {
        let (run, table) = run2("->", [7, 9]);
        // p1 knows x0 after the → round; p0 does not know x1.
        assert_eq!(knows_input(&table, run.view(1, 1), 0), Some(7));
        assert_eq!(knows_input(&table, run.view(0, 1), 1), None);
    }

    #[test]
    fn sender_lacks_second_order_knowledge() {
        // After →, p1 knows x0, but p0 cannot know that p1 knows x0 — the
        // coordinated-attack asymmetry.
        let (run, table) = run2("->", [7, 9]);
        assert_eq!(knows_that_knows(&table, run.view(1, 1), 0, 0), Some(7)); // K1 K0 x0 (p0 trivially knows own)
        assert_eq!(knows_that_knows(&table, run.view(0, 1), 1, 0), None); // K0 K1 x0 fails
    }

    #[test]
    fn second_order_knowledge_after_echo() {
        // → then ←: p0 receives p1's state which embeds x0 → K0 K1 x0.
        let (run, table) = run2("-> <-", [7, 9]);
        assert_eq!(knows_that_knows(&table, run.view(0, 2), 1, 0), Some(7));
        assert_eq!(knows_that_knows(&table, run.view(0, 2), 1, 1), Some(9));
        // But third order K1 K0 K1 x0 needs another round.
        assert_eq!(
            knows_chain(&table, run.view(1, 2), &[0, 1], 0),
            None,
            "p1's copy of p0 is from time 0 (received at round... via ←? no: p1 last heard p0 at round 1, a time-0 view)"
        );
    }

    #[test]
    fn third_order_after_three_exchanges() {
        let (run, table) = run2("-> <- ->", [7, 9]);
        // p1 now has p0's round-2 state, which embeds p1's round-1 state,
        // which embeds x0.
        assert_eq!(knows_chain(&table, run.view(1, 3), &[0, 1], 0), Some(7));
    }

    #[test]
    fn latest_view_is_most_recent() {
        let (run, table) = run2("-> -> ->", [7, 9]);
        // p1 receives p0's state every round; the latest embedded view of
        // p0 inside p1's time-3 view is p0's time-2 view.
        let latest = latest_view_of(&table, run.view(1, 3), 0).unwrap();
        assert_eq!(table.data(latest).time, 2);
        assert_eq!(table.data(latest).process, 0);
        // And it equals the actual view of p0 at time 2.
        assert_eq!(latest, run.view(0, 2));
    }

    #[test]
    fn latest_view_of_self() {
        let (run, table) = run2("->", [7, 9]);
        assert_eq!(latest_view_of(&table, run.view(0, 1), 0), Some(run.view(0, 1)));
    }

    #[test]
    fn no_knowledge_without_reception() {
        let (run, table) = run2(". .", [7, 9]);
        assert_eq!(latest_view_of(&table, run.view(0, 2), 1), None);
        assert_eq!(knows_that_knows(&table, run.view(0, 2), 1, 0), None);
    }
}
