//! Runs: input assignment + graph sequence, with interned views.

use std::fmt;

use dyngraph::{influence::InfluenceTracker, GraphSeq, Lasso, Pid, Round};

use crate::{Inputs, Value, ViewId, ViewInterner, ViewTable};

/// A finite run: an input assignment together with a graph-sequence prefix,
/// plus every process's interned view at every time `0 ≤ t ≤ T`.
///
/// This is the finite shadow of a point of the paper's space `PT^ω`: the
/// depth-`T` prefix determines every distance value `≥ 2^{−T}` (§4).
///
/// ```
/// use dyngraph::GraphSeq;
/// use ptgraph::{PrefixRun, ViewTable};
///
/// let mut table = ViewTable::new(2);
/// let seq = GraphSeq::parse2("-> <-").unwrap();
/// let run = PrefixRun::compute(vec![0, 1], &seq, &mut table);
/// // After round 1 (→), process 1 knows x_0.
/// assert_eq!(table.data(run.view(1, 1)).input_of(0), Some(0));
/// // Process 0 learns x_1 only in round 2 (←).
/// assert_eq!(table.data(run.view(0, 1)).input_of(1), None);
/// assert_eq!(table.data(run.view(0, 2)).input_of(1), Some(1));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct PrefixRun {
    inputs: Inputs,
    seq: GraphSeq,
    /// `views[t][p]` = view of `p` at time `t`, for `0 ≤ t ≤ seq.rounds()`.
    views: Vec<Vec<ViewId>>,
}

impl PrefixRun {
    /// Compute the run of `inputs` under `seq`, interning views in `table`
    /// (the shared [`ViewTable`] or a worker's [`crate::ShardTable`]).
    ///
    /// # Panics
    /// Panics if `inputs.len()` disagrees with `table.n()` or with the
    /// graphs of `seq`.
    pub fn compute<T: ViewInterner + ?Sized>(
        inputs: Inputs,
        seq: &GraphSeq,
        table: &mut T,
    ) -> Self {
        let n = table.n();
        assert_eq!(inputs.len(), n, "inputs must cover every process");
        if let Some(m) = seq.n() {
            assert_eq!(m, n, "sequence and table disagree on n");
        }
        let mut views: Vec<Vec<ViewId>> = Vec::with_capacity(seq.rounds() + 1);
        views.push((0..n).map(|p| table.intern_initial(p, inputs[p])).collect());
        for t in 1..=seq.rounds() {
            let g = seq.graph(t);
            let prev = &views[t - 1];
            let mut cur = Vec::with_capacity(n);
            for q in 0..n {
                let received: Vec<(Pid, ViewId)> =
                    g.in_neighbors(q).map(|p| (p, prev[p])).collect();
                cur.push(table.intern_round(q, prev[q], &received));
            }
            views.push(cur);
        }
        PrefixRun { inputs, seq: seq.clone(), views }
    }

    /// The input assignment.
    pub fn inputs(&self) -> &[Value] {
        &self.inputs
    }

    /// The graph-sequence prefix.
    pub fn seq(&self) -> &GraphSeq {
        &self.seq
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.inputs.len()
    }

    /// Number of rounds `T` of the prefix.
    pub fn rounds(&self) -> usize {
        self.seq.rounds()
    }

    /// The interned view of `p` at time `t` (`0 ≤ t ≤ rounds()`).
    ///
    /// # Panics
    /// Panics if `p` or `t` is out of range.
    pub fn view(&self, p: Pid, t: usize) -> ViewId {
        self.views[t][p]
    }

    /// All views at time `t`, indexed by process.
    pub fn views_at(&self, t: usize) -> &[ViewId] {
        &self.views[t]
    }

    /// Whether this run is `v`-valent: every process starts with `v`.
    pub fn is_valent(&self, v: Value) -> bool {
        self.inputs.iter().all(|&x| x == v)
    }

    /// The earliest time by which **every** process has `p`'s initial value
    /// in its view — `p`'s broadcast completion `T(a)` (paper Def. 5.8) —
    /// or `None` within this prefix.
    pub fn broadcast_complete(&self, p: Pid, table: &ViewTable) -> Option<Round> {
        (0..=self.rounds())
            .find(|&t| (0..self.n()).all(|q| table.data(self.view(q, t)).has_heard(p)))
    }

    /// Remap every view id at or above `base_len` through `remap` (the
    /// table returned by [`ViewTable::absorb`]); ids below `base_len` are
    /// already global and stay put. The inverse bookkeeping step of
    /// computing this run against a [`crate::ShardTable`].
    ///
    /// # Panics
    /// Panics if a local id falls outside `remap`.
    pub fn remap_views(&mut self, base_len: usize, remap: &[ViewId]) {
        for level in &mut self.views {
            for v in level {
                if v.index() >= base_len {
                    *v = remap[v.index() - base_len];
                }
            }
        }
    }

    /// Extend the run by one round with graph `g`.
    ///
    /// # Panics
    /// Panics on mismatched `n`.
    pub fn extended<T: ViewInterner + ?Sized>(&self, g: dyngraph::Digraph, table: &mut T) -> Self {
        let n = self.n();
        assert_eq!(g.n(), n);
        let t = self.rounds();
        let prev = &self.views[t];
        let mut cur = Vec::with_capacity(n);
        for q in 0..n {
            let received: Vec<(Pid, ViewId)> = g.in_neighbors(q).map(|p| (p, prev[p])).collect();
            cur.push(table.intern_round(q, prev[q], &received));
        }
        let mut views = self.views.clone();
        views.push(cur);
        PrefixRun { inputs: self.inputs.clone(), seq: self.seq.extended(g), views }
    }
}

impl fmt::Debug for PrefixRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Run(x={:?}, σ={})", self.inputs, self.seq)
    }
}

impl fmt::Display for PrefixRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x={:?} under {}", self.inputs, self.seq)
    }
}

/// An infinite run: an input assignment with an ultimately periodic
/// ([`Lasso`]) graph sequence.
///
/// Infinite runs are exact points of `PT^ω`; the zero-distance structure
/// between them is decided by [`crate::contamination`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct InfiniteRun {
    inputs: Inputs,
    lasso: Lasso,
}

impl InfiniteRun {
    /// Build from inputs and a lasso sequence.
    ///
    /// # Panics
    /// Panics if `inputs.len() != lasso.n()`.
    pub fn new(inputs: Inputs, lasso: Lasso) -> Self {
        assert_eq!(inputs.len(), lasso.n(), "inputs must cover every process");
        InfiniteRun { inputs, lasso }
    }

    /// The input assignment.
    pub fn inputs(&self) -> &[Value] {
        &self.inputs
    }

    /// The lasso graph sequence.
    pub fn lasso(&self) -> &Lasso {
        &self.lasso
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.inputs.len()
    }

    /// Whether every process starts with `v`.
    pub fn is_valent(&self, v: Value) -> bool {
        self.inputs.iter().all(|&x| x == v)
    }

    /// The depth-`t` finite shadow of this run.
    pub fn prefix(&self, t: usize, table: &mut ViewTable) -> PrefixRun {
        PrefixRun::compute(self.inputs.clone(), &self.lasso.unroll(t), table)
    }

    /// The earliest round by which `p` has broadcast, decided exactly over
    /// the infinite sequence (`None` = never).
    pub fn broadcast_round(&self, p: Pid) -> Option<Round> {
        if self.n() == 1 {
            return Some(0);
        }
        self.lasso.broadcast_round(p)
    }

    /// The set of processes that broadcast in this run (ever).
    pub fn broadcasters(&self) -> Vec<Pid> {
        (0..self.n()).filter(|&p| self.broadcast_round(p).is_some()).collect()
    }

    /// The influence tracker advanced `t` rounds along this run.
    pub fn influence_at(&self, t: usize) -> InfluenceTracker {
        let mut tr = InfluenceTracker::new(self.n());
        for r in 1..=t {
            tr.step(self.lasso.graph_at(r));
        }
        tr
    }
}

impl fmt::Debug for InfiniteRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "InfiniteRun(x={:?}, σ={})", self.inputs, self.lasso)
    }
}

impl fmt::Display for InfiniteRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x={:?} under {}", self.inputs, self.lasso)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyngraph::Digraph;

    fn table2() -> ViewTable {
        ViewTable::new(2)
    }

    #[test]
    fn views_deterministic_and_shared() {
        let mut t = table2();
        let seq = GraphSeq::parse2("-> <-").unwrap();
        let a = PrefixRun::compute(vec![0, 1], &seq, &mut t);
        let b = PrefixRun::compute(vec![0, 1], &seq, &mut t);
        for time in 0..=2 {
            assert_eq!(a.views_at(time), b.views_at(time));
        }
    }

    #[test]
    fn same_view_iff_indistinguishable() {
        let mut t = table2();
        // Under →^2, p0 never hears p1: its views agree across x_1 ∈ {0, 1}.
        let seq = GraphSeq::parse2("-> ->").unwrap();
        let a = PrefixRun::compute(vec![0, 0], &seq, &mut t);
        let b = PrefixRun::compute(vec![0, 1], &seq, &mut t);
        assert_eq!(a.view(0, 2), b.view(0, 2));
        // p1 received x_0 both times but its own input differs.
        assert_ne!(a.view(1, 1), b.view(1, 1));
    }

    #[test]
    fn graph_difference_contaminates_receiver() {
        let mut t = table2();
        let a = PrefixRun::compute(vec![0, 1], &GraphSeq::parse2("->").unwrap(), &mut t);
        let b = PrefixRun::compute(vec![0, 1], &GraphSeq::parse2(".").unwrap(), &mut t);
        // p1 received in a but not in b.
        assert_ne!(a.view(1, 1), b.view(1, 1));
        // p0 sent in both (sending is invisible): views equal.
        assert_eq!(a.view(0, 1), b.view(0, 1));
    }

    #[test]
    fn broadcast_complete_matches_influence() {
        let mut t = ViewTable::new(3);
        let g1 = Digraph::from_edges(3, &[(0, 1)]).unwrap();
        let g2 = Digraph::from_edges(3, &[(1, 2)]).unwrap();
        let seq = GraphSeq::from_graphs(vec![g1, g2]);
        let run = PrefixRun::compute(vec![5, 6, 7], &seq, &mut t);
        assert_eq!(run.broadcast_complete(0, &t), Some(2));
        assert_eq!(run.broadcast_complete(1, &t), None);
        assert_eq!(seq.broadcast_round(0), Some(2));
    }

    #[test]
    fn extended_matches_recompute() {
        let mut t = table2();
        let seq = GraphSeq::parse2("->").unwrap();
        let run = PrefixRun::compute(vec![1, 0], &seq, &mut t);
        let g = Digraph::parse2("<-").unwrap();
        let ext = run.extended(g.clone(), &mut t);
        let direct = PrefixRun::compute(vec![1, 0], &seq.extended(g), &mut t);
        assert_eq!(ext.views_at(2), direct.views_at(2));
        assert_eq!(ext.seq(), direct.seq());
    }

    #[test]
    fn valence() {
        let mut t = table2();
        let seq = GraphSeq::parse2("->").unwrap();
        assert!(PrefixRun::compute(vec![1, 1], &seq, &mut t).is_valent(1));
        assert!(!PrefixRun::compute(vec![1, 0], &seq, &mut t).is_valent(1));
    }

    #[test]
    fn infinite_run_prefix_consistency() {
        let mut t = table2();
        let run = InfiniteRun::new(vec![0, 1], Lasso::parse2("-> | <-").unwrap());
        let p3 = run.prefix(3, &mut t);
        let p5 = run.prefix(5, &mut t);
        for time in 0..=3 {
            assert_eq!(p3.views_at(time), p5.views_at(time));
        }
    }

    #[test]
    fn infinite_run_broadcasters() {
        // →^ω: only p0 broadcasts.
        let run = InfiniteRun::new(vec![0, 1], Lasso::constant(Digraph::parse2("->").unwrap()));
        assert_eq!(run.broadcasters(), vec![0]);
        // → then ←^ω: both broadcast.
        let run = InfiniteRun::new(vec![0, 1], Lasso::parse2("-> | <-").unwrap());
        assert_eq!(run.broadcasters(), vec![0, 1]);
        assert_eq!(run.broadcast_round(1), Some(2));
    }

    #[test]
    fn single_process_always_broadcasts() {
        let run = InfiniteRun::new(vec![3], Lasso::constant(Digraph::empty(1)));
        assert_eq!(run.broadcast_round(0), Some(0));
    }
}
