//! The divergence ("contamination") calculus.
//!
//! For two runs `a, b` on the same process set, let
//! `D_t = {q : V_q(a^t) ≠ V_q(b^t)}` be the processes that distinguish the
//! runs by time `t`. Because views are cumulative, `D_t` grows monotonically
//! and evolves by a *local* rule (DESIGN.md §3):
//!
//! ```text
//! D_0 = {q : x_q(a) ≠ x_q(b)}
//! D_t = D_{t−1}
//!     ∪ {q : in_a(q, t) ≠ in_b(q, t)}                 (reception pattern differs)
//!     ∪ {q : ∃r ∈ D_{t−1} ∩ in_a(q, t) ∩ in_b(q, t)}  (hears a contaminated sender)
//! ```
//!
//! The rule is *exactly* view inequality (verified against the
//! [`crate::ViewTable`] interner in this module's tests): a process's view
//! changes iff its own past differed, its reception pattern differs (views
//! name their senders), or a common sender's view differed.
//!
//! On ultimately periodic ([`dyngraph::Lasso`]) runs the joint evolution is
//! eventually periodic and `D` can flip at most `n` times, so
//! `d_{p}(a, b) = 0` — "`p` *never* distinguishes the infinite runs" — is
//! **decidable**. This is the engine behind the paper's limit analysis: a
//! chain of runs with pairwise `d_min = 0` forces one connected component
//! (Corollary 5.6), and the convergent sequences of Definition 5.16
//! (fair/unfair limits) are recognized through it.

use dyngraph::{mask, Digraph, Pid, PidMask, Round};

use crate::{InfiniteRun, PrefixRun};

/// The outcome of the divergence analysis for one process pair of runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Divergence {
    /// The process first distinguishes the runs at time `t` (its views are
    /// equal before `t` and differ from `t` on); `d_{p} = 2^{−t}`.
    At(Round),
    /// The process never distinguishes the runs; `d_{p} = 0` **exactly**
    /// (only produced by the lasso analysis).
    Never,
    /// No divergence within the analyzed finite horizon `T`; `d_{p} < 2^{−T}`.
    NotWithin(Round),
}

impl Divergence {
    /// Whether the distance is exactly zero.
    pub fn is_zero(self) -> bool {
        matches!(self, Divergence::Never)
    }
}

/// Per-process divergence summary between two runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceReport {
    /// `per_process[p]` = when (if ever) `p` distinguishes the runs.
    pub per_process: Vec<Divergence>,
}

impl DivergenceReport {
    /// `d_min(a, b) = 0` exactly: some process never distinguishes.
    pub fn dmin_is_zero(&self) -> bool {
        self.per_process.iter().any(|d| d.is_zero())
    }

    /// Processes that never distinguish the runs.
    pub fn blind_processes(&self) -> Vec<Pid> {
        self.per_process
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_zero())
            .map(|(p, _)| p)
            .collect()
    }

    /// The divergence time of the **last** process to distinguish, if all
    /// eventually do (`d_min = 2^{−t}`).
    pub fn dmin_divergence(&self) -> Option<Round> {
        let mut worst = 0;
        for d in &self.per_process {
            match d {
                Divergence::At(t) => worst = worst.max(*t),
                _ => return None,
            }
        }
        Some(worst)
    }
}

/// One step of the contamination rule: given `D_{t−1}` and the two round
/// graphs, compute `D_t`.
pub fn step(d_prev: PidMask, ga: &Digraph, gb: &Digraph) -> PidMask {
    let n = ga.n();
    assert_eq!(n, gb.n(), "graphs must agree on n");
    let mut d = d_prev;
    for q in 0..n {
        let ia = ga.in_mask(q);
        let ib = gb.in_mask(q);
        if ia != ib || (d_prev & ia & ib) != 0 {
            d |= mask::singleton(q);
        }
    }
    d
}

/// Contamination sets `D_0, …, D_T` along two **finite** runs.
///
/// # Panics
/// Panics if the runs disagree on `n`; the horizon is the shorter prefix.
pub fn finite_trace(a: &PrefixRun, b: &PrefixRun) -> Vec<PidMask> {
    let n = a.n();
    assert_eq!(n, b.n());
    let horizon = a.rounds().min(b.rounds());
    let mut d: PidMask = mask::from_iter((0..n).filter(|&q| a.inputs()[q] != b.inputs()[q]));
    let mut out = Vec::with_capacity(horizon + 1);
    out.push(d);
    for t in 1..=horizon {
        d = step(d, a.seq().graph(t), b.seq().graph(t));
        out.push(d);
    }
    out
}

/// Divergence report over two finite runs (up to the common horizon).
pub fn analyze_finite(a: &PrefixRun, b: &PrefixRun) -> DivergenceReport {
    let trace = finite_trace(a, b);
    let horizon = trace.len() - 1;
    let per_process = (0..a.n())
        .map(|p| match trace.iter().position(|&d| mask::contains(d, p)) {
            Some(t) => Divergence::At(t),
            None => Divergence::NotWithin(horizon),
        })
        .collect();
    DivergenceReport { per_process }
}

/// Divergence report over two **infinite** (lasso) runs — exact.
///
/// The joint graph process `(G_t(a), G_t(b))` is ultimately periodic with
/// period `lcm(c_a, c_b)` after `max(prefix lengths)`. `D` is monotone with
/// at most `n` strict growth steps, so running
/// `max_prefix + (n + 1) · lcm` rounds reaches the fixpoint: any process
/// outside `D` at that point stays outside forever.
///
/// # Panics
/// Panics if the runs disagree on `n`.
pub fn analyze_infinite(a: &InfiniteRun, b: &InfiniteRun) -> DivergenceReport {
    let n = a.n();
    assert_eq!(n, b.n(), "runs must agree on n");
    let la = a.lasso();
    let lb = b.lasso();
    let max_prefix = la.prefix_len().max(lb.prefix_len());
    let period = lcm(la.cycle_len(), lb.cycle_len());
    let horizon = max_prefix + (n + 1) * period;

    let mut d: PidMask = mask::from_iter((0..n).filter(|&q| a.inputs()[q] != b.inputs()[q]));
    let mut first: Vec<Option<Round>> =
        (0..n).map(|p| if mask::contains(d, p) { Some(0) } else { None }).collect();
    for t in 1..=horizon {
        d = step(d, la.graph_at(t), lb.graph_at(t));
        for (p, slot) in first.iter_mut().enumerate() {
            if slot.is_none() && mask::contains(d, p) {
                *slot = Some(t);
            }
        }
        if d == mask::full(n) {
            break;
        }
    }
    let per_process = first
        .into_iter()
        .map(|f| match f {
            Some(t) => Divergence::At(t),
            None => Divergence::Never,
        })
        .collect();
    DivergenceReport { per_process }
}

/// `d_min(a, b) = 0` for two infinite runs, decided exactly.
pub fn dmin_zero(a: &InfiniteRun, b: &InfiniteRun) -> bool {
    analyze_infinite(a, b).dmin_is_zero()
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PrefixRun, ViewTable};
    use dyngraph::{GraphSeq, Lasso};

    fn inf2(inputs: [u32; 2], lasso: &str) -> InfiniteRun {
        InfiniteRun::new(inputs.to_vec(), Lasso::parse2(lasso).unwrap())
    }

    #[test]
    fn identical_runs_never_diverge() {
        let a = inf2([0, 1], "->");
        let r = analyze_infinite(&a, &a.clone());
        assert!(r.per_process.iter().all(|d| d.is_zero()));
        assert!(r.dmin_is_zero());
    }

    #[test]
    fn blind_sender_never_diverges() {
        // →^ω with different x_1: p0 never hears p1 → d_{p0} = 0 exactly.
        let a = inf2([0, 0], "->");
        let b = inf2([0, 1], "->");
        let r = analyze_infinite(&a, &b);
        assert_eq!(r.per_process[0], Divergence::Never);
        assert_eq!(r.per_process[1], Divergence::At(0));
        assert!(r.dmin_is_zero());
        assert_eq!(r.blind_processes(), vec![0]);
        assert!(dmin_zero(&a, &b));
    }

    #[test]
    fn graph_difference_contaminates_both_eventually() {
        // →^ω vs ←^ω, same inputs: both reception patterns differ at t=1.
        let a = inf2([0, 1], "->");
        let b = inf2([0, 1], "<-");
        let r = analyze_infinite(&a, &b);
        assert_eq!(r.per_process[0], Divergence::At(1));
        assert_eq!(r.per_process[1], Divergence::At(1));
        assert!(!r.dmin_is_zero());
        assert_eq!(r.dmin_divergence(), Some(1));
    }

    #[test]
    fn delayed_contamination_through_relay() {
        // →^ω vs ↔^ω, same inputs: p0's in-set differs at t=1 (receives in
        // ↔ only) → p0 ∈ D_1. p1's in-sets agree ({0} both) and 0 ∉ D_0, so
        // p1 diverges only at t=2 when it hears the contaminated p0.
        let a = inf2([0, 1], "->");
        let b = inf2([0, 1], "<->");
        let r = analyze_infinite(&a, &b);
        assert_eq!(r.per_process[0], Divergence::At(1));
        assert_eq!(r.per_process[1], Divergence::At(2));
    }

    #[test]
    fn prefix_deviation_then_rejoin() {
        // a = →^ω, b = → → ←^ω: graphs agree on rounds 1–2.
        // Round 3 on: in-sets differ for both processes.
        let a = inf2([0, 1], "->");
        let b = inf2([0, 1], "-> -> | <-");
        let r = analyze_infinite(&a, &b);
        assert_eq!(r.per_process[0], Divergence::At(3));
        assert_eq!(r.per_process[1], Divergence::At(3));
    }

    #[test]
    fn rule_matches_view_interner_exactly() {
        // Exhaustive check on n = 2: every input pair and every pair of
        // 3-round sequences over {←, →, ↔, ∅}.
        let tokens = ["->", "<-", "<->", "."];
        let mut seqs = Vec::new();
        for a in tokens {
            for b in tokens {
                for c in tokens {
                    seqs.push(GraphSeq::parse2(&format!("{a} {b} {c}")).unwrap());
                }
            }
        }
        let inputs = crate::all_inputs(2, &[0, 1]);
        let mut table = ViewTable::new(2);
        let mut runs: Vec<PrefixRun> = Vec::new();
        for x in &inputs {
            for s in &seqs {
                runs.push(PrefixRun::compute(x.clone(), s, &mut table));
            }
        }
        // Sample pairs (all pairs is 256^2 = 65k — fine).
        for a in runs.iter().step_by(7) {
            for b in runs.iter().step_by(5) {
                let trace = finite_trace(a, b);
                for (t, d) in trace.iter().enumerate() {
                    for p in 0..2 {
                        let views_differ = a.view(p, t) != b.view(p, t);
                        assert_eq!(
                            views_differ,
                            mask::contains(*d, p),
                            "mismatch at t={t} p={p} for {a:?} vs {b:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rule_matches_views_n3_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut table = ViewTable::new(3);
        for _ in 0..200 {
            let mk = |rng: &mut rand::rngs::StdRng| {
                let inputs: Vec<u32> = (0..3).map(|_| rng.random_range(0..2)).collect();
                let graphs: Vec<_> =
                    (0..4).map(|_| dyngraph::generators::random_graph(rng, 3, 0.4)).collect();
                (inputs, GraphSeq::from_graphs(graphs))
            };
            let (xa, sa) = mk(&mut rng);
            let (xb, sb) = mk(&mut rng);
            let a = PrefixRun::compute(xa, &sa, &mut table);
            let b = PrefixRun::compute(xb, &sb, &mut table);
            let trace = finite_trace(&a, &b);
            for (t, d) in trace.iter().enumerate() {
                for p in 0..3 {
                    assert_eq!(a.view(p, t) != b.view(p, t), mask::contains(*d, p));
                }
            }
        }
    }

    #[test]
    fn finite_report_matches_distance_module() {
        let mut table = ViewTable::new(2);
        let a = PrefixRun::compute(vec![0, 1], &GraphSeq::parse2("-> -> ->").unwrap(), &mut table);
        let b = PrefixRun::compute(vec![0, 0], &GraphSeq::parse2("-> -> ->").unwrap(), &mut table);
        let rep = analyze_finite(&a, &b);
        assert_eq!(rep.per_process[0], Divergence::NotWithin(3));
        assert_eq!(rep.per_process[1], Divergence::At(0));
        assert_eq!(crate::distance::d_p(&a, &b, 0), crate::distance::Distance::Below(3));
        assert_eq!(crate::distance::d_p(&a, &b, 1), crate::distance::Distance::Finite(0));
    }

    #[test]
    fn lcm_gcd() {
        assert_eq!(super::lcm(4, 6), 12);
        assert_eq!(super::lcm(1, 7), 7);
        assert_eq!(super::gcd(12, 18), 6);
    }

    #[test]
    fn horizon_sufficiency_periodic_blindness() {
        // Alternating ← → vs ← →-shifted: contamination with long periods
        // still terminates and is consistent with a long finite unroll.
        let a = inf2([0, 1], "-> <-");
        let b = inf2([0, 1], "| -> <- -> <- -> <-"); // same infinite sequence, period 6
        let r = analyze_infinite(&a, &b);
        assert!(r.per_process.iter().all(|d| d.is_zero()), "equal sequences: {r:?}");
    }
}
