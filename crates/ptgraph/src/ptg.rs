//! The explicit process-time graph of the paper's Section 3 (Fig. 2).
//!
//! [`PtGraph`] materializes the graph `PT^t`: nodes `(p, 0, x_p)` and
//! `(p, t)` for `t ≥ 1`, and an edge `(p, t−1) → (q, t)` iff `(p, q) ∈ G_t`.
//! The *view* of a process set `P` at time `t` is the sub-graph induced by
//! all nodes with a path to some `(p, t)`, `p ∈ P` — its causal past.
//!
//! For view computations the implicit self-edge `(p, t−1) → (p, t)` is
//! always present: a process carries its own state forward (the paper's
//! configurations evolve from the previous local state plus received
//! messages). The rendered figure omits those vertical edges when asked to
//! match the paper's drawing.

use std::collections::BTreeSet;
use std::fmt;

use dyngraph::{Digraph, GraphSeq, Pid, Round};
use serde::{Deserialize, Serialize};

use crate::{Inputs, Value};

/// A node `(p, t)` of a process-time graph; at `t = 0` it carries the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PtNode {
    /// The process.
    pub process: Pid,
    /// The time (0 = initial).
    pub time: Round,
}

impl fmt::Display for PtNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.process, self.time)
    }
}

/// The explicit process-time graph `PT^T` of a finite run.
///
/// ```
/// use ptgraph::{PtGraph};
/// use dyngraph::GraphSeq;
/// let pt = PtGraph::new(vec![0, 1], GraphSeq::parse2("-> <-").unwrap());
/// assert_eq!(pt.node_count(), 6);           // 2 processes × 3 times
/// assert!(pt.has_edge((0, 0), (1, 1)));     // round 1 is →
/// assert!(pt.has_edge((1, 1), (0, 2)));     // round 2 is ←
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PtGraph {
    inputs: Inputs,
    seq: GraphSeq,
}

impl PtGraph {
    /// Build `PT^T` for the given inputs and graph-sequence prefix.
    ///
    /// # Panics
    /// Panics if the lengths disagree.
    pub fn new(inputs: Inputs, seq: GraphSeq) -> Self {
        if let Some(n) = seq.n() {
            assert_eq!(inputs.len(), n, "inputs must match the sequence's n");
        }
        assert!(!inputs.is_empty(), "need at least one process");
        PtGraph { inputs, seq }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.inputs.len()
    }

    /// The final time `T`.
    pub fn t_max(&self) -> Round {
        self.seq.rounds()
    }

    /// The input assignment (values of the time-0 nodes).
    pub fn inputs(&self) -> &[Value] {
        &self.inputs
    }

    /// The underlying graph sequence.
    pub fn seq(&self) -> &GraphSeq {
        &self.seq
    }

    /// Total number of nodes `n · (T + 1)`.
    pub fn node_count(&self) -> usize {
        self.n() * (self.t_max() + 1)
    }

    /// All nodes in `(time, process)` order.
    pub fn nodes(&self) -> impl Iterator<Item = PtNode> + '_ {
        (0..=self.t_max())
            .flat_map(move |t| (0..self.n()).map(move |p| PtNode { process: p, time: t }))
    }

    /// Whether the *communication* edge `(p, t−1) → (q, t)` is present
    /// (`from = (p, t−1)`, `to = (q, t)`). Implicit self-edges are **not**
    /// reported here; see [`PtGraph::causal_past`].
    pub fn has_edge(&self, from: (Pid, Round), to: (Pid, Round)) -> bool {
        let ((p, s), (q, t)) = (from, to);
        t >= 1 && t <= self.t_max() && s + 1 == t && self.seq.graph(t).has_edge(p, q)
    }

    /// All communication edges, in round order.
    pub fn edges(&self) -> Vec<((Pid, Round), (Pid, Round))> {
        let mut out = Vec::new();
        for t in 1..=self.t_max() {
            for (p, q) in self.seq.graph(t).edges() {
                out.push(((p, t - 1), (q, t)));
            }
        }
        out
    }

    /// The causal past of the process set `P` at time `t`: all nodes
    /// `(q, s)` with a path (through communication edges **and** the
    /// implicit self-edges) to some `(p, t)`, `p ∈ P` — the paper's view
    /// `V_P(PT^t)` as a node set.
    ///
    /// # Panics
    /// Panics if `t > t_max()` or `P` contains an out-of-range pid.
    pub fn causal_past(&self, ps: &[Pid], t: Round) -> BTreeSet<(Pid, Round)> {
        assert!(t <= self.t_max(), "time out of range");
        let mut frontier: BTreeSet<Pid> = ps.iter().copied().collect();
        assert!(frontier.iter().all(|&p| p < self.n()), "pid out of range");
        let mut past: BTreeSet<(Pid, Round)> = frontier.iter().map(|&p| (p, t)).collect();
        for s in (1..=t).rev() {
            let g = self.seq.graph(s);
            let mut prev_frontier = BTreeSet::new();
            for &q in &frontier {
                prev_frontier.insert(q); // implicit self-edge
                for p in g.in_neighbors(q) {
                    prev_frontier.insert(p);
                }
            }
            for &p in &prev_frontier {
                past.insert((p, s - 1));
            }
            frontier = prev_frontier;
        }
        past
    }

    /// Graphviz DOT rendering; nodes in the view of `highlight` (if given)
    /// are drawn bold, mirroring the paper's Figure 2.
    pub fn to_dot(&self, name: &str, highlight: Option<(&[Pid], Round)>) -> String {
        use std::fmt::Write as _;
        let hl: BTreeSet<(Pid, Round)> = match highlight {
            Some((ps, t)) => self.causal_past(ps, t),
            None => BTreeSet::new(),
        };
        let mut s = String::new();
        let _ = writeln!(s, "digraph {name} {{");
        let _ = writeln!(s, "  rankdir=TB;");
        for t in 0..=self.t_max() {
            let _ = writeln!(s, "  {{ rank=same;");
            for p in 0..self.n() {
                let label = if t == 0 {
                    format!("({}, 0, {})", p, self.inputs[p])
                } else {
                    format!("({p}, {t})")
                };
                let style = if hl.contains(&(p, t)) {
                    ", style=bold, color=green"
                } else {
                    ""
                };
                let _ = writeln!(s, "    n{p}_{t} [label=\"{label}\"{style}];");
            }
            let _ = writeln!(s, "  }}");
        }
        for ((p, s0), (q, t)) in self.edges() {
            let _ = writeln!(s, "  n{p}_{s0} -> n{q}_{t};");
        }
        s.push_str("}\n");
        s
    }

    /// A plain-text rendering: one line per time step plus the edge lists.
    pub fn render_ascii(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(s, "t=0: ");
        for p in 0..self.n() {
            let _ = write!(s, "({p},0,{})  ", self.inputs[p]);
        }
        let _ = writeln!(s);
        for t in 1..=self.t_max() {
            let _ = write!(s, "t={t}: ");
            for p in 0..self.n() {
                let _ = write!(s, "({p},{t})  ");
            }
            let edges: Vec<String> = self
                .seq
                .graph(t)
                .edges()
                .map(|(p, q)| format!("({p},{})→({q},{t})", t - 1))
                .collect();
            let _ = writeln!(s, "   edges: {}", edges.join(", "));
        }
        s
    }
}

/// The paper's **Figure 2** process-time graph: `n = 3`, `t = 2`, inputs
/// `x = (1, 0, 1)`.
///
/// The arXiv source does not machine-readably encode the figure's edges; we
/// fix a representative choice (documented in DESIGN.md): round 1 delivers
/// `0 → 1` and `2 → 1`, round 2 delivers `1 → 0` and `1 → 2`, so that
/// process 0's view at time 2 spans all three initial values — matching the
/// figure's highlighted view structure.
pub fn fig2_example() -> PtGraph {
    let g1 = Digraph::from_edges(3, &[(0, 1), (2, 1)]).expect("static");
    let g2 = Digraph::from_edges(3, &[(1, 0), (1, 2)]).expect("static");
    PtGraph::new(vec![1, 0, 1], GraphSeq::from_graphs(vec![g1, g2]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_and_edge_counts() {
        let pt = fig2_example();
        assert_eq!(pt.n(), 3);
        assert_eq!(pt.t_max(), 2);
        assert_eq!(pt.node_count(), 9);
        assert_eq!(pt.edges().len(), 4);
        assert_eq!(pt.nodes().count(), 9);
    }

    #[test]
    fn fig2_edges() {
        let pt = fig2_example();
        assert!(pt.has_edge((0, 0), (1, 1)));
        assert!(pt.has_edge((2, 0), (1, 1)));
        assert!(pt.has_edge((1, 1), (0, 2)));
        assert!(pt.has_edge((1, 1), (2, 2)));
        assert!(!pt.has_edge((0, 0), (2, 1)));
        assert!(!pt.has_edge((0, 0), (1, 2))); // edges span exactly one round
    }

    #[test]
    fn fig2_view_of_process_0() {
        let pt = fig2_example();
        let view = pt.causal_past(&[0], 2);
        // Own column.
        assert!(view.contains(&(0, 0)) && view.contains(&(0, 1)) && view.contains(&(0, 2)));
        // Heard from 1 at round 2, which heard 0 and 2 at round 1.
        assert!(view.contains(&(1, 1)) && view.contains(&(1, 0)));
        assert!(view.contains(&(2, 0)));
        // (2,1) and (2,2) have no path to (0,2).
        assert!(!view.contains(&(2, 1)));
        assert!(!view.contains(&(2, 2)));
        assert!(!view.contains(&(1, 2)));
    }

    #[test]
    fn causal_past_at_time_zero() {
        let pt = fig2_example();
        let view = pt.causal_past(&[1], 0);
        assert_eq!(view.len(), 1);
        assert!(view.contains(&(1, 0)));
    }

    #[test]
    fn causal_past_of_set_is_union() {
        let pt = fig2_example();
        let v0 = pt.causal_past(&[0], 2);
        let v2 = pt.causal_past(&[2], 2);
        let v02 = pt.causal_past(&[0, 2], 2);
        let union: BTreeSet<_> = v0.union(&v2).copied().collect();
        assert_eq!(v02, union);
    }

    #[test]
    fn view_matches_interner_knowledge() {
        // The node set of the causal past determines exactly which initial
        // values the interned view knows.
        let pt = fig2_example();
        let mut table = crate::ViewTable::new(3);
        let run = crate::PrefixRun::compute(pt.inputs().to_vec(), pt.seq(), &mut table);
        for p in 0..3 {
            for t in 0..=2 {
                let past = pt.causal_past(&[p], t);
                let data = table.data(run.view(p, t));
                for q in 0..3 {
                    assert_eq!(past.contains(&(q, 0)), data.has_heard(q), "p={p} t={t} q={q}");
                }
            }
        }
    }

    #[test]
    fn dot_highlights_view() {
        let pt = fig2_example();
        let dot = pt.to_dot("fig2", Some((&[0], 2)));
        assert!(dot.contains("style=bold"));
        assert!(dot.contains("(0, 0, 1)"));
        let plain = pt.to_dot("fig2", None);
        assert!(!plain.contains("style=bold"));
    }

    #[test]
    fn ascii_render_mentions_all_rounds() {
        let pt = fig2_example();
        let s = pt.render_ascii();
        assert!(s.contains("t=0:") && s.contains("t=1:") && s.contains("t=2:"));
        assert!(s.contains("(0,0)→(1,1)"));
    }
}
