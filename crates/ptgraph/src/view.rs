//! Hash-consed local views.
//!
//! The view `V_{p}(PT^t)` of the paper (§3/§4) — process `p`'s causal past at
//! time `t` — is represented structurally:
//!
//! * at time 0, the view is the pair `(p, x_p)`;
//! * at time `t ≥ 1`, the view is `p`'s previous view plus the sorted list of
//!   `(q, q's view at t−1)` for every in-neighbor `q` of round `t`.
//!
//! Views are interned in a [`ViewTable`]: structural equality of causal pasts
//! becomes pointer ([`ViewId`]) equality, which is what makes the
//! prefix-space machinery (bucketing runs by view) cheap. The table also
//! memoizes per-view metadata — which processes are in the causal past and
//! which *initial values* are known — used by the broadcastability
//! characterization (paper Theorem 5.11).

use std::collections::HashMap;
use std::fmt;

use dyngraph::{mask, Pid, PidMask};
use serde::{Deserialize, Serialize};

use crate::Value;

/// An interned view handle. Equal ids ⟺ identical causal pasts (within one
/// [`ViewTable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ViewId(u32);

impl ViewId {
    /// The raw table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The structural key of a view.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ViewKey {
    /// Time-0 view: own process id and input value.
    Initial { p: u8, x: Value },
    /// Time-t view: own previous view plus received views, sorted by sender.
    Round {
        p: u8,
        prev: ViewId,
        received: Box<[(u8, ViewId)]>,
    },
}

/// Metadata cached for each interned view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewData {
    /// The owning process.
    pub process: Pid,
    /// The time of the view (0 for initial views).
    pub time: usize,
    /// Bitmask of processes whose initial node `(q, 0, x_q)` is in the
    /// causal past (always contains the owner).
    pub heard: PidMask,
    /// The known initial values, sorted by process id; exactly one entry per
    /// set bit of `heard`.
    pub known_inputs: Box<[(Pid, Value)]>,
}

impl ViewData {
    /// The owner's own input value.
    pub fn own_input(&self) -> Value {
        self.input_of(self.process).expect("owner's input is always known")
    }

    /// The initial value of `q` if `(q, 0, x_q)` is in the causal past.
    pub fn input_of(&self, q: Pid) -> Option<Value> {
        self.known_inputs
            .binary_search_by_key(&q, |&(pid, _)| pid)
            .ok()
            .map(|i| self.known_inputs[i].1)
    }

    /// Whether `q`'s initial node is in the causal past — "the owner has
    /// heard from `q`" (paper Definition 5.8 uses this with `q` the
    /// broadcaster).
    pub fn has_heard(&self, q: Pid) -> bool {
        mask::contains(self.heard, q)
    }

    /// The smallest initial value in the causal past (the decision rule of
    /// the classic min-flooding baseline).
    pub fn min_known_input(&self) -> Value {
        self.known_inputs
            .iter()
            .map(|&(_, v)| v)
            .min()
            .expect("view knows its own input")
    }
}

/// Interner for views; see the module docs.
///
/// ```
/// use ptgraph::{ViewTable, ViewId};
/// let mut table = ViewTable::new(2);
/// let a = table.intern_initial(0, 7);
/// let b = table.intern_initial(0, 7);
/// let c = table.intern_initial(0, 8);
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// assert_eq!(table.data(a).own_input(), 7);
/// ```
#[derive(Debug, Clone)]
pub struct ViewTable {
    n: usize,
    index: HashMap<ViewKey, ViewId>,
    data: Vec<ViewData>,
    keys: Vec<ViewKey>,
}

impl ViewTable {
    /// A fresh table for systems of `n` processes.
    ///
    /// # Panics
    /// Panics if `n == 0` or `n > dyngraph::MAX_N`.
    pub fn new(n: usize) -> Self {
        assert!((1..=dyngraph::MAX_N).contains(&n));
        ViewTable { n, index: HashMap::new(), data: Vec::new(), keys: Vec::new() }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of distinct views interned so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Intern the time-0 view of process `p` with input `x`.
    ///
    /// # Panics
    /// Panics if `p ≥ n`.
    pub fn intern_initial(&mut self, p: Pid, x: Value) -> ViewId {
        assert!(p < self.n);
        let key = ViewKey::Initial { p: p as u8, x };
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let data = ViewData {
            process: p,
            time: 0,
            heard: mask::singleton(p),
            known_inputs: vec![(p, x)].into_boxed_slice(),
        };
        self.insert(key, data)
    }

    /// Intern the round-`t` view of process `p` from its previous view and
    /// the received `(sender, sender's previous view)` pairs.
    ///
    /// `received` need not be sorted and must not contain `p` itself (a
    /// self-loop delivery is redundant with `prev` and is ignored).
    ///
    /// # Panics
    /// Panics if `prev` does not belong to `p`, if a received view does not
    /// belong to its claimed sender, or if times are inconsistent.
    pub fn intern_round(&mut self, p: Pid, prev: ViewId, received: &[(Pid, ViewId)]) -> ViewId {
        let prev_data = &self.data[prev.index()];
        assert_eq!(prev_data.process, p, "prev view must belong to p");
        let t = prev_data.time + 1;

        let mut rec: Vec<(u8, ViewId)> = Vec::with_capacity(received.len());
        for &(q, vid) in received {
            if q == p {
                continue;
            }
            let d = &self.data[vid.index()];
            assert_eq!(d.process, q, "received view must belong to its sender");
            assert_eq!(d.time, t - 1, "received view must be from the previous round");
            rec.push((q as u8, vid));
        }
        rec.sort_unstable_by_key(|&(q, _)| q);
        rec.dedup_by_key(|&mut (q, _)| q);

        let key = ViewKey::Round { p: p as u8, prev, received: rec.clone().into_boxed_slice() };
        if let Some(&id) = self.index.get(&key) {
            return id;
        }

        // Merge metadata.
        let mut heard = self.data[prev.index()].heard;
        let mut known: Vec<(Pid, Value)> = self.data[prev.index()].known_inputs.to_vec();
        for &(_, vid) in &rec {
            let d = &self.data[vid.index()];
            heard |= d.heard;
            known.extend(d.known_inputs.iter().copied());
        }
        known.sort_unstable_by_key(|&(q, _)| q);
        known.dedup_by_key(|&mut (q, _)| q);
        debug_assert_eq!(known.len(), heard.count_ones() as usize);

        let data = ViewData { process: p, time: t, heard, known_inputs: known.into_boxed_slice() };
        self.insert(key, data)
    }

    fn insert(&mut self, key: ViewKey, data: ViewData) -> ViewId {
        let id = ViewId(u32::try_from(self.data.len()).expect("view table overflow"));
        self.index.insert(key.clone(), id);
        self.keys.push(key);
        self.data.push(data);
        id
    }

    /// Metadata of an interned view.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this table.
    pub fn data(&self, id: ViewId) -> &ViewData {
        &self.data[id.index()]
    }

    /// The `(sender, view)` pairs received in the view's round (empty for
    /// initial views).
    pub fn received(&self, id: ViewId) -> &[(u8, ViewId)] {
        match &self.keys[id.index()] {
            ViewKey::Initial { .. } => &[],
            ViewKey::Round { received, .. } => received,
        }
    }

    /// The previous view of the same process, or `None` for initial views.
    pub fn prev(&self, id: ViewId) -> Option<ViewId> {
        match &self.keys[id.index()] {
            ViewKey::Initial { .. } => None,
            ViewKey::Round { prev, .. } => Some(*prev),
        }
    }

    /// Render a view as a nested term, e.g. `p0[p0(x=1) | p1(x=0)←p1]`.
    pub fn render(&self, id: ViewId) -> String {
        match &self.keys[id.index()] {
            ViewKey::Initial { p, x } => format!("p{p}(x={x})"),
            ViewKey::Round { p, prev, received } => {
                let mut s = format!("p{p}[{}", self.render(*prev));
                for &(q, vid) in received.iter() {
                    s.push_str(&format!(" | {}←p{q}", self.render(vid)));
                }
                s.push(']');
                s
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_views_deduplicate() {
        let mut t = ViewTable::new(3);
        let a = t.intern_initial(1, 5);
        let b = t.intern_initial(1, 5);
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        assert_ne!(t.intern_initial(2, 5), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn round_views_deduplicate_regardless_of_order() {
        let mut t = ViewTable::new(3);
        let v0 = t.intern_initial(0, 0);
        let v1 = t.intern_initial(1, 1);
        let v2 = t.intern_initial(2, 0);
        let a = t.intern_round(0, v0, &[(1, v1), (2, v2)]);
        let b = t.intern_round(0, v0, &[(2, v2), (1, v1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn self_delivery_ignored() {
        let mut t = ViewTable::new(2);
        let v0 = t.intern_initial(0, 3);
        let a = t.intern_round(0, v0, &[(0, v0)]);
        let b = t.intern_round(0, v0, &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn metadata_accumulates() {
        let mut t = ViewTable::new(3);
        let v0 = t.intern_initial(0, 10);
        let v1 = t.intern_initial(1, 20);
        let r = t.intern_round(0, v0, &[(1, v1)]);
        let d = t.data(r);
        assert_eq!(d.time, 1);
        assert_eq!(d.heard, 0b011);
        assert_eq!(d.input_of(1), Some(20));
        assert_eq!(d.input_of(2), None);
        assert_eq!(d.own_input(), 10);
        assert_eq!(d.min_known_input(), 10);
        assert!(d.has_heard(1));
        assert!(!d.has_heard(2));
    }

    #[test]
    fn two_hop_knowledge() {
        let mut t = ViewTable::new(3);
        let v0 = t.intern_initial(0, 1);
        let v1 = t.intern_initial(1, 2);
        let v2 = t.intern_initial(2, 3);
        // Round 1: 0 → 1.
        let v1r1 = t.intern_round(1, v1, &[(0, v0)]);
        let v2r1 = t.intern_round(2, v2, &[]);
        // Round 2: 1 → 2.
        let v2r2 = t.intern_round(2, v2r1, &[(1, v1r1)]);
        let d = t.data(v2r2);
        assert_eq!(d.heard, 0b111);
        assert_eq!(d.input_of(0), Some(1));
        assert_eq!(d.min_known_input(), 1);
    }

    #[test]
    fn different_inputs_different_views() {
        let mut t = ViewTable::new(2);
        let a0 = t.intern_initial(0, 0);
        let b0 = t.intern_initial(0, 1);
        assert_ne!(a0, b0);
        let a1 = t.intern_round(0, a0, &[]);
        let b1 = t.intern_round(0, b0, &[]);
        assert_ne!(a1, b1, "views with different causal pasts never merge");
    }

    #[test]
    fn prev_and_received_accessors() {
        let mut t = ViewTable::new(2);
        let v0 = t.intern_initial(0, 0);
        let w0 = t.intern_initial(1, 1);
        let r = t.intern_round(0, v0, &[(1, w0)]);
        assert_eq!(t.prev(r), Some(v0));
        assert_eq!(t.prev(v0), None);
        assert_eq!(t.received(r), &[(1u8, w0)]);
        assert!(t.received(v0).is_empty());
    }

    #[test]
    fn render_nested() {
        let mut t = ViewTable::new(2);
        let v0 = t.intern_initial(0, 1);
        let w0 = t.intern_initial(1, 0);
        let r = t.intern_round(0, v0, &[(1, w0)]);
        assert_eq!(t.render(r), "p0[p0(x=1) | p1(x=0)←p1]");
    }

    #[test]
    #[should_panic(expected = "prev view must belong to p")]
    fn intern_round_checks_owner() {
        let mut t = ViewTable::new(2);
        let v0 = t.intern_initial(0, 0);
        let _ = t.intern_round(1, v0, &[]);
    }

    #[test]
    #[should_panic(expected = "previous round")]
    fn intern_round_checks_times() {
        let mut t = ViewTable::new(2);
        let v0 = t.intern_initial(0, 0);
        let v1 = t.intern_round(0, v0, &[]);
        let w0 = t.intern_initial(1, 0);
        // w0 is at time 0 but p0's prev is at time 1 → received must be time 1.
        let _ = t.intern_round(0, v1, &[(1, w0)]);
    }
}
