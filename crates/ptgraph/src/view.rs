//! Hash-consed local views.
//!
//! The view `V_{p}(PT^t)` of the paper (§3/§4) — process `p`'s causal past at
//! time `t` — is represented structurally:
//!
//! * at time 0, the view is the pair `(p, x_p)`;
//! * at time `t ≥ 1`, the view is `p`'s previous view plus the sorted list of
//!   `(q, q's view at t−1)` for every in-neighbor `q` of round `t`.
//!
//! Views are interned in a [`ViewTable`]: structural equality of causal pasts
//! becomes pointer ([`ViewId`]) equality, which is what makes the
//! prefix-space machinery (bucketing runs by view) cheap. The table also
//! memoizes per-view metadata — which processes are in the causal past and
//! which *initial values* are known — used by the broadcastability
//! characterization (paper Theorem 5.11).

use std::collections::HashMap;
use std::fmt;

use dyngraph::{mask, Pid, PidMask};
use serde::{Deserialize, Serialize};

use crate::Value;

/// An interned view handle. Equal ids ⟺ identical causal pasts (within one
/// [`ViewTable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ViewId(u32);

impl ViewId {
    /// The raw table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The structural key of a view.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ViewKey {
    /// Time-0 view: own process id and input value.
    Initial { p: u8, x: Value },
    /// Time-t view: own previous view plus received views, sorted by sender.
    Round {
        p: u8,
        prev: ViewId,
        received: Box<[(u8, ViewId)]>,
    },
}

impl ViewKey {
    /// The key with every contained [`ViewId`] pushed through `map`.
    fn mapped(&self, map: impl Fn(ViewId) -> ViewId) -> ViewKey {
        match self {
            ViewKey::Initial { .. } => self.clone(),
            ViewKey::Round { p, prev, received } => ViewKey::Round {
                p: *p,
                prev: map(*prev),
                received: received.iter().map(|&(q, v)| (q, map(v))).collect(),
            },
        }
    }
}

/// Normalize a received list: drop self-deliveries, validate sender/time,
/// sort by sender, dedup. `data_of` resolves any id the caller may pass.
fn normalize_received<'a>(
    p: Pid,
    t: usize,
    received: &[(Pid, ViewId)],
    data_of: impl Fn(ViewId) -> &'a ViewData,
) -> Vec<(u8, ViewId)> {
    let mut rec: Vec<(u8, ViewId)> = Vec::with_capacity(received.len());
    for &(q, vid) in received {
        if q == p {
            continue;
        }
        let d = data_of(vid);
        assert_eq!(d.process, q, "received view must belong to its sender");
        assert_eq!(d.time, t - 1, "received view must be from the previous round");
        rec.push((q as u8, vid));
    }
    rec.sort_unstable_by_key(|&(q, _)| q);
    rec.dedup_by_key(|&mut (q, _)| q);
    rec
}

/// Merge the metadata of a round view from its parts.
fn merge_round_data<'a>(
    p: Pid,
    t: usize,
    prev: ViewId,
    rec: &[(u8, ViewId)],
    data_of: impl Fn(ViewId) -> &'a ViewData,
) -> ViewData {
    let mut heard = data_of(prev).heard;
    let mut known: Vec<(Pid, Value)> = data_of(prev).known_inputs.to_vec();
    for &(_, vid) in rec {
        let d = data_of(vid);
        heard |= d.heard;
        known.extend(d.known_inputs.iter().copied());
    }
    known.sort_unstable_by_key(|&(q, _)| q);
    known.dedup_by_key(|&mut (q, _)| q);
    debug_assert_eq!(known.len(), heard.count_ones() as usize);
    ViewData { process: p, time: t, heard, known_inputs: known.into_boxed_slice() }
}

/// A sink for view interning — implemented by the shared [`ViewTable`] and
/// by per-worker [`ShardTable`]s, so run computation
/// ([`crate::PrefixRun::compute`]) is generic over where views land.
pub trait ViewInterner {
    /// Number of processes.
    fn n(&self) -> usize;

    /// Intern the time-0 view of process `p` with input `x`.
    fn intern_initial(&mut self, p: Pid, x: Value) -> ViewId;

    /// Intern the round-`t` view of `p` from its previous view and the
    /// received `(sender, sender's previous view)` pairs.
    fn intern_round(&mut self, p: Pid, prev: ViewId, received: &[(Pid, ViewId)]) -> ViewId;
}

/// Metadata cached for each interned view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewData {
    /// The owning process.
    pub process: Pid,
    /// The time of the view (0 for initial views).
    pub time: usize,
    /// Bitmask of processes whose initial node `(q, 0, x_q)` is in the
    /// causal past (always contains the owner).
    pub heard: PidMask,
    /// The known initial values, sorted by process id; exactly one entry per
    /// set bit of `heard`.
    pub known_inputs: Box<[(Pid, Value)]>,
}

impl ViewData {
    /// The owner's own input value.
    pub fn own_input(&self) -> Value {
        self.input_of(self.process).expect("owner's input is always known")
    }

    /// The initial value of `q` if `(q, 0, x_q)` is in the causal past.
    pub fn input_of(&self, q: Pid) -> Option<Value> {
        self.known_inputs
            .binary_search_by_key(&q, |&(pid, _)| pid)
            .ok()
            .map(|i| self.known_inputs[i].1)
    }

    /// Whether `q`'s initial node is in the causal past — "the owner has
    /// heard from `q`" (paper Definition 5.8 uses this with `q` the
    /// broadcaster).
    pub fn has_heard(&self, q: Pid) -> bool {
        mask::contains(self.heard, q)
    }

    /// The smallest initial value in the causal past (the decision rule of
    /// the classic min-flooding baseline).
    pub fn min_known_input(&self) -> Value {
        self.known_inputs
            .iter()
            .map(|&(_, v)| v)
            .min()
            .expect("view knows its own input")
    }
}

/// Interner for views; see the module docs.
///
/// ```
/// use ptgraph::{ViewTable, ViewId};
/// let mut table = ViewTable::new(2);
/// let a = table.intern_initial(0, 7);
/// let b = table.intern_initial(0, 7);
/// let c = table.intern_initial(0, 8);
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// assert_eq!(table.data(a).own_input(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewTable {
    n: usize,
    index: HashMap<ViewKey, ViewId>,
    data: Vec<ViewData>,
    keys: Vec<ViewKey>,
}

impl ViewTable {
    /// A fresh table for systems of `n` processes.
    ///
    /// # Panics
    /// Panics if `n == 0` or `n > dyngraph::MAX_N`.
    pub fn new(n: usize) -> Self {
        assert!((1..=dyngraph::MAX_N).contains(&n));
        ViewTable { n, index: HashMap::new(), data: Vec::new(), keys: Vec::new() }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of distinct views interned so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Intern the time-0 view of process `p` with input `x`.
    ///
    /// # Panics
    /// Panics if `p ≥ n`.
    pub fn intern_initial(&mut self, p: Pid, x: Value) -> ViewId {
        assert!(p < self.n);
        let key = ViewKey::Initial { p: p as u8, x };
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let data = ViewData {
            process: p,
            time: 0,
            heard: mask::singleton(p),
            known_inputs: vec![(p, x)].into_boxed_slice(),
        };
        self.insert(key, data)
    }

    /// Intern the round-`t` view of process `p` from its previous view and
    /// the received `(sender, sender's previous view)` pairs.
    ///
    /// `received` need not be sorted and must not contain `p` itself (a
    /// self-loop delivery is redundant with `prev` and is ignored).
    ///
    /// # Panics
    /// Panics if `prev` does not belong to `p`, if a received view does not
    /// belong to its claimed sender, or if times are inconsistent.
    pub fn intern_round(&mut self, p: Pid, prev: ViewId, received: &[(Pid, ViewId)]) -> ViewId {
        let prev_data = &self.data[prev.index()];
        assert_eq!(prev_data.process, p, "prev view must belong to p");
        let t = prev_data.time + 1;

        let rec = normalize_received(p, t, received, |id| &self.data[id.index()]);
        let key = ViewKey::Round { p: p as u8, prev, received: rec.clone().into_boxed_slice() };
        if let Some(&id) = self.index.get(&key) {
            return id;
        }

        let data = merge_round_data(p, t, prev, &rec, |id| &self.data[id.index()]);
        self.insert(key, data)
    }

    fn insert(&mut self, key: ViewKey, data: ViewData) -> ViewId {
        let id = ViewId(u32::try_from(self.data.len()).expect("view table overflow"));
        self.index.insert(key.clone(), id);
        self.keys.push(key);
        self.data.push(data);
        id
    }

    /// Metadata of an interned view.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this table.
    pub fn data(&self, id: ViewId) -> &ViewData {
        &self.data[id.index()]
    }

    /// The `(sender, view)` pairs received in the view's round (empty for
    /// initial views).
    pub fn received(&self, id: ViewId) -> &[(u8, ViewId)] {
        match &self.keys[id.index()] {
            ViewKey::Initial { .. } => &[],
            ViewKey::Round { received, .. } => received,
        }
    }

    /// The previous view of the same process, or `None` for initial views.
    pub fn prev(&self, id: ViewId) -> Option<ViewId> {
        match &self.keys[id.index()] {
            ViewKey::Initial { .. } => None,
            ViewKey::Round { prev, .. } => Some(*prev),
        }
    }

    /// Merge a worker shard's local views into this table, in the shard's
    /// local insertion order, and return the remap `local index → global
    /// id`. The shard must have been built over a prefix of this table
    /// (`local.base_len() ≤ self.len()`); base ids are stable because the
    /// table only ever appends.
    ///
    /// Absorbing the shards of a canonically-chunked parallel expansion in
    /// chunk order reproduces *exactly* the [`ViewId`] assignment of the
    /// serial pass: a view's first global occurrence is in the earliest
    /// chunk containing it, at its first position within that chunk — the
    /// same order in which a serial sweep over the chunks' runs would have
    /// interned it.
    ///
    /// # Panics
    /// Panics if the shard was built for a different `n` or over a longer
    /// base than this table.
    pub fn absorb(&mut self, local: &LocalViews) -> Vec<ViewId> {
        assert_eq!(local.n, self.n, "shard and table disagree on n");
        assert!(local.base_len <= self.data.len(), "shard base is not a prefix of this table");
        let mut remap: Vec<ViewId> = Vec::with_capacity(local.keys.len());
        for (i, key) in local.keys.iter().enumerate() {
            let translate = |id: ViewId| {
                if id.index() < local.base_len {
                    id
                } else {
                    remap[id.index() - local.base_len]
                }
            };
            let key = key.mapped(translate);
            let id = match self.index.get(&key) {
                Some(&id) => id,
                None => self.insert(key, local.data[i].clone()),
            };
            remap.push(id);
        }
        remap
    }

    /// Render a view as a nested term, e.g. `p0[p0(x=1) | p1(x=0)←p1]`.
    pub fn render(&self, id: ViewId) -> String {
        match &self.keys[id.index()] {
            ViewKey::Initial { p, x } => format!("p{p}(x={x})"),
            ViewKey::Round { p, prev, received } => {
                let mut s = format!("p{p}[{}", self.render(*prev));
                for &(q, vid) in received.iter() {
                    s.push_str(&format!(" | {}←p{q}", self.render(vid)));
                }
                s.push(']');
                s
            }
        }
    }
}

impl ViewInterner for ViewTable {
    fn n(&self) -> usize {
        ViewTable::n(self)
    }

    fn intern_initial(&mut self, p: Pid, x: Value) -> ViewId {
        ViewTable::intern_initial(self, p, x)
    }

    fn intern_round(&mut self, p: Pid, prev: ViewId, received: &[(Pid, ViewId)]) -> ViewId {
        ViewTable::intern_round(self, p, prev, received)
    }
}

/// A per-worker view interner layered over an immutable base [`ViewTable`].
///
/// Ids below `base.len()` resolve in the base; new views land in a local
/// extension with ids continuing from `base.len()`. Workers of a parallel
/// expansion each build one shard against the shared base, then the shards
/// are [`ViewTable::absorb`]ed into the base in canonical chunk order —
/// reproducing the serial interning order without any locking on the hot
/// path.
#[derive(Debug)]
pub struct ShardTable<'a> {
    base: &'a ViewTable,
    index: HashMap<ViewKey, ViewId>,
    data: Vec<ViewData>,
    keys: Vec<ViewKey>,
}

impl<'a> ShardTable<'a> {
    /// A fresh shard over `base`.
    pub fn new(base: &'a ViewTable) -> Self {
        ShardTable { base, index: HashMap::new(), data: Vec::new(), keys: Vec::new() }
    }

    /// Number of views interned locally (excluding the base).
    pub fn local_len(&self) -> usize {
        self.data.len()
    }

    fn resolve(&self, id: ViewId) -> &ViewData {
        let i = id.index();
        if i < self.base.len() {
            &self.base.data[i]
        } else {
            &self.data[i - self.base.len()]
        }
    }

    fn insert(&mut self, key: ViewKey, data: ViewData) -> ViewId {
        let raw = self.base.len() + self.data.len();
        let id = ViewId(u32::try_from(raw).expect("view table overflow"));
        self.index.insert(key.clone(), id);
        self.keys.push(key);
        self.data.push(data);
        id
    }

    /// Detach the local extension for [`ViewTable::absorb`], releasing the
    /// borrow on the base.
    pub fn into_local(self) -> LocalViews {
        LocalViews { n: self.base.n, base_len: self.base.len(), keys: self.keys, data: self.data }
    }
}

impl ViewInterner for ShardTable<'_> {
    fn n(&self) -> usize {
        self.base.n
    }

    fn intern_initial(&mut self, p: Pid, x: Value) -> ViewId {
        assert!(p < self.base.n);
        let key = ViewKey::Initial { p: p as u8, x };
        if let Some(&id) = self.base.index.get(&key) {
            return id;
        }
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let data = ViewData {
            process: p,
            time: 0,
            heard: mask::singleton(p),
            known_inputs: vec![(p, x)].into_boxed_slice(),
        };
        self.insert(key, data)
    }

    fn intern_round(&mut self, p: Pid, prev: ViewId, received: &[(Pid, ViewId)]) -> ViewId {
        let prev_data = self.resolve(prev);
        assert_eq!(prev_data.process, p, "prev view must belong to p");
        let t = prev_data.time + 1;

        let rec = normalize_received(p, t, received, |id| self.resolve(id));
        let key = ViewKey::Round { p: p as u8, prev, received: rec.clone().into_boxed_slice() };
        if let Some(&id) = self.base.index.get(&key) {
            return id;
        }
        if let Some(&id) = self.index.get(&key) {
            return id;
        }

        let data = merge_round_data(p, t, prev, &rec, |id| self.resolve(id));
        self.insert(key, data)
    }
}

/// The detached local extension of a [`ShardTable`], ready to be
/// [`ViewTable::absorb`]ed. Keys are in local insertion order.
#[derive(Debug)]
pub struct LocalViews {
    n: usize,
    base_len: usize,
    keys: Vec<ViewKey>,
    data: Vec<ViewData>,
}

impl LocalViews {
    /// The base-table length this shard extended — ids below it are global.
    pub fn base_len(&self) -> usize {
        self.base_len
    }

    /// Number of locally interned views.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the shard interned nothing new.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_views_deduplicate() {
        let mut t = ViewTable::new(3);
        let a = t.intern_initial(1, 5);
        let b = t.intern_initial(1, 5);
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        assert_ne!(t.intern_initial(2, 5), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn round_views_deduplicate_regardless_of_order() {
        let mut t = ViewTable::new(3);
        let v0 = t.intern_initial(0, 0);
        let v1 = t.intern_initial(1, 1);
        let v2 = t.intern_initial(2, 0);
        let a = t.intern_round(0, v0, &[(1, v1), (2, v2)]);
        let b = t.intern_round(0, v0, &[(2, v2), (1, v1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn self_delivery_ignored() {
        let mut t = ViewTable::new(2);
        let v0 = t.intern_initial(0, 3);
        let a = t.intern_round(0, v0, &[(0, v0)]);
        let b = t.intern_round(0, v0, &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn metadata_accumulates() {
        let mut t = ViewTable::new(3);
        let v0 = t.intern_initial(0, 10);
        let v1 = t.intern_initial(1, 20);
        let r = t.intern_round(0, v0, &[(1, v1)]);
        let d = t.data(r);
        assert_eq!(d.time, 1);
        assert_eq!(d.heard, 0b011);
        assert_eq!(d.input_of(1), Some(20));
        assert_eq!(d.input_of(2), None);
        assert_eq!(d.own_input(), 10);
        assert_eq!(d.min_known_input(), 10);
        assert!(d.has_heard(1));
        assert!(!d.has_heard(2));
    }

    #[test]
    fn two_hop_knowledge() {
        let mut t = ViewTable::new(3);
        let v0 = t.intern_initial(0, 1);
        let v1 = t.intern_initial(1, 2);
        let v2 = t.intern_initial(2, 3);
        // Round 1: 0 → 1.
        let v1r1 = t.intern_round(1, v1, &[(0, v0)]);
        let v2r1 = t.intern_round(2, v2, &[]);
        // Round 2: 1 → 2.
        let v2r2 = t.intern_round(2, v2r1, &[(1, v1r1)]);
        let d = t.data(v2r2);
        assert_eq!(d.heard, 0b111);
        assert_eq!(d.input_of(0), Some(1));
        assert_eq!(d.min_known_input(), 1);
    }

    #[test]
    fn different_inputs_different_views() {
        let mut t = ViewTable::new(2);
        let a0 = t.intern_initial(0, 0);
        let b0 = t.intern_initial(0, 1);
        assert_ne!(a0, b0);
        let a1 = t.intern_round(0, a0, &[]);
        let b1 = t.intern_round(0, b0, &[]);
        assert_ne!(a1, b1, "views with different causal pasts never merge");
    }

    #[test]
    fn prev_and_received_accessors() {
        let mut t = ViewTable::new(2);
        let v0 = t.intern_initial(0, 0);
        let w0 = t.intern_initial(1, 1);
        let r = t.intern_round(0, v0, &[(1, w0)]);
        assert_eq!(t.prev(r), Some(v0));
        assert_eq!(t.prev(v0), None);
        assert_eq!(t.received(r), &[(1u8, w0)]);
        assert!(t.received(v0).is_empty());
    }

    #[test]
    fn render_nested() {
        let mut t = ViewTable::new(2);
        let v0 = t.intern_initial(0, 1);
        let w0 = t.intern_initial(1, 0);
        let r = t.intern_round(0, v0, &[(1, w0)]);
        assert_eq!(t.render(r), "p0[p0(x=1) | p1(x=0)←p1]");
    }

    #[test]
    fn shard_over_empty_base_replays_serially() {
        // Interning the same views serially and via a shard+absorb must
        // assign identical ids.
        let mut serial = ViewTable::new(2);
        let a0 = serial.intern_initial(0, 0);
        let b0 = serial.intern_initial(1, 1);
        let a1 = serial.intern_round(0, a0, &[(1, b0)]);

        let mut base = ViewTable::new(2);
        let mut shard = ShardTable::new(&base);
        let sa0 = ViewInterner::intern_initial(&mut shard, 0, 0);
        let sb0 = ViewInterner::intern_initial(&mut shard, 1, 1);
        let sa1 = ViewInterner::intern_round(&mut shard, 0, sa0, &[(1, sb0)]);
        let local = shard.into_local();
        let remap = base.absorb(&local);
        assert_eq!(remap[sa0.index()], a0);
        assert_eq!(remap[sb0.index()], b0);
        assert_eq!(remap[sa1.index()], a1);
        assert_eq!(base, serial);
    }

    #[test]
    fn shard_deduplicates_against_base_and_absorb_remaps() {
        let mut base = ViewTable::new(2);
        let a0 = base.intern_initial(0, 0);
        let b0 = base.intern_initial(1, 1);
        let known = base.intern_round(0, a0, &[]);
        let base_len = base.len();

        let mut shard = ShardTable::new(&base);
        // Already in the base: resolved there, nothing interned locally.
        assert_eq!(ViewInterner::intern_initial(&mut shard, 0, 0), a0);
        assert_eq!(ViewInterner::intern_round(&mut shard, 0, a0, &[]), known);
        assert_eq!(shard.local_len(), 0);
        // New: local ids continue from the base length.
        let fresh = ViewInterner::intern_round(&mut shard, 0, a0, &[(1, b0)]);
        assert_eq!(fresh.index(), base_len);
        let local = shard.into_local();
        assert_eq!(local.len(), 1);
        assert_eq!(local.base_len(), base_len);

        let remap = base.absorb(&local);
        assert_eq!(remap.len(), 1);
        assert_eq!(remap[0].index(), base_len);
        assert_eq!(base.data(remap[0]).heard, 0b011);
    }

    #[test]
    fn absorb_two_shards_first_chunk_wins() {
        // Both shards intern the same new view; after absorbing in chunk
        // order both remap to the id the first chunk created.
        let mut base = ViewTable::new(2);
        let a0 = base.intern_initial(0, 0);
        let s1 = {
            let mut shard = ShardTable::new(&base);
            ViewInterner::intern_round(&mut shard, 0, a0, &[]);
            shard.into_local()
        };
        let s2 = {
            let mut shard = ShardTable::new(&base);
            ViewInterner::intern_round(&mut shard, 0, a0, &[]);
            shard.into_local()
        };
        let r1 = base.absorb(&s1);
        let r2 = base.absorb(&s2);
        assert_eq!(r1, r2);
        assert_eq!(base.len(), 2);
    }

    #[test]
    fn run_remap_after_shard_compute_matches_direct() {
        use crate::PrefixRun;
        use dyngraph::GraphSeq;
        let seq = GraphSeq::parse2("-> <-").unwrap();

        let mut serial = ViewTable::new(2);
        let direct = PrefixRun::compute(vec![0, 1], &seq, &mut serial);

        let mut base = ViewTable::new(2);
        let mut shard = ShardTable::new(&base);
        let mut run = PrefixRun::compute(vec![0, 1], &seq, &mut shard);
        let local = shard.into_local();
        let remap = base.absorb(&local);
        run.remap_views(local.base_len(), &remap);
        assert_eq!(base, serial);
        assert_eq!(run, direct);
    }

    #[test]
    #[should_panic(expected = "prev view must belong to p")]
    fn intern_round_checks_owner() {
        let mut t = ViewTable::new(2);
        let v0 = t.intern_initial(0, 0);
        let _ = t.intern_round(1, v0, &[]);
    }

    #[test]
    #[should_panic(expected = "previous round")]
    fn intern_round_checks_times() {
        let mut t = ViewTable::new(2);
        let v0 = t.intern_initial(0, 0);
        let v1 = t.intern_round(0, v0, &[]);
        let w0 = t.intern_initial(1, 0);
        // w0 is at time 0 but p0's prev is at time 1 → received must be time 1.
        let _ = t.intern_round(0, v1, &[(1, w0)]);
    }
}
