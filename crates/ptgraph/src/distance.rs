//! The paper's distance functions on runs (§4, Fig. 3).
//!
//! * `d_P(α, β) = 2^{−inf{t ≥ 0 : V_P(α^t) ≠ V_P(β^t)}}` — the
//!   `P`-pseudo-metric (§4.1, Theorem 4.3);
//! * `d_min(α, β) = min_{p ∈ [n]} d_{p}(α, β)` — the minimum
//!   pseudo-semi-metric (§4.2, Eq. 3);
//! * `d_max = d_{[n]}` — the classic common-prefix metric (Eq. 1).
//!
//! Distances are exact dyadic rationals represented by [`Distance`]:
//! `Finite(t)` means `2^{−t}`, and `Below(T)` means "the runs are
//! indistinguishable through the whole compared horizon `T`", i.e. the true
//! distance is `< 2^{−T}` (it is `0` iff the infinite extensions never
//! diverge — decidable for lassos via [`crate::contamination`]).

use dyngraph::Pid;

use crate::{PrefixRun, ViewTable};

/// An exact dyadic distance value; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distance {
    /// The views first differ at time `t`; the distance is exactly `2^{−t}`.
    Finite(usize),
    /// No difference within the compared horizon `T`; the distance is
    /// `< 2^{−T}`.
    Below(usize),
}

impl Distance {
    /// The distance as an `f64` (`Below(T)` maps to `2^{−(T+1)}` for
    /// display purposes only — the true value is merely bounded by it).
    pub fn as_f64(self) -> f64 {
        match self {
            Distance::Finite(t) => 0.5f64.powi(t as i32),
            Distance::Below(t) => 0.5f64.powi(t as i32 + 1),
        }
    }

    /// Whether the distance is known to be `< 2^{−t}`.
    pub fn lt_pow2(self, t: usize) -> bool {
        match self {
            Distance::Finite(s) => s > t,
            Distance::Below(s) => s >= t,
        }
    }

    /// The divergence time if finite.
    pub fn divergence_time(self) -> Option<usize> {
        match self {
            Distance::Finite(t) => Some(t),
            Distance::Below(_) => None,
        }
    }
}

impl PartialOrd for Distance {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Distance {
    /// Total order by the *bound* each value represents: `Finite(t)` as
    /// `2^{−t}`, `Below(T)` as the open bound `2^{−T}⁻`. A `Finite(t)` with
    /// `t > T` compares below `Below(T)` even though the true distance
    /// behind `Below(T)` is unknown beyond its bound — callers that need
    /// exact comparisons must extend the horizon first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Larger divergence time = smaller distance. Below(T) < Finite(t) for
        // all t ≤ T; Below(T) vs Below(S): smaller horizon = larger bound.
        use Distance::*;
        match (self, other) {
            (Finite(a), Finite(b)) => b.cmp(a),
            (Below(a), Below(b)) => b.cmp(a),
            (Finite(t), Below(s)) => {
                if *t > *s {
                    std::cmp::Ordering::Less // 2^-t < 2^-(s+?) — t beyond horizon s
                } else {
                    std::cmp::Ordering::Greater
                }
            }
            (Below(_), Finite(_)) => other.cmp(self).reverse(),
        }
    }
}

/// First time `t` at which `p`'s views in `a` and `b` differ, within the
/// common horizon; `None` if they agree throughout.
///
/// Views are cumulative, so agreement at time `t` implies agreement at all
/// earlier times; the scan exploits this by binary search.
///
/// # Panics
/// Panics if the runs disagree on `n`.
pub fn divergence_time_p(a: &PrefixRun, b: &PrefixRun, p: Pid) -> Option<usize> {
    assert_eq!(a.n(), b.n(), "runs must have the same number of processes");
    let horizon = a.rounds().min(b.rounds());
    if a.view(p, horizon) == b.view(p, horizon) {
        return None;
    }
    // Binary search for the first differing time (monotone predicate).
    let (mut lo, mut hi) = (0usize, horizon);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if a.view(p, mid) == b.view(p, mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// The pseudo-metric `d_{p}` for a single process.
pub fn d_p(a: &PrefixRun, b: &PrefixRun, p: Pid) -> Distance {
    let horizon = a.rounds().min(b.rounds());
    match divergence_time_p(a, b, p) {
        Some(t) => Distance::Finite(t),
        None => Distance::Below(horizon),
    }
}

/// The `P`-pseudo-metric `d_P = max_{p ∈ P} d_{p}` (Theorem 4.3:
/// monotonicity gives `d_P ≤ d_Q` for `P ⊆ Q`, and the max realizes the
/// first time *some* member of `P` distinguishes).
///
/// # Panics
/// Panics if `ps` is empty or contains an out-of-range pid.
pub fn d_set(a: &PrefixRun, b: &PrefixRun, ps: &[Pid]) -> Distance {
    assert!(!ps.is_empty(), "P must be nonempty");
    ps.iter().map(|&p| d_p(a, b, p)).max().expect("nonempty")
}

/// The common-prefix metric `d_max = d_{[n]}` (Eq. 1).
pub fn d_max(a: &PrefixRun, b: &PrefixRun) -> Distance {
    let all: Vec<Pid> = (0..a.n()).collect();
    d_set(a, b, &all)
}

/// The minimum pseudo-semi-metric `d_min = min_p d_{p}` (Eq. 3): the
/// distance seen by the process that is *last* to distinguish the runs.
pub fn d_min(a: &PrefixRun, b: &PrefixRun) -> Distance {
    (0..a.n()).map(|p| d_p(a, b, p)).min().expect("n ≥ 1")
}

/// The diameter `d_min(A) = sup {d_min(a,b) : a,b ∈ A}` of a set of runs
/// (paper Definition 5.7). Returns `None` for an empty or singleton set.
pub fn diameter_min(runs: &[&PrefixRun]) -> Option<Distance> {
    let mut best: Option<Distance> = None;
    for (i, a) in runs.iter().enumerate() {
        for b in &runs[i + 1..] {
            let d = d_min(a, b);
            best = Some(match best {
                None => d,
                Some(cur) => cur.max(d),
            });
        }
    }
    best
}

/// The set distance `d_min(A, B) = inf {d_min(a,b)}` (paper Definition
/// 5.12). Returns `None` if either set is empty.
pub fn set_distance_min(xs: &[&PrefixRun], ys: &[&PrefixRun]) -> Option<Distance> {
    let mut best: Option<Distance> = None;
    for a in xs {
        for b in ys {
            let d = d_min(a, b);
            best = Some(match best {
                None => d,
                Some(cur) => cur.min(d),
            });
        }
    }
    best
}

/// Reproduce the paper's **Figure 3** example: three processes, two runs
/// with `d_max = d_{2} = 1`, `d_{1} = 1/2`, `d_min = d_{0} = 1/4`
/// (zero-based process ids; the paper's processes 3, 2, 1).
///
/// Returns `(α, β, table)`.
pub fn fig3_example() -> (PrefixRun, PrefixRun, ViewTable) {
    use dyngraph::{Digraph, GraphSeq};
    let mut table = ViewTable::new(3);
    // Process 2 differs at time 0 (input), process 1 learns the difference
    // in round 1, process 0 only in round 2.
    // α: x = (0, 0, 0); β: x = (0, 0, 1).
    // Round 1: 2 → 1 (process 1 hears the differing input).
    // Round 2: 1 → 0 (process 0 hears it transitively).
    let g1 = Digraph::from_edges(3, &[(2, 1)]).unwrap();
    let g2 = Digraph::from_edges(3, &[(1, 0)]).unwrap();
    let seq = GraphSeq::from_graphs(vec![g1, g2, Digraph::empty(3)]);
    let alpha = PrefixRun::compute(vec![0, 0, 0], &seq, &mut table);
    let beta = PrefixRun::compute(vec![0, 0, 1], &seq, &mut table);
    (alpha, beta, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyngraph::GraphSeq;

    fn runs2(word_a: &str, word_b: &str, xa: [u32; 2], xb: [u32; 2]) -> (PrefixRun, PrefixRun) {
        let mut t = ViewTable::new(2);
        let a = PrefixRun::compute(xa.to_vec(), &GraphSeq::parse2(word_a).unwrap(), &mut t);
        let b = PrefixRun::compute(xb.to_vec(), &GraphSeq::parse2(word_b).unwrap(), &mut t);
        (a, b)
    }

    #[test]
    fn identical_runs_below_horizon() {
        let (a, b) = runs2("-> <-", "-> <-", [0, 1], [0, 1]);
        assert_eq!(d_min(&a, &b), Distance::Below(2));
        assert_eq!(d_max(&a, &b), Distance::Below(2));
    }

    #[test]
    fn input_difference_is_distance_one() {
        let (a, b) = runs2("->", "->", [0, 1], [1, 1]);
        // p0's own input differs at time 0 → d_{0} = 1 = 2^0.
        assert_eq!(d_p(&a, &b, 0), Distance::Finite(0));
        // p1 learns x_0 in round 1 → d_{1} = 1/2.
        assert_eq!(d_p(&a, &b, 1), Distance::Finite(1));
        assert_eq!(d_max(&a, &b), Distance::Finite(0));
        assert_eq!(d_min(&a, &b), Distance::Finite(1));
    }

    #[test]
    fn unheard_difference_gives_below() {
        // →^3 with x_1 differing: p0 never hears p1.
        let (a, b) = runs2("-> -> ->", "-> -> ->", [0, 0], [0, 1]);
        assert_eq!(d_p(&a, &b, 0), Distance::Below(3));
        assert_eq!(d_p(&a, &b, 1), Distance::Finite(0));
        assert_eq!(d_min(&a, &b), Distance::Below(3));
        assert_eq!(d_max(&a, &b), Distance::Finite(0));
    }

    #[test]
    fn fig3_values() {
        let (alpha, beta, _) = fig3_example();
        // Process 2 (the paper's process 3): distance 1.
        assert_eq!(d_p(&alpha, &beta, 2), Distance::Finite(0));
        // Process 1 (paper's 2): distance 1/2.
        assert_eq!(d_p(&alpha, &beta, 1), Distance::Finite(1));
        // Process 0 (paper's 1): distance 1/4 = d_min.
        assert_eq!(d_p(&alpha, &beta, 0), Distance::Finite(2));
        assert_eq!(d_min(&alpha, &beta), Distance::Finite(2));
        assert_eq!(d_max(&alpha, &beta), Distance::Finite(0));
        assert!((d_min(&alpha, &beta).as_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        let (a, b) = runs2("-> <-", "<- <-", [0, 1], [0, 1]);
        for p in 0..2 {
            assert_eq!(d_p(&a, &b, p), d_p(&b, &a, p));
        }
        assert_eq!(d_min(&a, &b), d_min(&b, &a));
    }

    #[test]
    fn triangle_inequality_dp() {
        // Theorem 4.3: d_P(α,γ) ≤ d_P(α,β) + d_P(β,γ). With exact dyadics,
        // verify on f64 with a horizon-consistent trio.
        let mut t = ViewTable::new(2);
        let s1 = GraphSeq::parse2("-> -> ->").unwrap();
        let s2 = GraphSeq::parse2("-> <- ->").unwrap();
        let s3 = GraphSeq::parse2("<- <- ->").unwrap();
        let a = PrefixRun::compute(vec![0, 1], &s1, &mut t);
        let b = PrefixRun::compute(vec![0, 1], &s2, &mut t);
        let c = PrefixRun::compute(vec![0, 1], &s3, &mut t);
        for p in 0..2 {
            let ab = d_p(&a, &b, p).as_f64();
            let bc = d_p(&b, &c, p).as_f64();
            let ac = d_p(&a, &c, p).as_f64();
            assert!(ac <= ab + bc + 1e-12, "triangle violated for p{p}");
        }
    }

    #[test]
    fn monotonicity_in_p() {
        // Theorem 4.3: P ⊆ Q ⟹ d_P ≤ d_Q.
        let (alpha, beta, _) = fig3_example();
        let d01 = d_set(&alpha, &beta, &[0, 1]);
        let d012 = d_set(&alpha, &beta, &[0, 1, 2]);
        assert!(d01 <= d012);
        let d0 = d_set(&alpha, &beta, &[0]);
        assert!(d0 <= d01);
    }

    #[test]
    fn dmax_equals_full_set() {
        let (alpha, beta, _) = fig3_example();
        assert_eq!(d_max(&alpha, &beta), d_set(&alpha, &beta, &[0, 1, 2]));
    }

    #[test]
    fn distance_ordering() {
        use Distance::*;
        assert!(Finite(0) > Finite(1));
        assert!(Finite(1) > Finite(5));
        assert!(Below(5) < Finite(5)); // < 2^-5 vs = 2^-5
        assert!(Below(3) > Finite(10)); // bound 2^-4-ish > 2^-10? Below(3) means < 2^-3…
        assert!(Finite(10) < Below(3));
        assert!(Below(5) < Below(3));
        assert!(Finite(2).lt_pow2(1));
        assert!(!Finite(2).lt_pow2(2));
        assert!(Below(2).lt_pow2(2));
    }

    #[test]
    fn diameter_and_set_distance() {
        let mut t = ViewTable::new(2);
        let s = GraphSeq::parse2("-> ->").unwrap();
        let a = PrefixRun::compute(vec![0, 0], &s, &mut t);
        let b = PrefixRun::compute(vec![0, 1], &s, &mut t);
        let c = PrefixRun::compute(vec![1, 1], &s, &mut t);
        let diam = diameter_min(&[&a, &b, &c]).unwrap();
        // d_min(a,c) = Finite(0) is the max: all processes differ at time 0.
        assert_eq!(diam, Distance::Finite(0));
        let d = set_distance_min(&[&a], &[&b, &c]).unwrap();
        // a—b share p0's view forever within horizon → Below(2).
        assert_eq!(d, Distance::Below(2));
        assert!(diameter_min(&[]).is_none());
        assert!(set_distance_min(&[], &[&a]).is_none());
    }
}
