//! Process-time graphs, local views, and the paper's distance functions.
//!
//! This crate implements Section 3 and Section 4 of *Nowak, Schmid, Winkler —
//! "Topological Characterization of Consensus under General Message
//! Adversaries"* (PODC 2019):
//!
//! * [`PtGraph`] — the explicit process-time graph `PT^t` of §3 (Fig. 2):
//!   nodes `(p, 0, x_p)` and `(p, t)`, edges `(p, t−1) → (q, t)` iff
//!   `(p, q) ∈ G_t`.
//! * [`ViewTable`] / [`ViewId`] — hash-consed local views. The view
//!   `V_{p}(PT^t)` is `p`'s causal past; two runs are indistinguishable to
//!   `p` through round `t` iff their interned view ids at time `t` are equal.
//!   This is the workhorse of the whole reproduction: the paper's distances
//!   below resolution `2^−t` are functions of these ids.
//! * [`PrefixRun`] — a finite run `(input vector, graph-sequence prefix)`
//!   with all views interned; the finite shadow of a point of the paper's
//!   space `PT^ω`.
//! * [`distance`] — the `P`-pseudo-metric `d_P` (§4.1), the minimum
//!   pseudo-semi-metric `d_min` (§4.2), and the common-prefix metric
//!   `d_max = d_{[n]}` (Fig. 3), all as exact dyadic values.
//! * [`contamination`] — the divergence calculus: the monotone set
//!   `D_t = {q : V_q(a^t) ≠ V_q(b^t)}` evolves by a local rule, which makes
//!   `d_p(a, b) = 0` **decidable exactly** for ultimately periodic
//!   ([`dyngraph::Lasso`]) runs. This powers the rigorous impossibility
//!   certificates (distance-0 chains, paper Corollary 5.6) and the
//!   fair/unfair limit detection (Definition 5.16).
//!
//! # Quickstart: the paper's Figure 2
//!
//! ```
//! use ptgraph::{fig2_example, PtGraph};
//!
//! let pt = fig2_example();
//! assert_eq!(pt.n(), 3);
//! assert_eq!(pt.inputs(), &[1, 0, 1]);
//! // Process 0's view at time 2 is its causal past.
//! let past = pt.causal_past(&[0], 2);
//! assert!(past.contains(&(0, 0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contamination;
pub mod distance;
pub mod knowledge;
mod ptg;
mod run;
mod view;

pub use ptg::{fig2_example, PtGraph, PtNode};
pub use run::{InfiniteRun, PrefixRun};
pub use view::{LocalViews, ShardTable, ViewData, ViewId, ViewInterner, ViewTable};

/// A consensus input/output value (the paper's finite domain `V_I ⊆ V_O`).
pub type Value = u32;

/// An assignment of one input value per process (the paper's `x ∈ V_I^n`).
pub type Inputs = Vec<Value>;

/// All input assignments over domain `values` for `n` processes, in
/// lexicographic order (`|values|^n` of them).
///
/// ```
/// let all = ptgraph::all_inputs(2, &[0, 1]);
/// assert_eq!(all, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
/// ```
pub fn all_inputs(n: usize, values: &[Value]) -> Vec<Inputs> {
    let mut out = Vec::with_capacity(values.len().checked_pow(n as u32).unwrap_or(0));
    let mut cur = vec![values[0]; n];
    fn rec(i: usize, n: usize, values: &[Value], cur: &mut Vec<Value>, out: &mut Vec<Inputs>) {
        if i == n {
            out.push(cur.clone());
            return;
        }
        for &v in values {
            cur[i] = v;
            rec(i + 1, n, values, cur, out);
        }
    }
    rec(0, n, values, &mut cur, &mut out);
    out
}

/// The `v`-valent input assignment: every process starts with `v`
/// (paper §5.1, the sequences `z_v`).
pub fn valent_inputs(n: usize, v: Value) -> Inputs {
    vec![v; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_inputs_counts() {
        assert_eq!(all_inputs(1, &[0, 1]).len(), 2);
        assert_eq!(all_inputs(3, &[0, 1]).len(), 8);
        assert_eq!(all_inputs(2, &[0, 1, 2]).len(), 9);
    }

    #[test]
    fn all_inputs_lexicographic_and_distinct() {
        let all = all_inputs(2, &[0, 1]);
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(all, sorted);
    }

    #[test]
    fn valent_inputs_constant() {
        assert_eq!(valent_inputs(3, 7), vec![7, 7, 7]);
    }
}
