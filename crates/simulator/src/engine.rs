//! The round engine: execute an [`Algorithm`] over a run.

use dyngraph::{GraphSeq, Pid, Round};
use ptgraph::Value;

use crate::Algorithm;

/// A finite execution: the configuration sequence `C^0, …, C^T` (paper §2)
/// plus the decision events read off the states.
#[derive(Debug, Clone)]
pub struct Execution<S> {
    /// `states[t][p]` = state of `p` at the end of round `t` (`t = 0` is the
    /// initial configuration).
    pub states: Vec<Vec<S>>,
    /// First decision of each process: `(round, value)`.
    decisions: Vec<Option<(Round, Value)>>,
    /// Whether some process changed its decision value after deciding — a
    /// violation of irrevocability.
    revoked: Vec<bool>,
}

impl<S> Execution<S> {
    /// Number of processes.
    pub fn n(&self) -> usize {
        self.decisions.len()
    }

    /// Number of rounds executed.
    pub fn rounds(&self) -> usize {
        self.states.len() - 1
    }

    /// The first decision of `p` as `(round, value)`, if it decided.
    pub fn decision_of(&self, p: Pid) -> Option<(Round, Value)> {
        self.decisions[p]
    }

    /// The decided value of `p`, if any.
    pub fn value_of(&self, p: Pid) -> Option<Value> {
        self.decisions[p].map(|(_, v)| v)
    }

    /// Whether every process decided.
    pub fn all_decided(&self) -> bool {
        self.decisions.iter().all(Option::is_some)
    }

    /// Whether all decided processes agree.
    pub fn agreement_holds(&self) -> bool {
        let mut seen: Option<Value> = None;
        for d in self.decisions.iter().flatten() {
            match seen {
                None => seen = Some(d.1),
                Some(v) if v == d.1 => {}
                Some(_) => return false,
            }
        }
        true
    }

    /// Whether some process changed its decision after deciding.
    pub fn any_revoked(&self) -> bool {
        self.revoked.iter().any(|&r| r)
    }

    /// The common decision value if all processes decided and agree —
    /// the paper's `∆(execution)`.
    pub fn consensus_value(&self) -> Option<Value> {
        if self.all_decided() && self.agreement_holds() {
            self.decisions[0].map(|(_, v)| v)
        } else {
            None
        }
    }
}

/// Run `alg` from `inputs` under the graph-sequence prefix `seq`.
///
/// # Panics
/// Panics if `inputs` and `seq` disagree on the number of processes.
pub fn run<A: Algorithm>(alg: &A, inputs: &[Value], seq: &GraphSeq) -> Execution<A::State> {
    let n = inputs.len();
    if let Some(m) = seq.n() {
        assert_eq!(m, n, "inputs and sequence disagree on n");
    }
    let mut states: Vec<Vec<A::State>> = Vec::with_capacity(seq.rounds() + 1);
    states.push((0..n).map(|p| alg.init(p, inputs[p])).collect());

    let mut decisions: Vec<Option<(Round, Value)>> = vec![None; n];
    let mut revoked = vec![false; n];
    let note_decisions = |t: Round,
                          sts: &[A::State],
                          decisions: &mut Vec<Option<(Round, Value)>>,
                          revoked: &mut Vec<bool>| {
        for (p, s) in sts.iter().enumerate() {
            match (decisions[p], alg.decision(p, s)) {
                (None, Some(v)) => decisions[p] = Some((t, v)),
                (Some((_, v0)), Some(v1)) if v0 != v1 => revoked[p] = true,
                (Some(_), None) => revoked[p] = true,
                _ => {}
            }
        }
    };
    note_decisions(0, &states[0], &mut decisions, &mut revoked);

    for t in 1..=seq.rounds() {
        let g = seq.graph(t);
        let prev = &states[t - 1];
        let mut cur = Vec::with_capacity(n);
        for q in 0..n {
            let received: Vec<(Pid, A::State)> =
                g.in_neighbors(q).filter(|&p| p != q).map(|p| (p, prev[p].clone())).collect();
            cur.push(alg.step(q, &prev[q], &received));
        }
        note_decisions(t, &cur, &mut decisions, &mut revoked);
        states.push(cur);
    }
    Execution { states, decisions, revoked }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{DirectionRule, FloodMin};
    use dyngraph::GraphSeq;

    #[test]
    fn floodmin_converges_with_exchange() {
        let alg = FloodMin::new(1);
        let exec = run(&alg, &[4, 2], &GraphSeq::parse2("<->").unwrap());
        assert_eq!(exec.value_of(0), Some(2));
        assert_eq!(exec.value_of(1), Some(2));
        assert!(exec.agreement_holds());
        assert!(!exec.any_revoked());
        assert_eq!(exec.consensus_value(), Some(2));
    }

    #[test]
    fn floodmin_disagrees_without_communication() {
        let alg = FloodMin::new(1);
        let mut seq = GraphSeq::new();
        seq.push(dyngraph::Digraph::empty(2));
        let exec = run(&alg, &[4, 2], &seq);
        assert_eq!(exec.value_of(0), Some(4));
        assert_eq!(exec.value_of(1), Some(2));
        assert!(!exec.agreement_holds());
        assert_eq!(exec.consensus_value(), None);
    }

    #[test]
    fn direction_rule_round_one() {
        let alg = DirectionRule;
        let exec = run(&alg, &[7, 9], &GraphSeq::parse2("->").unwrap());
        assert_eq!(exec.decision_of(0), Some((1, 7)));
        assert_eq!(exec.decision_of(1), Some((1, 7)));
        let exec = run(&alg, &[7, 9], &GraphSeq::parse2("<-").unwrap());
        assert_eq!(exec.consensus_value(), Some(9));
    }

    #[test]
    fn undecided_before_decision_round() {
        let alg = FloodMin::new(3);
        let exec = run(&alg, &[1, 0], &GraphSeq::parse2("<-> <->").unwrap());
        assert!(!exec.all_decided());
        assert_eq!(exec.rounds(), 2);
    }

    #[test]
    fn states_shape() {
        let alg = FloodMin::new(1);
        let exec = run(&alg, &[1, 0], &GraphSeq::parse2("<-> <->").unwrap());
        assert_eq!(exec.states.len(), 3);
        assert_eq!(exec.states[0].len(), 2);
        assert_eq!(exec.n(), 2);
    }
}
