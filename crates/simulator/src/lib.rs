//! Synchronous lock-step round simulator (paper §2).
//!
//! Executes deterministic algorithms over a dynamic network: in round `t`,
//! every process sends its message, receives along the edges of `G_t`, and
//! computes its next state (send–receive–compute order). An [`Algorithm`]
//! is full-information-style: the round message is the sender's entire
//! previous state, which loses no generality for the consensus algorithms of
//! the paper and keeps the trait small.
//!
//! * [`engine`] — running an algorithm on a run, producing an
//!   [`engine::Execution`] (the paper's configuration sequences `C^t`);
//! * [`checker`] — exhaustive consensus verification (termination,
//!   agreement, validity, irrevocability — Definition 5.1) over all
//!   admissible runs of an adversary at a given depth;
//! * [`algorithms`] — reference algorithms: min-flooding with a decision
//!   round, the one-round direction rule for the `{←, →}` lossy link, and a
//!   full-information state machine.
//!
//! # Quickstart
//!
//! ```
//! use simulator::{algorithms::FloodMin, engine};
//! use dyngraph::GraphSeq;
//!
//! // Min-flooding, deciding at round 2, on the 2-process sequence → ←.
//! let alg = FloodMin::new(2);
//! let exec = engine::run(&alg, &[5, 3], &GraphSeq::parse2("-> <-").unwrap());
//! assert_eq!(exec.decision_of(0), Some((2, 3)));
//! assert_eq!(exec.decision_of(1), Some((2, 3)));
//! assert!(exec.agreement_holds());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod checker;
pub mod engine;
pub mod trace;

use dyngraph::Pid;
use ptgraph::Value;

/// A deterministic full-information-style algorithm (paper §2).
///
/// The state must determine everything the process knows; the round message
/// is the entire previous state. Decisions are read off states by
/// [`Algorithm::decision`] and must be *irrevocable*: once a state decides
/// `v`, every successor state must decide `v` (checked by
/// [`checker::check`]).
pub trait Algorithm {
    /// Per-process local state.
    type State: Clone + std::fmt::Debug;

    /// The initial state of process `p` with input `x`. Processes do not
    /// know `n` a priori (paper §2), so `n` is deliberately absent.
    fn init(&self, p: Pid, x: Value) -> Self::State;

    /// The state after one round, given the received `(sender, sender's
    /// previous state)` pairs, sorted by sender.
    fn step(&self, p: Pid, state: &Self::State, received: &[(Pid, Self::State)]) -> Self::State;

    /// The decision recorded in the state, if any.
    fn decision(&self, p: Pid, state: &Self::State) -> Option<Value>;
}
