//! Human-readable execution transcripts.
//!
//! Renders an [`crate::engine::Execution`] round by round: the communication
//! graph, each process's state, and decision events — useful for debugging
//! synthesized algorithms and for the example binaries.

use std::fmt::Write as _;

use dyngraph::GraphSeq;
use ptgraph::Value;

use crate::{engine::Execution, Algorithm};

/// Render a transcript of an execution (states via `Debug`, truncated to
/// `state_width` characters per cell).
pub fn transcript<A: Algorithm>(
    alg: &A,
    inputs: &[Value],
    seq: &GraphSeq,
    exec: &Execution<A::State>,
    state_width: usize,
) -> String {
    let n = inputs.len();
    let mut out = String::new();
    let _ = writeln!(out, "inputs: {inputs:?}");
    for t in 0..exec.states.len() {
        if t == 0 {
            let _ = writeln!(out, "t=0 (initial)");
        } else {
            let _ = writeln!(out, "t={t}  graph {}", seq.graph(t));
        }
        for p in 0..n {
            let mut state = format!("{:?}", exec.states[t][p]);
            if state.len() > state_width {
                state.truncate(state_width);
                state.push('…');
            }
            let decided = match (exec.decision_of(p), alg.decision(p, &exec.states[t][p])) {
                (Some((r, v)), _) if r == t => format!("  ← DECIDES {v}"),
                (_, Some(v)) => format!("  [decided {v}]"),
                _ => String::new(),
            };
            let _ = writeln!(out, "  p{p}: {state}{decided}");
        }
    }
    let verdict = match exec.consensus_value() {
        Some(v) => format!("consensus value: {v}"),
        None if !exec.all_decided() => "UNDECIDED processes remain".to_string(),
        None => "DISAGREEMENT".to_string(),
    };
    let _ = writeln!(out, "{verdict}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::FloodMin;
    use crate::engine;

    #[test]
    fn transcript_contains_rounds_and_decision() {
        let alg = FloodMin::new(1);
        let seq = GraphSeq::parse2("<-> ->").unwrap();
        let exec = engine::run(&alg, &[3, 1], &seq);
        let text = transcript(&alg, &[3, 1], &seq, &exec, 60);
        assert!(text.contains("t=0 (initial)"));
        assert!(text.contains("t=1"));
        assert!(text.contains("DECIDES 1"));
        assert!(text.contains("consensus value: 1"));
    }

    #[test]
    fn transcript_reports_disagreement() {
        let alg = FloodMin::new(1);
        let mut seq = GraphSeq::new();
        seq.push(dyngraph::Digraph::empty(2));
        let exec = engine::run(&alg, &[3, 1], &seq);
        let text = transcript(&alg, &[3, 1], &seq, &exec, 60);
        assert!(text.contains("DISAGREEMENT"));
    }

    #[test]
    fn transcript_truncates_states() {
        let alg = crate::algorithms::FullInfo;
        let seq = GraphSeq::parse2("<-> <-> <->").unwrap();
        let exec = engine::run(&alg, &[0, 1], &seq);
        let text = transcript(&alg, &[0, 1], &seq, &exec, 20);
        assert!(text.contains('…'));
        assert!(text.contains("UNDECIDED"));
    }
}
