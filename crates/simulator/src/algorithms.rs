//! Reference algorithms.

use dyngraph::Pid;
use ptgraph::Value;

use crate::Algorithm;

/// Min-flooding with a fixed decision round: carry the minimum input seen,
/// decide it at the end of round `decide_round`.
///
/// Correct exactly when the adversary guarantees that all-to-all influence
/// completes within the decision round (e.g. oblivious adversaries whose
/// every graph is strongly connected with `decide_round ≥ n − 1`); used as
/// the classic baseline the universal algorithm is compared against.
#[derive(Debug, Clone)]
pub struct FloodMin {
    decide_round: usize,
}

impl FloodMin {
    /// Decide at the end of round `decide_round`.
    pub fn new(decide_round: usize) -> Self {
        FloodMin { decide_round }
    }
}

/// State of [`FloodMin`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FloodMinState {
    /// Minimum input value seen so far.
    pub min: Value,
    /// Rounds elapsed.
    pub round: usize,
    /// The decision, once taken.
    pub decided: Option<Value>,
}

impl Algorithm for FloodMin {
    type State = FloodMinState;

    fn init(&self, _p: Pid, x: Value) -> FloodMinState {
        FloodMinState {
            min: x,
            round: 0,
            decided: if self.decide_round == 0 {
                Some(x)
            } else {
                None
            },
        }
    }

    fn step(
        &self,
        _p: Pid,
        state: &FloodMinState,
        received: &[(Pid, FloodMinState)],
    ) -> FloodMinState {
        let min = received.iter().map(|(_, s)| s.min).chain([state.min]).min().expect("nonempty");
        let round = state.round + 1;
        let decided = state.decided.or(if round >= self.decide_round {
            Some(min)
        } else {
            None
        });
        FloodMinState { min, round, decided }
    }

    fn decision(&self, _p: Pid, state: &FloodMinState) -> Option<Value> {
        state.decided
    }
}

/// The one-round algorithm for the reduced lossy link `{←, →}` on `n = 2`
/// (paper §6.1, \[8\]): in every round exactly one direction is delivered, so
/// after round 1 **both** processes know the direction — the receiver got a
/// message, the sender did not. Decide the round-1 sender's input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DirectionRule;

/// State of [`DirectionRule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectionState {
    /// Own input.
    pub x: Value,
    /// The decision after round 1.
    pub decided: Option<Value>,
}

impl Algorithm for DirectionRule {
    type State = DirectionState;

    fn init(&self, _p: Pid, x: Value) -> DirectionState {
        DirectionState { x, decided: None }
    }

    fn step(
        &self,
        _p: Pid,
        state: &DirectionState,
        received: &[(Pid, DirectionState)],
    ) -> DirectionState {
        if state.decided.is_some() {
            return state.clone();
        }
        // Round 1: received ⟹ the round went towards me ⟹ decide the
        // sender's input; otherwise I was the sender ⟹ decide my own.
        let decided = Some(match received.first() {
            Some((_, sender)) => sender.x,
            None => state.x,
        });
        DirectionState { x: state.x, decided }
    }

    fn decision(&self, _p: Pid, state: &DirectionState) -> Option<Value> {
        state.decided
    }
}

/// Adaptive min-flooding: carry the set of known `(process, input)` pairs;
/// decide the minimum once `quiet_rounds` consecutive rounds brought no new
/// information.
///
/// A natural "wait until knowledge stabilizes" heuristic — and a useful
/// *negative* baseline: under the lossy link it is fooled exactly by the
/// runs where the silence is the adversary's doing (tested), illustrating
/// why stability of local knowledge is not common knowledge.
#[derive(Debug, Clone)]
pub struct AdaptiveFlood {
    quiet_rounds: usize,
}

impl AdaptiveFlood {
    /// Decide after `quiet_rounds` rounds without new information.
    ///
    /// # Panics
    /// Panics if `quiet_rounds == 0`.
    pub fn new(quiet_rounds: usize) -> Self {
        assert!(quiet_rounds >= 1, "need at least one quiet round");
        AdaptiveFlood { quiet_rounds }
    }
}

/// State of [`AdaptiveFlood`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveFloodState {
    /// Known `(process, input)` pairs, sorted by process.
    pub known: Vec<(Pid, Value)>,
    /// Consecutive rounds without new information.
    pub quiet: usize,
    /// The decision once taken.
    pub decided: Option<Value>,
}

impl Algorithm for AdaptiveFlood {
    type State = AdaptiveFloodState;

    fn init(&self, p: Pid, x: Value) -> AdaptiveFloodState {
        AdaptiveFloodState { known: vec![(p, x)], quiet: 0, decided: None }
    }

    fn step(
        &self,
        _p: Pid,
        state: &AdaptiveFloodState,
        received: &[(Pid, AdaptiveFloodState)],
    ) -> AdaptiveFloodState {
        if state.decided.is_some() {
            return state.clone();
        }
        let mut known = state.known.clone();
        for (_, s) in received {
            known.extend(s.known.iter().copied());
        }
        known.sort_unstable_by_key(|&(q, _)| q);
        known.dedup_by_key(|&mut (q, _)| q);
        let quiet = if known.len() == state.known.len() {
            state.quiet + 1
        } else {
            0
        };
        let decided = (quiet >= self.quiet_rounds)
            .then(|| known.iter().map(|&(_, v)| v).min().expect("knows own input"));
        AdaptiveFloodState { known, quiet, decided }
    }

    fn decision(&self, _p: Pid, state: &AdaptiveFloodState) -> Option<Value> {
        state.decided
    }
}

/// A full-information state machine: the state is the complete causal past,
/// built as an explicit tree. No decision is ever taken (decision rules are
/// layered on top, e.g. by the universal algorithm in `consensus-core`).
///
/// This is the transition function `τ` of the paper's §4 made executable;
/// its continuity (Lemma 4.5) is checked in the integration tests by
/// comparing state equality against interned-view equality.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullInfo;

/// State of [`FullInfo`]: an explicit causal-past tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FullInfoState {
    /// Initial: own id and input.
    Initial {
        /// Process id.
        p: Pid,
        /// Input value.
        x: Value,
    },
    /// After a round: previous state plus received states, sorted by sender.
    Node {
        /// Process id.
        p: Pid,
        /// Own previous state.
        prev: Box<FullInfoState>,
        /// Received `(sender, state)` pairs, sorted by sender.
        received: Vec<(Pid, FullInfoState)>,
    },
}

impl Algorithm for FullInfo {
    type State = FullInfoState;

    fn init(&self, p: Pid, x: Value) -> FullInfoState {
        FullInfoState::Initial { p, x }
    }

    fn step(
        &self,
        p: Pid,
        state: &FullInfoState,
        received: &[(Pid, FullInfoState)],
    ) -> FullInfoState {
        let mut received = received.to_vec();
        received.sort_by_key(|&(q, _)| q);
        FullInfoState::Node { p, prev: Box::new(state.clone()), received }
    }

    fn decision(&self, _p: Pid, _state: &FullInfoState) -> Option<Value> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use dyngraph::GraphSeq;

    #[test]
    fn floodmin_decide_round_zero() {
        let alg = FloodMin::new(0);
        let exec = run(&alg, &[3, 1], &GraphSeq::parse2("<->").unwrap());
        // Decides immediately on own input.
        assert_eq!(exec.decision_of(0), Some((0, 3)));
        assert_eq!(exec.decision_of(1), Some((0, 1)));
    }

    #[test]
    fn floodmin_propagates_minimum() {
        let alg = FloodMin::new(2);
        let g = dyngraph::generators::cycle(3);
        let seq = dyngraph::GraphSeq::from_graphs(vec![g.clone(), g]);
        let exec = run(&alg, &[5, 1, 9], &seq);
        assert_eq!(exec.consensus_value(), Some(1));
    }

    #[test]
    fn direction_rule_all_inputs_all_directions() {
        for (word, expect_idx) in [("->", 0usize), ("<-", 1usize)] {
            for x0 in 0..2u32 {
                for x1 in 0..2u32 {
                    let exec = run(&DirectionRule, &[x0, x1], &GraphSeq::parse2(word).unwrap());
                    let expect = [x0, x1][expect_idx];
                    assert_eq!(exec.consensus_value(), Some(expect), "{word} {x0}{x1}");
                }
            }
        }
    }

    #[test]
    fn adaptive_flood_converges_on_complete_graph() {
        let alg = AdaptiveFlood::new(1);
        let g = dyngraph::Digraph::complete(3);
        let seq = dyngraph::GraphSeq::from_graphs(vec![g.clone(), g.clone(), g]);
        let exec = run(&alg, &[5, 2, 9], &seq);
        assert_eq!(exec.consensus_value(), Some(2));
        // Quiet after round 2 (round 1 brings everything, round 2 nothing).
        assert!(exec.decision_of(0).unwrap().0 <= 2);
    }

    #[test]
    fn adaptive_flood_fooled_by_lossy_link() {
        // Under →^k, p0 never learns x1 and grows "quiet" immediately,
        // deciding its own input while p1 knows both — the adversary makes
        // local stability a lie.
        let alg = AdaptiveFlood::new(1);
        let exec = run(&alg, &[4, 1], &GraphSeq::parse2("-> -> ->").unwrap());
        assert_eq!(exec.value_of(0), Some(4));
        assert_eq!(exec.value_of(1), Some(1));
        assert!(!exec.agreement_holds());
    }

    #[test]
    fn adaptive_flood_waits_while_information_flows() {
        let alg = AdaptiveFlood::new(2);
        let g = dyngraph::generators::cycle(4);
        let seq =
            dyngraph::GraphSeq::from_graphs(vec![g.clone(), g.clone(), g.clone(), g.clone(), g]);
        let exec = run(&alg, &[3, 1, 4, 1], &seq);
        // Information keeps arriving for 3 rounds, then 2 quiet rounds.
        assert!(exec.all_decided());
        assert_eq!(exec.consensus_value(), Some(1));
        assert_eq!(exec.decision_of(0).unwrap().0, 5);
    }

    #[test]
    fn full_info_states_mirror_views() {
        // Two runs indistinguishable to p0 yield equal full-info states.
        let seq = GraphSeq::parse2("-> ->").unwrap();
        let a = run(&FullInfo, &[0, 0], &seq);
        let b = run(&FullInfo, &[0, 1], &seq);
        assert_eq!(a.states[2][0], b.states[2][0], "p0 cannot distinguish");
        assert_ne!(a.states[2][1], b.states[2][1], "p1 received differing input");
    }

    #[test]
    fn full_info_never_decides() {
        let exec = run(&FullInfo, &[0, 1], &GraphSeq::parse2("<-> <->").unwrap());
        assert!(!exec.all_decided());
    }
}
