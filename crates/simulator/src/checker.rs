//! Exhaustive consensus verification over an adversary's prefix space.
//!
//! [`check`] runs an algorithm on **every** admissible run of a message
//! adversary at a fixed depth (per a typed [`CheckConfig`]) and checks the
//! consensus properties of the paper's Definition 5.1:
//!
//! * **Termination** (within the horizon — for compact adversaries where the
//!   universal algorithm decides by a fixed round this is exact; for
//!   non-compact ones undecided runs are reported, not failed, unless
//!   [`CheckConfig::require_termination`] is set);
//! * **Agreement** — all decided processes agree;
//! * **Validity** — if all inputs are `v`, the only decision is `v`;
//! * **Irrevocability** — decisions never change.

use std::fmt;

use adversary::{enumerate, MessageAdversary};
use dyngraph::GraphSeq;
use ptgraph::{all_inputs, Value};

use crate::{engine, Algorithm};

/// A consensus property violation, with the offending run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two processes decided differently.
    Agreement {
        /// The inputs of the offending run.
        inputs: Vec<Value>,
        /// The graph sequence of the offending run.
        seq: GraphSeq,
        /// The distinct decided values observed.
        values: Vec<Value>,
    },
    /// All processes started with `expected` but some process decided
    /// `decided`.
    Validity {
        /// The common input value.
        expected: Value,
        /// The offending decision.
        decided: Value,
        /// The graph sequence of the offending run.
        seq: GraphSeq,
    },
    /// A process changed or withdrew its decision.
    Irrevocability {
        /// The inputs of the offending run.
        inputs: Vec<Value>,
        /// The graph sequence of the offending run.
        seq: GraphSeq,
    },
    /// Strong validity: a process decided a value that is nobody's input
    /// (only reported when strong-validity checking is requested).
    StrongValidity {
        /// The inputs of the offending run.
        inputs: Vec<Value>,
        /// The offending decision.
        decided: Value,
        /// The graph sequence of the offending run.
        seq: GraphSeq,
    },
    /// A process had not decided by the horizon and termination was
    /// required.
    Termination {
        /// The inputs of the offending run.
        inputs: Vec<Value>,
        /// The graph sequence of the offending run.
        seq: GraphSeq,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Agreement { inputs, seq, values } => {
                write!(f, "agreement violated: x={inputs:?} under {seq} decided {values:?}")
            }
            Violation::Validity { expected, decided, seq } => write!(
                f,
                "validity violated: all inputs {expected} but decided {decided} under {seq}"
            ),
            Violation::Irrevocability { inputs, seq } => {
                write!(f, "irrevocable decision violated: x={inputs:?} under {seq}")
            }
            Violation::StrongValidity { inputs, decided, seq } => write!(
                f,
                "strong validity violated: decided {decided} ∉ inputs {inputs:?} under {seq}"
            ),
            Violation::Termination { inputs, seq } => {
                write!(f, "termination violated: x={inputs:?} under {seq}")
            }
        }
    }
}

/// Typed configuration of an exhaustive consensus check — the replacement
/// for the positional `(depth, max_runs, require_termination,
/// strong_validity)` tail of the legacy `check_consensus*` family.
///
/// ```
/// use simulator::checker::CheckConfig;
///
/// let cfg = CheckConfig::at_depth(3).strong_validity(true);
/// assert_eq!(cfg.depth, 3);
/// assert!(cfg.require_termination && cfg.strong_validity);
/// assert_eq!(cfg.max_runs, 2_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// The horizon: every admissible depth-`depth` run is executed.
    pub depth: usize,
    /// Budget on `inputs × sequences`.
    pub max_runs: usize,
    /// Fail runs in which some process has not decided by the horizon
    /// (exact for compact adversaries; report-only otherwise).
    pub require_termination: bool,
    /// Additionally require *strong validity*: every decided value is some
    /// process's input in the run.
    pub strong_validity: bool,
}

impl CheckConfig {
    /// A check at `depth` with the default 2·10⁶-run budget, required
    /// termination, and weak validity.
    pub fn at_depth(depth: usize) -> Self {
        CheckConfig {
            depth,
            max_runs: 2_000_000,
            require_termination: true,
            strong_validity: false,
        }
    }

    /// Set the run budget.
    pub fn max_runs(mut self, max_runs: usize) -> Self {
        self.max_runs = max_runs;
        self
    }

    /// Require (or stop requiring) termination within the horizon.
    pub fn require_termination(mut self, enable: bool) -> Self {
        self.require_termination = enable;
        self
    }

    /// Additionally check strong validity.
    pub fn strong_validity(mut self, enable: bool) -> Self {
        self.strong_validity = enable;
        self
    }
}

/// Summary of an exhaustive check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// Total `(inputs, sequence)` pairs executed.
    pub runs_checked: usize,
    /// Runs in which some process had not decided by the horizon.
    pub undecided_runs: usize,
    /// Latest decision round observed across all runs and processes.
    pub max_decision_round: usize,
    /// All violations found (empty = the algorithm passed).
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// Whether no violation was found.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Exhaustively check `alg` against every admissible run of `ma` over the
/// input domain `values`, per `cfg` (depth, budget, validity flavor) —
/// the typed entry point of the checker.
///
/// ```
/// use simulator::algorithms::FloodMin;
/// use simulator::checker::{check, CheckConfig};
/// use adversary::GeneralMA;
/// use dyngraph::Digraph;
///
/// // Full exchange every round: flooding decides min correctly.
/// let ma = GeneralMA::oblivious(vec![Digraph::parse2("<->").unwrap()]);
/// let report = check(&FloodMin::new(1), &ma, &[0, 1], &CheckConfig::at_depth(1)).unwrap();
/// assert!(report.passed());
/// ```
///
/// # Errors
/// Returns [`enumerate::BudgetExceeded`] if the prefix space exceeds
/// `cfg.max_runs`.
pub fn check<A: Algorithm>(
    alg: &A,
    ma: &dyn MessageAdversary,
    values: &[Value],
    cfg: &CheckConfig,
) -> Result<CheckReport, enumerate::BudgetExceeded> {
    let seqs = {
        // Reuse the enumeration (budget applies to inputs × sequences).
        let inputs_count = values.len().pow(ma.n() as u32);
        let seqs = enumerate::admissible_sequences(ma, cfg.depth);
        if seqs.len() * inputs_count > cfg.max_runs {
            return Err(enumerate::BudgetExceeded {
                max_runs: cfg.max_runs,
                needed: seqs.len() * inputs_count,
            });
        }
        seqs
    };
    let inputs = all_inputs(ma.n(), values);
    let mut report = CheckReport {
        runs_checked: 0,
        undecided_runs: 0,
        max_decision_round: 0,
        violations: Vec::new(),
    };
    for x in &inputs {
        for seq in &seqs {
            check_one_run(alg, x, seq, cfg.require_termination, cfg.strong_validity, &mut report);
        }
    }
    Ok(report)
}

/// Legacy positional form of [`check`].
///
/// # Errors
/// Returns [`enumerate::BudgetExceeded`] if the prefix space exceeds
/// `max_runs`.
#[deprecated(since = "0.1.0", note = "use `checker::check` with a `CheckConfig`")]
pub fn check_consensus<A: Algorithm>(
    alg: &A,
    ma: &dyn MessageAdversary,
    values: &[Value],
    depth: usize,
    max_runs: usize,
    require_termination: bool,
) -> Result<CheckReport, enumerate::BudgetExceeded> {
    check(
        alg,
        ma,
        values,
        &CheckConfig::at_depth(depth)
            .max_runs(max_runs)
            .require_termination(require_termination),
    )
}

/// Legacy positional form of [`check`] with a strong-validity flag.
///
/// # Errors
/// Returns [`enumerate::BudgetExceeded`] if the prefix space exceeds
/// `max_runs`.
#[allow(clippy::too_many_arguments)]
#[deprecated(since = "0.1.0", note = "use `checker::check` with a `CheckConfig`")]
pub fn check_consensus_with<A: Algorithm>(
    alg: &A,
    ma: &dyn MessageAdversary,
    values: &[Value],
    depth: usize,
    max_runs: usize,
    require_termination: bool,
    strong_validity: bool,
) -> Result<CheckReport, enumerate::BudgetExceeded> {
    check(alg, ma, values, &CheckConfig { depth, max_runs, require_termination, strong_validity })
}

/// Parallel variant of [`check`]: the `(inputs, sequence)` grid is split
/// across `threads` scoped workers. Requires the algorithm to be [`Sync`]
/// (the synthesized universal algorithm is: its interner sits behind a
/// lock). The report is deterministic up to violation order (violations
/// are sorted for stability).
///
/// # Errors
/// Returns [`enumerate::BudgetExceeded`] as for [`check`].
pub fn check_parallel<A>(
    alg: &A,
    ma: &(dyn MessageAdversary + Sync),
    values: &[Value],
    cfg: &CheckConfig,
    threads: usize,
) -> Result<CheckReport, enumerate::BudgetExceeded>
where
    A: Algorithm + Sync,
{
    assert!(threads >= 1, "need at least one worker");
    let (require_termination, strong_validity) = (cfg.require_termination, cfg.strong_validity);
    let seqs = {
        let inputs_count = values.len().pow(ma.n() as u32);
        let seqs = enumerate::admissible_sequences(ma, cfg.depth);
        if seqs.len() * inputs_count > cfg.max_runs {
            return Err(enumerate::BudgetExceeded {
                max_runs: cfg.max_runs,
                needed: seqs.len() * inputs_count,
            });
        }
        seqs
    };
    let inputs = all_inputs(ma.n(), values);
    let grid: Vec<(&Vec<Value>, &GraphSeq)> =
        inputs.iter().flat_map(|x| seqs.iter().map(move |s| (x, s))).collect();

    let chunk = grid.len().div_ceil(threads).max(1);
    let partials: Vec<CheckReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = grid
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    let mut report = CheckReport {
                        runs_checked: 0,
                        undecided_runs: 0,
                        max_decision_round: 0,
                        violations: Vec::new(),
                    };
                    for &(x, seq) in part {
                        check_one_run(
                            alg,
                            x,
                            seq,
                            require_termination,
                            strong_validity,
                            &mut report,
                        );
                    }
                    report
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    let mut report = CheckReport {
        runs_checked: 0,
        undecided_runs: 0,
        max_decision_round: 0,
        violations: Vec::new(),
    };
    for p in partials {
        report.runs_checked += p.runs_checked;
        report.undecided_runs += p.undecided_runs;
        report.max_decision_round = report.max_decision_round.max(p.max_decision_round);
        report.violations.extend(p.violations);
    }
    report.violations.sort_by_key(|v| format!("{v}"));
    Ok(report)
}

/// Legacy positional form of [`check_parallel`].
///
/// # Errors
/// Returns [`enumerate::BudgetExceeded`] as for [`check`].
#[allow(clippy::too_many_arguments)]
#[deprecated(
    since = "0.1.0",
    note = "use `checker::check_parallel` with a `CheckConfig`"
)]
pub fn check_consensus_parallel<A>(
    alg: &A,
    ma: &(dyn MessageAdversary + Sync),
    values: &[Value],
    depth: usize,
    max_runs: usize,
    require_termination: bool,
    strong_validity: bool,
    threads: usize,
) -> Result<CheckReport, enumerate::BudgetExceeded>
where
    A: Algorithm + Sync,
{
    check_parallel(
        alg,
        ma,
        values,
        &CheckConfig { depth, max_runs, require_termination, strong_validity },
        threads,
    )
}

/// Check one `(inputs, sequence)` cell; shared by the sequential and
/// parallel checkers.
fn check_one_run<A: Algorithm>(
    alg: &A,
    x: &[Value],
    seq: &GraphSeq,
    require_termination: bool,
    strong_validity: bool,
    report: &mut CheckReport,
) {
    let valent = x.iter().all(|&v| v == x[0]).then_some(x[0]);
    report.runs_checked += 1;
    let exec = engine::run(alg, x, seq);
    if exec.any_revoked() {
        report
            .violations
            .push(Violation::Irrevocability { inputs: x.to_vec(), seq: seq.clone() });
    }
    if !exec.agreement_holds() {
        let mut vals: Vec<Value> = (0..exec.n()).filter_map(|p| exec.value_of(p)).collect();
        vals.sort_unstable();
        vals.dedup();
        report.violations.push(Violation::Agreement {
            inputs: x.to_vec(),
            seq: seq.clone(),
            values: vals,
        });
    }
    if let Some(v) = valent {
        for p in 0..exec.n() {
            if exec.value_of(p).is_some_and(|d| d != v) {
                report.violations.push(Violation::Validity {
                    expected: v,
                    decided: exec.value_of(p).expect("checked"),
                    seq: seq.clone(),
                });
                break;
            }
        }
    }
    if strong_validity {
        for p in 0..exec.n() {
            if let Some(d) = exec.value_of(p) {
                if !x.contains(&d) {
                    report.violations.push(Violation::StrongValidity {
                        inputs: x.to_vec(),
                        decided: d,
                        seq: seq.clone(),
                    });
                    break;
                }
            }
        }
    }
    if exec.all_decided() {
        for p in 0..exec.n() {
            if let Some((r, _)) = exec.decision_of(p) {
                report.max_decision_round = report.max_decision_round.max(r);
            }
        }
    } else {
        report.undecided_runs += 1;
        if require_termination {
            report
                .violations
                .push(Violation::Termination { inputs: x.to_vec(), seq: seq.clone() });
        }
    }
}

/// Randomized deep-run checking: sample `samples` admissible runs of length
/// `depth` (uniform over extensions at each round, inputs uniform over
/// `values`) and check agreement, validity, and irrevocability. Termination
/// is required when `require_termination` is set.
///
/// Complements [`check`]: exhaustive checking is exact but bounded
/// by the exponential prefix space; sampling probes much deeper horizons.
pub fn check_consensus_sampled<A: Algorithm, R: rand::Rng + ?Sized>(
    alg: &A,
    ma: &dyn MessageAdversary,
    values: &[Value],
    depth: usize,
    samples: usize,
    require_termination: bool,
    rng: &mut R,
) -> CheckReport {
    let mut report = CheckReport {
        runs_checked: 0,
        undecided_runs: 0,
        max_decision_round: 0,
        violations: Vec::new(),
    };
    for _ in 0..samples {
        let seq = match adversary::sample::random_prefix(ma, rng, depth) {
            Some(seq) => seq,
            None => continue,
        };
        let x = adversary::sample::random_inputs(rng, ma.n(), values);
        let valent = x.iter().all(|&v| v == x[0]).then_some(x[0]);
        report.runs_checked += 1;
        let exec = engine::run(alg, &x, &seq);
        if exec.any_revoked() {
            report
                .violations
                .push(Violation::Irrevocability { inputs: x.clone(), seq: seq.clone() });
        }
        if !exec.agreement_holds() {
            let mut vals: Vec<Value> = (0..exec.n()).filter_map(|p| exec.value_of(p)).collect();
            vals.sort_unstable();
            vals.dedup();
            report.violations.push(Violation::Agreement {
                inputs: x.clone(),
                seq: seq.clone(),
                values: vals,
            });
        }
        if let Some(v) = valent {
            for p in 0..exec.n() {
                if exec.value_of(p).is_some_and(|d| d != v) {
                    report.violations.push(Violation::Validity {
                        expected: v,
                        decided: exec.value_of(p).expect("checked above"),
                        seq: seq.clone(),
                    });
                    break;
                }
            }
        }
        if exec.all_decided() {
            for p in 0..exec.n() {
                if let Some((r, _)) = exec.decision_of(p) {
                    report.max_decision_round = report.max_decision_round.max(r);
                }
            }
        } else {
            report.undecided_runs += 1;
            if require_termination {
                report.violations.push(Violation::Termination { inputs: x, seq });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{DirectionRule, FloodMin};
    use adversary::GeneralMA;
    use dyngraph::generators;
    use rand::SeedableRng;

    #[test]
    fn direction_rule_passes_reduced_lossy_link() {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let cfg = CheckConfig::at_depth(3).max_runs(100_000);
        let report = check(&DirectionRule, &ma, &[0, 1], &cfg).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.undecided_runs, 0);
        assert_eq!(report.max_decision_round, 1);
        assert_eq!(report.runs_checked, 4 * 8);
    }

    #[test]
    fn direction_rule_fails_full_lossy_link() {
        // With ↔ in the pool the direction inference is wrong: both
        // processes receive and decide the other's input.
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let report =
            check(&DirectionRule, &ma, &[0, 1], &CheckConfig::at_depth(2).max_runs(100_000))
                .unwrap();
        assert!(!report.passed());
        assert!(report.violations.iter().any(|v| matches!(v, Violation::Agreement { .. })));
    }

    #[test]
    fn floodmin_fails_lossy_link() {
        // Santoro–Widmayer: no fixed-round flooding works under {←, ↔, →}.
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        for round in 1..4 {
            let cfg = CheckConfig::at_depth(round).max_runs(100_000);
            let report = check(&FloodMin::new(round), &ma, &[0, 1], &cfg).unwrap();
            assert!(!report.passed(), "FloodMin({round}) should fail");
        }
    }

    #[test]
    fn floodmin_passes_all_to_all() {
        let ma = GeneralMA::oblivious(vec![dyngraph::Digraph::complete(3)]);
        let report =
            check(&FloodMin::new(1), &ma, &[0, 1], &CheckConfig::at_depth(2).max_runs(100_000))
                .unwrap();
        assert!(report.passed());
    }

    #[test]
    fn budget_respected() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let err = check(&DirectionRule, &ma, &[0, 1], &CheckConfig::at_depth(10).max_runs(10))
            .unwrap_err();
        assert!(err.needed > 10);
    }

    #[test]
    fn parallel_checker_matches_sequential() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        for alg_round in [1usize, 2] {
            let alg = FloodMin::new(alg_round);
            let cfg = CheckConfig::at_depth(3).max_runs(100_000);
            let seq_report = check(&alg, &ma, &[0, 1], &cfg).unwrap();
            let par_report = check_parallel(&alg, &ma, &[0, 1], &cfg, 4).unwrap();
            assert_eq!(seq_report.runs_checked, par_report.runs_checked);
            assert_eq!(seq_report.undecided_runs, par_report.undecided_runs);
            assert_eq!(seq_report.max_decision_round, par_report.max_decision_round);
            assert_eq!(seq_report.passed(), par_report.passed());
            assert_eq!(seq_report.violations.len(), par_report.violations.len());
        }
    }

    #[test]
    fn parallel_checker_single_thread() {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let cfg = CheckConfig::at_depth(3).max_runs(100_000);
        let report = check_parallel(&DirectionRule, &ma, &[0, 1], &cfg, 1).unwrap();
        assert!(report.passed());
        assert_eq!(report.runs_checked, 4 * 8);
    }

    #[test]
    fn sampled_checker_passes_direction_rule() {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let report = check_consensus_sampled(&DirectionRule, &ma, &[0, 1], 20, 200, true, &mut rng);
        assert_eq!(report.runs_checked, 200);
        assert!(report.passed(), "violations: {:?}", report.violations);
    }

    #[test]
    fn sampled_checker_catches_floodmin() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let report =
            check_consensus_sampled(&FloodMin::new(2), &ma, &[0, 1], 6, 300, true, &mut rng);
        assert!(!report.passed(), "FloodMin should be caught by sampling");
    }

    #[test]
    fn violation_display() {
        let v = Violation::Agreement {
            inputs: vec![0, 1],
            seq: GraphSeq::parse2("->").unwrap(),
            values: vec![0, 1],
        };
        assert!(v.to_string().contains("agreement"));
    }
}
