//! Finite unions of message adversaries.

use dyngraph::{Digraph, GraphSeq, Lasso};

use crate::{DynMA, MessageAdversary};

/// The union of finitely many adversaries: a sequence is admissible iff it
/// is admissible under **some** member.
///
/// Unions model adversaries like "eventually forever `→` **or** eventually
/// forever `←`" from two stabilizing members. A union of compact adversaries
/// is compact (a finite union of closed sets is closed); a union with a
/// non-compact member is conservatively reported non-compact.
///
/// ```
/// use adversary::{GeneralMA, UnionMA, MessageAdversary};
/// use dyngraph::{Digraph, GraphSeq};
/// let right = GeneralMA::oblivious(vec![Digraph::parse2("->").unwrap()]);
/// let left = GeneralMA::oblivious(vec![Digraph::parse2("<-").unwrap()]);
/// let ma = UnionMA::new(vec![Box::new(right), Box::new(left)]);
/// // → → is admissible (first member), ← ← too, but not → ←.
/// assert!(ma.admits_prefix(&GraphSeq::parse2("-> ->").unwrap()));
/// assert!(ma.admits_prefix(&GraphSeq::parse2("<- <-").unwrap()));
/// assert!(!ma.admits_prefix(&GraphSeq::parse2("-> <-").unwrap()));
/// ```
pub struct UnionMA {
    members: Vec<DynMA>,
}

impl UnionMA {
    /// Build the union.
    ///
    /// # Panics
    /// Panics if `members` is empty or its members disagree on `n`.
    pub fn new(members: Vec<DynMA>) -> Self {
        assert!(!members.is_empty(), "union needs at least one member");
        let n = members[0].n();
        assert!(members.iter().all(|m| m.n() == n), "members must agree on n");
        UnionMA { members }
    }

    /// The member adversaries.
    pub fn members(&self) -> &[DynMA] {
        &self.members
    }
}

impl MessageAdversary for UnionMA {
    fn n(&self) -> usize {
        self.members[0].n()
    }

    fn extensions(&self, prefix: &GraphSeq) -> Vec<Digraph> {
        let mut out: Vec<Digraph> =
            self.members.iter().flat_map(|m| m.extensions(prefix)).collect();
        out.sort();
        out.dedup();
        out
    }

    fn admits_prefix(&self, prefix: &GraphSeq) -> bool {
        self.members.iter().any(|m| m.admits_prefix(prefix))
    }

    fn admits_lasso(&self, lasso: &Lasso) -> Option<bool> {
        let mut unknown = false;
        for m in &self.members {
            match m.admits_lasso(lasso) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => unknown = true,
            }
        }
        if unknown {
            None
        } else {
            Some(false)
        }
    }

    fn is_compact(&self) -> bool {
        self.members.iter().all(|m| m.is_compact())
    }

    fn describe(&self) -> String {
        let parts: Vec<String> = self.members.iter().map(|m| m.describe()).collect();
        format!("union({})", parts.join(" ∪ "))
    }

    fn pool_hint(&self) -> Option<Vec<Digraph>> {
        let mut pool = Vec::new();
        for m in &self.members {
            pool.extend(m.pool_hint()?);
        }
        pool.sort();
        pool.dedup();
        Some(pool)
    }

    fn fingerprint(&self) -> u64 {
        // Union is order-insensitive: sort the member fingerprints.
        let mut fps: Vec<u64> = self.members.iter().map(|m| m.fingerprint()).collect();
        fps.sort_unstable();
        crate::fingerprint::combine("union", fps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeneralMA;
    use dyngraph::Digraph;

    fn eventually_forever_directional() -> UnionMA {
        // "eventually forever →" ∪ "eventually forever ←", approximated by
        // stabilizing members with window achieved over singleton pools is
        // not expressible; instead use two oblivious members with singleton
        // pools prefixed by the shared pool — here simply two constant-pool
        // members, the canonical prefix-disjoint union.
        let right = GeneralMA::oblivious(vec![Digraph::parse2("->").unwrap()]);
        let left = GeneralMA::oblivious(vec![Digraph::parse2("<-").unwrap()]);
        UnionMA::new(vec![Box::new(right), Box::new(left)])
    }

    #[test]
    fn union_extensions_merge() {
        let ma = eventually_forever_directional();
        let e = ma.extensions(&GraphSeq::new());
        assert_eq!(e.len(), 2);
        // After → only → continues.
        let e = ma.extensions(&GraphSeq::parse2("->").unwrap());
        assert_eq!(e, vec![Digraph::parse2("->").unwrap()]);
    }

    #[test]
    fn union_lasso() {
        let ma = eventually_forever_directional();
        assert_eq!(ma.admits_lasso(&Lasso::parse2("->").unwrap()), Some(true));
        assert_eq!(ma.admits_lasso(&Lasso::parse2("-> | <-").unwrap()), Some(false));
    }

    #[test]
    fn union_compactness() {
        assert!(eventually_forever_directional().is_compact());
        let nc = GeneralMA::eventually_graph(
            dyngraph::generators::lossy_link_full(),
            Digraph::parse2("<->").unwrap(),
            None,
        );
        let u = UnionMA::new(vec![
            Box::new(nc),
            Box::new(GeneralMA::oblivious(vec![Digraph::parse2("->").unwrap()])),
        ]);
        assert!(!u.is_compact());
    }

    #[test]
    fn union_describe() {
        assert!(eventually_forever_directional().describe().contains("∪"));
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_union_rejected() {
        let _ = UnionMA::new(vec![]);
    }
}
