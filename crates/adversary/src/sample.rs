//! Randomized sampling of admissible prefixes and lassos.

use dyngraph::{GraphSeq, Lasso};
use rand::seq::IndexedRandom;
use rand::Rng;

use crate::MessageAdversary;

/// A uniformly-branching random admissible prefix of length `depth`
/// (each round chosen uniformly among the admissible extensions).
///
/// Returns `None` if the adversary dead-ends (no admissible extension) —
/// impossible for well-formed adversaries whose prefixes always extend.
pub fn random_prefix<R: Rng + ?Sized>(
    ma: &dyn MessageAdversary,
    rng: &mut R,
    depth: usize,
) -> Option<GraphSeq> {
    let mut seq = GraphSeq::new();
    for _ in 0..depth {
        let ext = ma.extensions(&seq);
        let g = ext.choose(rng)?;
        seq.push(g.clone());
    }
    Some(seq)
}

/// A random admissible lasso with the given prefix and cycle lengths,
/// obtained by rejection sampling over pool extensions.
///
/// Returns `None` after `attempts` failed rejections or if the adversary
/// cannot decide lasso membership.
pub fn random_lasso<R: Rng + ?Sized>(
    ma: &dyn MessageAdversary,
    rng: &mut R,
    prefix_len: usize,
    cycle_len: usize,
    attempts: usize,
) -> Option<Lasso> {
    assert!(cycle_len >= 1, "cycle must be nonempty");
    for _ in 0..attempts {
        let whole = random_prefix(ma, rng, prefix_len + cycle_len)?;
        let prefix = whole.prefix(prefix_len);
        let cycle: GraphSeq = (prefix_len + 1..=prefix_len + cycle_len)
            .map(|t| whole.graph(t).clone())
            .collect();
        let lasso = Lasso::new(prefix, cycle);
        if ma.admits_lasso(&lasso) == Some(true) {
            return Some(lasso);
        }
    }
    None
}

/// Random input assignment over `values`.
pub fn random_inputs<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    values: &[ptgraph::Value],
) -> Vec<ptgraph::Value> {
    (0..n).map(|_| *values.choose(rng).expect("nonempty domain")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeneralMA, MessageAdversary};
    use dyngraph::{generators, Digraph};
    use rand::SeedableRng;

    #[test]
    fn random_prefix_is_admissible() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let p = random_prefix(&ma, &mut rng, 6).unwrap();
            assert_eq!(p.rounds(), 6);
            assert!(ma.admits_prefix(&p));
        }
    }

    #[test]
    fn random_prefix_respects_liveness_deadline() {
        let ma = GeneralMA::eventually_graph(
            generators::lossy_link_full(),
            Digraph::parse2("<->").unwrap(),
            Some(4),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let p = random_prefix(&ma, &mut rng, 6).unwrap();
            assert!(p.iter().take(4).any(|g| g.arrow2() == Some("<->")));
        }
    }

    #[test]
    fn random_prefix_is_seed_deterministic() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let draw = |seed: u64| -> Vec<GraphSeq> {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            (0..10).map(|_| random_prefix(&ma, &mut rng, 5).unwrap()).collect()
        };
        assert_eq!(draw(7), draw(7), "same seed must replay the same prefixes");
        assert_ne!(draw(7), draw(8), "distinct seeds must explore distinct prefixes");
    }

    #[test]
    fn every_sampled_round_is_an_admissible_extension() {
        // Stronger than `admits_prefix` on the final sequence: replay the
        // prefix round by round and require each sampled graph to be among
        // the adversary's admissible extensions of what preceded it — the
        // invariant `random_prefix` is built on.
        let adversaries: Vec<(crate::DynMA, u64)> = vec![
            (Box::new(GeneralMA::oblivious(generators::lossy_link_full())), 11),
            (
                Box::new(GeneralMA::eventually_graph(
                    generators::lossy_link_full(),
                    Digraph::parse2("<->").unwrap(),
                    Some(3),
                )),
                12,
            ),
            (Box::new(GeneralMA::stabilizing(generators::lossy_link_full(), 2, None)), 13),
        ];
        for (ma, seed) in &adversaries {
            let mut rng = rand::rngs::StdRng::seed_from_u64(*seed);
            for _ in 0..10 {
                let sampled = random_prefix(ma.as_ref(), &mut rng, 6).unwrap();
                let mut replay = GraphSeq::new();
                for t in 1..=sampled.rounds() {
                    let graph = sampled.graph(t);
                    let extensions = ma.extensions(&replay);
                    assert!(
                        extensions.contains(graph),
                        "{}: round {t} of {sampled:?} is not an admissible extension",
                        ma.describe()
                    );
                    replay.push(graph.clone());
                }
            }
        }
    }

    #[test]
    fn random_lasso_is_seed_deterministic() {
        let ma = GeneralMA::stabilizing(generators::lossy_link_full(), 2, None);
        let draw = |seed: u64| -> Vec<Option<Lasso>> {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            (0..5).map(|_| random_lasso(&ma, &mut rng, 2, 2, 50)).collect()
        };
        assert_eq!(draw(21), draw(21), "same seed must replay the same lassos");
    }

    #[test]
    fn random_lasso_admissible() {
        let ma = GeneralMA::stabilizing(generators::lossy_link_full(), 2, None);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut found = 0;
        for _ in 0..10 {
            if let Some(l) = random_lasso(&ma, &mut rng, 2, 2, 50) {
                assert_eq!(ma.admits_lasso(&l), Some(true));
                found += 1;
            }
        }
        assert!(found > 0, "should find admissible lassos");
    }

    #[test]
    fn random_inputs_in_domain() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let xs = random_inputs(&mut rng, 5, &[3, 9]);
        assert_eq!(xs.len(), 5);
        assert!(xs.iter().all(|v| [3, 9].contains(v)));
    }
}
