//! The [`GeneralMA`] family: graph pool + liveness + optional deadline.

use dyngraph::{scc, Digraph, GraphSeq, Lasso, PidMask, Round};
use serde::{Deserialize, Serialize};

use crate::MessageAdversary;

/// A liveness condition on infinite graph sequences.
///
/// `Liveness::None` means the adversary is the full product `pool^ω`
/// (oblivious). The other variants constrain which infinite sequences are
/// admissible; combined with a deadline in [`GeneralMA`] they stay compact,
/// without one they yield the paper's non-compact adversaries (§6.3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Liveness {
    /// No condition: every sequence over the pool is admissible.
    None,
    /// Some round's graph equals the target (e.g. "eventually `↔`").
    OccursGraph {
        /// The graph that must occur.
        target: Digraph,
    },
    /// Some window of `window` consecutive rounds has a *vertex-stable root
    /// component*: each graph is rooted and the root-member set is the same
    /// across the window (the VSSC adversaries of [6, 23]).
    StableWindow {
        /// The required window length (the paper's stability interval).
        window: usize,
    },
}

impl Liveness {
    /// Whether the liveness event has been fully achieved within `prefix`.
    pub fn satisfied(&self, prefix: &GraphSeq) -> bool {
        match self {
            Liveness::None => true,
            Liveness::OccursGraph { target } => prefix.iter().any(|g| g == target),
            Liveness::StableWindow { window } => stable_window_position(prefix, *window).is_some(),
        }
    }
}

/// The earliest start round `s` such that rounds `s .. s+window−1` of
/// `prefix` all are rooted with one common root-member set, if any.
pub fn stable_window_position(prefix: &GraphSeq, window: usize) -> Option<Round> {
    if window == 0 {
        return Some(1);
    }
    let t = prefix.rounds();
    if t < window {
        return None;
    }
    let masks: Vec<Option<PidMask>> = prefix.iter().map(scc::rooted_source).collect();
    'outer: for s in 0..=(t - window) {
        let m = match masks[s] {
            Some(m) => m,
            None => continue,
        };
        for item in masks.iter().skip(s + 1).take(window - 1) {
            if *item != Some(m) {
                continue 'outer;
            }
        }
        return Some(s + 1);
    }
    None
}

/// The general message-adversary family; see the crate docs.
///
/// ```
/// use adversary::{GeneralMA, Liveness, MessageAdversary};
/// use dyngraph::{generators, Digraph, GraphSeq};
///
/// // Non-compact: "over {←, ↔, →}, eventually ↔ occurs".
/// let ma = GeneralMA::eventually_graph(
///     generators::lossy_link_full(),
///     Digraph::parse2("<->").unwrap(),
///     None,
/// );
/// assert!(!ma.is_compact());
/// // Every finite prefix is admissible (↔ can still come)…
/// assert!(ma.admits_prefix(&GraphSeq::parse2("-> -> <-").unwrap()));
/// // …but the ↔-free limit sequences are excluded.
/// let no_swap = dyngraph::Lasso::parse2("->").unwrap();
/// assert_eq!(ma.admits_lasso(&no_swap), Some(false));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneralMA {
    pool: Vec<Digraph>,
    liveness: Liveness,
    deadline: Option<Round>,
    label: String,
}

impl GeneralMA {
    /// Construct from parts.
    ///
    /// # Panics
    /// Panics if the pool is empty, mixes different `n`, or if a deadline is
    /// too short to ever satisfy the liveness.
    pub fn new(pool: Vec<Digraph>, liveness: Liveness, deadline: Option<Round>) -> Self {
        assert!(!pool.is_empty(), "pool must be nonempty");
        let n = pool[0].n();
        assert!(pool.iter().all(|g| g.n() == n), "pool graphs must agree on n");
        let mut pool: Vec<Digraph> = pool.into_iter().map(|g| g.normalized()).collect();
        pool.sort();
        pool.dedup();
        if let (Some(r), Liveness::StableWindow { window }) = (deadline, &liveness) {
            assert!(r >= *window, "deadline shorter than the stability window");
        }
        if let (Some(_), Liveness::OccursGraph { target }) = (deadline, &liveness) {
            assert!(pool.contains(&target.normalized()), "target graph not in pool");
        }
        let label = match (&liveness, deadline) {
            (Liveness::None, _) => format!("oblivious(|pool|={})", pool.len()),
            (Liveness::OccursGraph { target }, None) => {
                format!("eventually G={target} over |pool|={}", pool.len())
            }
            (Liveness::OccursGraph { target }, Some(r)) => {
                format!("G={target} within {r} rounds over |pool|={}", pool.len())
            }
            (Liveness::StableWindow { window }, None) => {
                format!("◇stable({window}) over |pool|={}", pool.len())
            }
            (Liveness::StableWindow { window }, Some(r)) => {
                format!("stable({window}) by round {r} over |pool|={}", pool.len())
            }
        };
        GeneralMA { pool, liveness, deadline, label }
    }

    /// The oblivious adversary over `pool` ([8, 21]): every sequence of pool
    /// graphs is admissible. Compact.
    pub fn oblivious(pool: Vec<Digraph>) -> Self {
        Self::new(pool, Liveness::None, None)
    }

    /// "`target` occurs (within `deadline`, if given)" over `pool`.
    /// Non-compact when `deadline` is `None`.
    pub fn eventually_graph(pool: Vec<Digraph>, target: Digraph, deadline: Option<Round>) -> Self {
        Self::new(pool, Liveness::OccursGraph { target }, deadline)
    }

    /// The eventually-stabilizing (VSSC-style) adversary of [6, 23]: some
    /// window of `window` rounds has a vertex-stable root component.
    /// Non-compact when `deadline` is `None`.
    pub fn stabilizing(pool: Vec<Digraph>, window: usize, deadline: Option<Round>) -> Self {
        Self::new(pool, Liveness::StableWindow { window }, deadline)
    }

    /// The graph pool.
    pub fn pool(&self) -> &[Digraph] {
        &self.pool
    }

    /// The liveness condition.
    pub fn liveness(&self) -> &Liveness {
        &self.liveness
    }

    /// The deadline, if any.
    pub fn deadline(&self) -> Option<Round> {
        self.deadline
    }

    /// The compact approximation with liveness deadline `r`: admissible
    /// sequences that satisfy the liveness within the first `r` rounds.
    ///
    /// The approximations grow with `r` and their union is the original
    /// non-compact adversary (DESIGN.md §2).
    pub fn with_deadline(&self, r: Round) -> GeneralMA {
        GeneralMA::new(self.pool.clone(), self.liveness.clone(), Some(r))
    }

    /// Whether every graph of `prefix` is drawn from the pool.
    fn pool_valid(&self, prefix: &GraphSeq) -> bool {
        prefix.iter().all(|g| self.pool.contains(&g.normalized()))
    }

    /// Whether the liveness is *still achievable* given `prefix` (assuming
    /// unconstrained pool choices afterwards, subject to the deadline).
    fn liveness_achievable(&self, prefix: &GraphSeq) -> bool {
        let t = prefix.rounds();
        match (&self.liveness, self.deadline) {
            (Liveness::None, _) => true,
            (_, None) => self.liveness_eventually_achievable(),
            (Liveness::OccursGraph { target }, Some(r)) => {
                let within = prefix.iter().take(r).any(|g| g == target);
                within || t < r
            }
            (Liveness::StableWindow { window }, Some(r)) => {
                // Look for a start s ≤ r − window + 1 such that the played
                // part of the window is stable-compatible and the unplayed
                // part can be filled from the pool.
                if *window == 0 {
                    return true;
                }
                if r < *window {
                    return false;
                }
                let masks: Vec<Option<PidMask>> = prefix.iter().map(scc::rooted_source).collect();
                'starts: for s in 0..=(r - *window) {
                    // Window rounds are s+1 ..= s+window (1-based).
                    let mut required: Option<PidMask> = None;
                    let mut needs_future = false;
                    for round in (s + 1)..=(s + *window) {
                        if round <= t {
                            let m = match masks[round - 1] {
                                Some(m) => m,
                                None => continue 'starts,
                            };
                            match required {
                                None => required = Some(m),
                                Some(req) if req == m => {}
                                Some(_) => continue 'starts,
                            }
                        } else {
                            needs_future = true;
                        }
                    }
                    if needs_future {
                        // The pool must supply a graph with the required mask
                        // (or any rooted graph if the window hasn't started).
                        match required {
                            Some(req) => {
                                if self.pool.iter().any(|g| scc::rooted_source(g) == Some(req)) {
                                    return true;
                                }
                            }
                            None => {
                                if self.pool.iter().any(|g| g.is_rooted()) {
                                    return true;
                                }
                            }
                        }
                    } else {
                        return true; // fully played, stable window found
                    }
                }
                false
            }
        }
    }

    /// Whether the liveness can be satisfied at all by pool choices (the
    /// no-deadline case).
    fn liveness_eventually_achievable(&self) -> bool {
        match &self.liveness {
            Liveness::None => true,
            Liveness::OccursGraph { target } => self.pool.contains(&target.normalized()),
            Liveness::StableWindow { window } => {
                *window == 0 || self.pool.iter().any(|g| g.is_rooted())
            }
        }
    }
}

impl MessageAdversary for GeneralMA {
    fn n(&self) -> usize {
        self.pool[0].n()
    }

    fn extensions(&self, prefix: &GraphSeq) -> Vec<Digraph> {
        if !self.admits_prefix(prefix) {
            return Vec::new();
        }
        self.pool
            .iter()
            .filter(|g| {
                let ext = prefix.extended((*g).clone());
                self.pool_valid(&ext) && self.liveness_achievable(&ext)
            })
            .cloned()
            .collect()
    }

    fn admits_prefix(&self, prefix: &GraphSeq) -> bool {
        self.pool_valid(prefix) && self.liveness_achievable(prefix)
    }

    fn admits_lasso(&self, lasso: &Lasso) -> Option<bool> {
        if lasso.n() != self.n() {
            return Some(false);
        }
        // Pool validity: check one full unrolling of prefix + cycle.
        let probe = lasso.unroll(lasso.prefix_len() + lasso.cycle_len());
        if !self.pool_valid(&probe) {
            return Some(false);
        }
        let satisfied_on_lasso =
            |horizon: usize| -> bool { self.liveness.satisfied(&lasso.unroll(horizon)) };
        let verdict = match (&self.liveness, self.deadline) {
            (Liveness::None, _) => true,
            (_, Some(r)) => satisfied_on_lasso(r),
            (Liveness::OccursGraph { .. }, None) => {
                // Occurs somewhere iff occurs within prefix + one cycle.
                satisfied_on_lasso(lasso.prefix_len() + lasso.cycle_len())
            }
            (Liveness::StableWindow { window }, None) => {
                // A window either sits inside the prefix region or intersects
                // the periodic part; prefix + 2 cycles + window covers all
                // phases.
                satisfied_on_lasso(lasso.prefix_len() + 2 * lasso.cycle_len() + window)
            }
        };
        Some(verdict)
    }

    fn is_compact(&self) -> bool {
        matches!(self.liveness, Liveness::None) || self.deadline.is_some()
    }

    fn describe(&self) -> String {
        self.label.clone()
    }

    fn pool_hint(&self) -> Option<Vec<Digraph>> {
        Some(self.pool.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyngraph::generators;

    fn swap() -> Digraph {
        Digraph::parse2("<->").unwrap()
    }

    #[test]
    fn oblivious_admits_everything_over_pool() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        assert!(ma.is_compact());
        let p = GraphSeq::parse2("-> <- <-> ->").unwrap();
        assert!(ma.admits_prefix(&p));
        assert_eq!(ma.extensions(&p).len(), 3);
        // A graph outside the pool kills the prefix.
        let bad = p.extended(Digraph::empty(2));
        assert!(!ma.admits_prefix(&bad));
        assert!(ma.extensions(&bad).is_empty());
    }

    #[test]
    fn oblivious_lasso_membership() {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        assert_eq!(ma.admits_lasso(&Lasso::parse2("->").unwrap()), Some(true));
        assert_eq!(ma.admits_lasso(&Lasso::parse2("-> | <-").unwrap()), Some(true));
        // ↔ is not in the reduced pool.
        assert_eq!(ma.admits_lasso(&Lasso::parse2("<-> | ->").unwrap()), Some(false));
    }

    #[test]
    fn eventually_graph_non_compact() {
        let ma = GeneralMA::eventually_graph(generators::lossy_link_full(), swap(), None);
        assert!(!ma.is_compact());
        // All prefixes stay alive.
        assert!(ma.admits_prefix(&GraphSeq::parse2("-> -> -> ->").unwrap()));
        assert_eq!(ma.extensions(&GraphSeq::new()).len(), 3);
        // Lassos: admissible iff ↔ occurs in prefix or cycle.
        assert_eq!(ma.admits_lasso(&Lasso::parse2("<-> | ->").unwrap()), Some(true));
        assert_eq!(ma.admits_lasso(&Lasso::parse2("-> | <- ->").unwrap()), Some(false));
        assert_eq!(ma.admits_lasso(&Lasso::parse2("-> | <-> ->").unwrap()), Some(true));
    }

    #[test]
    fn eventually_graph_with_deadline_compact() {
        let ma = GeneralMA::eventually_graph(generators::lossy_link_full(), swap(), Some(3));
        assert!(ma.is_compact());
        // After 3 swap-free rounds the prefix is dead.
        assert!(ma.admits_prefix(&GraphSeq::parse2("-> <-").unwrap()));
        assert!(!ma.admits_prefix(&GraphSeq::parse2("-> <- ->").unwrap()));
        assert!(ma.admits_prefix(&GraphSeq::parse2("-> <- <->").unwrap()));
        // Extensions at round 3 are forced to ↔.
        let p = GraphSeq::parse2("-> <-").unwrap();
        let ext = ma.extensions(&p);
        assert_eq!(ext, vec![swap().normalized()]);
        // After satisfaction everything over the pool is allowed again.
        let ok = GraphSeq::parse2("<-> -> -> <- ->").unwrap();
        assert!(ma.admits_prefix(&ok));
        assert_eq!(ma.extensions(&ok).len(), 3);
    }

    #[test]
    fn stable_window_position_basics() {
        // For n = 2: →, ←, ↔ are all rooted with masks {0}, {1}, {0,1}.
        let p = GraphSeq::parse2("-> <- <- ->").unwrap();
        assert_eq!(stable_window_position(&p, 1), Some(1));
        assert_eq!(stable_window_position(&p, 2), Some(2)); // ← ← at rounds 2–3
        assert_eq!(stable_window_position(&p, 3), None);
    }

    #[test]
    fn stable_window_ignores_unrooted_rounds() {
        let mut p = GraphSeq::parse2("->").unwrap();
        p.push(Digraph::empty(2));
        p.push(Digraph::parse2("->").unwrap());
        assert_eq!(stable_window_position(&p, 2), None);
        p.push(Digraph::parse2("->").unwrap());
        assert_eq!(stable_window_position(&p, 2), Some(3));
    }

    #[test]
    fn stabilizing_with_deadline() {
        // Window 2 by round 3 over {←, →}: rounds (1,2) or (2,3) must agree.
        let ma = GeneralMA::stabilizing(generators::lossy_link_reduced(), 2, Some(3));
        assert!(ma.is_compact());
        assert!(ma.admits_prefix(&GraphSeq::parse2("-> <-").unwrap())); // (2,3) can still be ← ←? round2=←,need round3=←
        assert!(ma.admits_prefix(&GraphSeq::parse2("-> <- <-").unwrap()));
        assert!(!ma.admits_prefix(&GraphSeq::parse2("-> <- ->").unwrap()));
        // Forced extension after a broken start.
        let ext = ma.extensions(&GraphSeq::parse2("-> <-").unwrap());
        assert_eq!(ext, vec![Digraph::parse2("<-").unwrap()]);
    }

    #[test]
    fn stabilizing_no_deadline_non_compact() {
        let ma = GeneralMA::stabilizing(generators::lossy_link_full(), 2, None);
        assert!(!ma.is_compact());
        assert!(ma.admits_prefix(&GraphSeq::parse2("-> <- -> <-").unwrap()));
        // Alternating forever never stabilizes → excluded limit.
        assert_eq!(ma.admits_lasso(&Lasso::parse2("-> <-").unwrap()), Some(false));
        assert_eq!(ma.admits_lasso(&Lasso::parse2("-> <- | <-> <->").unwrap()), Some(true));
        // Stable window inside the lasso prefix counts too.
        assert_eq!(ma.admits_lasso(&Lasso::parse2("-> -> | <- ->").unwrap()), Some(true));
    }

    #[test]
    fn with_deadline_monotone() {
        let ma = GeneralMA::eventually_graph(generators::lossy_link_full(), swap(), None);
        let c3 = ma.with_deadline(3);
        let c5 = ma.with_deadline(5);
        // Every c3-admissible prefix of length ≤ 3 is c5-admissible.
        let p = GraphSeq::parse2("-> <->").unwrap();
        assert!(c3.admits_prefix(&p) && c5.admits_prefix(&p));
        let q = GraphSeq::parse2("-> -> -> ->").unwrap();
        assert!(!c3.admits_prefix(&q) && c5.admits_prefix(&q));
    }

    #[test]
    fn pool_normalization_dedups() {
        let mut g = Digraph::parse2("->").unwrap();
        g.add_edge(0, 0); // self-loop variant
        let ma = GeneralMA::oblivious(vec![g, Digraph::parse2("->").unwrap()]);
        assert_eq!(ma.pool().len(), 1);
    }

    #[test]
    #[should_panic(expected = "pool must be nonempty")]
    fn empty_pool_rejected() {
        let _ = GeneralMA::oblivious(vec![]);
    }

    #[test]
    #[should_panic(expected = "deadline shorter")]
    fn too_short_deadline_rejected() {
        let _ = GeneralMA::stabilizing(generators::lossy_link_full(), 4, Some(3));
    }

    #[test]
    fn describe_mentions_family() {
        assert!(GeneralMA::oblivious(generators::lossy_link_full())
            .describe()
            .contains("oblivious"));
        assert!(GeneralMA::stabilizing(generators::lossy_link_full(), 2, None)
            .describe()
            .contains("◇stable"));
    }
}
