//! Exhaustive expansion of the depth-`t` prefix space.
//!
//! The paper's ε-approximation machinery (Definition 6.2, Theorem 6.6) is
//! computed on the finite set of *admissible runs at depth `t`*: every input
//! assignment crossed with every admissible graph-sequence prefix of length
//! `t`, with all process views interned in one shared [`ViewTable`]. This
//! module produces that set.
//!
//! # Engine shape
//!
//! Admissible sequences are enumerated into a dense-ID [`SeqArena`] (one
//! `(parent, graph)` node per prefix, flat round-offset table), so sequence
//! identity is an index, never a hashed [`GraphSeq`]. Run computation —
//! the dominant cost: interning `O(runs × n × depth)` views — is sharded
//! over a scoped worker pool: the canonical run-index space is cut into
//! contiguous chunks, each worker interns its chunk's views into a private
//! [`ShardTable`] over the shared base, and the shards are absorbed back
//! **in chunk order**, which provably reproduces the serial [`ViewId`]
//! assignment (see [`ViewTable::absorb`]). Output is therefore
//! byte-identical for every worker count, so fingerprint-keyed caches and
//! persisted verdicts never observe which engine produced a space.
//!
//! [`ViewId`]: ptgraph::ViewId

use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use consensus_obs::trace::tracer;
use dyngraph::{Digraph, GraphSeq};
use ptgraph::{all_inputs, Inputs, LocalViews, PrefixRun, ShardTable, Value, ViewTable};

use crate::arena::SeqArena;
use crate::MessageAdversary;

/// Contiguous chunks handed out per worker; more chunks than workers keeps
/// the pool busy when chunk costs skew (deeper suffixes intern more).
const CHUNKS_PER_WORKER: usize = 4;

/// Telemetry of the engine pass that produced (or last extended) an
/// [`Expansion`] — surfaced through sweep reports.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExpandStats {
    /// Worker shards the run computation was cut into (1 = serial).
    pub shards: usize,
    /// Wall-clock milliseconds spent absorbing shard tables and remapping
    /// run views (zero for the serial path).
    pub merge_ms: f64,
    /// Approximate bytes held by the sequence arena / extension tables.
    pub arena_bytes: usize,
}

/// The expanded prefix space at a fixed depth.
///
/// Cloning is a deep copy of the runs and the view table — much cheaper
/// than re-expanding, which is what lets caching layers *ladder* a cached
/// expansion to a deeper one without giving up the original.
#[derive(Debug, Clone)]
pub struct Expansion {
    /// All admissible runs: `inputs × admissible sequences`, in
    /// deterministic order (inputs lexicographic, sequences in expansion
    /// order).
    pub runs: Vec<PrefixRun>,
    /// The shared view interner; run views reference it.
    pub table: ViewTable,
    /// The expansion depth `t` (every run has exactly `t` rounds).
    pub depth: usize,
    /// The input domain used.
    pub values: Vec<Value>,
    /// Engine telemetry of the pass that built or last extended this
    /// expansion.
    pub stats: ExpandStats,
}

impl Expansion {
    /// Number of admissible graph sequences (runs per input assignment).
    /// Saturates (to 0 sequences) when the input count itself overflows
    /// `usize` — wide domains must not panic here.
    pub fn sequence_count(&self) -> usize {
        let inputs = self.values.len().checked_pow(self.n() as u32).unwrap_or(usize::MAX);
        self.runs.len().checked_div(inputs).unwrap_or(0)
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.table.n()
    }

    /// Indices of the `v`-valent runs (all processes start with `v`).
    pub fn valent_runs(&self, v: Value) -> Vec<usize> {
        self.runs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_valent(v))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Error: the expansion would exceed the run budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The budget that was exceeded.
    pub max_runs: usize,
    /// A lower bound on the number of runs the expansion would produce.
    pub needed: usize,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "prefix-space expansion needs ≥ {} runs, budget is {}",
            self.needed, self.max_runs
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// All admissible graph-sequence prefixes of length `depth`.
pub fn admissible_sequences(ma: &dyn MessageAdversary, depth: usize) -> Vec<GraphSeq> {
    let mut arena = SeqArena::new();
    for _ in 0..depth {
        arena.grow(ma, None).expect("growth without a budget cannot fail");
    }
    arena.into_frontier_seqs()
}

/// The number of input assignments `|values|^n`, saturated — the budget
/// comparisons treat an overflowing count as "over any budget".
fn inputs_count(values: &[Value], n: usize) -> usize {
    values.len().checked_pow(n as u32).unwrap_or(usize::MAX)
}

/// Expand the full prefix space: every input assignment over `values`
/// crossed with every admissible depth-`depth` sequence. Serial engine —
/// see [`expand_with`] for the sharded one (identical output).
///
/// # Errors
/// Returns [`BudgetExceeded`] if more than `max_runs` runs would be
/// produced (the sequence tree is counted before any views are interned, so
/// failing is cheap).
pub fn expand(
    ma: &dyn MessageAdversary,
    values: &[Value],
    depth: usize,
    max_runs: usize,
) -> Result<Expansion, BudgetExceeded> {
    expand_with(ma, values, depth, max_runs, 1)
}

/// [`expand`] with the run computation sharded over `threads` scoped
/// workers (`≤ 1` = serial). The output — run order, interned view ids,
/// table contents — is **byte-identical** for every thread count; only
/// [`Expansion::stats`] records which engine ran.
///
/// # Errors
/// Returns [`BudgetExceeded`] exactly as [`expand`] would (the pre-count
/// runs before any workers start).
pub fn expand_with(
    ma: &dyn MessageAdversary,
    values: &[Value],
    depth: usize,
    max_runs: usize,
    threads: usize,
) -> Result<Expansion, BudgetExceeded> {
    let n = ma.n();
    let inputs_count = inputs_count(values, n);
    let mut arena = SeqArena::new();
    for _ in 0..depth {
        arena
            .grow(ma, Some((inputs_count, max_runs)))
            .map_err(|e| BudgetExceeded { max_runs, needed: e.needed })?;
    }
    let arena_bytes = arena.approx_bytes();
    let inputs: Vec<Inputs> = all_inputs(n, values);
    let seqs = arena.into_frontier_seqs();

    let mut table = ViewTable::new(n);
    let total = inputs.len() * seqs.len();
    let (runs, shards, merge_ms) = if threads <= 1 || total == 0 {
        let mut runs = Vec::with_capacity(total);
        for x in &inputs {
            for seq in &seqs {
                runs.push(PrefixRun::compute(x.clone(), seq, &mut table));
            }
        }
        (runs, 1, 0.0)
    } else {
        sharded_runs(total, threads, &mut table, |range, shard| {
            let mut runs = Vec::with_capacity(range.len());
            for t in range {
                let (xi, si) = (t / seqs.len(), t % seqs.len());
                runs.push(PrefixRun::compute(inputs[xi].clone(), &seqs[si], shard));
            }
            runs
        })
    };
    Ok(Expansion {
        runs,
        table,
        depth,
        values: values.to_vec(),
        stats: ExpandStats { shards, merge_ms, arena_bytes },
    })
}

/// Convenience: binary inputs `{0, 1}`.
///
/// # Errors
/// See [`expand`].
pub fn expand_binary(
    ma: &dyn MessageAdversary,
    depth: usize,
    max_runs: usize,
) -> Result<Expansion, BudgetExceeded> {
    expand(ma, &[0, 1], depth, max_runs)
}

/// Cut `[0, total)` into contiguous chunks, compute each chunk's runs in a
/// worker-private [`ShardTable`], then absorb the shards into `table` in
/// chunk order and remap the run views — the deterministic-merge core both
/// [`expand_with`] and [`Expansion::extend_with`] share.
fn sharded_runs<F>(
    total: usize,
    threads: usize,
    table: &mut ViewTable,
    compute: F,
) -> (Vec<PrefixRun>, usize, f64)
where
    F: Fn(Range<usize>, &mut ShardTable<'_>) -> Vec<PrefixRun> + Sync,
{
    type ChunkSlot = Mutex<Option<(Vec<PrefixRun>, LocalViews)>>;
    let chunk_count = total.min(threads.saturating_mul(CHUNKS_PER_WORKER)).max(1);
    let slots: Vec<ChunkSlot> = (0..chunk_count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let base: &ViewTable = table;
    // Workers run on their own threads, so shard spans parent to the
    // caller's innermost span (`expand`) explicitly.
    let span_parent = tracer().current_id();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(chunk_count) {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= chunk_count {
                    break;
                }
                let mut span = tracer().span_under("shard", span_parent);
                let lo = c * total / chunk_count;
                let hi = (c + 1) * total / chunk_count;
                let mut shard = ShardTable::new(base);
                let runs = compute(lo..hi, &mut shard);
                span.set_attr("chunk", c);
                span.set_attr("runs", runs.len());
                *slots[c].lock().expect("shard slot poisoned") = Some((runs, shard.into_local()));
            });
        }
    });

    let merge_start = Instant::now();
    let mut all = Vec::with_capacity(total);
    {
        let _span = tracer().span_under("absorb", span_parent).with_attr("shards", chunk_count);
        for slot in slots {
            let (mut runs, local) = slot
                .into_inner()
                .expect("shard slot poisoned")
                .expect("every chunk was claimed by a worker");
            let remap = table.absorb(&local);
            for run in &mut runs {
                run.remap_views(local.base_len(), &remap);
            }
            all.append(&mut runs);
        }
    }
    let merge_ms = merge_start.elapsed().as_secs_f64() * 1e3;
    (all, chunk_count, merge_ms)
}

impl Expansion {
    /// Extend the expansion by one round in place: every run is replaced by
    /// its admissible one-round extensions, reusing the interned views of
    /// the shorter runs (the incremental path of the checker's depth
    /// sweep — each view is interned exactly once across the whole sweep).
    ///
    /// # Errors
    /// Returns [`BudgetExceeded`] if the extended space would exceed
    /// `max_runs`; the expansion is left unchanged in that case.
    pub fn extend(
        &mut self,
        ma: &dyn MessageAdversary,
        max_runs: usize,
    ) -> Result<(), BudgetExceeded> {
        self.extend_with(ma, max_runs, 1)
    }

    /// [`extend`](Self::extend) with the run extension sharded over
    /// `threads` scoped workers (`≤ 1` = serial); output is byte-identical
    /// for every thread count.
    ///
    /// Extensions are computed **once per distinct sequence** and indexed
    /// densely: canonical expansions lay runs out input-major (run `i` has
    /// sequence `i mod seq_count`), so the extension table is a flat
    /// `Vec` — no `GraphSeq` keys are ever hashed. Non-canonical layouts
    /// (hand-built expansions) are detected and handled per run.
    ///
    /// # Errors
    /// Returns [`BudgetExceeded`] if the extension would exceed `max_runs`;
    /// the expansion is left unchanged in that case.
    pub fn extend_with(
        &mut self,
        ma: &dyn MessageAdversary,
        max_runs: usize,
        threads: usize,
    ) -> Result<(), BudgetExceeded> {
        // Pre-count, building the dense extension table: one
        // `ma.extensions` call per distinct sequence, in first-encounter
        // order; the budget accounting is identical to a per-run walk.
        let seq_count = self.canonical_seq_count();
        let mut exts: Vec<Vec<Digraph>> = Vec::with_capacity(seq_count.unwrap_or(1));
        let mut needed = 0usize;
        match seq_count {
            Some(k) => {
                for (i, run) in self.runs.iter().enumerate() {
                    let si = i % k;
                    if si == exts.len() {
                        exts.push(ma.extensions(run.seq()));
                    }
                    needed += exts[si].len();
                    if needed > max_runs {
                        return Err(BudgetExceeded { max_runs, needed });
                    }
                }
            }
            None => {
                // Fallback for non-canonical run layouts: one extension
                // table entry per run.
                for run in &self.runs {
                    exts.push(ma.extensions(run.seq()));
                    needed += exts.last().expect("just pushed").len();
                    if needed > max_runs {
                        return Err(BudgetExceeded { max_runs, needed });
                    }
                }
            }
        }
        let ext_of = |i: usize| -> &[Digraph] {
            match seq_count {
                Some(k) => &exts[i % k],
                None => &exts[i],
            }
        };

        // Flat offsets into the new canonical index space: new runs
        // `offsets[i] .. offsets[i+1]` are run `i`'s extensions, in order.
        let mut offsets = Vec::with_capacity(self.runs.len() + 1);
        offsets.push(0usize);
        for i in 0..self.runs.len() {
            offsets.push(offsets[i] + ext_of(i).len());
        }
        let total = *offsets.last().expect("offsets nonempty");

        let old_runs = &self.runs;
        let table = &mut self.table;
        let (new_runs, shards, merge_ms) = if threads <= 1 || total == 0 {
            let mut new_runs = Vec::with_capacity(total);
            for (i, run) in old_runs.iter().enumerate() {
                for g in ext_of(i) {
                    new_runs.push(run.extended(g.clone(), table));
                }
            }
            (new_runs, 1, 0.0)
        } else {
            sharded_runs(total, threads, table, |range, shard| {
                let mut runs = Vec::with_capacity(range.len());
                // The old run owning new index `t` is the partition cell
                // containing `t`; walk forward from the first.
                let mut i = offsets.partition_point(|&o| o <= range.start) - 1;
                for t in range {
                    while offsets[i + 1] <= t {
                        i += 1;
                    }
                    let g = &ext_of(i)[t - offsets[i]];
                    runs.push(old_runs[i].extended(g.clone(), shard));
                }
                runs
            })
        };
        let arena_bytes: usize =
            exts.iter().map(|e| e.len() * std::mem::size_of::<Digraph>()).sum();
        self.runs = new_runs;
        self.depth += 1;
        self.stats = ExpandStats { shards, merge_ms, arena_bytes };
        Ok(())
    }

    /// The distinct-sequence count if the runs are laid out canonically
    /// (input-major: run `i`'s sequence equals run `i mod k`'s), else
    /// `None`. The check is a cheap equality sweep — it never hashes.
    fn canonical_seq_count(&self) -> Option<usize> {
        let inputs = self.values.len().checked_pow(self.n() as u32)?;
        if inputs == 0 || !self.runs.len().is_multiple_of(inputs) {
            return None;
        }
        let k = self.runs.len() / inputs;
        if k == 0 {
            return None;
        }
        (self.runs.iter().enumerate().all(|(i, run)| run.seq() == self.runs[i % k].seq()))
            .then_some(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeneralMA;
    use dyngraph::generators;

    #[test]
    fn oblivious_counts() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        for depth in 0..4 {
            let seqs = admissible_sequences(&ma, depth);
            assert_eq!(seqs.len(), 3usize.pow(depth as u32));
        }
        let e = expand_binary(&ma, 2, 10_000).unwrap();
        assert_eq!(e.runs.len(), 4 * 9);
        assert_eq!(e.sequence_count(), 9);
        assert_eq!(e.depth, 2);
    }

    #[test]
    fn expansion_runs_have_uniform_depth() {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let e = expand_binary(&ma, 3, 10_000).unwrap();
        assert!(e.runs.iter().all(|r| r.rounds() == 3));
    }

    #[test]
    fn valent_runs_found() {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let e = expand_binary(&ma, 2, 10_000).unwrap();
        let z0 = e.valent_runs(0);
        let z1 = e.valent_runs(1);
        assert_eq!(z0.len(), 4); // 2^2 sequences with inputs (0,0)
        assert_eq!(z1.len(), 4);
        assert!(e.runs[z0[0]].is_valent(0));
    }

    #[test]
    fn budget_enforced() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let err = expand_binary(&ma, 8, 100).unwrap_err();
        assert!(err.needed > 100);
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn liveness_prunes_sequences() {
        // ↔ within 2 rounds: sequences of length 2 = those containing ↔.
        let ma = GeneralMA::eventually_graph(
            generators::lossy_link_full(),
            Digraph::parse2("<->").unwrap(),
            Some(2),
        );
        let seqs = admissible_sequences(&ma, 2);
        // 9 total over the pool; admissible: ↔ in round 1 (3) + ↔ in round 2
        // with round 1 ≠ ↔ (2) = 5.
        assert_eq!(seqs.len(), 5);
        for s in &seqs {
            assert!(s.iter().any(|g| g.arrow2() == Some("<->")));
        }
    }

    #[test]
    fn deadline_zero_depth() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let seqs = admissible_sequences(&ma, 0);
        assert_eq!(seqs.len(), 1);
        assert!(seqs[0].is_empty());
    }

    #[test]
    fn expansion_views_shared() {
        // Runs with identical prefixes share interned views.
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let e = expand_binary(&ma, 1, 1000).unwrap();
        // Find two runs with the same inputs and the same 1-round sequence:
        // they are the same run computed once each — views must coincide.
        let a = &e.runs[0];
        let same: Vec<&ptgraph::PrefixRun> = e
            .runs
            .iter()
            .filter(|r| r.inputs() == a.inputs() && r.seq() == a.seq())
            .collect();
        for r in same {
            assert_eq!(r.views_at(1), a.views_at(1));
        }
    }

    #[test]
    fn parallel_expand_byte_identical_to_serial() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let serial = expand(&ma, &[0, 1], 3, 1_000_000).unwrap();
        for threads in [2, 3, 8] {
            let par = expand_with(&ma, &[0, 1], 3, 1_000_000, threads).unwrap();
            assert_eq!(par.runs, serial.runs, "threads={threads}");
            assert_eq!(par.table, serial.table, "threads={threads}");
            assert!(par.stats.shards > 1, "threads={threads} must shard");
        }
    }

    #[test]
    fn parallel_extend_byte_identical_to_serial() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let mut serial = expand(&ma, &[0, 1], 1, 1_000_000).unwrap();
        let mut par = serial.clone();
        for _ in 0..3 {
            serial.extend(&ma, 1_000_000).unwrap();
            par.extend_with(&ma, 1_000_000, 4).unwrap();
            assert_eq!(par.runs, serial.runs);
            assert_eq!(par.table, serial.table);
        }
    }

    #[test]
    fn parallel_budget_error_matches_serial() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let a = expand(&ma, &[0, 1], 8, 100).unwrap_err();
        let b = expand_with(&ma, &[0, 1], 8, 100, 4).unwrap_err();
        assert_eq!(a, b);
        let mut space = expand(&ma, &[0, 1], 2, 1_000_000).unwrap();
        let c = space.clone().extend(&ma, 10).unwrap_err();
        let d = space.extend_with(&ma, 10, 4).unwrap_err();
        assert_eq!(c, d);
    }

    #[test]
    fn sequence_count_saturates_instead_of_panicking() {
        // A domain/process combination whose input count overflows usize:
        // 2^... — fabricate via a tiny expansion and a huge fake domain.
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let mut e = expand_binary(&ma, 1, 1000).unwrap();
        // 3 billion-ish values ^ 2 processes overflows on 32-bit, not 64 —
        // drive n instead: values^n with values.len()=2, n=2 is fine, so
        // patch the domain to a width that overflows: len 2^33 is not
        // constructible; instead check the checked path by direct call.
        e.values = vec![0; 1 << 17];
        // (2^17)^2 = 2^34 — fits in u64 but sequence_count must not panic
        // and must floor-divide to 0 sequences.
        assert_eq!(e.sequence_count(), 0);
    }
}
