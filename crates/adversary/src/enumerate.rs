//! Exhaustive expansion of the depth-`t` prefix space.
//!
//! The paper's ε-approximation machinery (Definition 6.2, Theorem 6.6) is
//! computed on the finite set of *admissible runs at depth `t`*: every input
//! assignment crossed with every admissible graph-sequence prefix of length
//! `t`, with all process views interned in one shared [`ViewTable`]. This
//! module produces that set.

use std::fmt;

use dyngraph::GraphSeq;
use ptgraph::{all_inputs, Inputs, PrefixRun, Value, ViewTable};

use crate::MessageAdversary;

/// The expanded prefix space at a fixed depth.
///
/// Cloning is a deep copy of the runs and the view table — much cheaper
/// than re-expanding, which is what lets caching layers *ladder* a cached
/// expansion to a deeper one without giving up the original.
#[derive(Debug, Clone)]
pub struct Expansion {
    /// All admissible runs: `inputs × admissible sequences`, in
    /// deterministic order (inputs lexicographic, sequences in expansion
    /// order).
    pub runs: Vec<PrefixRun>,
    /// The shared view interner; run views reference it.
    pub table: ViewTable,
    /// The expansion depth `t` (every run has exactly `t` rounds).
    pub depth: usize,
    /// The input domain used.
    pub values: Vec<Value>,
}

impl Expansion {
    /// Number of admissible graph sequences (runs per input assignment).
    pub fn sequence_count(&self) -> usize {
        let inputs = self.values.len().pow(self.n() as u32);
        self.runs.len().checked_div(inputs).unwrap_or(0)
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.table.n()
    }

    /// Indices of the `v`-valent runs (all processes start with `v`).
    pub fn valent_runs(&self, v: Value) -> Vec<usize> {
        self.runs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_valent(v))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Error: the expansion would exceed the run budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The budget that was exceeded.
    pub max_runs: usize,
    /// A lower bound on the number of runs the expansion would produce.
    pub needed: usize,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "prefix-space expansion needs ≥ {} runs, budget is {}",
            self.needed, self.max_runs
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// All admissible graph-sequence prefixes of length `depth`.
pub fn admissible_sequences(ma: &dyn MessageAdversary, depth: usize) -> Vec<GraphSeq> {
    let mut frontier = vec![GraphSeq::new()];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for seq in &frontier {
            for g in ma.extensions(seq) {
                next.push(seq.extended(g));
            }
        }
        frontier = next;
    }
    frontier
}

/// Expand the full prefix space: every input assignment over `values`
/// crossed with every admissible depth-`depth` sequence.
///
/// # Errors
/// Returns [`BudgetExceeded`] if more than `max_runs` runs would be
/// produced (the sequence tree is counted before any views are interned, so
/// failing is cheap).
pub fn expand(
    ma: &dyn MessageAdversary,
    values: &[Value],
    depth: usize,
    max_runs: usize,
) -> Result<Expansion, BudgetExceeded> {
    let n = ma.n();
    let seqs = {
        // Count first via a cheaper traversal with early abort.
        let inputs_count = values.len().pow(n as u32);
        let mut frontier = vec![GraphSeq::new()];
        for _ in 0..depth {
            let mut next = Vec::new();
            for seq in &frontier {
                for g in ma.extensions(seq) {
                    next.push(seq.extended(g));
                    if next.len() * inputs_count > max_runs {
                        return Err(BudgetExceeded { max_runs, needed: next.len() * inputs_count });
                    }
                }
            }
            frontier = next;
        }
        frontier
    };
    let inputs: Vec<Inputs> = all_inputs(n, values);
    let mut table = ViewTable::new(n);
    let mut runs = Vec::with_capacity(inputs.len() * seqs.len());
    for x in &inputs {
        for seq in &seqs {
            runs.push(PrefixRun::compute(x.clone(), seq, &mut table));
        }
    }
    Ok(Expansion { runs, table, depth, values: values.to_vec() })
}

/// Convenience: binary inputs `{0, 1}`.
///
/// # Errors
/// See [`expand`].
pub fn expand_binary(
    ma: &dyn MessageAdversary,
    depth: usize,
    max_runs: usize,
) -> Result<Expansion, BudgetExceeded> {
    expand(ma, &[0, 1], depth, max_runs)
}

impl Expansion {
    /// Extend the expansion by one round in place: every run is replaced by
    /// its admissible one-round extensions, reusing the interned views of
    /// the shorter runs (the incremental path of the checker's depth
    /// sweep — each view is interned exactly once across the whole sweep).
    ///
    /// # Errors
    /// Returns [`BudgetExceeded`] if the extended space would exceed
    /// `max_runs`; the expansion is left unchanged in that case.
    pub fn extend(
        &mut self,
        ma: &dyn MessageAdversary,
        max_runs: usize,
    ) -> Result<(), BudgetExceeded> {
        // Pre-count: extensions per distinct sequence × inputs.
        let mut needed = 0usize;
        let mut ext_cache: std::collections::HashMap<GraphSeq, Vec<dyngraph::Digraph>> =
            std::collections::HashMap::new();
        for run in &self.runs {
            let exts =
                ext_cache.entry(run.seq().clone()).or_insert_with(|| ma.extensions(run.seq()));
            needed += exts.len();
            if needed > max_runs {
                return Err(BudgetExceeded { max_runs, needed });
            }
        }
        let mut new_runs = Vec::with_capacity(needed);
        for run in &self.runs {
            for g in &ext_cache[run.seq()] {
                new_runs.push(run.extended(g.clone(), &mut self.table));
            }
        }
        self.runs = new_runs;
        self.depth += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeneralMA;
    use dyngraph::{generators, Digraph};

    #[test]
    fn oblivious_counts() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        for depth in 0..4 {
            let seqs = admissible_sequences(&ma, depth);
            assert_eq!(seqs.len(), 3usize.pow(depth as u32));
        }
        let e = expand_binary(&ma, 2, 10_000).unwrap();
        assert_eq!(e.runs.len(), 4 * 9);
        assert_eq!(e.sequence_count(), 9);
        assert_eq!(e.depth, 2);
    }

    #[test]
    fn expansion_runs_have_uniform_depth() {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let e = expand_binary(&ma, 3, 10_000).unwrap();
        assert!(e.runs.iter().all(|r| r.rounds() == 3));
    }

    #[test]
    fn valent_runs_found() {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let e = expand_binary(&ma, 2, 10_000).unwrap();
        let z0 = e.valent_runs(0);
        let z1 = e.valent_runs(1);
        assert_eq!(z0.len(), 4); // 2^2 sequences with inputs (0,0)
        assert_eq!(z1.len(), 4);
        assert!(e.runs[z0[0]].is_valent(0));
    }

    #[test]
    fn budget_enforced() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let err = expand_binary(&ma, 8, 100).unwrap_err();
        assert!(err.needed > 100);
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn liveness_prunes_sequences() {
        // ↔ within 2 rounds: sequences of length 2 = those containing ↔.
        let ma = GeneralMA::eventually_graph(
            generators::lossy_link_full(),
            Digraph::parse2("<->").unwrap(),
            Some(2),
        );
        let seqs = admissible_sequences(&ma, 2);
        // 9 total over the pool; admissible: ↔ in round 1 (3) + ↔ in round 2
        // with round 1 ≠ ↔ (2) = 5.
        assert_eq!(seqs.len(), 5);
        for s in &seqs {
            assert!(s.iter().any(|g| g.arrow2() == Some("<->")));
        }
    }

    #[test]
    fn deadline_zero_depth() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let seqs = admissible_sequences(&ma, 0);
        assert_eq!(seqs.len(), 1);
        assert!(seqs[0].is_empty());
    }

    #[test]
    fn expansion_views_shared() {
        // Runs with identical prefixes share interned views.
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let e = expand_binary(&ma, 1, 1000).unwrap();
        // Find two runs with the same inputs and the same 1-round sequence:
        // they are the same run computed once each — views must coincide.
        let a = &e.runs[0];
        let same: Vec<&ptgraph::PrefixRun> = e
            .runs
            .iter()
            .filter(|r| r.inputs() == a.inputs() && r.seq() == a.seq())
            .collect();
        for r in same {
            assert_eq!(r.views_at(1), a.views_at(1));
        }
    }
}
