//! The compositional adversary-spec language (ROADMAP item 3).
//!
//! A [`SpecTerm`] is an AST over adversary combinators with one shared
//! parser/printer: [`SpecTerm::parse`] and the [`Display`](std::fmt::Display)
//! impl round-trip through a canonical normal form, so every surface of the
//! stack (the `Query` facade, the CLI, the HTTP API) speaks the *same*
//! string language and two spellings of one adversary normalize to one
//! term — and, via [`SpecTerm::lower`], to structurally fingerprinted
//! combinators that share cache slots.
//!
//! # Grammar (EBNF)
//!
//! ```text
//! term     = word                              (* bare pool literal *)
//!          | "catalog" "(" name ")"
//!          | "pool" "(" word ")"
//!          | "union" "(" term { "," term } ")"
//!          | "intersect" "(" term { "," term } ")"
//!          | "eventually" "(" word [ "," word ] [ "," by ] ")"
//!          | "window" "(" word "," number [ "," by ] ")"
//!          | "prefix" "(" word "," term ")" ;
//! word     = item { item } ;
//! item     = graph | "repeat" "(" word "," number ")" ;
//! graph    = "->" | "<-" | "<->" | "." | "→" | "←" | "↔" | "·" ;
//! by       = "by" "=" number ;
//! name     = ( letter | digit | "_" | "-" ) { letter | digit | "_" | "-" } ;
//! ```
//!
//! `eventually(g)` abbreviates "over the full lossy link ∪ {g}, a `g` round
//! eventually occurs"; `eventually(word, g [, by=R])` names the pool
//! explicitly. `window(word, w [, by=R])` is the VSSC-style stable-window
//! liveness of [`GeneralMA::stabilizing`]. `prefix(word, term)` forces the
//! first rounds ([`ConcatMA`]); `repeat(word, k)` is word-level sugar,
//! expanded at parse time.
//!
//! ```
//! use adversary::spec::SpecTerm;
//!
//! let term = SpecTerm::parse("union(eventually(<->), pool(repeat(-> <-, 2)))").unwrap();
//! // Canonical form: pools sorted, members sorted, repeat expanded.
//! assert_eq!(term.to_string(), "union(eventually(<- -> <->, <->), pool(<- ->))");
//! // parse ∘ Display is the identity on normalized terms.
//! assert_eq!(SpecTerm::parse(&term.to_string()).unwrap(), term);
//! let ma = term.lower().unwrap();
//! assert_eq!(ma.n(), 2);
//! ```

use std::fmt;

use dyngraph::{generators, Digraph, GraphSeq};

use crate::{catalog, concat::ConcatMA, DynMA, GeneralMA, IntersectMA, MessageAdversary, UnionMA};

/// Nesting bound for parsed terms — keeps the recursive-descent parser (and
/// everything downstream of it) stack-safe on adversarial input.
const MAX_NESTING: usize = 64;
/// Bound on `repeat(word, k)` counts and expanded word lengths.
const MAX_WORD: usize = 4096;
/// Bound on plain numbers (`by=R`, window lengths).
const MAX_NUMBER: usize = 1_000_000;

/// A malformed or unbuildable spec term.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TermError {
    /// The spec string failed to parse.
    Parse {
        /// Byte offset of the failure in the input.
        offset: usize,
        /// What the parser expected there.
        expected: String,
    },
    /// `catalog(name)` names no registry entry.
    UnknownCatalog {
        /// The unknown name.
        name: String,
    },
    /// The term parsed but lowers to no valid adversary (empty pool,
    /// mismatched process counts, unreachable liveness, …).
    Invalid {
        /// What is wrong with the term.
        reason: String,
    },
}

impl fmt::Display for TermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermError::Parse { offset, expected } => {
                write!(f, "parse error at byte {offset}: expected {expected}")
            }
            TermError::UnknownCatalog { name } => write!(f, "unknown catalog entry {name:?}"),
            TermError::Invalid { reason } => f.write_str(reason),
        }
    }
}

impl std::error::Error for TermError {}

fn invalid(reason: impl Into<String>) -> TermError {
    TermError::Invalid { reason: reason.into() }
}

/// A term of the adversary-combinator algebra; see the module docs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SpecTerm {
    /// A named entry of [`catalog::entries`].
    Catalog(String),
    /// The oblivious adversary over a graph pool.
    Pool(Vec<Digraph>),
    /// "`target` occurs (within `by`, if given)" over a pool.
    Eventually {
        /// The per-round graph pool.
        pool: Vec<Digraph>,
        /// The graph that must eventually occur.
        target: Digraph,
        /// Deadline: compact approximation when `Some`.
        by: Option<usize>,
    },
    /// The VSSC-style stable-window liveness over a pool.
    Window {
        /// The per-round graph pool.
        pool: Vec<Digraph>,
        /// The required stable-window length.
        window: usize,
        /// Deadline: compact approximation when `Some`.
        by: Option<usize>,
    },
    /// Union: admissible under **some** member.
    Union(Vec<SpecTerm>),
    /// Intersection: admissible under **every** member.
    Intersect(Vec<SpecTerm>),
    /// Round-concatenation: a forced word, then the tail term.
    Prefix {
        /// The forced per-round word (order matters).
        word: Vec<Digraph>,
        /// The adversary governing the rounds after the word.
        tail: Box<SpecTerm>,
    },
}

impl SpecTerm {
    /// Parse a spec string into its canonical normal form.
    ///
    /// # Errors
    /// Returns [`TermError::Parse`] with the byte offset of the first
    /// malformed construct. Never panics, for any input.
    pub fn parse(input: &str) -> Result<SpecTerm, TermError> {
        let mut p = Parser { src: input, pos: 0 };
        let term = p.term(0)?;
        p.skip_ws();
        if p.pos < p.src.len() {
            return Err(p.err("end of input"));
        }
        Ok(term.normalize())
    }

    /// The canonical normal form: pools normalized/sorted/deduped, nested
    /// unions and intersections flattened, members sorted by canonical
    /// string and deduped, singleton wrappers and empty prefix words
    /// collapsed. [`parse`](Self::parse) ∘ [`Display`](fmt::Display) is the
    /// identity on normalized 2-process terms.
    pub fn normalize(self) -> SpecTerm {
        match self {
            SpecTerm::Catalog(name) => SpecTerm::Catalog(name),
            SpecTerm::Pool(pool) => SpecTerm::Pool(normalize_pool(pool)),
            SpecTerm::Eventually { pool, target, by } => {
                SpecTerm::Eventually { pool: normalize_pool(pool), target: target.normalized(), by }
            }
            SpecTerm::Window { pool, window, by } => {
                SpecTerm::Window { pool: normalize_pool(pool), window, by }
            }
            SpecTerm::Union(members) => normalize_members(members, true),
            SpecTerm::Intersect(members) => normalize_members(members, false),
            SpecTerm::Prefix { word, tail } => {
                let mut word: Vec<Digraph> = word.iter().map(Digraph::normalized).collect();
                let tail = tail.normalize();
                if word.is_empty() {
                    return tail;
                }
                // prefix(a, prefix(b, t)) = prefix(a·b, t).
                if let SpecTerm::Prefix { word: inner, tail } = tail {
                    word.extend(inner);
                    SpecTerm::Prefix { word, tail }
                } else {
                    SpecTerm::Prefix { word, tail: Box::new(tail) }
                }
            }
        }
    }

    /// Lower the term to a boxed adversary via the combinator types
    /// ([`GeneralMA`], [`UnionMA`], [`IntersectMA`], [`ConcatMA`]).
    ///
    /// All construction preconditions are checked here and reported as
    /// [`TermError`]s — lowering a parsed term never panics.
    ///
    /// # Errors
    /// [`TermError::UnknownCatalog`] for unregistered names,
    /// [`TermError::Invalid`] for structurally impossible terms.
    pub fn lower(&self) -> Result<DynMA, TermError> {
        match self {
            SpecTerm::Catalog(name) => catalog::by_name(name)
                .map(|e| e.build())
                .ok_or_else(|| TermError::UnknownCatalog { name: name.clone() }),
            SpecTerm::Pool(pool) => {
                validate_pool(pool)?;
                Ok(Box::new(GeneralMA::oblivious(pool.clone())))
            }
            SpecTerm::Eventually { pool, target, by } => {
                validate_pool(pool)?;
                let target = target.normalized();
                if !pool.iter().any(|g| g.normalized() == target) {
                    return Err(invalid(format!(
                        "eventually target {target} is not in the pool, so no sequence \
                         satisfies the liveness"
                    )));
                }
                if *by == Some(0) {
                    return Err(invalid("eventually deadline must be at least 1 round"));
                }
                Ok(Box::new(GeneralMA::eventually_graph(pool.clone(), target, *by)))
            }
            SpecTerm::Window { pool, window, by } => {
                validate_pool(pool)?;
                if let Some(r) = by {
                    if r < window {
                        return Err(invalid(format!(
                            "window deadline {r} is shorter than the stability window {window}"
                        )));
                    }
                }
                if *window > 0 && !pool.iter().any(Digraph::is_rooted) {
                    return Err(invalid(
                        "window pool contains no rooted graph, so no stable window can form",
                    ));
                }
                Ok(Box::new(GeneralMA::stabilizing(pool.clone(), *window, *by)))
            }
            SpecTerm::Union(members) => {
                Ok(Box::new(UnionMA::new(lower_members(members, "union")?)))
            }
            SpecTerm::Intersect(members) => {
                Ok(Box::new(IntersectMA::new(lower_members(members, "intersect")?)))
            }
            SpecTerm::Prefix { word, tail } => {
                let tail = tail.lower()?;
                if let Some(g) = word.iter().find(|g| g.n() != tail.n()) {
                    return Err(invalid(format!(
                        "prefix word graph has {} processes but the tail adversary has {}",
                        g.n(),
                        tail.n()
                    )));
                }
                let word: GraphSeq = word.iter().map(Digraph::normalized).collect();
                Ok(Box::new(ConcatMA::new(word, tail)))
            }
        }
    }

    /// The stable structural fingerprint of the lowered adversary — the
    /// key under which the lab's space cache and on-disk verdict journal
    /// file this term. Structurally equal terms (however spelled) share it.
    ///
    /// # Errors
    /// Whatever [`lower`](Self::lower) returns.
    pub fn fingerprint(&self) -> Result<u64, TermError> {
        Ok(self.lower()?.fingerprint())
    }
}

fn normalize_pool(pool: Vec<Digraph>) -> Vec<Digraph> {
    let mut pool: Vec<Digraph> = pool.iter().map(Digraph::normalized).collect();
    pool.sort();
    pool.dedup();
    pool
}

fn normalize_members(members: Vec<SpecTerm>, is_union: bool) -> SpecTerm {
    let mut flat = Vec::with_capacity(members.len());
    for m in members {
        match (m.normalize(), is_union) {
            (SpecTerm::Union(inner), true) | (SpecTerm::Intersect(inner), false) => {
                flat.extend(inner);
            }
            (other, _) => flat.push(other),
        }
    }
    let mut keyed: Vec<(String, SpecTerm)> = flat.into_iter().map(|t| (t.to_string(), t)).collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    keyed.dedup_by(|a, b| a.0 == b.0);
    let mut flat: Vec<SpecTerm> = keyed.into_iter().map(|(_, t)| t).collect();
    if flat.len() == 1 {
        return flat.pop().expect("one member");
    }
    if is_union {
        SpecTerm::Union(flat)
    } else {
        SpecTerm::Intersect(flat)
    }
}

fn validate_pool(pool: &[Digraph]) -> Result<(), TermError> {
    let Some(first) = pool.first() else {
        return Err(invalid("empty pool"));
    };
    if pool.iter().any(|g| g.n() != first.n()) {
        return Err(invalid("pool graphs must agree on the process count"));
    }
    Ok(())
}

fn lower_members(members: &[SpecTerm], what: &str) -> Result<Vec<DynMA>, TermError> {
    if members.is_empty() {
        return Err(invalid(format!("{what} needs at least one member")));
    }
    let lowered: Vec<DynMA> = members.iter().map(SpecTerm::lower).collect::<Result<_, _>>()?;
    let n = lowered[0].n();
    if let Some(m) = lowered.iter().find(|m| m.n() != n) {
        return Err(invalid(format!(
            "{what} members disagree on the process count ({n} vs {})",
            m.n()
        )));
    }
    Ok(lowered)
}

fn fmt_word(f: &mut fmt::Formatter<'_>, word: &[Digraph]) -> fmt::Result {
    for (i, g) in word.iter().enumerate() {
        if i > 0 {
            f.write_str(" ")?;
        }
        write!(f, "{g}")?;
    }
    Ok(())
}

impl fmt::Display for SpecTerm {
    /// The canonical spec string. Parseable (round-trips through
    /// [`SpecTerm::parse`]) whenever every pool graph is a 2-process graph;
    /// larger graphs print as edge lists, which the string grammar does not
    /// cover — name those via `catalog(...)` instead.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecTerm::Catalog(name) => write!(f, "catalog({name})"),
            SpecTerm::Pool(pool) => {
                f.write_str("pool(")?;
                fmt_word(f, pool)?;
                f.write_str(")")
            }
            SpecTerm::Eventually { pool, target, by } => {
                f.write_str("eventually(")?;
                fmt_word(f, pool)?;
                write!(f, ", {target}")?;
                if let Some(r) = by {
                    write!(f, ", by={r}")?;
                }
                f.write_str(")")
            }
            SpecTerm::Window { pool, window, by } => {
                f.write_str("window(")?;
                fmt_word(f, pool)?;
                write!(f, ", {window}")?;
                if let Some(r) = by {
                    write!(f, ", by={r}")?;
                }
                f.write_str(")")
            }
            SpecTerm::Union(members) | SpecTerm::Intersect(members) => {
                f.write_str(if matches!(self, SpecTerm::Union(_)) {
                    "union("
                } else {
                    "intersect("
                })?;
                for (i, m) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{m}")?;
                }
                f.write_str(")")
            }
            SpecTerm::Prefix { word, tail } => {
                f.write_str("prefix(")?;
                fmt_word(f, word)?;
                write!(f, ", {tail})")
            }
        }
    }
}

/// The recursive-descent parser over raw bytes (offsets are byte offsets).
struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

/// The 2-process graph tokens, longest first (maximal munch).
const GRAPH_TOKENS: [(&str, &str); 8] = [
    ("<->", "<->"),
    ("<-", "<-"),
    ("->", "->"),
    (".", "."),
    ("↔", "<->"),
    ("←", "<-"),
    ("→", "->"),
    ("·", "."),
];

impl<'a> Parser<'a> {
    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        self.pos += self.rest().len() - self.rest().trim_start().len();
    }

    fn err(&self, expected: impl Into<String>) -> TermError {
        TermError::Parse { offset: self.pos, expected: expected.into() }
    }

    fn expect(&mut self, token: char) -> Result<(), TermError> {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len_utf8();
            Ok(())
        } else {
            Err(self.err(format!("`{token}`")))
        }
    }

    /// The graph token at the cursor, if any (not consumed).
    fn peek_graph(&self) -> Option<(Digraph, usize)> {
        let rest = self.rest();
        for (tok, canonical) in GRAPH_TOKENS {
            if rest.starts_with(tok) {
                let g = Digraph::parse2(canonical).expect("static token");
                return Some((g, tok.len()));
            }
        }
        None
    }

    /// Whether the cursor sits on a `repeat( ... )` word item.
    fn at_repeat(&self) -> bool {
        let rest = self.rest();
        rest.strip_prefix("repeat")
            .is_some_and(|after| after.trim_start().starts_with('('))
    }

    fn number(&mut self, what: &str, max: usize) -> Result<usize, TermError> {
        self.skip_ws();
        let digits: &str =
            &self.rest()[..self.rest().bytes().take_while(u8::is_ascii_digit).count()];
        if digits.is_empty() {
            return Err(self.err(what));
        }
        let mut value: usize = 0;
        for d in digits.bytes() {
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(usize::from(d - b'0')))
                .filter(|v| *v <= max)
                .ok_or_else(|| self.err(format!("a number ≤ {max}")))?;
        }
        self.pos += digits.len();
        Ok(value)
    }

    /// A nonempty graph word; `repeat(word, k)` items are expanded inline.
    ///
    /// `depth` shares the [`MAX_NESTING`] budget with [`Parser::term`] so
    /// nested `repeat(` items cannot recurse unboundedly, and the expanded
    /// size of each `repeat` is validated against [`MAX_WORD`] *before* the
    /// expansion runs, so `repeat(repeat(.., k), k)` cannot amplify CPU or
    /// memory past the word cap.
    fn word(&mut self, depth: usize) -> Result<Vec<Digraph>, TermError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if let Some((g, len)) = self.peek_graph() {
                self.pos += len;
                out.push(g);
            } else if self.at_repeat() {
                if depth >= MAX_NESTING {
                    return Err(self.err(format!("a repeat nested at most {MAX_NESTING} deep")));
                }
                self.pos += "repeat".len();
                self.expect('(')?;
                let inner = self.word(depth + 1)?;
                self.expect(',')?;
                let count = self.number("a repeat count", MAX_WORD)?;
                self.expect(')')?;
                let total = count
                    .checked_mul(inner.len())
                    .and_then(|n| n.checked_add(out.len()))
                    .filter(|n| *n <= MAX_WORD)
                    .ok_or_else(|| self.err(format!("a word of at most {MAX_WORD} rounds")))?;
                out.reserve(total - out.len());
                for _ in 0..count {
                    out.extend(inner.iter().cloned());
                }
            } else {
                break;
            }
            if out.len() > MAX_WORD {
                return Err(self.err(format!("a word of at most {MAX_WORD} rounds")));
            }
        }
        if out.is_empty() {
            return Err(self.err("a graph word (`->`, `<-`, `<->`, `.`)"));
        }
        Ok(out)
    }

    /// A word that must be exactly one graph (liveness targets).
    fn single(&mut self, word: Vec<Digraph>, start: usize) -> Result<Digraph, TermError> {
        let mut word = word;
        if word.len() != 1 {
            return Err(TermError::Parse {
                offset: start,
                expected: "a single target graph".into(),
            });
        }
        Ok(word.pop().expect("one graph"))
    }

    /// `by=R`, if the cursor sits on one.
    fn try_by(&mut self) -> Result<Option<usize>, TermError> {
        self.skip_ws();
        if !self.rest().starts_with("by") {
            return Ok(None);
        }
        self.pos += 2;
        self.expect('=')?;
        Ok(Some(self.number("a round number", MAX_NUMBER)?))
    }

    fn catalog_name(&mut self) -> Result<String, TermError> {
        self.skip_ws();
        let len = self
            .rest()
            .bytes()
            .take_while(|b| b.is_ascii_alphanumeric() || *b == b'_' || *b == b'-')
            .count();
        if len == 0 {
            return Err(self.err("a catalog entry name"));
        }
        let name = self.rest()[..len].to_string();
        self.pos += len;
        Ok(name)
    }

    fn term(&mut self, depth: usize) -> Result<SpecTerm, TermError> {
        if depth >= MAX_NESTING {
            return Err(self.err(format!("a term nested at most {MAX_NESTING} deep")));
        }
        self.skip_ws();
        // Bare word literal ⇒ oblivious pool.
        if self.peek_graph().is_some() || self.at_repeat() {
            return Ok(SpecTerm::Pool(self.word(depth)?));
        }
        let kw_start = self.pos;
        let len = self.rest().bytes().take_while(u8::is_ascii_alphabetic).count();
        let keyword = &self.rest()[..len];
        let term = match keyword {
            "catalog" => {
                self.pos += len;
                self.expect('(')?;
                let name = self.catalog_name()?;
                self.expect(')')?;
                SpecTerm::Catalog(name)
            }
            "pool" => {
                self.pos += len;
                self.expect('(')?;
                let pool = self.word(depth)?;
                self.expect(')')?;
                SpecTerm::Pool(pool)
            }
            "union" | "intersect" => {
                self.pos += len;
                self.expect('(')?;
                let mut members = vec![self.term(depth + 1)?];
                loop {
                    self.skip_ws();
                    if self.rest().starts_with(',') {
                        self.pos += 1;
                        members.push(self.term(depth + 1)?);
                    } else {
                        break;
                    }
                }
                self.expect(')')?;
                if keyword == "union" {
                    SpecTerm::Union(members)
                } else {
                    SpecTerm::Intersect(members)
                }
            }
            "eventually" => {
                self.pos += len;
                self.expect('(')?;
                self.skip_ws();
                let first_start = self.pos;
                let first = self.word(depth)?;
                self.skip_ws();
                let (pool, target, by) = if self.rest().starts_with(',') {
                    self.pos += 1;
                    if let Some(by) = self.try_by()? {
                        // eventually(target, by=R): default pool.
                        (None, self.single(first, first_start)?, Some(by))
                    } else {
                        self.skip_ws();
                        let target_start = self.pos;
                        let target_word = self.word(depth)?;
                        let target = self.single(target_word, target_start)?;
                        self.skip_ws();
                        let by = if self.rest().starts_with(',') {
                            self.pos += 1;
                            match self.try_by()? {
                                Some(by) => Some(by),
                                None => return Err(self.err("`by=R`")),
                            }
                        } else {
                            None
                        };
                        (Some(first), target, by)
                    }
                } else {
                    (None, self.single(first, first_start)?, None)
                };
                self.expect(')')?;
                let pool = pool.unwrap_or_else(|| {
                    // The default pool: the full lossy link, plus the target
                    // itself so the liveness is always achievable.
                    let mut pool = generators::lossy_link_full();
                    pool.push(target.clone());
                    pool
                });
                SpecTerm::Eventually { pool, target, by }
            }
            "window" => {
                self.pos += len;
                self.expect('(')?;
                let pool = self.word(depth)?;
                self.expect(',')?;
                let window = self.number("a window length", MAX_NUMBER)?;
                self.skip_ws();
                let by = if self.rest().starts_with(',') {
                    self.pos += 1;
                    match self.try_by()? {
                        Some(by) => Some(by),
                        None => return Err(self.err("`by=R`")),
                    }
                } else {
                    None
                };
                self.expect(')')?;
                SpecTerm::Window { pool, window, by }
            }
            "prefix" => {
                self.pos += len;
                self.expect('(')?;
                let word = self.word(depth)?;
                self.expect(',')?;
                let tail = Box::new(self.term(depth + 1)?);
                self.expect(')')?;
                SpecTerm::Prefix { word, tail }
            }
            _ => {
                return Err(TermError::Parse {
                    offset: kw_start,
                    expected: "a graph word or a combinator (catalog, pool, union, \
                               intersect, eventually, window, prefix)"
                        .into(),
                });
            }
        };
        Ok(term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> SpecTerm {
        SpecTerm::parse(s).unwrap_or_else(|e| panic!("{s:?}: {e}"))
    }

    #[test]
    fn roundtrip_canonical_forms() {
        // display(parse(s)) is canonical; parse(display(t)) == t.
        for (input, canonical) in [
            ("-> <- <->", "pool(<- -> <->)"),
            ("pool( ->   <- )", "pool(<- ->)"),
            ("pool(-> -> ->)", "pool(->)"),
            ("catalog(sw-lossy-link)", "catalog(sw-lossy-link)"),
            ("eventually(<->)", "eventually(<- -> <->, <->)"),
            ("eventually(.)", "eventually(. <- -> <->, .)"),
            ("eventually(-> <- <->, <->, by=2)", "eventually(<- -> <->, <->, by=2)"),
            ("eventually(<->, by=3)", "eventually(<- -> <->, <->, by=3)"),
            ("window(-> <- <->, 2, by=3)", "window(<- -> <->, 2, by=3)"),
            ("window(<-> , 1)", "window(<->, 1)"),
            ("union(pool(<-), pool(->))", "union(pool(->), pool(<-))"),
            ("union(pool(->), union(pool(<-), pool(<->)))", "union(pool(->), pool(<-), pool(<->))"),
            ("union(pool(->), pool(->))", "pool(->)"),
            (
                "intersect(-> <-, eventually(<->))",
                "intersect(eventually(<- -> <->, <->), pool(<- ->))",
            ),
            (
                "prefix(<-> ->, catalog(cgp-reduced-lossy-link))",
                "prefix(<-> ->, catalog(cgp-reduced-lossy-link))",
            ),
            ("prefix(<->, prefix(->, pool(<-)))", "prefix(<-> ->, pool(<-))"),
            ("repeat(-> <-, 2) <->", "pool(<- -> <->)"),
            ("prefix(repeat(->, 3), pool(<-))", "prefix(-> -> ->, pool(<-))"),
            ("→ ← ↔ ·", "pool(. <- -> <->)"),
        ] {
            let term = parse(input);
            assert_eq!(term.to_string(), canonical, "{input:?}");
            assert_eq!(parse(canonical), term, "{input:?} reparse");
        }
    }

    #[test]
    fn parse_errors_carry_offsets() {
        for (input, offset_hint) in [
            ("", 0),
            ("   ", 3),
            ("bogus(->)", 0),
            ("pool()", 5),
            ("pool(-> xx)", 8),
            ("pool(->", 7),
            ("union(pool(->)", 14),
            ("union()", 6),
            ("eventually(-> <-)", 11), // two graphs where one target expected
            ("eventually(<->, by=)", 19),
            ("window(->, )", 11),
            ("window(->, 2, 3)", 14), // third arg must be by=R
            ("pool(->) trailing", 9),
            ("catalog()", 8),
            ("prefix(->)", 9),
            ("repeat(->, 999999)", 11), // repeat count over the cap
        ] {
            let err = SpecTerm::parse(input).expect_err(input);
            match err {
                TermError::Parse { offset, ref expected } => {
                    assert_eq!(offset, offset_hint, "{input:?}: expected {expected}");
                    assert!(!expected.is_empty());
                }
                other => panic!("{input:?}: wanted a parse error, got {other}"),
            }
            // The Display mentions the offset for CLI/HTTP surfacing.
            assert!(err.to_string().contains("at byte"), "{err}");
        }
    }

    #[test]
    fn nesting_is_bounded() {
        let deep = format!("{}pool(->){}", "union(".repeat(100), ")".repeat(100));
        let err = SpecTerm::parse(&deep).unwrap_err();
        assert!(matches!(err, TermError::Parse { .. }), "{err}");

        // Nested `repeat(` shares the same budget: an unclosed cascade of
        // repeats must error out, not recurse until the stack overflows.
        let deep_repeat = "repeat(".repeat(100_000);
        let err = SpecTerm::parse(&deep_repeat).unwrap_err();
        assert!(matches!(err, TermError::Parse { .. }), "{err}");
        let closed_repeat = format!("{}->{}", "repeat(".repeat(100_000), ", 1)".repeat(100_000));
        let err = SpecTerm::parse(&closed_repeat).unwrap_err();
        assert!(matches!(err, TermError::Parse { .. }), "{err}");
    }

    #[test]
    fn repeat_expansion_is_bounded_before_it_runs() {
        // The k × |word| product is rejected up front: this 36-byte input
        // would otherwise materialize ~16.7M graphs before the length check.
        let start = std::time::Instant::now();
        let err = SpecTerm::parse("pool(repeat(repeat(->, 4096), 4096))").unwrap_err();
        assert!(matches!(err, TermError::Parse { .. }), "{err}");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(1),
            "rejecting an oversized repeat took {:?}",
            start.elapsed()
        );
        // Right at the cap still works.
        let word = parse("pool(repeat(repeat(->, 64), 64))");
        assert_eq!(word, parse("pool(->)"));
    }

    #[test]
    fn lower_validates_instead_of_panicking() {
        for (input, fragment) in [
            ("catalog(no-such-entry)", "unknown catalog entry"),
            ("eventually(-> <-, <->)", "not in the pool"),
            ("eventually(<->, by=0)", "at least 1"),
            ("window(-> <-, 3, by=2)", "shorter than the stability window"),
            ("window(., 1)", "no rooted graph"),
            ("union(pool(->), catalog(rotating-star-3))", "disagree on the process count"),
            ("prefix(->, catalog(rotating-star-3))", "processes"),
        ] {
            let term = parse(input);
            let err = match term.lower() {
                Err(e) => e,
                Ok(_) => panic!("{input:?}: lowered without error"),
            };
            assert!(err.to_string().contains(fragment), "{input:?} → {err}");
        }
        // Programmatic-only invalid shapes (unreachable from the parser).
        assert!(SpecTerm::Pool(vec![]).lower().is_err());
        assert!(SpecTerm::Union(vec![]).lower().is_err());
    }

    #[test]
    fn lowered_semantics_match_direct_construction() {
        use dyngraph::Lasso;
        let ma = parse("prefix(<->, eventually(<- -> <->, <->))").lower().unwrap();
        assert!(!ma.is_compact());
        assert!(ma.admits_prefix(&GraphSeq::parse2("<-> -> ->").unwrap()));
        assert!(!ma.admits_prefix(&GraphSeq::parse2("-> ->").unwrap()));
        assert_eq!(ma.admits_lasso(&Lasso::parse2("<-> | ->").unwrap()), Some(false));
        assert_eq!(ma.admits_lasso(&Lasso::parse2("<-> | -> <->").unwrap()), Some(true));
    }

    #[test]
    fn fingerprints_are_structural_across_spellings() {
        // The same adversary through the catalog, a bare word, and pool().
        let by_catalog = parse("catalog(sw-lossy-link)").fingerprint().unwrap();
        let by_word = parse("<-> <- ->").fingerprint().unwrap();
        let by_pool = parse("pool(-> <- <->)").fingerprint().unwrap();
        assert_eq!(by_catalog, by_word);
        assert_eq!(by_word, by_pool);
        // Union member order cannot matter.
        let ab = parse("union(pool(->), pool(<-))").fingerprint().unwrap();
        let ba = parse("union(pool(<-), pool(->))").fingerprint().unwrap();
        assert_eq!(ab, ba);
        assert_eq!(ab, parse("catalog(forever-directional)").fingerprint().unwrap());
    }
}
