//! Stable structural fingerprints of message adversaries.
//!
//! The lab's memoization cache (`consensus-lab`) keys shared
//! [`PrefixSpace`](https://docs.rs/consensus-core)s by *(adversary
//! fingerprint, depth)*, so the fingerprint must be (a) identical across
//! runs and platforms — no `RandomState`, no addresses — and (b) structural:
//! two differently-constructed adversaries with the same pool, liveness, and
//! deadline hash the same (e.g. `all_rooted(2)` and the Santoro–Widmayer
//! lossy link are the *same* oblivious adversary and share one cache slot).
//!
//! The default [`MessageAdversary::fingerprint`](crate::MessageAdversary::fingerprint)
//! feeds the process count, compactness bit, `describe()` label, and — when
//! a [`pool_hint`](crate::MessageAdversary::pool_hint) is available — the
//! sorted pool graph codes into FNV-1a. Wrapper adversaries (unions,
//! intersections) override it to fold member fingerprints instead.

/// Incremental FNV-1a (64-bit) hasher with a deterministic basis.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorb a length-prefixed `u64` (keeps field boundaries unambiguous).
    pub fn write_u64(&mut self, x: u64) -> &mut Self {
        self.write(&x.to_le_bytes())
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// The default structural fingerprint; see the module docs. Exposed so
/// implementations that *shadow* the trait default (e.g. after wrapping)
/// can reuse it.
pub fn structural(n: usize, compact: bool, describe: &str, pool_codes: Option<Vec<u64>>) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(n as u64);
    h.write(&[u8::from(compact)]);
    match pool_codes {
        Some(mut codes) => {
            // The pool is the structure; the label only disambiguates the
            // liveness family riding on top of it.
            codes.sort_unstable();
            codes.dedup();
            h.write_u64(codes.len() as u64);
            for c in codes {
                h.write_u64(c);
            }
            h.write(describe.as_bytes());
        }
        None => {
            h.write_u64(u64::MAX);
            h.write(describe.as_bytes());
        }
    }
    h.finish()
}

/// Fold member fingerprints into a wrapper fingerprint (order-sensitive for
/// intersections where member order affects nothing semantically, the
/// callers sort first).
pub fn combine(tag: &str, members: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = Fnv1a::new();
    h.write(tag.as_bytes());
    for m in members {
        h.write_u64(m);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use crate::MessageAdversary;
    use dyngraph::generators;

    #[test]
    fn identical_structure_same_fingerprint() {
        // Construction order of the pool must not matter (pools are
        // normalized + sorted inside GeneralMA).
        let mut pool = generators::lossy_link_full();
        let a = crate::GeneralMA::oblivious(pool.clone());
        pool.reverse();
        let b = crate::GeneralMA::oblivious(pool);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn different_structure_different_fingerprint() {
        let full = crate::GeneralMA::oblivious(generators::lossy_link_full());
        let reduced = crate::GeneralMA::oblivious(generators::lossy_link_reduced());
        assert_ne!(full.fingerprint(), reduced.fingerprint());
    }

    #[test]
    fn liveness_changes_fingerprint() {
        let pool = generators::lossy_link_full();
        let oblivious = crate::GeneralMA::oblivious(pool.clone());
        let stabilizing = crate::GeneralMA::stabilizing(pool.clone(), 2, None);
        let by4 = crate::GeneralMA::stabilizing(pool, 2, Some(4));
        assert_ne!(oblivious.fingerprint(), stabilizing.fingerprint());
        assert_ne!(stabilizing.fingerprint(), by4.fingerprint());
    }

    #[test]
    fn fingerprint_is_stable_across_runs() {
        // Pinned digest: a change here (hash constants, field order, label
        // text, pool encoding) invalidates every stored lab result keyed by
        // fingerprint — bump the literal deliberately, not by accident.
        let ma = crate::GeneralMA::oblivious(generators::lossy_link_full());
        assert_eq!(ma.fingerprint(), 0xfc14_99e1_2ef0_a55e);
        let through_dyn: &dyn MessageAdversary = &ma;
        assert_eq!(through_dyn.fingerprint(), ma.fingerprint());
    }

    #[test]
    fn union_folds_members() {
        let entry = crate::catalog::forever_directional();
        let same = crate::catalog::forever_directional();
        assert_eq!(entry.fingerprint(), same.fingerprint());
    }
}
