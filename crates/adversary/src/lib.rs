//! Message adversaries (paper §2) and their finite operationalization.
//!
//! A *message adversary* (MA) is a set of infinite sequences of communication
//! graphs; a graph sequence in the set is *admissible*. This crate provides:
//!
//! * the object-safe [`MessageAdversary`] trait — an MA exposed through its
//!   finitely-branching structure: which graphs may extend an admissible
//!   prefix, which finite prefixes are admissible, and (for ultimately
//!   periodic sequences) exact admissibility of [`Lasso`]s;
//! * [`GeneralMA`] — the concrete family covering every adversary used in
//!   the paper: a *pool* of per-round graphs plus an optional [`Liveness`]
//!   condition and an optional *deadline*:
//!   - pool only → **oblivious** adversaries ([8, 21]; compact),
//!   - liveness with deadline `R` → compact approximations ("the liveness
//!     event happens within `R` rounds"),
//!   - liveness without deadline → **non-compact** adversaries like the
//!     eventually-stabilizing ones of [6, 9, 23] (limits that never satisfy
//!     the liveness are excluded);
//! * [`UnionMA`] — finite unions of adversaries;
//! * [`enumerate`] — exhaustive expansion of the depth-`t` prefix space
//!   (inputs × admissible graph prefixes) with views interned, the input to
//!   the topological solvability checker;
//! * [`sample`] — randomized admissible prefixes and lassos;
//! * [`limit`] — excluded-limit analysis for non-compact adversaries
//!   (candidate *fair/unfair* limit sequences, paper Definition 5.16).
//!
//! # Quickstart
//!
//! ```
//! use adversary::{GeneralMA, MessageAdversary};
//! use dyngraph::generators;
//!
//! // The Santoro–Widmayer lossy link: oblivious over {←, ↔, →}.
//! let ma = GeneralMA::oblivious(generators::lossy_link_full());
//! assert!(ma.is_compact());
//! assert_eq!(ma.n(), 2);
//! // Every prefix over the pool is admissible; 3 extensions at every step.
//! let empty = dyngraph::GraphSeq::new();
//! assert_eq!(ma.extensions(&empty).len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod catalog;
pub mod concat;
pub mod enumerate;
pub mod fingerprint;
mod general;
pub mod limit;
pub mod predicate;
pub mod sample;
pub mod spec;
mod union;

pub use concat::ConcatMA;
pub use general::{GeneralMA, Liveness};
pub use predicate::{IntersectMA, PredicateMA};
pub use spec::SpecTerm;
pub use union::UnionMA;

use dyngraph::{Digraph, GraphSeq, Lasso};

/// A boxed, thread-shareable adversary — the currency of the catalog
/// registry and the lab's scenario grids.
pub type DynMA = Box<dyn MessageAdversary + Send + Sync>;

/// An object-safe message adversary.
///
/// Implementations expose the MA through finite questions. The contract:
///
/// * [`admits_prefix`](Self::admits_prefix) is `true` iff the finite prefix
///   extends to at least one admissible infinite sequence;
/// * [`extensions`](Self::extensions) returns exactly the graphs `g` with
///   `admits_prefix(prefix · g)`;
/// * [`admits_lasso`](Self::admits_lasso) decides membership of an
///   ultimately periodic sequence, when the implementation can
///   (`None` = cannot decide);
/// * [`is_compact`](Self::is_compact) reports limit-closedness (paper §6.2):
///   compact ⟺ every convergent sequence of admissible sequences has an
///   admissible limit.
pub trait MessageAdversary {
    /// Number of processes.
    fn n(&self) -> usize;

    /// The graphs that may be played next after `prefix` while staying
    /// admissible.
    fn extensions(&self, prefix: &GraphSeq) -> Vec<Digraph>;

    /// Whether `prefix` is the prefix of some admissible infinite sequence.
    fn admits_prefix(&self, prefix: &GraphSeq) -> bool;

    /// Whether the ultimately periodic sequence is admissible, if decidable.
    fn admits_lasso(&self, lasso: &Lasso) -> Option<bool>;

    /// Whether the adversary is limit-closed (compact).
    fn is_compact(&self) -> bool;

    /// A short human-readable description.
    fn describe(&self) -> String;

    /// The per-round graph pool, if the adversary draws each round's graph
    /// from a fixed finite set. Enables pool-based analyses (exact
    /// distance-0 chain certificates, excluded-limit enumeration).
    fn pool_hint(&self) -> Option<Vec<Digraph>> {
        None
    }

    /// A stable structural fingerprint — identical across runs for
    /// identically-structured adversaries; see [`fingerprint`]. Wrapper
    /// adversaries should override this to fold member fingerprints.
    ///
    /// The default hashes only what the trait exposes (`n`, compactness,
    /// `describe`, `pool_hint`). Implementations with behavior that those
    /// don't capture — user closures, external state — **must** override
    /// it (see [`PredicateMA`]'s per-construction nonce), or structurally
    /// different adversaries will collide in fingerprint-keyed caches.
    fn fingerprint(&self) -> u64 {
        fingerprint::structural(
            self.n(),
            self.is_compact(),
            &self.describe(),
            self.pool_hint().map(|pool| pool.iter().map(Digraph::code).collect()),
        )
    }
}

impl<T: MessageAdversary + ?Sized> MessageAdversary for Box<T> {
    fn n(&self) -> usize {
        (**self).n()
    }

    fn extensions(&self, prefix: &GraphSeq) -> Vec<Digraph> {
        (**self).extensions(prefix)
    }

    fn admits_prefix(&self, prefix: &GraphSeq) -> bool {
        (**self).admits_prefix(prefix)
    }

    fn admits_lasso(&self, lasso: &Lasso) -> Option<bool> {
        (**self).admits_lasso(lasso)
    }

    fn is_compact(&self) -> bool {
        (**self).is_compact()
    }

    fn describe(&self) -> String {
        (**self).describe()
    }

    fn pool_hint(&self) -> Option<Vec<Digraph>> {
        (**self).pool_hint()
    }

    fn fingerprint(&self) -> u64 {
        (**self).fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyngraph::generators;

    #[test]
    fn trait_is_object_safe() {
        let ma: Box<dyn MessageAdversary> =
            Box::new(GeneralMA::oblivious(generators::lossy_link_reduced()));
        assert_eq!(ma.n(), 2);
        assert!(ma.is_compact());
        assert!(!ma.describe().is_empty());
    }
}
