//! A catalog of named message adversaries from the literature.
//!
//! Each constructor documents its source and known solvability status; the
//! integration tests cross-check the checker's verdicts against this
//! catalog (DESIGN.md §7).

use dyngraph::{generators, Digraph};

use crate::{DynMA, GeneralMA, UnionMA};

/// Santoro–Widmayer \[21\]: the `n = 2` lossy link `{←, ↔, →}` — up to
/// `n − 1 = 1` message lost per round. Consensus **impossible**.
pub fn santoro_widmayer_lossy_link() -> GeneralMA {
    GeneralMA::oblivious(generators::lossy_link_full())
}

/// Coulouma–Godard–Peters \[8\]: the reduced lossy link `{←, →}`.
/// Consensus **solvable** (one-round direction rule).
pub fn cgp_reduced_lossy_link() -> GeneralMA {
    GeneralMA::oblivious(generators::lossy_link_reduced())
}

/// Santoro–Widmayer general form: all graphs obtained from the complete
/// graph on `n` processes by at most `k` lost messages per round.
/// Impossible for `k ≥ n − 1` (losses can isolate a process's influence);
/// solvable for `k = 0` (complete graph each round).
///
/// # Panics
/// Panics if the complete graph on `n` has more than 20 edges (`n > 5`).
pub fn message_loss(n: usize, k: usize) -> GeneralMA {
    GeneralMA::oblivious(generators::complete_minus_losses(n, k))
}

/// The oblivious out-star adversary on `n` processes: each round an
/// arbitrary broadcast star. **Solvable** — the round-1 center is common
/// knowledge.
pub fn rotating_star(n: usize) -> GeneralMA {
    GeneralMA::oblivious(generators::all_out_stars(n))
}

/// The oblivious adversary over **all rooted graphs** on `n` processes
/// (nonempty kernel each round). For `n ≥ 2` consensus is **impossible**
/// (contains the lossy-link obstruction); the classic example of "rooted
/// every round is not enough" [6, 23].
///
/// # Panics
/// Panics for `n > 4` (enumeration size).
pub fn all_rooted(n: usize) -> GeneralMA {
    assert!(n <= 4, "all_rooted is capped at n = 4");
    GeneralMA::oblivious(generators::rooted_graphs(n).collect())
}

/// The eventually-stabilizing (VSSC-style) adversary of Winkler–Schwarz–
/// Schmid \[23\] over all rooted graphs: some window of `window` rounds has a
/// vertex-stable root component. Non-compact for `deadline = None`.
/// Solvable iff the window length exceeds the dynamic diameter (for
/// `n = 2`: window ≥ 2).
pub fn vssc(n: usize, window: usize, deadline: Option<usize>) -> GeneralMA {
    assert!(n <= 4, "vssc is capped at n = 4");
    GeneralMA::stabilizing(generators::rooted_graphs(n).collect(), window, deadline)
}

/// The `n = 2` "eventually bidirectional" adversary: over `{←, ↔, →}`, a
/// `↔` round eventually occurs. Non-compact; the excluded limits are the
/// `↔`-free sequences (the coordinated-attack obstruction of Fevat–Godard
/// \[9\] lives among them).
pub fn eventually_bidirectional() -> GeneralMA {
    GeneralMA::eventually_graph(
        generators::lossy_link_full(),
        Digraph::parse2("<->").expect("static"),
        None,
    )
}

/// "Eventually forever →" ∪ "eventually forever ←" on `n = 2`, realized as
/// the union of the two constant-pool adversaries (the sequences constant
/// from round 1; the general eventually-forever closure is obtained by
/// prefixing with [`GeneralMA::with_deadline`] approximations). Compact and
/// **solvable** — round 1 reveals the branch.
pub fn forever_directional() -> UnionMA {
    let right = GeneralMA::oblivious(vec![Digraph::parse2("->").expect("static")]);
    let left = GeneralMA::oblivious(vec![Digraph::parse2("<-").expect("static")]);
    UnionMA::new(vec![Box::new(right), Box::new(left)])
}

/// The expected finite-depth checker outcome of a catalog entry:
/// `Some(true)` — separates (Solvable), `Some(false)` — exact impossibility
/// certificate (Unsolvable), `None` — persistent mixing (Undecided with
/// chain evidence; for the compact entries this is the limit-only
/// impossibility of §6.1).
pub type ExpectedOutcome = Option<bool>;

/// A named, buildable catalog entry — the unit the lab's scenario grids
/// iterate over.
pub struct CatalogEntry {
    /// Stable registry name (CLI-addressable, `kebab-case`).
    pub name: &'static str,
    /// One-line provenance/summary.
    pub summary: &'static str,
    /// Ground-truth finite-depth checker outcome, where the literature
    /// pins one.
    pub expected: ExpectedOutcome,
    /// The entry's canonical [`crate::spec`] string: parsing it yields an
    /// adversary with the **same fingerprint** as [`build`](Self::build)
    /// (entries whose structure the string grammar cannot express — e.g.
    /// `n > 2` pools — fall back to `catalog(name)`).
    pub spec: &'static str,
    build: fn() -> DynMA,
}

impl CatalogEntry {
    /// Construct the adversary.
    pub fn build(&self) -> DynMA {
        (self.build)()
    }
}

impl std::fmt::Debug for CatalogEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CatalogEntry")
            .field("name", &self.name)
            .field("expected", &self.expected)
            .finish()
    }
}

/// The built-in registry: every named adversary of this module in a
/// machine-iterable form. Order is stable (it defines scenario-grid order).
pub fn entries() -> Vec<CatalogEntry> {
    vec![
        CatalogEntry {
            name: "sw-lossy-link",
            summary: "Santoro–Widmayer {←, ↔, →}; unsolvable (limit-only)",
            expected: None,
            spec: "pool(<- -> <->)",
            build: || Box::new(santoro_widmayer_lossy_link()),
        },
        CatalogEntry {
            name: "cgp-reduced-lossy-link",
            summary: "Coulouma–Godard–Peters {←, →}; solvable at depth 1",
            expected: Some(true),
            spec: "pool(<- ->)",
            build: || Box::new(cgp_reduced_lossy_link()),
        },
        CatalogEntry {
            name: "message-loss-2-0",
            summary: "n = 2, no losses (complete graph each round); solvable",
            expected: Some(true),
            spec: "pool(<->)",
            build: || Box::new(message_loss(2, 0)),
        },
        CatalogEntry {
            name: "message-loss-2-1",
            summary: "n = 2, ≤ 1 loss per round; unsolvable (limit-only)",
            expected: None,
            spec: "pool(<- -> <->)",
            build: || Box::new(message_loss(2, 1)),
        },
        CatalogEntry {
            name: "message-loss-2-2",
            summary: "n = 2, ≤ 2 losses (empty graph possible); exact chain",
            expected: Some(false),
            spec: "pool(. <- -> <->)",
            build: || Box::new(message_loss(2, 2)),
        },
        CatalogEntry {
            name: "rotating-star-3",
            summary: "n = 3 out-stars; solvable (round-1 center broadcast)",
            expected: Some(true),
            spec: "catalog(rotating-star-3)",
            build: || Box::new(rotating_star(3)),
        },
        CatalogEntry {
            name: "all-rooted-2",
            summary: "all rooted graphs, n = 2 (≡ sw-lossy-link); unsolvable",
            expected: None,
            spec: "pool(<- -> <->)",
            build: || Box::new(all_rooted(2)),
        },
        CatalogEntry {
            name: "vssc-2-2-by-3",
            summary: "stable window 2 by round 3 (compact VSSC); solvable",
            expected: Some(true),
            spec: "window(<- -> <->, 2, by=3)",
            build: || Box::new(vssc(2, 2, Some(3))),
        },
        CatalogEntry {
            name: "vssc-2-1-by-2",
            summary: "stable window 1 by round 2; window too short — mixed",
            expected: None,
            spec: "window(<- -> <->, 1, by=2)",
            build: || Box::new(vssc(2, 1, Some(2))),
        },
        CatalogEntry {
            name: "eventually-bidirectional",
            summary: "◇↔ over {←, ↔, →}, no deadline; non-compact",
            expected: None,
            spec: "eventually(<- -> <->, <->)",
            build: || Box::new(eventually_bidirectional()),
        },
        CatalogEntry {
            name: "eventually-bidirectional-by-2",
            summary: "↔ within 2 rounds; compact approximation, solvable",
            expected: Some(true),
            spec: "eventually(<- -> <->, <->, by=2)",
            build: || Box::new(eventually_bidirectional().with_deadline(2)),
        },
        CatalogEntry {
            name: "forever-directional",
            summary: "constant → ∪ constant ← (union); solvable at round 1",
            expected: Some(true),
            spec: "union(pool(->), pool(<-))",
            build: || Box::new(forever_directional()),
        },
    ]
}

/// Look up a registry entry by name.
pub fn by_name(name: &str) -> Option<CatalogEntry> {
    entries().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MessageAdversary;

    #[test]
    fn registry_names_unique_and_buildable() {
        let entries = entries();
        let mut names: Vec<&str> = entries.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), entries.len(), "registry names must be unique");
        for e in &entries {
            let ma = e.build();
            assert!(ma.n() >= 2, "{}: degenerate adversary", e.name);
            assert!(!ma.describe().is_empty());
            // Fingerprints must be reproducible across builds.
            assert_eq!(ma.fingerprint(), e.build().fingerprint(), "{}", e.name);
        }
    }

    #[test]
    fn every_entry_spec_string_matches_its_build() {
        for e in entries() {
            let term =
                crate::SpecTerm::parse(e.spec).unwrap_or_else(|err| panic!("{}: {err}", e.name));
            // The published string is already canonical.
            assert_eq!(term.to_string(), e.spec, "{}", e.name);
            // ... and lowers to the very same fingerprint as build().
            let lowered = term.lower().unwrap_or_else(|err| panic!("{}: {err}", e.name));
            assert_eq!(lowered.fingerprint(), e.build().fingerprint(), "{}", e.name);
            assert_eq!(lowered.n(), e.build().n(), "{}", e.name);
            assert_eq!(lowered.is_compact(), e.build().is_compact(), "{}", e.name);
        }
    }

    #[test]
    fn by_name_roundtrip() {
        for e in entries() {
            assert_eq!(by_name(e.name).expect("registered").name, e.name);
        }
        assert!(by_name("no-such-adversary").is_none());
    }

    #[test]
    fn structurally_equal_entries_share_fingerprints() {
        // all-rooted-2 is the same oblivious adversary as sw-lossy-link:
        // the registry deliberately exposes the alias so the lab cache
        // demonstrates structural sharing.
        let a = by_name("sw-lossy-link").unwrap().build();
        let b = by_name("all-rooted-2").unwrap().build();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn catalog_constructs() {
        assert_eq!(santoro_widmayer_lossy_link().pool().len(), 3);
        assert_eq!(cgp_reduced_lossy_link().pool().len(), 2);
        assert_eq!(rotating_star(3).pool().len(), 3);
        assert_eq!(message_loss(2, 1).pool().len(), 3);
        assert!(all_rooted(2).pool().len() == 3);
        assert!(!eventually_bidirectional().is_compact());
        assert!(forever_directional().is_compact());
    }

    #[test]
    fn all_rooted_n3_pool_size() {
        // Rooted graphs on 3 nodes: counted by the generator.
        let expected = dyngraph::generators::rooted_graphs(3).count();
        assert_eq!(all_rooted(3).pool().len(), expected);
        assert!(expected > 10);
    }

    #[test]
    fn vssc_is_stabilizing() {
        let ma = vssc(2, 2, None);
        assert!(!ma.is_compact());
        let ma = vssc(2, 2, Some(4));
        assert!(ma.is_compact());
    }

    #[test]
    fn message_loss_monotone_pools() {
        let k0 = message_loss(2, 0);
        let k1 = message_loss(2, 1);
        let k2 = message_loss(2, 2);
        assert!(k0.pool().len() < k1.pool().len());
        assert!(k1.pool().len() < k2.pool().len());
        for g in k1.pool() {
            assert!(k2.pool().contains(g));
        }
    }
}
