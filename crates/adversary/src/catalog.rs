//! A catalog of named message adversaries from the literature.
//!
//! Each constructor documents its source and known solvability status; the
//! integration tests cross-check the checker's verdicts against this
//! catalog (DESIGN.md §7).

use dyngraph::{generators, Digraph};

use crate::{GeneralMA, UnionMA};

/// Santoro–Widmayer [21]: the `n = 2` lossy link `{←, ↔, →}` — up to
/// `n − 1 = 1` message lost per round. Consensus **impossible**.
pub fn santoro_widmayer_lossy_link() -> GeneralMA {
    GeneralMA::oblivious(generators::lossy_link_full())
}

/// Coulouma–Godard–Peters [8]: the reduced lossy link `{←, →}`.
/// Consensus **solvable** (one-round direction rule).
pub fn cgp_reduced_lossy_link() -> GeneralMA {
    GeneralMA::oblivious(generators::lossy_link_reduced())
}

/// Santoro–Widmayer general form: all graphs obtained from the complete
/// graph on `n` processes by at most `k` lost messages per round.
/// Impossible for `k ≥ n − 1` (losses can isolate a process's influence);
/// solvable for `k = 0` (complete graph each round).
///
/// # Panics
/// Panics if the complete graph on `n` has more than 20 edges (`n > 5`).
pub fn message_loss(n: usize, k: usize) -> GeneralMA {
    GeneralMA::oblivious(generators::complete_minus_losses(n, k))
}

/// The oblivious out-star adversary on `n` processes: each round an
/// arbitrary broadcast star. **Solvable** — the round-1 center is common
/// knowledge.
pub fn rotating_star(n: usize) -> GeneralMA {
    GeneralMA::oblivious(generators::all_out_stars(n))
}

/// The oblivious adversary over **all rooted graphs** on `n` processes
/// (nonempty kernel each round). For `n ≥ 2` consensus is **impossible**
/// (contains the lossy-link obstruction); the classic example of "rooted
/// every round is not enough" [6, 23].
///
/// # Panics
/// Panics for `n > 4` (enumeration size).
pub fn all_rooted(n: usize) -> GeneralMA {
    assert!(n <= 4, "all_rooted is capped at n = 4");
    GeneralMA::oblivious(generators::rooted_graphs(n).collect())
}

/// The eventually-stabilizing (VSSC-style) adversary of Winkler–Schwarz–
/// Schmid [23] over all rooted graphs: some window of `window` rounds has a
/// vertex-stable root component. Non-compact for `deadline = None`.
/// Solvable iff the window length exceeds the dynamic diameter (for
/// `n = 2`: window ≥ 2).
pub fn vssc(n: usize, window: usize, deadline: Option<usize>) -> GeneralMA {
    assert!(n <= 4, "vssc is capped at n = 4");
    GeneralMA::stabilizing(generators::rooted_graphs(n).collect(), window, deadline)
}

/// The `n = 2` "eventually bidirectional" adversary: over `{←, ↔, →}`, a
/// `↔` round eventually occurs. Non-compact; the excluded limits are the
/// `↔`-free sequences (the coordinated-attack obstruction of Fevat–Godard
/// [9] lives among them).
pub fn eventually_bidirectional() -> GeneralMA {
    GeneralMA::eventually_graph(
        generators::lossy_link_full(),
        Digraph::parse2("<->").expect("static"),
        None,
    )
}

/// "Eventually forever →" ∪ "eventually forever ←" on `n = 2`, realized as
/// the union of the two constant-pool adversaries (the sequences constant
/// from round 1; the general eventually-forever closure is obtained by
/// prefixing with [`GeneralMA::with_deadline`] approximations). Compact and
/// **solvable** — round 1 reveals the branch.
pub fn forever_directional() -> UnionMA {
    let right = GeneralMA::oblivious(vec![Digraph::parse2("->").expect("static")]);
    let left = GeneralMA::oblivious(vec![Digraph::parse2("<-").expect("static")]);
    UnionMA::new(vec![Box::new(right), Box::new(left)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MessageAdversary;

    #[test]
    fn catalog_constructs() {
        assert_eq!(santoro_widmayer_lossy_link().pool().len(), 3);
        assert_eq!(cgp_reduced_lossy_link().pool().len(), 2);
        assert_eq!(rotating_star(3).pool().len(), 3);
        assert_eq!(message_loss(2, 1).pool().len(), 3);
        assert!(all_rooted(2).pool().len() == 3);
        assert!(!eventually_bidirectional().is_compact());
        assert!(forever_directional().is_compact());
    }

    #[test]
    fn all_rooted_n3_pool_size() {
        // Rooted graphs on 3 nodes: counted by the generator.
        let expected = dyngraph::generators::rooted_graphs(3).count();
        assert_eq!(all_rooted(3).pool().len(), expected);
        assert!(expected > 10);
    }

    #[test]
    fn vssc_is_stabilizing() {
        let ma = vssc(2, 2, None);
        assert!(!ma.is_compact());
        let ma = vssc(2, 2, Some(4));
        assert!(ma.is_compact());
    }

    #[test]
    fn message_loss_monotone_pools() {
        let k0 = message_loss(2, 0);
        let k1 = message_loss(2, 1);
        let k2 = message_loss(2, 2);
        assert!(k0.pool().len() < k1.pool().len());
        assert!(k1.pool().len() < k2.pool().len());
        for g in k1.pool() {
            assert!(k2.pool().contains(g));
        }
    }
}
