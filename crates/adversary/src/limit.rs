//! Excluded-limit analysis for non-compact adversaries.
//!
//! A non-compact adversary is not limit-closed: there are convergent
//! sequences of admissible graph sequences whose limit is **not** admissible
//! (paper §6.2/§6.3, Fig. 5). Those excluded limits are where the paper's
//! *fair and unfair sequences* (Definition 5.16) live: the forever-bivalent
//! runs of bivalence proofs are exactly such limits.
//!
//! This module enumerates *candidate excluded limits* in the ultimately
//! periodic fragment: lassos over the pool that violate the liveness, each
//! paired with the witnessing family of admissible sequences converging to
//! it.

use dyngraph::{GraphSeq, Lasso};

use crate::{GeneralMA, MessageAdversary};

/// An excluded limit together with its convergence witness.
#[derive(Debug, Clone)]
pub struct ExcludedLimit {
    /// The inadmissible limit sequence (over the pool, violating liveness).
    pub limit: Lasso,
    /// Admissible lassos `a_k` with `a_k → limit`: `a_k` agrees with the
    /// limit for the first `k` rounds and then satisfies the liveness. The
    /// common-prefix distance `d_max(a_k, limit) ≤ 2^{−k}` → 0.
    pub witnesses: Vec<Lasso>,
}

/// Enumerate all pool-valid lassos with the given shape.
pub fn pool_lassos(ma: &GeneralMA, prefix_len: usize, cycle_len: usize) -> Vec<Lasso> {
    assert!(cycle_len >= 1);
    let pool = ma.pool();
    let mut out = Vec::new();
    // Enumerate pool^(prefix_len + cycle_len) by counting.
    let total_len = prefix_len + cycle_len;
    let count = pool.len().pow(total_len as u32);
    for mut idx in 0..count {
        let mut graphs = Vec::with_capacity(total_len);
        for _ in 0..total_len {
            graphs.push(pool[idx % pool.len()].clone());
            idx /= pool.len();
        }
        let prefix: GraphSeq = graphs[..prefix_len].iter().cloned().collect();
        let cycle: GraphSeq = graphs[prefix_len..].iter().cloned().collect();
        out.push(Lasso::new(prefix, cycle));
    }
    out
}

/// Find excluded limits among lassos of the given shape, each with a family
/// of `witness_count` admissible sequences converging to it.
///
/// For each pool-valid but inadmissible lasso `r`, the witness `a_k` copies
/// `r` for `k` rounds and then switches to a liveness-satisfying
/// continuation (found by greedy search over extensions). If no admissible
/// continuation exists, the candidate is dropped (it is not a limit of
/// admissible sequences).
pub fn excluded_limits(
    ma: &GeneralMA,
    prefix_len: usize,
    cycle_len: usize,
    witness_count: usize,
) -> Vec<ExcludedLimit> {
    let mut out = Vec::new();
    if ma.is_compact() {
        return out;
    }
    for lasso in pool_lassos(ma, prefix_len, cycle_len) {
        if ma.admits_lasso(&lasso) != Some(false) {
            continue;
        }
        let mut witnesses = Vec::with_capacity(witness_count);
        for k in 1..=witness_count {
            if let Some(w) = admissible_rejoin(ma, &lasso, k) {
                witnesses.push(w);
            }
        }
        if witnesses.len() == witness_count {
            out.push(ExcludedLimit { limit: lasso, witnesses });
        }
    }
    out
}

/// An admissible lasso agreeing with `limit` on the first `k` rounds, if one
/// exists: take `limit`'s `k`-prefix, then append admissible extensions
/// (greedy, preferring ones that satisfy the liveness) and close the loop
/// with a liveness-satisfying cycle.
pub fn admissible_rejoin(ma: &GeneralMA, limit: &Lasso, k: usize) -> Option<Lasso> {
    let prefix = limit.unroll(k);
    if !ma.admits_prefix(&prefix) {
        return None;
    }
    // Greedily extend until the liveness is satisfied (bounded effort).
    let mut seq = prefix;
    for _ in 0..(4 * (ma.n() + k + 4)) {
        if ma.liveness().satisfied(&seq) {
            // Close with a self-loop on the last graph (pool-valid; liveness
            // already satisfied, so any pool cycle is fine).
            let g = if seq.is_empty() {
                ma.pool()[0].clone()
            } else {
                seq.graph(seq.rounds()).clone()
            };
            let lasso = Lasso::new(seq, GraphSeq::from_graphs(vec![g]));
            if ma.admits_lasso(&lasso) == Some(true) {
                return Some(lasso);
            } else {
                return None;
            }
        }
        // Choose the extension that makes the most liveness progress: try
        // each and prefer one that satisfies the liveness immediately.
        let exts = ma.extensions(&seq);
        if exts.is_empty() {
            return None;
        }
        let best = exts
            .iter()
            .find(|g| ma.liveness().satisfied(&seq.extended((*g).clone())))
            .unwrap_or(&exts[0]);
        seq.push(best.clone());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyngraph::{generators, Digraph};

    #[test]
    fn pool_lassos_count() {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        assert_eq!(pool_lassos(&ma, 0, 1).len(), 2);
        assert_eq!(pool_lassos(&ma, 1, 2).len(), 8);
    }

    #[test]
    fn compact_has_no_excluded_limits() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        assert!(excluded_limits(&ma, 0, 1, 3).is_empty());
    }

    #[test]
    fn eventually_swap_excludes_swap_free_lassos() {
        let ma = GeneralMA::eventually_graph(
            generators::lossy_link_full(),
            Digraph::parse2("<->").unwrap(),
            None,
        );
        let ex = excluded_limits(&ma, 0, 1, 3);
        // Swap-free constant lassos: →^ω and ←^ω.
        assert_eq!(ex.len(), 2);
        for e in &ex {
            assert_eq!(ma.admits_lasso(&e.limit), Some(false));
            assert_eq!(e.witnesses.len(), 3);
            for (i, w) in e.witnesses.iter().enumerate() {
                assert_eq!(ma.admits_lasso(w), Some(true));
                // Witness k agrees with the limit for k rounds.
                let k = i + 1;
                for t in 1..=k {
                    assert_eq!(w.graph_at(t), e.limit.graph_at(t), "round {t}");
                }
            }
        }
    }

    #[test]
    fn stabilizing_excludes_alternating() {
        let ma = GeneralMA::stabilizing(generators::lossy_link_full(), 2, None);
        let ex = excluded_limits(&ma, 0, 2, 2);
        // The alternating lassos (→←)^ω and (←→)^ω are excluded; also
        // (→↔)^ω-style mixtures whose root masks never repeat… count > 0 and
        // every reported limit is indeed inadmissible with valid witnesses.
        assert!(!ex.is_empty());
        assert!(ex.iter().any(|e| format!("{}", e.limit).contains("-> <-")));
        for e in &ex {
            assert_eq!(ma.admits_lasso(&e.limit), Some(false));
            for w in &e.witnesses {
                assert_eq!(ma.admits_lasso(w), Some(true));
            }
        }
    }

    #[test]
    fn rejoin_prefix_agreement() {
        let ma = GeneralMA::eventually_graph(
            generators::lossy_link_full(),
            Digraph::parse2("<->").unwrap(),
            None,
        );
        let limit = Lasso::parse2("->").unwrap();
        let w = admissible_rejoin(&ma, &limit, 5).unwrap();
        for t in 1..=5 {
            assert_eq!(w.graph_at(t).arrow2(), Some("->"));
        }
        assert_eq!(ma.admits_lasso(&w), Some(true));
    }
}
