//! Dense-ID arena for admissible graph-sequence prefixes.
//!
//! The expansion engine enumerates the tree of admissible prefixes round by
//! round. Instead of materializing every intermediate prefix as its own
//! [`GraphSeq`] (a full `Vec<Digraph>` clone per node per round), the arena
//! stores one `(parent, round graph)` pair per node in depth order, with a
//! flat *round-offset table* marking where each depth's contiguous id range
//! begins. Sequence identity becomes a dense `usize` id — the key property
//! the parallel expansion and the extension fast path rely on: extensions
//! are computed **once per frontier node** and indexed by offset, never by
//! hashing a `GraphSeq`.

use std::ops::Range;

use dyngraph::{Digraph, GraphSeq};

use crate::MessageAdversary;

/// The admissible-prefix tree of one adversary, grown breadth-first.
///
/// Node 0 is the empty prefix; nodes of depth `r` occupy the contiguous id
/// range `round_range(r)`. Every non-root node records its parent id and
/// the graph of its last round only.
#[derive(Debug, Clone)]
pub struct SeqArena {
    /// `parents[id - 1]` = parent node id of node `id` (ids are 1-based in
    /// these two columns; node 0, the root, has no row).
    parents: Vec<u32>,
    /// `graphs[id - 1]` = the last-round graph of node `id`.
    graphs: Vec<Digraph>,
    /// `round_offsets[r]` = first node id of depth `r`;
    /// `round_offsets[rounds() + 1]` = total node count.
    round_offsets: Vec<usize>,
    /// The materialized sequences of the current frontier (deepest round),
    /// in id order — kept so growing by one round extends these instead of
    /// re-walking parent chains.
    frontier_seqs: Vec<GraphSeq>,
}

/// Error: growing the arena one more round would exceed the run budget
/// (frontier size × input count, the same quantity the serial pre-count
/// checked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaBudget {
    /// A lower bound on the runs the grown frontier implies.
    pub needed: usize,
}

impl SeqArena {
    /// The one-node arena holding only the empty prefix.
    pub fn new() -> Self {
        SeqArena {
            parents: Vec::new(),
            graphs: Vec::new(),
            round_offsets: vec![0, 1],
            frontier_seqs: vec![GraphSeq::new()],
        }
    }

    /// Number of rounds grown so far (the depth of the frontier).
    pub fn rounds(&self) -> usize {
        self.round_offsets.len() - 2
    }

    /// Total nodes, the root included.
    pub fn len(&self) -> usize {
        *self.round_offsets.last().expect("offsets nonempty")
    }

    /// Whether the arena holds only the root.
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// The id range of the depth-`r` nodes.
    ///
    /// # Panics
    /// Panics if `r > rounds()`.
    pub fn round_range(&self, r: usize) -> Range<usize> {
        self.round_offsets[r]..self.round_offsets[r + 1]
    }

    /// The id range of the deepest round.
    pub fn frontier(&self) -> Range<usize> {
        self.round_range(self.rounds())
    }

    /// The materialized sequences of the frontier, in id order.
    pub fn frontier_seqs(&self) -> &[GraphSeq] {
        &self.frontier_seqs
    }

    /// Consume the arena, keeping only the materialized frontier.
    pub fn into_frontier_seqs(self) -> Vec<GraphSeq> {
        self.frontier_seqs
    }

    /// Materialize the sequence of an arbitrary node by walking its parent
    /// chain (the frontier is cheaper through [`Self::frontier_seqs`]).
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn materialize(&self, id: usize) -> GraphSeq {
        assert!(id < self.len(), "node {id} out of range");
        let mut rev: Vec<Digraph> = Vec::new();
        let mut cur = id;
        while cur != 0 {
            rev.push(self.graphs[cur - 1].clone());
            cur = self.parents[cur - 1] as usize;
        }
        rev.reverse();
        GraphSeq::from_graphs(rev)
    }

    /// Grow the frontier by one round: every frontier node is extended by
    /// its admissible extensions (asked of `ma` exactly once per node).
    ///
    /// With `budget = Some((inputs_count, max_runs))`, the growth aborts as
    /// soon as the partially-built next frontier already implies more than
    /// `max_runs` runs — the same early-abort pre-count the serial engine
    /// performs, reported with the same `needed` lower bound. On error the
    /// arena is left at the previous round.
    ///
    /// # Errors
    /// Returns [`ArenaBudget`] on budget exhaustion.
    pub fn grow(
        &mut self,
        ma: &dyn MessageAdversary,
        budget: Option<(usize, usize)>,
    ) -> Result<(), ArenaBudget> {
        let frontier = self.frontier();
        let mut next_seqs: Vec<GraphSeq> = Vec::with_capacity(self.frontier_seqs.len() * 2);
        let nodes_before = (self.parents.len(), self.graphs.len());
        for (slot, id) in frontier.enumerate() {
            let seq = &self.frontier_seqs[slot];
            for g in ma.extensions(seq) {
                next_seqs.push(seq.extended(g.clone()));
                self.parents.push(u32::try_from(id).expect("arena overflow"));
                self.graphs.push(g);
                if let Some((inputs_count, max_runs)) = budget {
                    let needed = next_seqs.len().saturating_mul(inputs_count);
                    if needed > max_runs {
                        // Roll back the partial round.
                        self.parents.truncate(nodes_before.0);
                        self.graphs.truncate(nodes_before.1);
                        return Err(ArenaBudget { needed });
                    }
                }
            }
        }
        self.round_offsets.push(self.len() + next_seqs.len());
        self.frontier_seqs = next_seqs;
        Ok(())
    }

    /// A rough heap footprint in bytes (nodes, offsets, and the frontier
    /// materialization) — telemetry for sweep reports, not an allocator
    /// measurement.
    pub fn approx_bytes(&self) -> usize {
        let node = std::mem::size_of::<u32>() + std::mem::size_of::<Digraph>();
        let frontier: usize = self
            .frontier_seqs
            .iter()
            .map(|s| s.rounds() * std::mem::size_of::<Digraph>())
            .sum();
        self.parents.len() * node
            + self.round_offsets.len() * std::mem::size_of::<usize>()
            + frontier
    }
}

impl Default for SeqArena {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeneralMA;
    use dyngraph::generators;

    #[test]
    fn grows_like_the_naive_enumeration() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let mut arena = SeqArena::new();
        for depth in 0..4 {
            assert_eq!(arena.rounds(), depth);
            assert_eq!(arena.frontier().len(), 3usize.pow(depth as u32));
            // Frontier materializations agree with parent-chain walks.
            for (slot, id) in arena.frontier().enumerate() {
                assert_eq!(arena.materialize(id), arena.frontier_seqs()[slot]);
            }
            arena.grow(&ma, None).unwrap();
        }
        assert_eq!(arena.len(), 1 + 3 + 9 + 27 + 81);
    }

    #[test]
    fn round_ranges_partition_ids() {
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let mut arena = SeqArena::new();
        for _ in 0..3 {
            arena.grow(&ma, None).unwrap();
        }
        let mut seen = 0;
        for r in 0..=arena.rounds() {
            let range = arena.round_range(r);
            assert_eq!(range.start, seen);
            seen = range.end;
        }
        assert_eq!(seen, arena.len());
    }

    #[test]
    fn budget_aborts_and_rolls_back() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let mut arena = SeqArena::new();
        arena.grow(&ma, None).unwrap();
        let len_before = arena.len();
        let rounds_before = arena.rounds();
        // 9 next-frontier nodes × 4 inputs = 36 > 20.
        let err = arena.grow(&ma, Some((4, 20))).unwrap_err();
        assert!(err.needed > 20);
        assert_eq!(arena.len(), len_before);
        assert_eq!(arena.rounds(), rounds_before);
        // The arena still grows fine with a sufficient budget.
        arena.grow(&ma, Some((4, 100))).unwrap();
        assert_eq!(arena.frontier().len(), 9);
    }

    #[test]
    fn liveness_pruning_respected() {
        let ma = GeneralMA::eventually_graph(
            generators::lossy_link_full(),
            dyngraph::Digraph::parse2("<->").unwrap(),
            Some(2),
        );
        let mut arena = SeqArena::new();
        arena.grow(&ma, None).unwrap();
        arena.grow(&ma, None).unwrap();
        assert_eq!(arena.frontier().len(), 5);
    }
}
