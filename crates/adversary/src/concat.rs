//! Round-concatenation: a fixed finite graph word prefixed to an adversary.
//!
//! [`ConcatMA`] is the semantic home of the spec language's
//! `prefix(word, term)` combinator: the admissible sequences are exactly
//! `word · σ` for `σ` admissible under the tail adversary. Prepending a
//! finite word is a homeomorphism onto a clopen subset of the sequence
//! space, so compactness (limit-closedness) is inherited from the tail.

use dyngraph::{Digraph, GraphSeq, Lasso};

use crate::{fingerprint, DynMA, MessageAdversary};

/// The adversary `{word · σ | σ admissible under tail}`.
///
/// ```
/// use adversary::{ConcatMA, GeneralMA, MessageAdversary};
/// use dyngraph::{generators, GraphSeq};
///
/// // One forced ↔ round, then the free lossy link.
/// let ma = ConcatMA::new(
///     GraphSeq::parse2("<->").unwrap(),
///     Box::new(GeneralMA::oblivious(generators::lossy_link_full())),
/// );
/// assert!(ma.admits_prefix(&GraphSeq::parse2("<-> ->").unwrap()));
/// assert!(!ma.admits_prefix(&GraphSeq::parse2("-> ->").unwrap()));
/// // Round 1 is forced to the word.
/// assert_eq!(ma.extensions(&GraphSeq::new()).len(), 1);
/// ```
pub struct ConcatMA {
    /// The forced prefix word, graphs normalized.
    word: GraphSeq,
    tail: DynMA,
}

impl ConcatMA {
    /// Build `word · tail`. An empty word behaves exactly like `tail`.
    ///
    /// # Panics
    /// Panics if the word's graphs disagree with the tail on `n`.
    pub fn new(word: GraphSeq, tail: DynMA) -> Self {
        let word: GraphSeq = word.iter().map(Digraph::normalized).collect();
        if let Some(n) = word.n() {
            assert_eq!(n, tail.n(), "prefix word and tail adversary must agree on n");
        }
        ConcatMA { word, tail }
    }

    /// The forced prefix word.
    pub fn word(&self) -> &GraphSeq {
        &self.word
    }

    /// Whether the first `min(prefix.rounds(), word.rounds())` rounds of
    /// `prefix` follow the word.
    fn follows_word(&self, prefix: &GraphSeq) -> bool {
        (1..=prefix.rounds().min(self.word.rounds()))
            .all(|t| prefix.graph(t).normalized() == *self.word.graph(t))
    }

    /// `prefix` with the first `k` rounds dropped.
    fn shifted(prefix: &GraphSeq, k: usize) -> GraphSeq {
        prefix.iter().skip(k).cloned().collect()
    }
}

impl MessageAdversary for ConcatMA {
    fn n(&self) -> usize {
        self.tail.n()
    }

    fn extensions(&self, prefix: &GraphSeq) -> Vec<Digraph> {
        if !self.admits_prefix(prefix) {
            return Vec::new();
        }
        let k = self.word.rounds();
        if prefix.rounds() < k {
            vec![self.word.graph(prefix.rounds() + 1).clone()]
        } else {
            self.tail.extensions(&Self::shifted(prefix, k))
        }
    }

    fn admits_prefix(&self, prefix: &GraphSeq) -> bool {
        if !self.follows_word(prefix) {
            return false;
        }
        let k = self.word.rounds();
        if prefix.rounds() <= k {
            // The word itself must still extend into the tail.
            self.tail.admits_prefix(&GraphSeq::new())
        } else {
            self.tail.admits_prefix(&Self::shifted(prefix, k))
        }
    }

    fn admits_lasso(&self, lasso: &Lasso) -> Option<bool> {
        if lasso.n() != self.n() {
            return Some(false);
        }
        let k = self.word.rounds();
        if !(1..=k).all(|t| lasso.graph_at(t).normalized() == *self.word.graph(t)) {
            return Some(false);
        }
        // The suffix from round k+1 on is again ultimately periodic: drop
        // the consumed rounds from the lasso's prefix, rotating into the
        // cycle when the word outruns it.
        let shifted = if k <= lasso.prefix_len() {
            let rest: GraphSeq =
                ((k + 1)..=lasso.prefix_len()).map(|t| lasso.graph_at(t).clone()).collect();
            let cycle: GraphSeq = ((lasso.prefix_len() + 1)
                ..=(lasso.prefix_len() + lasso.cycle_len()))
                .map(|t| lasso.graph_at(t).clone())
                .collect();
            Lasso::new(rest, cycle)
        } else {
            let cycle: GraphSeq =
                ((k + 1)..=(k + lasso.cycle_len())).map(|t| lasso.graph_at(t).clone()).collect();
            Lasso::new(GraphSeq::new(), cycle)
        };
        self.tail.admits_lasso(&shifted)
    }

    fn is_compact(&self) -> bool {
        self.tail.is_compact()
    }

    fn describe(&self) -> String {
        format!("prefix[{}] · {}", self.word, self.tail.describe())
    }

    fn pool_hint(&self) -> Option<Vec<Digraph>> {
        // Every round's graph is drawn from word ∪ tail-pool — a valid
        // (if loose) per-round pool for pool-based analyses.
        let mut pool = self.tail.pool_hint()?;
        pool.extend(self.word.iter().cloned());
        pool.sort();
        pool.dedup();
        Some(pool)
    }

    fn fingerprint(&self) -> u64 {
        // Structural: the word codes in order (length-prefixed) folded with
        // the tail's fingerprint.
        let members: Vec<u64> = std::iter::once(self.word.rounds() as u64)
            .chain(self.word.iter().map(Digraph::code))
            .chain(std::iter::once(self.tail.fingerprint()))
            .collect();
        fingerprint::combine("prefix", members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeneralMA;
    use dyngraph::generators;

    fn lossy() -> DynMA {
        Box::new(GeneralMA::oblivious(generators::lossy_link_full()))
    }

    fn swap_then_lossy() -> ConcatMA {
        ConcatMA::new(GraphSeq::parse2("<-> ->").unwrap(), lossy())
    }

    #[test]
    fn forced_word_then_free_tail() {
        let ma = swap_then_lossy();
        assert_eq!(ma.n(), 2);
        // Rounds 1 and 2 are forced.
        assert_eq!(ma.extensions(&GraphSeq::new()), vec![Digraph::parse2("<->").unwrap()]);
        let p = GraphSeq::parse2("<->").unwrap();
        assert_eq!(ma.extensions(&p), vec![Digraph::parse2("->").unwrap()]);
        // After the word, the tail's three extensions open up.
        let p = GraphSeq::parse2("<-> ->").unwrap();
        assert_eq!(ma.extensions(&p).len(), 3);
        assert!(ma.admits_prefix(&GraphSeq::parse2("<-> -> <- <-").unwrap()));
        assert!(!ma.admits_prefix(&GraphSeq::parse2("<-> <- ->").unwrap()));
    }

    #[test]
    fn empty_word_is_transparent() {
        let ma = ConcatMA::new(GraphSeq::new(), lossy());
        let p = GraphSeq::parse2("-> <- <->").unwrap();
        assert!(ma.admits_prefix(&p));
        assert_eq!(ma.extensions(&p).len(), 3);
        assert_eq!(ma.admits_lasso(&Lasso::parse2("->").unwrap()), Some(true));
    }

    #[test]
    fn lasso_membership_shifts_into_tail() {
        // Word <-> then "eventually <-" over {→, ←}: the ← must come after
        // the word.
        let tail = GeneralMA::eventually_graph(
            generators::lossy_link_reduced(),
            Digraph::parse2("<-").unwrap(),
            None,
        );
        let ma = ConcatMA::new(GraphSeq::parse2("<->").unwrap(), Box::new(tail));
        // Bad round 1.
        assert_eq!(ma.admits_lasso(&Lasso::parse2("-> | <-").unwrap()), Some(false));
        // Word then ← forever: admissible.
        assert_eq!(ma.admits_lasso(&Lasso::parse2("<-> | <-").unwrap()), Some(true));
        // Word then → forever: the liveness never fires.
        assert_eq!(ma.admits_lasso(&Lasso::parse2("<-> | ->").unwrap()), Some(false));
        // Word consumed out of the cycle: lasso (<-> <-)^ω with empty
        // prefix — round 1 is <->, the shifted tail is (<- <->)^ω, which
        // contains ← but also the off-pool <->.
        assert_eq!(ma.admits_lasso(&Lasso::parse2("<-> <-").unwrap()), Some(false));
        // (<-> ... ) where the shifted cycle stays in the reduced pool:
        // prefix <->, cycle (<- ->)^ω.
        assert_eq!(ma.admits_lasso(&Lasso::parse2("<-> | <- ->").unwrap()), Some(true));
    }

    #[test]
    fn compactness_and_fingerprint_inherit_structure() {
        let a = swap_then_lossy();
        let b = swap_then_lossy();
        assert!(a.is_compact());
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Different word → different fingerprint.
        let c = ConcatMA::new(GraphSeq::parse2("-> <->").unwrap(), lossy());
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Word order matters (it is a sequence, not a pool).
        assert!(a.describe().contains("prefix["));
    }

    #[test]
    fn pool_hint_unions_word_and_tail() {
        let ma = ConcatMA::new(
            GraphSeq::from_graphs(vec![Digraph::empty(2)]),
            Box::new(GeneralMA::oblivious(generators::lossy_link_reduced())),
        );
        let hint = ma.pool_hint().unwrap();
        assert_eq!(hint.len(), 3, "{{., →, ←}}: {hint:?}");
    }

    #[test]
    #[should_panic(expected = "agree on n")]
    fn word_must_match_tail_n() {
        let word = GraphSeq::from_graphs(vec![Digraph::empty(3)]);
        let _ = ConcatMA::new(word, lossy());
    }
}
