//! User-defined message adversaries from prefix predicates.
//!
//! [`PredicateMA`] generalizes [`crate::GeneralMA`]: the admissible prefixes
//! are those a user-supplied *status function* keeps alive over a fixed
//! graph pool. This is the extension point for adversaries beyond the
//! built-in liveness conditions — e.g. "no three consecutive rounds in the
//! same direction", "round `t` must be rooted whenever `t` is even", or any
//! other safety-style constraint.
//!
//! Status semantics are three-valued per prefix:
//!
//! * [`PrefixStatus::Dead`] — no admissible extension;
//! * [`PrefixStatus::Alive`] — admissible, liveness obligations pending;
//! * [`PrefixStatus::Satisfied`] — admissible, all obligations met (the
//!   lasso closure of such a prefix is admissible).
//!
//! For lasso membership the predicate is probed on finite unrollings: the
//! lasso is accepted iff some unrolling within `prefix + 2·cycle + slack`
//! rounds is `Satisfied` — correct for predicates whose satisfaction is a
//! prefix-closed event (like the built-in liveness conditions). Predicates
//! with genuinely infinitary obligations should override via
//! [`PredicateMA::with_lasso_oracle`].

use std::sync::Arc;

use dyngraph::{Digraph, GraphSeq, Lasso};

use crate::{DynMA, MessageAdversary};

/// Three-valued admissibility status of a prefix; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefixStatus {
    /// The prefix admits no admissible extension.
    Dead,
    /// The prefix is admissible; obligations pending.
    Alive,
    /// The prefix is admissible and all obligations are met.
    Satisfied,
}

type StatusFn = dyn Fn(&GraphSeq) -> PrefixStatus + Send + Sync;
type LassoFn = dyn Fn(&Lasso) -> Option<bool> + Send + Sync;

/// A message adversary defined by a pool and a prefix status function.
///
/// ```
/// use adversary::{predicate::{PredicateMA, PrefixStatus}, MessageAdversary};
/// use dyngraph::{generators, GraphSeq};
///
/// // "Never two consecutive ← rounds" over the full lossy link.
/// let ma = PredicateMA::new(
///     generators::lossy_link_full(),
///     "no-double-left",
///     |prefix: &GraphSeq| {
///         let double_left = (2..=prefix.rounds()).any(|t| {
///             prefix.graph(t).arrow2() == Some("<-")
///                 && prefix.graph(t - 1).arrow2() == Some("<-")
///         });
///         if double_left { PrefixStatus::Dead } else { PrefixStatus::Satisfied }
///     },
/// );
/// assert!(ma.admits_prefix(&GraphSeq::parse2("<- -> <-").unwrap()));
/// assert!(!ma.admits_prefix(&GraphSeq::parse2("-> <- <-").unwrap()));
/// ```
#[derive(Clone)]
pub struct PredicateMA {
    pool: Vec<Digraph>,
    status: Arc<StatusFn>,
    lasso_oracle: Option<Arc<LassoFn>>,
    compact: bool,
    label: String,
    /// Per-construction nonce mixed into [`MessageAdversary::fingerprint`]:
    /// the status closure's behavior is not hashable, so two `PredicateMA`s
    /// with equal pools and labels but different closures must not collide
    /// in fingerprint-keyed caches. Clones share the nonce (same predicate).
    nonce: u64,
}

impl std::fmt::Debug for PredicateMA {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PredicateMA({}, |pool|={})", self.label, self.pool.len())
    }
}

impl PredicateMA {
    /// Build from a pool, a label, and a status function.
    ///
    /// The adversary is reported *compact* by default (safety-style
    /// predicates are limit-closed); use [`PredicateMA::non_compact`] for
    /// predicates with liveness obligations.
    ///
    /// # Panics
    /// Panics if the pool is empty or mixes `n`.
    pub fn new<F>(pool: Vec<Digraph>, label: &str, status: F) -> Self
    where
        F: Fn(&GraphSeq) -> PrefixStatus + Send + Sync + 'static,
    {
        assert!(!pool.is_empty(), "pool must be nonempty");
        let n = pool[0].n();
        assert!(pool.iter().all(|g| g.n() == n), "pool graphs must agree on n");
        let mut pool: Vec<Digraph> = pool.into_iter().map(|g| g.normalized()).collect();
        pool.sort();
        pool.dedup();
        static NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        PredicateMA {
            pool,
            status: Arc::new(status),
            lasso_oracle: None,
            compact: true,
            label: label.to_string(),
            nonce: NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Mark the adversary as non-compact (limits that never reach
    /// `Satisfied` are excluded).
    pub fn non_compact(mut self) -> Self {
        self.compact = false;
        self
    }

    /// Install an exact lasso-membership oracle, overriding the default
    /// finite-probe approximation.
    pub fn with_lasso_oracle<F>(mut self, oracle: F) -> Self
    where
        F: Fn(&Lasso) -> Option<bool> + Send + Sync + 'static,
    {
        self.lasso_oracle = Some(Arc::new(oracle));
        self
    }

    /// The graph pool.
    pub fn pool(&self) -> &[Digraph] {
        &self.pool
    }

    /// Evaluate the raw status of a prefix (pool validity included).
    pub fn status(&self, prefix: &GraphSeq) -> PrefixStatus {
        if !prefix.iter().all(|g| self.pool.contains(&g.normalized())) {
            return PrefixStatus::Dead;
        }
        (self.status)(prefix)
    }
}

impl MessageAdversary for PredicateMA {
    fn n(&self) -> usize {
        self.pool[0].n()
    }

    fn extensions(&self, prefix: &GraphSeq) -> Vec<Digraph> {
        if self.status(prefix) == PrefixStatus::Dead {
            return Vec::new();
        }
        self.pool
            .iter()
            .filter(|g| self.status(&prefix.extended((*g).clone())) != PrefixStatus::Dead)
            .cloned()
            .collect()
    }

    fn admits_prefix(&self, prefix: &GraphSeq) -> bool {
        self.status(prefix) != PrefixStatus::Dead
    }

    fn admits_lasso(&self, lasso: &Lasso) -> Option<bool> {
        if lasso.n() != self.n() {
            return Some(false);
        }
        if let Some(oracle) = &self.lasso_oracle {
            return oracle(lasso);
        }
        // Finite probe: prefix + two cycles + slack; for compact
        // (safety-style) predicates Alive suffices, otherwise require
        // Satisfied somewhere along the probe.
        let horizon = lasso.prefix_len() + 2 * lasso.cycle_len() + 4;
        let mut satisfied = false;
        for t in 0..=horizon {
            match self.status(&lasso.unroll(t)) {
                PrefixStatus::Dead => return Some(false),
                PrefixStatus::Satisfied => satisfied = true,
                PrefixStatus::Alive => {}
            }
        }
        if self.compact || satisfied {
            Some(true)
        } else {
            // Liveness never observed within the probe; for ultimately
            // periodic sequences and prefix-monotone predicates this is
            // conclusive, but we cannot know the predicate is monotone.
            None
        }
    }

    fn is_compact(&self) -> bool {
        self.compact
    }

    fn describe(&self) -> String {
        format!("predicate({}, |pool|={})", self.label, self.pool.len())
    }

    fn pool_hint(&self) -> Option<Vec<Digraph>> {
        Some(self.pool.clone())
    }

    fn fingerprint(&self) -> u64 {
        // The closure's behavior cannot be hashed, so the fingerprint is
        // per-construction (via the nonce), not structural: distinct
        // predicates never share fingerprint-keyed cache slots, clones of
        // one predicate do.
        crate::fingerprint::combine("predicate", [self.nonce])
    }
}

/// The intersection of finitely many adversaries: a sequence is admissible
/// iff admissible under **every** member.
///
/// Intersections model conjunctions of constraints; an intersection of
/// compact adversaries is compact.
pub struct IntersectMA {
    members: Vec<DynMA>,
}

impl IntersectMA {
    /// Build the intersection.
    ///
    /// # Panics
    /// Panics if `members` is empty or disagrees on `n`.
    pub fn new(members: Vec<DynMA>) -> Self {
        assert!(!members.is_empty(), "intersection needs at least one member");
        let n = members[0].n();
        assert!(members.iter().all(|m| m.n() == n), "members must agree on n");
        IntersectMA { members }
    }
}

impl MessageAdversary for IntersectMA {
    fn n(&self) -> usize {
        self.members[0].n()
    }

    fn extensions(&self, prefix: &GraphSeq) -> Vec<Digraph> {
        // Note: intersecting per-member extension sets is a sound
        // overapproximation (a graph allowed by all members keeps the prefix
        // alive in all members).
        let mut out: Option<Vec<Digraph>> = None;
        for m in &self.members {
            let exts = m.extensions(prefix);
            out = Some(match out {
                None => exts,
                Some(cur) => cur.into_iter().filter(|g| exts.contains(g)).collect(),
            });
        }
        out.unwrap_or_default()
    }

    fn admits_prefix(&self, prefix: &GraphSeq) -> bool {
        self.members.iter().all(|m| m.admits_prefix(prefix))
    }

    fn admits_lasso(&self, lasso: &Lasso) -> Option<bool> {
        let mut unknown = false;
        for m in &self.members {
            match m.admits_lasso(lasso) {
                Some(false) => return Some(false),
                Some(true) => {}
                None => unknown = true,
            }
        }
        if unknown {
            None
        } else {
            Some(true)
        }
    }

    fn is_compact(&self) -> bool {
        self.members.iter().all(|m| m.is_compact())
    }

    fn describe(&self) -> String {
        let parts: Vec<String> = self.members.iter().map(|m| m.describe()).collect();
        format!("intersect({})", parts.join(" ∩ "))
    }

    fn pool_hint(&self) -> Option<Vec<Digraph>> {
        // The intersection's rounds draw from the (intersection of) pools;
        // use the first member's pool as a safe superset.
        self.members[0].pool_hint()
    }

    fn fingerprint(&self) -> u64 {
        // Intersection is order-insensitive: sort the member fingerprints.
        let mut fps: Vec<u64> = self.members.iter().map(|m| m.fingerprint()).collect();
        fps.sort_unstable();
        crate::fingerprint::combine("intersect", fps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeneralMA;
    use dyngraph::generators;

    fn no_double_left() -> PredicateMA {
        PredicateMA::new(generators::lossy_link_full(), "no-double-left", |prefix| {
            let bad = (2..=prefix.rounds()).any(|t| {
                prefix.graph(t).arrow2() == Some("<-") && prefix.graph(t - 1).arrow2() == Some("<-")
            });
            if bad {
                PrefixStatus::Dead
            } else {
                PrefixStatus::Satisfied
            }
        })
    }

    #[test]
    fn predicate_prunes_extensions() {
        let ma = no_double_left();
        let p = GraphSeq::parse2("-> <-").unwrap();
        let exts = ma.extensions(&p);
        assert_eq!(exts.len(), 2, "← must be pruned after ←: {exts:?}");
        assert!(exts.iter().all(|g| g.arrow2() != Some("<-")));
    }

    #[test]
    fn predicate_lasso_membership() {
        let ma = no_double_left();
        assert_eq!(ma.admits_lasso(&Lasso::parse2("-> <-").unwrap()), Some(true));
        assert_eq!(ma.admits_lasso(&Lasso::parse2("<-").unwrap()), Some(false));
        // ← at the cycle seam: -> <- | <- … has ←← across the seam.
        assert_eq!(ma.admits_lasso(&Lasso::parse2("-> <- | <- ->").unwrap()), Some(false));
    }

    #[test]
    fn predicate_with_oracle() {
        let ma = no_double_left().with_lasso_oracle(|_| Some(false));
        assert_eq!(ma.admits_lasso(&Lasso::parse2("->").unwrap()), Some(false));
    }

    #[test]
    fn non_compact_flag() {
        let ma = no_double_left().non_compact();
        assert!(!ma.is_compact());
        assert!(ma.describe().contains("no-double-left"));
    }

    #[test]
    fn intersect_combines_constraints() {
        // no-double-left ∩ "eventually ↔ within 3".
        let a = Box::new(no_double_left());
        let b = Box::new(GeneralMA::eventually_graph(
            generators::lossy_link_full(),
            dyngraph::Digraph::parse2("<->").unwrap(),
            Some(3),
        ));
        let ma = IntersectMA::new(vec![a, b]);
        assert!(ma.is_compact());
        assert!(ma.admits_prefix(&GraphSeq::parse2("-> <- <->").unwrap()));
        assert!(!ma.admits_prefix(&GraphSeq::parse2("<- <- <->").unwrap()));
        assert!(!ma.admits_prefix(&GraphSeq::parse2("-> -> ->").unwrap()));
        // Extensions honor both members.
        let exts = ma.extensions(&GraphSeq::parse2("<- ->").unwrap());
        assert!(!exts.is_empty());
    }

    #[test]
    fn intersect_lasso() {
        let a = Box::new(no_double_left());
        let b = Box::new(GeneralMA::oblivious(generators::lossy_link_reduced()));
        let ma = IntersectMA::new(vec![a, b]);
        assert_eq!(ma.admits_lasso(&Lasso::parse2("-> <-").unwrap()), Some(true));
        assert_eq!(ma.admits_lasso(&Lasso::parse2("<->").unwrap()), Some(false));
    }

    #[test]
    fn predicate_ma_is_checkable() {
        // The solvability machinery consumes PredicateMA through the trait.
        let ma = no_double_left();
        let seqs = crate::enumerate::admissible_sequences(&ma, 3);
        // 3^3 = 27 minus those with ←←: count manually = sequences avoiding
        // consecutive ←: per-step states… just sanity-check bounds.
        assert!(seqs.len() < 27 && seqs.len() > 10);
    }
}
