//! Seeded, deterministic spec-language fuzzing (CI fast lane).
//!
//! Two properties, each over a fixed xorshift64* stream so failures
//! reproduce bit-for-bit on every machine:
//!
//! 1. **Round-trip**: for random 2-process terms `t` of nesting depth ≤ 3,
//!    `parse(display(t)) == normalize(t)`.
//! 2. **Totality**: `SpecTerm::parse` never panics — neither on random
//!    garbage strings nor on mutated canonical spec strings; malformed
//!    inputs surface as `TermError::Parse` with an in-bounds offset.

use adversary::spec::TermError;
use adversary::SpecTerm;
use dyngraph::Digraph;

/// xorshift64* — tiny, seedable, and stable across toolchains, unlike
/// `StdRng` whose stream may change between `rand` releases.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn graph(rng: &mut Rng) -> Digraph {
    let arrows = [".", "<-", "->", "<->"];
    Digraph::parse2(arrows[rng.below(arrows.len())]).unwrap()
}

fn pool(rng: &mut Rng) -> Vec<Digraph> {
    (0..1 + rng.below(4)).map(|_| graph(rng)).collect()
}

/// A random 2-process term of nesting depth ≤ `depth`. Leaves are always
/// displayable (non-empty pools, registered catalog names); invalid
/// *lowerings* (e.g. a liveness target outside the pool) are fair game —
/// the round-trip property is about the grammar, not about semantics.
fn term(rng: &mut Rng, depth: usize) -> SpecTerm {
    let leaf_only = depth == 0;
    match if leaf_only {
        rng.below(4)
    } else {
        rng.below(7)
    } {
        0 => SpecTerm::Pool(pool(rng)),
        1 => {
            let names = ["sw-lossy-link", "forever-directional", "vssc-2-2-by-3"];
            SpecTerm::Catalog(names[rng.below(names.len())].to_string())
        }
        2 => SpecTerm::Eventually {
            pool: pool(rng),
            target: graph(rng),
            by: (rng.below(2) == 0).then(|| 1 + rng.below(4)),
        },
        3 => {
            let window = 1 + rng.below(3);
            SpecTerm::Window {
                pool: pool(rng),
                window,
                by: (rng.below(2) == 0).then(|| window + rng.below(3)),
            }
        }
        4 => SpecTerm::Union((0..2 + rng.below(2)).map(|_| term(rng, depth - 1)).collect()),
        5 => SpecTerm::Intersect((0..2 + rng.below(2)).map(|_| term(rng, depth - 1)).collect()),
        _ => SpecTerm::Prefix {
            word: (0..1 + rng.below(3)).map(|_| graph(rng)).collect(),
            tail: Box::new(term(rng, depth - 1)),
        },
    }
}

#[test]
fn random_terms_round_trip_through_display() {
    let mut rng = Rng(0x5eed_c0de_0000_0001);
    for i in 0..2_000 {
        let t = term(&mut rng, 3);
        let printed = t.to_string();
        let reparsed = SpecTerm::parse(&printed)
            .unwrap_or_else(|e| panic!("#{i}: display output must reparse: {printed:?}: {e}"));
        assert_eq!(
            reparsed,
            t.clone().normalize(),
            "#{i}: parse(display(t)) must be normalize(t) for {printed:?}"
        );
        // Canonical forms are fixed points: printing the normal form and
        // parsing it back changes nothing.
        let canonical = reparsed.to_string();
        assert_eq!(SpecTerm::parse(&canonical).unwrap().to_string(), canonical, "#{i}");
    }
}

#[test]
fn random_strings_error_with_offsets_and_never_panic() {
    // Weighted toward the grammar's own alphabet so the parser gets past
    // the first byte often enough to stress the deeper states.
    const ALPHABET: &[u8] = b"<->.()=,0123456789 abcdefghijklmnopqrstuvwxyz\xc2\xb7";
    let mut rng = Rng(0x5eed_c0de_0000_0002);
    let mut errored = 0usize;
    for _ in 0..2_000 {
        let len = rng.below(40);
        let bytes: Vec<u8> = (0..len).map(|_| ALPHABET[rng.below(ALPHABET.len())]).collect();
        let input = String::from_utf8_lossy(&bytes).into_owned();
        match SpecTerm::parse(&input) {
            Ok(term) => {
                // The rare accidental hit must still round-trip.
                assert_eq!(SpecTerm::parse(&term.to_string()).unwrap(), term, "{input:?}");
            }
            Err(TermError::Parse { offset, .. }) => {
                assert!(offset <= input.len(), "offset out of bounds for {input:?}");
                errored += 1;
            }
            Err(other) => {
                panic!("parse must only fail with Parse errors, got {other} for {input:?}")
            }
        }
    }
    assert!(errored > 1_500, "the garbage stream should mostly fail to parse ({errored})");
}

#[test]
fn pathological_nesting_and_amplification_never_panic() {
    // Unbounded `repeat(` recursion (stack safety) and the k × |word|
    // expansion product (CPU/memory amplification) must both be rejected
    // cheaply with a Parse error, never a panic or abort.
    let cases = [
        "repeat(".repeat(500_000),
        format!("{}->{}", "repeat(".repeat(500_000), ", 2)".repeat(500_000)),
        format!("{}pool(->){}", "union(".repeat(500_000), ")".repeat(500_000)),
        "pool(repeat(repeat(repeat(->, 4096), 4096), 4096))".to_string(),
    ];
    for input in cases {
        let start = std::time::Instant::now();
        match SpecTerm::parse(&input) {
            Err(TermError::Parse { offset, .. }) => assert!(offset <= input.len()),
            other => panic!("pathological input must fail to parse, got {other:?}"),
        }
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "rejection took {:?} for a {}-byte input",
            start.elapsed(),
            input.len()
        );
    }
}

#[test]
fn mutated_canonical_strings_never_panic() {
    let seeds = [
        "pool(<- -> <->)",
        "union(pool(->), pool(<-))",
        "eventually(<- -> <->, <->, by=2)",
        "window(<- -> <->, 2, by=3)",
        "prefix(<-> ->, catalog(sw-lossy-link))",
        "intersect(pool(<- ->), eventually(<- -> <->, <->))",
    ];
    let mut rng = Rng(0x5eed_c0de_0000_0003);
    for _ in 0..2_000 {
        let mut s = seeds[rng.below(seeds.len())].as_bytes().to_vec();
        for _ in 0..1 + rng.below(3) {
            match rng.below(3) {
                // Truncate, duplicate a byte, or overwrite one.
                0 => s.truncate(rng.below(s.len() + 1)),
                1 if !s.is_empty() => {
                    let at = rng.below(s.len());
                    s.insert(at, s[at]);
                }
                _ if !s.is_empty() => {
                    let at = rng.below(s.len());
                    s[at] = b"<->.(),=x9"[rng.below(10)];
                }
                _ => {}
            }
        }
        let input = String::from_utf8_lossy(&s).into_owned();
        if let Err(e) = SpecTerm::parse(&input) {
            // Every error Displays without panicking, too.
            let _ = e.to_string();
        }
    }
}
