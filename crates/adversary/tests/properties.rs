//! Property-based tests for the adversary machinery.

use adversary::{enumerate, GeneralMA, Liveness, MessageAdversary};
use dyngraph::{Digraph, GraphSeq, Lasso};
use proptest::prelude::*;

fn arb_pool(n: usize, max_graphs: usize) -> impl Strategy<Value = Vec<Digraph>> {
    let max_code: u64 = 1 << (n * n);
    proptest::collection::btree_set(0..max_code, 1..=max_graphs).prop_map(move |codes| {
        codes.into_iter().map(|c| Digraph::from_code(n, c).normalized()).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Oblivious adversaries: the sequence tree is the full |pool|^t product.
    #[test]
    fn oblivious_tree_is_product(pool in arb_pool(2, 3), depth in 0usize..4) {
        let distinct = {
            let mut p = pool.clone();
            p.sort();
            p.dedup();
            p.len()
        };
        let ma = GeneralMA::oblivious(pool);
        let seqs = enumerate::admissible_sequences(&ma, depth);
        prop_assert_eq!(seqs.len(), distinct.pow(depth as u32));
    }

    /// Extension contract: `extensions` returns exactly the pool graphs `g`
    /// with `admits_prefix(prefix · g)`.
    #[test]
    fn extensions_match_admissibility(
        pool in arb_pool(2, 4),
        word in proptest::collection::vec(0usize..4, 0..4),
        deadline in 1usize..4,
    ) {
        let target = pool[0].clone();
        let ma = GeneralMA::eventually_graph(pool.clone(), target, Some(deadline));
        // Build a prefix from pool indices (may be inadmissible).
        let prefix: GraphSeq =
            word.iter().map(|&i| pool[i % pool.len()].clone()).collect();
        let exts = ma.extensions(&prefix);
        for g in &pool {
            let admitted = ma.admits_prefix(&prefix.extended(g.clone()));
            prop_assert_eq!(
                exts.contains(&g.normalized()),
                admitted,
                "graph {} after {}", g, prefix
            );
        }
    }

    /// Deadline monotonicity: admissibility under deadline R implies
    /// admissibility under R + 1 (the compact approximations grow).
    #[test]
    fn deadline_monotone(
        pool in arb_pool(2, 3),
        word in proptest::collection::vec(0usize..3, 0..5),
        r in 1usize..4,
    ) {
        let target = pool[0].clone();
        let ma_r = GeneralMA::eventually_graph(pool.clone(), target.clone(), Some(r));
        let ma_r1 = GeneralMA::eventually_graph(pool.clone(), target, Some(r + 1));
        let prefix: GraphSeq =
            word.iter().map(|&i| pool[i % pool.len()].clone()).collect();
        if ma_r.admits_prefix(&prefix) {
            prop_assert!(ma_r1.admits_prefix(&prefix));
        }
    }

    /// Lasso admissibility for the non-compact variant is implied by any
    /// deadline variant (union of approximations).
    #[test]
    fn lasso_deadline_implies_eventual(
        pool in arb_pool(2, 3),
        pre in proptest::collection::vec(0usize..3, 0..3),
        cyc in proptest::collection::vec(0usize..3, 1..3),
        r in 1usize..5,
    ) {
        let target = pool[0].clone();
        let with_deadline =
            GeneralMA::eventually_graph(pool.clone(), target.clone(), Some(r));
        let eventual = GeneralMA::eventually_graph(pool.clone(), target, None);
        let pick = |idx: &Vec<usize>| -> GraphSeq {
            idx.iter().map(|&i| pool[i % pool.len()].clone()).collect()
        };
        let lasso = Lasso::new(pick(&pre), pick(&cyc));
        if with_deadline.admits_lasso(&lasso) == Some(true) {
            prop_assert_eq!(eventual.admits_lasso(&lasso), Some(true));
        }
    }

    /// Stable windows: whenever the liveness says satisfied, a literal scan
    /// finds a window of identical rooted-source masks.
    #[test]
    fn stable_window_scan_agrees(
        word in proptest::collection::vec(0u64..16, 0..6),
        window in 1usize..3,
    ) {
        let seq: GraphSeq =
            word.iter().map(|&c| Digraph::from_code(2, c).normalized()).collect();
        let satisfied =
            Liveness::StableWindow { window }.satisfied(&seq);
        // Literal re-scan.
        let masks: Vec<Option<dyngraph::PidMask>> =
            seq.iter().map(dyngraph::scc::rooted_source).collect();
        let mut found = false;
        if masks.len() >= window {
            for s in 0..=(masks.len() - window) {
                if masks[s].is_some() && masks[s..s + window].iter().all(|m| *m == masks[s]) {
                    found = true;
                }
            }
        }
        prop_assert_eq!(satisfied, found);
    }

    /// Enumerated prefix spaces have runs only over admissible sequences.
    #[test]
    fn expansion_runs_admissible(pool in arb_pool(2, 3), depth in 0usize..3) {
        let ma = GeneralMA::oblivious(pool);
        let e = enumerate::expand_binary(&ma, depth, 100_000).unwrap();
        for run in &e.runs {
            prop_assert!(ma.admits_prefix(run.seq()));
        }
    }
}
