//! Property-style tests for the adversary machinery.
//!
//! Driven by a seeded deterministic generator (the offline stand-in for
//! proptest; see `crates/compat/README.md`): each test replays a fixed
//! number of pseudo-random cases, so failures are reproducible from the
//! printed case data alone.

use std::collections::BTreeSet;

use adversary::{enumerate, GeneralMA, Liveness, MessageAdversary};
use dyngraph::{Digraph, GraphSeq, Lasso};
use rand::{rngs::StdRng, Rng, SeedableRng};

const CASES: usize = 48;

/// A random nonempty pool of up to `max_graphs` normalized graphs on `n`
/// processes (distinct codes; normalization may merge some).
fn arb_pool(rng: &mut StdRng, n: usize, max_graphs: usize) -> Vec<Digraph> {
    let max_code: u64 = 1 << (n * n);
    let count = rng.random_range(1..=max_graphs);
    let mut codes = BTreeSet::new();
    while codes.len() < count {
        codes.insert(rng.random_range(0..max_code));
    }
    codes.into_iter().map(|c| Digraph::from_code(n, c).normalized()).collect()
}

fn arb_word(rng: &mut StdRng, max_index: usize, max_len: usize) -> Vec<usize> {
    let len = rng.random_range(0..max_len);
    (0..len).map(|_| rng.random_range(0..max_index)).collect()
}

/// Oblivious adversaries: the sequence tree is the full |pool|^t product.
#[test]
fn oblivious_tree_is_product() {
    let mut rng = StdRng::seed_from_u64(0xAD01);
    for _ in 0..CASES {
        let pool = arb_pool(&mut rng, 2, 3);
        let depth = rng.random_range(0..4usize);
        let distinct = {
            let mut p = pool.clone();
            p.sort();
            p.dedup();
            p.len()
        };
        let ma = GeneralMA::oblivious(pool);
        let seqs = enumerate::admissible_sequences(&ma, depth);
        assert_eq!(seqs.len(), distinct.pow(depth as u32));
    }
}

/// Extension contract: `extensions` returns exactly the pool graphs `g`
/// with `admits_prefix(prefix · g)`.
#[test]
fn extensions_match_admissibility() {
    let mut rng = StdRng::seed_from_u64(0xAD02);
    for _ in 0..CASES {
        let pool = arb_pool(&mut rng, 2, 4);
        let word = arb_word(&mut rng, 4, 4);
        let deadline = rng.random_range(1..4usize);
        let target = pool[0].clone();
        let ma = GeneralMA::eventually_graph(pool.clone(), target, Some(deadline));
        // Build a prefix from pool indices (may be inadmissible).
        let prefix: GraphSeq = word.iter().map(|&i| pool[i % pool.len()].clone()).collect();
        let exts = ma.extensions(&prefix);
        for g in &pool {
            let admitted = ma.admits_prefix(&prefix.extended(g.clone()));
            assert_eq!(exts.contains(&g.normalized()), admitted, "graph {g} after {prefix}");
        }
    }
}

/// Deadline monotonicity: admissibility under deadline R implies
/// admissibility under R + 1 (the compact approximations grow).
#[test]
fn deadline_monotone() {
    let mut rng = StdRng::seed_from_u64(0xAD03);
    for _ in 0..CASES {
        let pool = arb_pool(&mut rng, 2, 3);
        let word = arb_word(&mut rng, 3, 5);
        let r = rng.random_range(1..4usize);
        let target = pool[0].clone();
        let ma_r = GeneralMA::eventually_graph(pool.clone(), target.clone(), Some(r));
        let ma_r1 = GeneralMA::eventually_graph(pool.clone(), target, Some(r + 1));
        let prefix: GraphSeq = word.iter().map(|&i| pool[i % pool.len()].clone()).collect();
        if ma_r.admits_prefix(&prefix) {
            assert!(ma_r1.admits_prefix(&prefix), "prefix {prefix} lost at R+1");
        }
    }
}

/// Lasso admissibility for the non-compact variant is implied by any
/// deadline variant (union of approximations).
#[test]
fn lasso_deadline_implies_eventual() {
    let mut rng = StdRng::seed_from_u64(0xAD04);
    for _ in 0..CASES {
        let pool = arb_pool(&mut rng, 2, 3);
        let pre = arb_word(&mut rng, 3, 3);
        let cyc_len = rng.random_range(1..3usize);
        let cyc: Vec<usize> = (0..cyc_len).map(|_| rng.random_range(0..3usize)).collect();
        let r = rng.random_range(1..5usize);
        let target = pool[0].clone();
        let with_deadline = GeneralMA::eventually_graph(pool.clone(), target.clone(), Some(r));
        let eventual = GeneralMA::eventually_graph(pool.clone(), target, None);
        let pick = |idx: &Vec<usize>| -> GraphSeq {
            idx.iter().map(|&i| pool[i % pool.len()].clone()).collect()
        };
        let lasso = Lasso::new(pick(&pre), pick(&cyc));
        if with_deadline.admits_lasso(&lasso) == Some(true) {
            assert_eq!(eventual.admits_lasso(&lasso), Some(true));
        }
    }
}

/// Stable windows: whenever the liveness says satisfied, a literal scan
/// finds a window of identical rooted-source masks.
#[test]
fn stable_window_scan_agrees() {
    let mut rng = StdRng::seed_from_u64(0xAD05);
    for _ in 0..CASES {
        let word: Vec<u64> = {
            let len = rng.random_range(0..6usize);
            (0..len).map(|_| rng.random_range(0..16u64)).collect()
        };
        let window = rng.random_range(1..3usize);
        let seq: GraphSeq = word.iter().map(|&c| Digraph::from_code(2, c).normalized()).collect();
        let satisfied = Liveness::StableWindow { window }.satisfied(&seq);
        // Literal re-scan.
        let masks: Vec<Option<dyngraph::PidMask>> =
            seq.iter().map(dyngraph::scc::rooted_source).collect();
        let mut found = false;
        if masks.len() >= window {
            for s in 0..=(masks.len() - window) {
                if masks[s].is_some() && masks[s..s + window].iter().all(|m| *m == masks[s]) {
                    found = true;
                }
            }
        }
        assert_eq!(satisfied, found, "word {word:?}, window {window}");
    }
}

/// Enumerated prefix spaces have runs only over admissible sequences.
#[test]
fn expansion_runs_admissible() {
    let mut rng = StdRng::seed_from_u64(0xAD06);
    for _ in 0..CASES {
        let pool = arb_pool(&mut rng, 2, 3);
        let depth = rng.random_range(0..3usize);
        let ma = GeneralMA::oblivious(pool);
        let e = enumerate::expand_binary(&ma, depth, 100_000).unwrap();
        for run in &e.runs {
            assert!(ma.admits_prefix(run.seq()));
        }
    }
}
