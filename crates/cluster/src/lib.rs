//! **The distributed sweep cluster** — a coordinator that splits the
//! scenario grid into shards, dispatches them over HTTP to a fleet of
//! `consensus-lab serve` workers, and merges the returned journals into
//! one result set byte-identical to a single-node sweep.
//!
//! The paper's sweep is embarrassingly parallel across grid cells, and
//! PR 2's `--shard i/n` + `merge` machinery already made shard output
//! byte-stable. This crate composes those primitives with the service
//! layer into ROADMAP item 1's fleet shape:
//!
//! * [`coordinator`] — shard planning, round-robin dispatch over the
//!   live workers (bounded retry with backoff per request), and shard
//!   *rebalancing*: when a worker dies or stalls past its deadline, its
//!   unfinished shards are requeued onto the survivors, so killing a
//!   worker mid-sweep still yields the complete merged output;
//! * [`spotcheck`] — the accountability layer: a configurable fraction
//!   of merged verdicts is audited by requesting certificates from the
//!   fleet and replaying [`consensus_core::certificate::verify`]
//!   locally, so a worker cannot silently return wrong answers;
//! * [`events`] — live shard-lifecycle events (`dispatched` /
//!   `completed` / `retried` / `rebalanced` / `audited`) as JSONL on
//!   `--events-out`, plus the coordinator's trace stitching and fleet
//!   `/v1/stats` fold (see [`coordinator`]) — the fleet-wide
//!   observability story on top of `consensus_obs`;
//! * [`warm`] — peer warm-start: a cold worker pulls a live peer's
//!   verdict journal via `GET /v1/journal/segment` and absorbs it
//!   through the persist layer's salt check (memory → disk → peer
//!   cache tiering);
//! * [`mod@bench`] — the `cluster-bench` harness emitting
//!   `BENCH_cluster.json` (serial vs 2-worker wall clock plus the
//!   robustness/audit counters, gated in CI).
//!
//! The `consensus-lab` CLI binary lives in this crate (`src/main.rs`)
//! because the coordinator depends on the service layer: `cluster` and
//! `cluster-bench` are its fleet-facing subcommands, and `serve` gains
//! `--warm-from PEER`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod coordinator;
pub mod events;
pub mod spotcheck;
pub mod warm;

pub use coordinator::{ClusterConfig, ClusterOutcome, ClusterStats};
pub use events::EventSink;
pub use spotcheck::SpotCheckSummary;
