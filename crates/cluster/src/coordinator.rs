//! Shard planning, dispatch, rebalancing, and merge.
//!
//! The coordinator plans `workers × shards_per_worker` deterministic
//! slices of the scenario grid (the CLI `--shard i/n` grammar), then
//! drives rounds: every pending shard is assigned round-robin over the
//! live workers, one dispatch thread per worker POSTs its shards to
//! `/v1/sweep` under a per-request deadline with bounded retry and
//! backoff, and a worker that exhausts its retries is marked dead — its
//! unfinished shards requeue onto the survivors in the next round
//! (*rebalancing*). Records carry their global grid indices across the
//! wire, so the merge is a by-index splice validated for grid
//! completeness, and the merged output is byte-identical (modulo timing
//! fields) to a single-node sweep.
//!
//! Finishing a run does not mean trusting it: [`run`] ends by auditing
//! a configurable fraction of merged verdicts through
//! [`crate::spotcheck`].

use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

use consensus_lab::json::Value;
use consensus_lab::report::SweepMeta;
use consensus_lab::scenario::{AdversarySpec, AnalysisKind, Shard};
use consensus_lab::session::Query;
use consensus_lab::store::ScenarioRecord;
use consensus_obs::metrics::registry;
use consensus_obs::trace::tracer;
use consensus_serve::client::Client;

use crate::spotcheck::{self, SpotCheckSummary};

/// One cluster sweep's knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Worker addresses (`host:port`), each a running `consensus-lab
    /// serve` node.
    pub workers: Vec<String>,
    /// Shards planned per worker. More than one gives the rebalancer
    /// useful granularity: a dead worker's loss redistributes in
    /// shard-sized pieces instead of halving the fleet's progress.
    pub shards_per_worker: usize,
    /// Sweep the built-in catalog up to this depth…
    pub max_depth: usize,
    /// …across these analyses.
    pub analyses: Vec<AnalysisKind>,
    /// Sweep one spec-language adversary instead of the catalog.
    pub spec: Option<String>,
    /// Percentage of definitive solvability verdicts to audit via
    /// certificate replay (0 disables the audit).
    pub spot_check_pct: usize,
    /// Retries per shard request before a worker is declared dead.
    pub retries: usize,
    /// Backoff between retries (linear: `attempt × backoff`).
    pub backoff: Duration,
    /// Per-request deadline (dial + write + read of one exchange).
    pub deadline: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: Vec::new(),
            shards_per_worker: 2,
            max_depth: 3,
            analyses: AnalysisKind::ALL.to_vec(),
            spec: None,
            spot_check_pct: 10,
            retries: 2,
            backoff: Duration::from_millis(50),
            deadline: Duration::from_secs(30),
        }
    }
}

/// Robustness and audit counters for one cluster run (mirrored into the
/// process-global obs registry under `cluster.*`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Fleet size at launch.
    pub workers: usize,
    /// Workers declared dead during the run.
    pub workers_dead: usize,
    /// Shards the grid was split into.
    pub shards: usize,
    /// Scenarios in the merged result set.
    pub scenarios: usize,
    /// Shard requests dispatched (first attempts; retries counted apart).
    pub dispatches: usize,
    /// Shard request retries after a timeout or transport failure.
    pub retries: usize,
    /// Shards requeued onto surviving workers after a death.
    pub rebalances: usize,
    /// Verdicts audited by certificate replay.
    pub spot_checks: usize,
    /// Audited verdicts that failed the replay.
    pub spot_check_failures: usize,
}

/// One completed cluster sweep.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// The merged records, in global grid order — byte-identical
    /// (modulo timing fields) to a single-node sweep of the same grid.
    pub records: Vec<ScenarioRecord>,
    /// Summed sweep-meta counters, when every shard response carried one.
    pub meta: Option<SweepMeta>,
    /// Robustness and audit counters.
    pub stats: ClusterStats,
    /// Spot-check rejections, one message per failed audit. A caller
    /// that trusts the output must check this is empty (the CLI exits
    /// nonzero on any entry).
    pub spot_check_failures: Vec<String>,
}

/// Why a shard dispatch gave up.
enum ShardFailure {
    /// The worker is unreachable, stalled past the deadline, or
    /// answering 5xx — mark it dead and rebalance its shards.
    Worker(String),
    /// The worker *rejected* the request (4xx) or answered garbage — a
    /// coordinator-side protocol bug; abort the whole run loudly
    /// instead of burning the fleet on retries.
    Fatal(String),
}

/// One worker's dispatch-round outcome.
struct WorkerRun {
    worker: usize,
    completed: Vec<(usize, Vec<ScenarioRecord>, Option<SweepMeta>)>,
    retries: usize,
    /// `Some((unfinished shards, error))` when the worker died mid-round.
    died: Option<(Vec<usize>, String)>,
    fatal: Option<String>,
}

/// Run one cluster sweep: plan shards, dispatch with retry and
/// rebalancing, merge by global index, validate grid completeness, and
/// spot-check the merged verdicts.
///
/// # Errors
/// A message when the grid is empty, every worker is dead with shards
/// still pending, a worker rejects the protocol, the merged set is not
/// the whole grid, or no live worker is left to audit against.
pub fn run(cfg: &ClusterConfig) -> Result<ClusterOutcome, String> {
    if cfg.workers.is_empty() {
        return Err("cluster needs at least one worker address".into());
    }
    let grid = match &cfg.spec {
        None => Query::catalog_grid(cfg.max_depth, &cfg.analyses),
        Some(spec) => {
            let spec = AdversarySpec::parse(spec).map_err(|e| e.to_string())?;
            Query::grid(std::slice::from_ref(&spec), cfg.max_depth, &cfg.analyses)
        }
    };
    if grid.is_empty() {
        return Err("cluster grid is empty".into());
    }
    let shard_count = (cfg.workers.len() * cfg.shards_per_worker.max(1)).clamp(1, grid.len());
    let bodies: Vec<String> = (0..shard_count)
        .map(|index| shard_body(cfg, &grid, index, shard_count))
        .collect();

    let mut span = tracer()
        .span("cluster.sweep")
        .with_attr("workers", cfg.workers.len())
        .with_attr("shards", shard_count)
        .with_attr("scenarios", grid.len());

    let mut stats = ClusterStats {
        workers: cfg.workers.len(),
        shards: shard_count,
        scenarios: grid.len(),
        ..ClusterStats::default()
    };
    let mut alive: Vec<bool> = vec![true; cfg.workers.len()];
    let mut pending: VecDeque<usize> = (0..shard_count).collect();
    let mut merged: BTreeMap<usize, ScenarioRecord> = BTreeMap::new();
    let mut metas: Vec<SweepMeta> = Vec::new();
    let mut metas_complete = true;

    while !pending.is_empty() {
        let live: Vec<usize> = (0..alive.len()).filter(|&w| alive[w]).collect();
        if live.is_empty() {
            return Err(format!(
                "all {} worker(s) are dead with {} shard(s) unfinished",
                cfg.workers.len(),
                pending.len()
            ));
        }
        // Assign every pending shard round-robin over the live workers.
        let mut assignments: Vec<(usize, Vec<usize>)> =
            live.iter().map(|&w| (w, Vec::new())).collect();
        let lanes = assignments.len();
        for (at, shard) in pending.drain(..).enumerate() {
            assignments[at % lanes].1.push(shard);
        }
        assignments.retain(|(_, shards)| !shards.is_empty());
        let dispatched: usize = assignments.iter().map(|(_, s)| s.len()).sum();
        stats.dispatches += dispatched;
        registry().counter("cluster.dispatches").add(dispatched as u64);

        let runs: Vec<WorkerRun> = std::thread::scope(|scope| {
            let handles: Vec<_> = assignments
                .iter()
                .map(|(worker, shards)| {
                    let addr = cfg.workers[*worker].as_str();
                    let bodies = &bodies;
                    scope.spawn(move || run_worker(*worker, addr, shards, bodies, cfg))
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("dispatch thread panicked"))
                .collect()
        });

        for run in runs {
            stats.retries += run.retries;
            if let Some(fatal) = run.fatal {
                return Err(fatal);
            }
            for (_, records, meta) in run.completed {
                match meta {
                    Some(meta) => metas.push(meta),
                    None => metas_complete = false,
                }
                for record in records {
                    merged.insert(record.index, record);
                }
            }
            if let Some((unfinished, error)) = run.died {
                alive[run.worker] = false;
                stats.workers_dead += 1;
                stats.rebalances += unfinished.len();
                registry().counter("cluster.workers_dead").inc();
                registry().counter("cluster.rebalances").add(unfinished.len() as u64);
                eprintln!(
                    "[cluster] worker {} is dead ({error}); rebalancing {} shard(s)",
                    cfg.workers[run.worker],
                    unfinished.len()
                );
                pending.extend(unfinished);
            }
        }
    }
    registry().counter("cluster.retries").add(stats.retries as u64);

    // The merge must be the whole grid: a by-index splice tolerates any
    // dispatch order, but a duplicate or missing cell is a bug, exactly
    // as `consensus-lab merge` refuses a partial shard union.
    let records: Vec<ScenarioRecord> = merged.into_values().collect();
    for (position, record) in records.iter().enumerate() {
        if record.index != position {
            return Err(format!(
                "merged shard union is not the whole grid: index {} at sorted position \
                 {position} (worker returned a wrong slice?)",
                record.index
            ));
        }
    }
    if records.len() != grid.len() {
        return Err(format!(
            "merged shard union has {} record(s), grid has {}",
            records.len(),
            grid.len()
        ));
    }

    let live: Vec<String> =
        (0..alive.len()).filter(|&w| alive[w]).map(|w| cfg.workers[w].clone()).collect();
    let audit: SpotCheckSummary =
        spotcheck::spot_check(&records, &live, cfg.spot_check_pct, cfg.deadline)?;
    stats.spot_checks = audit.checked;
    stats.spot_check_failures = audit.failures.len();

    span.set_attr("rebalances", stats.rebalances);
    span.set_attr("spot_checks", stats.spot_checks);
    let meta = (metas_complete && !metas.is_empty()).then(|| SweepMeta::merged(&metas));
    Ok(ClusterOutcome { records, meta, stats, spot_check_failures: audit.failures })
}

/// The `/v1/sweep` body for one shard: the catalog grid (or the
/// explicit query list for a `--spec` sweep, preserving the serial
/// sweep's grid order) plus the `"shard": "i/n"` slice. Workers keep
/// global indices, so responses merge without re-indexing.
fn shard_body(cfg: &ClusterConfig, grid: &[Query], index: usize, count: usize) -> String {
    let shard = Value::Str(format!("{}", Shard { index, count }));
    let body = match &cfg.spec {
        None => Value::Obj(vec![
            ("catalog".into(), Value::Bool(true)),
            ("max_depth".into(), Value::Int(cfg.max_depth as i64)),
            (
                "analyses".into(),
                Value::Arr(cfg.analyses.iter().map(|k| Value::Str(k.name().to_string())).collect()),
            ),
            ("shard".into(), shard),
        ]),
        Some(spec) => Value::Obj(vec![
            (
                "queries".into(),
                Value::Arr(
                    grid.iter()
                        .map(|q| {
                            Value::Obj(vec![
                                ("spec".into(), Value::Str(spec.clone())),
                                ("depth".into(), Value::Int(q.depth as i64)),
                                ("analysis".into(), Value::Str(q.analysis.name().to_string())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("shard".into(), shard),
        ]),
    };
    body.to_string()
}

/// Dispatch one worker's shard list sequentially over one keep-alive
/// connection, stopping at the first shard the worker cannot complete.
fn run_worker(
    worker: usize,
    addr: &str,
    shards: &[usize],
    bodies: &[String],
    cfg: &ClusterConfig,
) -> WorkerRun {
    let mut run = WorkerRun { worker, completed: Vec::new(), retries: 0, died: None, fatal: None };
    let mut client: Option<Client> = None;
    for (at, &shard) in shards.iter().enumerate() {
        let mut span = tracer()
            .span("cluster.shard")
            .with_attr("shard", shard)
            .with_attr("worker", addr.to_string());
        match dispatch_shard(&mut client, addr, &bodies[shard], cfg, &mut run.retries) {
            Ok((records, meta)) => {
                span.set_attr("records", records.len());
                run.completed.push((shard, records, meta));
            }
            Err(ShardFailure::Fatal(error)) => {
                run.fatal = Some(error);
                return run;
            }
            Err(ShardFailure::Worker(error)) => {
                run.died = Some((shards[at..].to_vec(), error));
                return run;
            }
        }
    }
    run
}

/// POST one shard body to one worker under the configured deadline,
/// with bounded linear-backoff retry on transport failures and 5xx.
fn dispatch_shard(
    client: &mut Option<Client>,
    addr: &str,
    body: &str,
    cfg: &ClusterConfig,
    retries: &mut usize,
) -> Result<(Vec<ScenarioRecord>, Option<SweepMeta>), ShardFailure> {
    let mut last_error = String::new();
    for attempt in 0..=cfg.retries {
        if attempt > 0 {
            *retries += 1;
            std::thread::sleep(cfg.backoff * attempt as u32);
        }
        if client.is_none() {
            match Client::connect_with_deadline(addr, cfg.deadline) {
                Ok(connected) => *client = Some(connected),
                Err(e) => {
                    last_error = format!("connecting to {addr}: {e}");
                    continue;
                }
            }
        }
        let connected = client.as_mut().expect("connected above");
        match connected.post_json("/v1/sweep", body) {
            Err(e) => {
                // Timeout, refused, or torn mid-response: the connection
                // state is unknown, so the retry re-dials.
                *client = None;
                last_error = format!("{addr}: {e}");
            }
            Ok(answer) if answer.status == 200 => {
                return parse_shard_response(&answer.body)
                    .map_err(|e| ShardFailure::Fatal(format!("{addr}: {e}")));
            }
            Ok(answer) if (500..600).contains(&answer.status) => {
                // Overload shed (503) or a server-side failure: worth a
                // bounded retry, then the worker counts as dead.
                *client = None;
                last_error = format!("{addr}: HTTP {}: {}", answer.status, answer.body);
            }
            Ok(answer) => {
                return Err(ShardFailure::Fatal(format!(
                    "{addr} rejected the shard request (HTTP {}): {}",
                    answer.status, answer.body
                )));
            }
        }
    }
    Err(ShardFailure::Worker(last_error))
}

fn parse_shard_response(body: &str) -> Result<(Vec<ScenarioRecord>, Option<SweepMeta>), String> {
    let value =
        consensus_lab::json::parse(body).map_err(|e| format!("unparseable sweep response: {e}"))?;
    let Some(Value::Arr(items)) = value.get("records") else {
        return Err("sweep response has no records array".into());
    };
    let mut records = Vec::with_capacity(items.len());
    for item in items {
        records.push(
            ScenarioRecord::from_json(item)
                .map_err(|e| format!("malformed record in sweep response: {e}"))?,
        );
    }
    let meta = value.get("meta").and_then(SweepMeta::from_json);
    Ok((records, meta))
}
