//! Shard planning, dispatch, rebalancing, and merge.
//!
//! The coordinator plans `workers × shards_per_worker` deterministic
//! slices of the scenario grid (the CLI `--shard i/n` grammar), then
//! drives rounds: every pending shard is assigned round-robin over the
//! live workers, one dispatch thread per worker POSTs its shards to
//! `/v1/sweep` under a per-request deadline with bounded retry and
//! backoff, and a worker that exhausts its retries is marked dead — its
//! unfinished shards requeue onto the survivors in the next round
//! (*rebalancing*). Records carry their global grid indices across the
//! wire, so the merge is a by-index splice validated for grid
//! completeness, and the merged output is byte-identical (modulo timing
//! fields) to a single-node sweep.
//!
//! Finishing a run does not mean trusting it: [`run`] ends by auditing
//! a configurable fraction of merged verdicts through
//! [`crate::spotcheck`].
//!
//! The coordinator is also the fleet's observability seam. When tracing
//! is enabled it stamps every dispatch with an `x-consensus-trace`
//! context (so worker-side `http.request` spans know which
//! `cluster.shard` they served), drains each worker's span ring via
//! `GET /v1/trace` after every round, and stitches the foreign
//! fragments — ids remapped collision-free, spans tagged with a `node`
//! label, worker roots re-parented under the coordinator's spans —
//! into one cross-node trace. Independently of tracing it can poll
//! `/v1/stats` and fold the workers' counters and log-bucketed
//! histograms (exact bucket-wise merges) into a fleet snapshot, and
//! emit live shard-lifecycle events through [`crate::events`].

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::time::Duration;

use consensus_lab::json::Value;
use consensus_lab::report::SweepMeta;
use consensus_lab::scenario::{AdversarySpec, AnalysisKind, Shard};
use consensus_lab::session::Query;
use consensus_lab::store::ScenarioRecord;
use consensus_obs::metrics::{registry, HistogramSnapshot};
use consensus_obs::trace::{trace_id, tracer, TraceContext, TRACE_HEADER};
use consensus_serve::client::Client;

use crate::events::EventSink;
use crate::spotcheck::{self, SpotCheckSummary};

/// One cluster sweep's knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Worker addresses (`host:port`), each a running `consensus-lab
    /// serve` node.
    pub workers: Vec<String>,
    /// Shards planned per worker. More than one gives the rebalancer
    /// useful granularity: a dead worker's loss redistributes in
    /// shard-sized pieces instead of halving the fleet's progress.
    pub shards_per_worker: usize,
    /// Sweep the built-in catalog up to this depth…
    pub max_depth: usize,
    /// …across these analyses.
    pub analyses: Vec<AnalysisKind>,
    /// Sweep one spec-language adversary instead of the catalog.
    pub spec: Option<String>,
    /// Percentage of definitive solvability verdicts to audit via
    /// certificate replay (0 disables the audit).
    pub spot_check_pct: usize,
    /// Retries per shard request before a worker is declared dead.
    pub retries: usize,
    /// Backoff between retries (linear: `attempt × backoff`).
    pub backoff: Duration,
    /// Per-request deadline (dial + write + read of one exchange).
    pub deadline: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: Vec::new(),
            shards_per_worker: 2,
            max_depth: 3,
            analyses: AnalysisKind::ALL.to_vec(),
            spec: None,
            spot_check_pct: 10,
            retries: 2,
            backoff: Duration::from_millis(50),
            deadline: Duration::from_secs(30),
        }
    }
}

/// Robustness and audit counters for one cluster run (mirrored into the
/// process-global obs registry under `cluster.*`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Fleet size at launch.
    pub workers: usize,
    /// Workers declared dead during the run.
    pub workers_dead: usize,
    /// Shards the grid was split into.
    pub shards: usize,
    /// Scenarios in the merged result set.
    pub scenarios: usize,
    /// Shard requests dispatched (first attempts; retries counted apart).
    pub dispatches: usize,
    /// Shard request retries after a timeout or transport failure.
    pub retries: usize,
    /// Shards requeued onto surviving workers after a death.
    pub rebalances: usize,
    /// Verdicts audited by certificate replay.
    pub spot_checks: usize,
    /// Audited verdicts that failed the replay.
    pub spot_check_failures: usize,
    /// Worker-side spans stitched into the coordinator's trace (zero
    /// when tracing is off, or when the fleet shares this process's
    /// tracer — in-process test fleets need no stitching).
    pub spans_stitched: usize,
    /// Lifecycle events emitted through the run's [`EventSink`].
    pub events_emitted: usize,
}

/// One completed cluster sweep.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// The merged records, in global grid order — byte-identical
    /// (modulo timing fields) to a single-node sweep of the same grid.
    pub records: Vec<ScenarioRecord>,
    /// Summed sweep-meta counters, when every shard response carried one.
    pub meta: Option<SweepMeta>,
    /// Robustness and audit counters.
    pub stats: ClusterStats,
    /// Spot-check rejections, one message per failed audit. A caller
    /// that trusts the output must check this is empty (the CLI exits
    /// nonzero on any entry).
    pub spot_check_failures: Vec<String>,
    /// The stitched worker-side span fragments, one trace-schema JSONL
    /// line each, ready to append to the coordinator's own `--trace-out`
    /// drain. Empty when tracing is off or every worker shares this
    /// process's tracer.
    pub stitched_spans: Vec<String>,
    /// The fleet metrics snapshot (`cluster-stats.json`): per-worker
    /// request totals plus the workers' obs registries folded into one —
    /// counters summed, histograms merged bucket-wise. `None` when no
    /// worker could be polled.
    pub fleet: Option<Value>,
}

/// Why a shard dispatch gave up.
enum ShardFailure {
    /// The worker is unreachable, stalled past the deadline, or
    /// answering 5xx — mark it dead and rebalance its shards.
    Worker(String),
    /// The worker *rejected* the request (4xx) or answered garbage — a
    /// coordinator-side protocol bug; abort the whole run loudly
    /// instead of burning the fleet on retries.
    Fatal(String),
}

/// One worker's dispatch-round outcome.
struct WorkerRun {
    worker: usize,
    completed: Vec<(usize, Vec<ScenarioRecord>, Option<SweepMeta>)>,
    retries: usize,
    /// `Some((unfinished shards, error))` when the worker died mid-round.
    died: Option<(Vec<usize>, String)>,
    fatal: Option<String>,
}

/// Run one cluster sweep: plan shards, dispatch with retry and
/// rebalancing, merge by global index, validate grid completeness, and
/// spot-check the merged verdicts.
///
/// # Errors
/// A message when the grid is empty, every worker is dead with shards
/// still pending, a worker rejects the protocol, the merged set is not
/// the whole grid, or no live worker is left to audit against.
pub fn run(cfg: &ClusterConfig) -> Result<ClusterOutcome, String> {
    run_with(cfg, None)
}

/// [`run`], with an optional live event sink: shard-lifecycle events
/// (`dispatched` / `completed` / `retried` / `rebalanced` / `audited`)
/// are written as they happen — the `--events-out` path.
///
/// # Errors
/// As [`run`].
pub fn run_with(cfg: &ClusterConfig, events: Option<&EventSink>) -> Result<ClusterOutcome, String> {
    if cfg.workers.is_empty() {
        return Err("cluster needs at least one worker address".into());
    }
    let grid = match &cfg.spec {
        None => Query::catalog_grid(cfg.max_depth, &cfg.analyses),
        Some(spec) => {
            let spec = AdversarySpec::parse(spec).map_err(|e| e.to_string())?;
            Query::grid(std::slice::from_ref(&spec), cfg.max_depth, &cfg.analyses)
        }
    };
    if grid.is_empty() {
        return Err("cluster grid is empty".into());
    }
    let shard_count = (cfg.workers.len() * cfg.shards_per_worker.max(1)).clamp(1, grid.len());
    let bodies: Vec<String> = (0..shard_count)
        .map(|index| shard_body(cfg, &grid, index, shard_count))
        .collect();

    let mut span = tracer()
        .span("cluster.sweep")
        .with_attr("workers", cfg.workers.len())
        .with_attr("shards", shard_count)
        .with_attr("scenarios", grid.len());
    // The sweep root's id anchors the whole cross-node tree: dispatch
    // threads parent their `cluster.shard` spans under it, and stitched
    // worker fragments fall back to it when their own parent is gone.
    let root = span.id();
    let mut harvest = TraceHarvest::new(cfg.workers.len());

    let mut stats = ClusterStats {
        workers: cfg.workers.len(),
        shards: shard_count,
        scenarios: grid.len(),
        ..ClusterStats::default()
    };
    let mut alive: Vec<bool> = vec![true; cfg.workers.len()];
    let mut pending: VecDeque<usize> = (0..shard_count).collect();
    let mut merged: BTreeMap<usize, ScenarioRecord> = BTreeMap::new();
    let mut metas: Vec<SweepMeta> = Vec::new();
    let mut metas_complete = true;
    let mut round = 0usize;

    while !pending.is_empty() {
        let live: Vec<usize> = (0..alive.len()).filter(|&w| alive[w]).collect();
        if live.is_empty() {
            return Err(format!(
                "all {} worker(s) are dead with {} shard(s) unfinished",
                cfg.workers.len(),
                pending.len()
            ));
        }
        // Assign every pending shard round-robin over the live workers.
        let mut assignments: Vec<(usize, Vec<usize>)> =
            live.iter().map(|&w| (w, Vec::new())).collect();
        let lanes = assignments.len();
        for (at, shard) in pending.drain(..).enumerate() {
            assignments[at % lanes].1.push(shard);
        }
        assignments.retain(|(_, shards)| !shards.is_empty());
        let dispatched: usize = assignments.iter().map(|(_, s)| s.len()).sum();
        stats.dispatches += dispatched;
        registry().counter("cluster.dispatches").add(dispatched as u64);
        if let Some(sink) = events {
            for (worker, shards) in &assignments {
                for &shard in shards {
                    sink.emit(
                        "dispatched",
                        vec![
                            ("shard".into(), Value::Int(shard as i64)),
                            ("worker".into(), Value::Str(cfg.workers[*worker].clone())),
                            ("round".into(), Value::Int(round as i64)),
                        ],
                    );
                }
            }
        }

        let runs: Vec<WorkerRun> = std::thread::scope(|scope| {
            let handles: Vec<_> = assignments
                .iter()
                .map(|(worker, shards)| {
                    let addr = cfg.workers[*worker].as_str();
                    let bodies = &bodies;
                    scope
                        .spawn(move || run_worker(*worker, addr, shards, bodies, cfg, root, events))
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("dispatch thread panicked"))
                .collect()
        });
        let round_workers: Vec<usize> = assignments.iter().map(|(worker, _)| *worker).collect();

        for run in runs {
            stats.retries += run.retries;
            if let Some(fatal) = run.fatal {
                return Err(fatal);
            }
            for (_, records, meta) in run.completed {
                match meta {
                    Some(meta) => metas.push(meta),
                    None => metas_complete = false,
                }
                for record in records {
                    merged.insert(record.index, record);
                }
            }
            if let Some((unfinished, error)) = run.died {
                alive[run.worker] = false;
                stats.workers_dead += 1;
                stats.rebalances += unfinished.len();
                registry().counter("cluster.workers_dead").inc();
                registry().counter("cluster.rebalances").add(unfinished.len() as u64);
                eprintln!(
                    "[cluster] worker {} is dead ({error}); rebalancing {} shard(s)",
                    cfg.workers[run.worker],
                    unfinished.len()
                );
                if let Some(sink) = events {
                    for &shard in &unfinished {
                        sink.emit(
                            "rebalanced",
                            vec![
                                ("shard".into(), Value::Int(shard as i64)),
                                ("worker".into(), Value::Str(cfg.workers[run.worker].clone())),
                                ("error".into(), Value::Str(error.clone())),
                            ],
                        );
                    }
                }
                pending.extend(unfinished);
            }
        }
        // Drain this round's worker span rings while the spans are fresh
        // (the ring overwrites its oldest entries under pressure).
        harvest.poll(cfg, &round_workers, &alive);
        round += 1;
    }
    registry().counter("cluster.retries").add(stats.retries as u64);

    // The merge must be the whole grid: a by-index splice tolerates any
    // dispatch order, but a duplicate or missing cell is a bug, exactly
    // as `consensus-lab merge` refuses a partial shard union.
    let records: Vec<ScenarioRecord> = merged.into_values().collect();
    for (position, record) in records.iter().enumerate() {
        if record.index != position {
            return Err(format!(
                "merged shard union is not the whole grid: index {} at sorted position \
                 {position} (worker returned a wrong slice?)",
                record.index
            ));
        }
    }
    if records.len() != grid.len() {
        return Err(format!(
            "merged shard union has {} record(s), grid has {}",
            records.len(),
            grid.len()
        ));
    }

    let live: Vec<String> =
        (0..alive.len()).filter(|&w| alive[w]).map(|w| cfg.workers[w].clone()).collect();
    let audit: SpotCheckSummary =
        spotcheck::spot_check_with(&records, &live, cfg.spot_check_pct, cfg.deadline, events)?;
    stats.spot_checks = audit.checked;
    stats.spot_check_failures = audit.failures.len();

    // One last ring drain catches the spans the audit requests opened,
    // then the foreign fragments stitch into the local trace.
    let live_indices: Vec<usize> = (0..alive.len()).filter(|&w| alive[w]).collect();
    harvest.poll(cfg, &live_indices, &alive);
    let stitched_spans = harvest.stitch(cfg, root);
    stats.spans_stitched = stitched_spans.len();
    if tracer().is_enabled() && harvest.incomplete() {
        eprintln!(
            "[cluster] stitched trace is incomplete: {} worker-side span(s) lost to ring \
             overwrite, {} trace poll(s) failed",
            harvest.dropped_total(),
            harvest.failed_polls
        );
    }
    stats.events_emitted = events.map_or(0, EventSink::emitted);

    span.set_attr("rebalances", stats.rebalances);
    span.set_attr("spot_checks", stats.spot_checks);
    span.set_attr("spans_stitched", stats.spans_stitched);
    let fleet = fleet_snapshot(cfg, &alive, &stats);
    let meta = (metas_complete && !metas.is_empty()).then(|| SweepMeta::merged(&metas));
    Ok(ClusterOutcome {
        records,
        meta,
        stats,
        spot_check_failures: audit.failures,
        stitched_spans,
        fleet,
    })
}

/// Per-worker `/v1/trace` harvest state: a drain cursor and the foreign
/// span fragments collected so far, plus the completeness signals
/// (worker-side ring drops, failed polls) that make an incomplete
/// stitch loud instead of silent.
struct TraceHarvest {
    cursors: Vec<u64>,
    foreign: Vec<Vec<Value>>,
    dropped: Vec<u64>,
    failed_polls: usize,
}

impl TraceHarvest {
    fn new(workers: usize) -> TraceHarvest {
        TraceHarvest {
            cursors: vec![0; workers],
            foreign: vec![Vec::new(); workers],
            dropped: vec![0; workers],
            failed_polls: 0,
        }
    }

    /// Drain each listed worker's span ring past this harvest's cursor.
    /// Workers reporting this process's own trace id are skipped: an
    /// in-process fleet (tests, `cluster-bench`) shares the local ring,
    /// so its spans are already home and need no stitching.
    fn poll(&mut self, cfg: &ClusterConfig, workers: &[usize], alive: &[bool]) {
        if !tracer().is_enabled() {
            return;
        }
        let local = format!("{:032x}", trace_id());
        for &worker in workers {
            if !alive[worker] {
                self.failed_polls += 1;
                continue;
            }
            let addr = &cfg.workers[worker];
            let path = format!("/v1/trace?since={}", self.cursors[worker]);
            let answer = Client::connect_with_deadline(addr, cfg.deadline)
                .and_then(|mut client| client.get(&path));
            let value = match answer {
                Ok(answer) if answer.status == 200 => consensus_lab::json::parse(&answer.body).ok(),
                _ => None,
            };
            let Some(value) = value else {
                self.failed_polls += 1;
                continue;
            };
            if value.get("trace_id").and_then(Value::as_str) == Some(local.as_str()) {
                continue;
            }
            if let Some(dropped) = value.get("dropped").and_then(Value::as_i64) {
                self.dropped[worker] = dropped.max(0) as u64;
            }
            if let Some(cursor) = value.get("cursor").and_then(Value::as_i64) {
                self.cursors[worker] = cursor.max(0) as u64;
            }
            if let Some(Value::Arr(spans)) = value.get("spans") {
                self.foreign[worker].extend(spans.iter().cloned());
            }
        }
    }

    fn dropped_total(&self) -> u64 {
        self.dropped.iter().sum()
    }

    fn incomplete(&self) -> bool {
        self.failed_polls > 0 || self.dropped_total() > 0
    }

    /// Stitch the foreign fragments into the local trace: remap each
    /// worker's span ids into a per-worker block far above any local id
    /// (collision-free), tag every span with a `node` label, re-parent
    /// worker roots under the `cluster.shard` span named by their
    /// propagated trace context (falling back to the sweep root when
    /// the context is absent or the in-ring parent was overwritten),
    /// and render each span back to a trace-schema JSONL line.
    fn stitch(&self, cfg: &ClusterConfig, root: Option<u64>) -> Vec<String> {
        /// Id block size per worker; worker `w`'s spans remap into
        /// `[(w+1) << 32, …)`, far above any realistic local span count.
        const STITCH_BASE: u64 = 1 << 32;
        let local = format!("{:032x}", trace_id());
        let mut out = Vec::new();
        for (worker, spans) in self.foreign.iter().enumerate() {
            if spans.is_empty() {
                continue;
            }
            let base = STITCH_BASE * (worker as u64 + 1);
            let ids: HashSet<u64> = spans.iter().filter_map(|s| field_u64(s, "id")).collect();
            for span in spans {
                let Some(id) = field_u64(span, "id") else {
                    continue;
                };
                let name = span.get("span").and_then(Value::as_str).unwrap_or_default();
                let attrs = span.get("attrs");
                let mut orphaned = false;
                let parent = match field_u64(span, "parent") {
                    Some(parent) if ids.contains(&parent) => Some(base + parent),
                    // Parent overwritten in the worker's ring before the
                    // drain reached it: hang the orphan off the sweep
                    // root, marked so `report --trace` can warn loudly.
                    Some(_) => {
                        orphaned = true;
                        root
                    }
                    None => {
                        let remote_trace =
                            attrs.and_then(|a| a.get("remote_trace")).and_then(Value::as_str);
                        let remote_parent = attrs
                            .and_then(|a| a.get("remote_parent"))
                            .and_then(Value::as_i64)
                            .and_then(|p| u64::try_from(p).ok());
                        match (remote_trace, remote_parent) {
                            (Some(trace), Some(parent)) if trace == local => Some(parent),
                            _ => root,
                        }
                    }
                };
                let mut attrs: Vec<(String, Value)> = match attrs {
                    Some(Value::Obj(fields)) => fields.clone(),
                    _ => Vec::new(),
                };
                attrs.push(("node".into(), Value::Str(cfg.workers[worker].clone())));
                if orphaned {
                    attrs.push(("orphaned".into(), Value::Bool(true)));
                }
                let rebuilt = Value::Obj(vec![
                    ("span".into(), Value::Str(name.to_string())),
                    ("id".into(), Value::Int((base + id) as i64)),
                    ("parent".into(), parent.map_or(Value::Null, |p| Value::Int(p as i64))),
                    (
                        "start_us".into(),
                        Value::Int(field_u64(span, "start_us").unwrap_or(0) as i64),
                    ),
                    ("dur_us".into(), Value::Int(field_u64(span, "dur_us").unwrap_or(0) as i64)),
                    ("attrs".into(), Value::Obj(attrs)),
                ]);
                out.push(rebuilt.to_string());
            }
        }
        out
    }
}

fn field_u64(value: &Value, key: &str) -> Option<u64> {
    value.get(key).and_then(Value::as_i64).and_then(|n| u64::try_from(n).ok())
}

/// Poll `/v1/stats` on every live worker and fold the answers into one
/// fleet snapshot: per-worker request totals kept apart, the obs
/// registries merged — counters summed, histograms merged bucket-wise
/// (exact, because the log-bucketed histograms make merge commutative
/// and associative), with the quantiles recomputed from the merged
/// buckets rather than averaged.
fn fleet_snapshot(cfg: &ClusterConfig, alive: &[bool], stats: &ClusterStats) -> Option<Value> {
    let mut per_worker: Vec<(String, Value)> = Vec::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    #[allow(clippy::type_complexity)]
    let mut histograms: BTreeMap<String, (u64, u64, u64, BTreeMap<u64, u64>)> = BTreeMap::new();
    let mut requests_total = 0u64;
    let mut polled = 0usize;
    for (worker, addr) in cfg.workers.iter().enumerate() {
        let answer = alive[worker]
            .then(|| {
                Client::connect_with_deadline(addr, cfg.deadline)
                    .and_then(|mut client| client.get("/v1/stats"))
            })
            .and_then(Result::ok)
            .filter(|answer| answer.status == 200)
            .and_then(|answer| consensus_lab::json::parse(&answer.body).ok());
        let Some(value) = answer else {
            per_worker
                .push((addr.clone(), Value::Obj(vec![("reachable".into(), Value::Bool(false))])));
            continue;
        };
        polled += 1;
        let mut worker_requests = 0u64;
        if let Some(Value::Obj(endpoints)) = value.get("endpoints") {
            for (_, endpoint) in endpoints {
                worker_requests += endpoint.get_usize("count").unwrap_or(0) as u64;
            }
        }
        requests_total += worker_requests;
        let registry = value.get("registry");
        if let Some(Value::Obj(names)) = registry.and_then(|r| r.get("counters")) {
            for (name, count) in names {
                let count = count.as_i64().and_then(|n| u64::try_from(n).ok()).unwrap_or(0);
                *counters.entry(name.clone()).or_insert(0) += count;
            }
        }
        if let Some(Value::Obj(names)) = registry.and_then(|r| r.get("histograms_ns")) {
            for (name, hist) in names {
                let fold = histograms.entry(name.clone()).or_default();
                fold.0 += field_u64(hist, "count").unwrap_or(0);
                fold.1 += field_u64(hist, "sum").unwrap_or(0);
                fold.2 = fold.2.max(field_u64(hist, "max").unwrap_or(0));
                if let Some(Value::Arr(buckets)) = hist.get("buckets") {
                    for pair in buckets {
                        if let Value::Arr(pair) = pair {
                            if let (Some(bound), Some(count)) = (
                                pair.first().and_then(Value::as_i64),
                                pair.get(1).and_then(Value::as_i64),
                            ) {
                                *fold.3.entry(bound.max(0) as u64).or_insert(0) +=
                                    count.max(0) as u64;
                            }
                        }
                    }
                }
            }
        }
        per_worker.push((
            addr.clone(),
            Value::Obj(vec![
                ("reachable".into(), Value::Bool(true)),
                ("requests_total".into(), Value::Int(worker_requests as i64)),
                ("trace".into(), value.get("trace").cloned().unwrap_or(Value::Null)),
            ]),
        ));
    }
    if polled == 0 {
        return None;
    }
    let merged_counters: Vec<(String, Value)> = counters
        .into_iter()
        .map(|(name, count)| (name, Value::Int(count as i64)))
        .collect();
    let merged_histograms: Vec<(String, Value)> = histograms
        .into_iter()
        .map(|(name, (count, sum, max, buckets))| {
            let snap =
                HistogramSnapshot { count, sum, max, buckets: buckets.into_iter().collect() };
            (
                name,
                Value::Obj(vec![
                    ("count".into(), Value::Int(snap.count as i64)),
                    ("sum".into(), Value::Int(snap.sum as i64)),
                    ("max".into(), Value::Int(snap.max as i64)),
                    ("p50".into(), Value::Int(snap.quantile(0.5) as i64)),
                    ("p90".into(), Value::Int(snap.quantile(0.9) as i64)),
                    ("p99".into(), Value::Int(snap.quantile(0.99) as i64)),
                ]),
            )
        })
        .collect();
    Some(Value::Obj(vec![
        (
            "workers".into(),
            Value::Arr(cfg.workers.iter().map(|addr| Value::Str(addr.clone())).collect()),
        ),
        ("workers_dead".into(), Value::Int(stats.workers_dead as i64)),
        (
            "merged".into(),
            Value::Obj(vec![
                ("requests_total".into(), Value::Int(requests_total as i64)),
                ("counters".into(), Value::Obj(merged_counters)),
                ("histograms_ns".into(), Value::Obj(merged_histograms)),
            ]),
        ),
        ("per_worker".into(), Value::Obj(per_worker)),
    ]))
}

/// The `/v1/sweep` body for one shard: the catalog grid (or the
/// explicit query list for a `--spec` sweep, preserving the serial
/// sweep's grid order) plus the `"shard": "i/n"` slice. Workers keep
/// global indices, so responses merge without re-indexing.
fn shard_body(cfg: &ClusterConfig, grid: &[Query], index: usize, count: usize) -> String {
    let shard = Value::Str(format!("{}", Shard { index, count }));
    let body = match &cfg.spec {
        None => Value::Obj(vec![
            ("catalog".into(), Value::Bool(true)),
            ("max_depth".into(), Value::Int(cfg.max_depth as i64)),
            (
                "analyses".into(),
                Value::Arr(cfg.analyses.iter().map(|k| Value::Str(k.name().to_string())).collect()),
            ),
            ("shard".into(), shard),
        ]),
        Some(spec) => Value::Obj(vec![
            (
                "queries".into(),
                Value::Arr(
                    grid.iter()
                        .map(|q| {
                            Value::Obj(vec![
                                ("spec".into(), Value::Str(spec.clone())),
                                ("depth".into(), Value::Int(q.depth as i64)),
                                ("analysis".into(), Value::Str(q.analysis.name().to_string())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("shard".into(), shard),
        ]),
    };
    body.to_string()
}

/// Dispatch one worker's shard list sequentially over one keep-alive
/// connection, stopping at the first shard the worker cannot complete.
fn run_worker(
    worker: usize,
    addr: &str,
    shards: &[usize],
    bodies: &[String],
    cfg: &ClusterConfig,
    root: Option<u64>,
    events: Option<&EventSink>,
) -> WorkerRun {
    let mut run = WorkerRun { worker, completed: Vec::new(), retries: 0, died: None, fatal: None };
    let mut client: Option<Client> = None;
    for (at, &shard) in shards.iter().enumerate() {
        let mut span = tracer()
            .span_under("cluster.shard", root)
            .with_attr("shard", shard)
            .with_attr("worker", addr.to_string());
        // Stamp the dispatch with this shard span's context, so the
        // worker's `http.request` span knows its cross-process parent.
        let trace = span.id().map(|id| TraceContext::local(id).to_header());
        match dispatch_shard(
            &mut client,
            addr,
            &bodies[shard],
            trace.as_deref(),
            cfg,
            shard,
            &mut run.retries,
            events,
        ) {
            Ok((records, meta, request_id)) => {
                span.set_attr("records", records.len());
                if let Some(sink) = events {
                    let mut fields = vec![
                        ("shard".into(), Value::Int(shard as i64)),
                        ("worker".into(), Value::Str(addr.to_string())),
                        ("records".into(), Value::Int(records.len() as i64)),
                    ];
                    if let Some(request_id) = request_id {
                        fields.push(("request_id".into(), Value::Str(request_id)));
                    }
                    sink.emit("completed", fields);
                }
                run.completed.push((shard, records, meta));
            }
            Err(ShardFailure::Fatal(error)) => {
                run.fatal = Some(error);
                return run;
            }
            Err(ShardFailure::Worker(error)) => {
                run.died = Some((shards[at..].to_vec(), error));
                return run;
            }
        }
    }
    run
}

/// One successful shard dispatch: the records, the optional sweep
/// meta, and the worker's `x-request-id` echo for event correlation.
type ShardAnswer = (Vec<ScenarioRecord>, Option<SweepMeta>, Option<String>);

/// POST one shard body to one worker under the configured deadline,
/// with bounded linear-backoff retry on transport failures and 5xx.
#[allow(clippy::too_many_arguments)]
fn dispatch_shard(
    client: &mut Option<Client>,
    addr: &str,
    body: &str,
    trace: Option<&str>,
    cfg: &ClusterConfig,
    shard: usize,
    retries: &mut usize,
    events: Option<&EventSink>,
) -> Result<ShardAnswer, ShardFailure> {
    let headers: Vec<(&str, &str)> = trace.map(|value| (TRACE_HEADER, value)).into_iter().collect();
    let mut last_error = String::new();
    for attempt in 0..=cfg.retries {
        if attempt > 0 {
            *retries += 1;
            if let Some(sink) = events {
                sink.emit(
                    "retried",
                    vec![
                        ("shard".into(), Value::Int(shard as i64)),
                        ("worker".into(), Value::Str(addr.to_string())),
                        ("attempt".into(), Value::Int(attempt as i64)),
                        ("error".into(), Value::Str(last_error.clone())),
                    ],
                );
            }
            std::thread::sleep(cfg.backoff * attempt as u32);
        }
        if client.is_none() {
            match Client::connect_with_deadline(addr, cfg.deadline) {
                Ok(connected) => *client = Some(connected),
                Err(e) => {
                    last_error = format!("connecting to {addr}: {e}");
                    continue;
                }
            }
        }
        let connected = client.as_mut().expect("connected above");
        match connected.post_json_with("/v1/sweep", body, &headers) {
            Err(e) => {
                // Timeout, refused, or torn mid-response: the connection
                // state is unknown, so the retry re-dials.
                *client = None;
                last_error = format!("{addr}: {e}");
            }
            Ok(answer) if answer.status == 200 => {
                let request_id = answer.request_id.clone();
                return parse_shard_response(&answer.body)
                    .map(|(records, meta)| (records, meta, request_id))
                    .map_err(|e| ShardFailure::Fatal(format!("{addr}: {e}")));
            }
            Ok(answer) if (500..600).contains(&answer.status) => {
                // Overload shed (503) or a server-side failure: worth a
                // bounded retry, then the worker counts as dead.
                *client = None;
                last_error = format!("{addr}: HTTP {}: {}", answer.status, answer.body);
            }
            Ok(answer) => {
                return Err(ShardFailure::Fatal(format!(
                    "{addr} rejected the shard request (HTTP {}): {}",
                    answer.status, answer.body
                )));
            }
        }
    }
    Err(ShardFailure::Worker(last_error))
}

fn parse_shard_response(body: &str) -> Result<(Vec<ScenarioRecord>, Option<SweepMeta>), String> {
    let value =
        consensus_lab::json::parse(body).map_err(|e| format!("unparseable sweep response: {e}"))?;
    let Some(Value::Arr(items)) = value.get("records") else {
        return Err("sweep response has no records array".into());
    };
    let mut records = Vec::with_capacity(items.len());
    for item in items {
        records.push(
            ScenarioRecord::from_json(item)
                .map_err(|e| format!("malformed record in sweep response: {e}"))?,
        );
    }
    let meta = value.get("meta").and_then(SweepMeta::from_json);
    Ok((records, meta))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Value {
        consensus_lab::json::parse(text).expect("test JSON parses")
    }

    fn attr<'a>(span: &'a Value, key: &str) -> Option<&'a Value> {
        span.get("attrs").and_then(|attrs| attrs.get(key))
    }

    /// The stitcher's three parent cases in one harvested fragment: a
    /// context-carrying worker root re-parents under the local
    /// `cluster.shard` span it names, in-fragment nesting survives the
    /// id remap, and a span whose in-ring parent was overwritten falls
    /// back to the sweep root with the `orphaned` marker.
    #[test]
    fn stitch_remaps_reparents_and_marks_orphans() {
        let cfg = ClusterConfig {
            workers: vec!["10.0.0.1:7".into(), "10.0.0.2:7".into()],
            ..ClusterConfig::default()
        };
        let local = format!("{:032x}", trace_id());
        let mut harvest = TraceHarvest::new(2);
        harvest.foreign[0] = vec![
            parse(&format!(
                "{{\"span\":\"http.request\",\"id\":3,\"parent\":null,\"start_us\":1,\
                 \"dur_us\":5,\"attrs\":{{\"remote_trace\":\"{local}\",\"remote_parent\":42}}}}"
            )),
            parse(
                "{\"span\":\"expand\",\"id\":4,\"parent\":3,\"start_us\":2,\"dur_us\":1,\
                 \"attrs\":{}}",
            ),
            parse(
                "{\"span\":\"components\",\"id\":10,\"parent\":9,\"start_us\":3,\"dur_us\":1,\
                 \"attrs\":{}}",
            ),
        ];
        let lines = harvest.stitch(&cfg, Some(7));
        assert_eq!(lines.len(), 3);
        let spans: Vec<Value> = lines.iter().map(|line| parse(line)).collect();

        const BASE: u64 = 1 << 32;
        assert_eq!(field_u64(&spans[0], "id"), Some(BASE + 3));
        assert_eq!(
            field_u64(&spans[0], "parent"),
            Some(42),
            "propagated context re-parents the worker root under the local shard span"
        );
        assert_eq!(
            field_u64(&spans[1], "parent"),
            Some(BASE + 3),
            "in-fragment nesting survives the id remap"
        );
        assert_eq!(
            field_u64(&spans[2], "parent"),
            Some(7),
            "overwritten parent falls back to the sweep root"
        );
        for span in &spans {
            assert_eq!(attr(span, "node").and_then(Value::as_str), Some("10.0.0.1:7"));
        }
        assert_eq!(attr(&spans[2], "orphaned").and_then(Value::as_bool), Some(true));
        assert!(attr(&spans[0], "orphaned").is_none());
        assert!(attr(&spans[1], "orphaned").is_none());
    }

    /// A fragment whose context names someone else's trace (a worker
    /// serving two coordinators at once) must NOT be grafted onto this
    /// process's shard spans — it hangs off the sweep root instead.
    #[test]
    fn stitch_ignores_foreign_trace_contexts() {
        let cfg = ClusterConfig { workers: vec!["10.0.0.1:7".into()], ..ClusterConfig::default() };
        let mut harvest = TraceHarvest::new(1);
        harvest.foreign[0] = vec![parse(
            "{\"span\":\"http.request\",\"id\":1,\"parent\":null,\"start_us\":0,\"dur_us\":1,\
             \"attrs\":{\"remote_trace\":\"deadbeefdeadbeefdeadbeefdeadbeef\",\
             \"remote_parent\":42}}",
        )];
        let spans: Vec<Value> =
            harvest.stitch(&cfg, Some(7)).iter().map(|line| parse(line)).collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(field_u64(&spans[0], "parent"), Some(7));
    }
}
