//! The `consensus-lab` CLI: batch experiments over message adversaries.
//!
//! ```text
//! consensus-lab catalog
//! consensus-lab check --adversary sw-lossy-link --depth 4 [--analysis solvability]
//! consensus-lab check --pool "-> <- <->" --depth 3
//! consensus-lab check --adversary message-loss-2-2 --analysis solvability --certificate
//! consensus-lab verify-cert cert.json
//! consensus-lab sweep --catalog --max-depth 4 [--out lab-results] [--threads 8]
//!                     [--analyses solvability,bivalence] [--budget 2000000] [--repeat 2]
//! consensus-lab report --input lab-results/results.jsonl
//! consensus-lab serve --addr 127.0.0.1:7171 [--threads 8] [--cache-dir DIR]
//! consensus-lab serve-bench --connections 4 --out BENCH_serve.json
//! consensus-lab cluster --workers 127.0.0.1:7181,127.0.0.1:7182 --max-depth 3 --out cluster-results
//! consensus-lab cluster-bench --out BENCH_cluster.json
//! ```

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use consensus_cluster::bench::{self as cluster_bench, ClusterBenchConfig};
use consensus_cluster::coordinator::{self, ClusterConfig};
use consensus_cluster::events::EventSink;
use consensus_lab::report::{Aggregate, SweepMeta, SWEEP_META_FILE};
use consensus_lab::runner::solvability_matches;
use consensus_lab::scenario::{AdversarySpec, AnalysisKind, Shard};
use consensus_lab::session::{Query, Session};
use consensus_lab::store::{
    parse_jsonl, parse_records, ResultStore, ScenarioRecord, TIMING_FIELDS,
};
use consensus_lab::{AnalysisConfig, CacheConfig, Error, ExpandConfig};
use consensus_obs::trace::tracer;
use consensus_serve::api::App;
use consensus_serve::loadgen::{self, LoadGenConfig};
use consensus_serve::server::{ServeConfig, Server};

const USAGE: &str = "\
consensus-lab — batch experiments over message adversaries (PODC'19 Nowak–Schmid–Winkler)

USAGE:
    consensus-lab catalog
        List the built-in adversary catalog.

    consensus-lab check (--spec TERM | --adversary NAME | --pool \"-> <- <->\"
                        [--eventually G [--by R]])
                        [--depth D] [--analysis KIND] [--budget RUNS] [--expand-threads N]
                        [--certificate] [--trace-out FILE]
        Run one scenario and print the record.
          --spec TERM      an adversary-combinator term of the shared spec
                           language, e.g. 'union(pool(->), pool(<-))',
                           'eventually(<->, by=2)', 'window(<- -> <->, 2)',
                           'prefix(<-> ->, catalog(sw-lossy-link))';
                           --adversary/--pool/--eventually/--by are compat
                           aliases lowering to the same terms
          --certificate    attach the checkable `consensus-cert/v1` object
                           to definitive solvability records (see
                           docs/certificates.md); re-check it offline with
                           `verify-cert`
          --trace-out FILE write the run's spans (expand, cache lookups,
                           analyses, …) to FILE as JSONL; verdicts and
                           results are byte-identical with or without it

    consensus-lab verify-cert FILE
        Re-check a certificate against the adversary it names, without
        expanding any prefix space. FILE is a bare `consensus-cert/v1`
        object, or any record/response carrying one in a \"certificate\"
        field (`check --certificate` output, a /v1/check response body);
        `-` reads stdin, so a server response pipes straight through.
        Prints {\"ok\":true,\"verdict\":...,\"verify_ms\":...}; on rejection
        prints the typed error and exits 1.

    consensus-lab sweep (--catalog | --spec TERM)
                        [--max-depth D] [--analyses K1,K2] [--budget RUNS]
                        [--threads N] [--expand-threads N] [--out DIR] [--repeat N]
                        [--time-limit-ms MS] [--shard I/N] [--resume DIR]
                        [--cache-dir DIR] [--strict] [--assert-warm] [--trace-out FILE]
        Run the scenario grid over the catalog (or one --spec adversary)
        in parallel; write DIR/results.jsonl, DIR/summary.csv, and
        DIR/sweep-meta.json (default DIR: lab-results).
          --shard I/N      run only this deterministic slice of the grid
                           (records keep their global indices for `merge`)
          --resume DIR     skip scenarios already in DIR/results.jsonl and
                           write the completed set back to DIR
          --cache-dir DIR  persist verdicts across processes; a warm cache
                           answers repeat scenarios with zero expansions
          --strict         exit nonzero if any verdict contradicts the
                           catalog's pinned ground truth, or fails to
                           confirm it conclusively at the deepest depth
          --assert-warm    exit nonzero if any full prefix-space expansion
                           was needed (CI warm-cache regression check)
          --expand-threads N
                           shard each prefix-space expansion over N scoped
                           workers (0 = all available cores, 1 = serial;
                           results are byte-identical either way)
          --trace-out FILE write the sweep's spans to FILE as JSONL;
                           results.jsonl stays byte-identical with or
                           without tracing

    consensus-lab merge --inputs A.jsonl,B.jsonl[,...] --out DIR
        Merge shard result files (by global grid index) into
        DIR/results.jsonl + DIR/summary.csv, byte-identical to the
        unsharded sweep's files; sums sweep-meta sidecars when present.

    consensus-lab diff --a X.jsonl --b Y.jsonl
        Compare two result files modulo timing fields; exit 1 on drift.

    consensus-lab report --input FILE.jsonl
        Aggregate a stored result file (plus its sweep-meta sidecar's
        cache counters and expansion-engine telemetry, when present).

    consensus-lab report --timings --trace TRACE.jsonl
        Render a per-stage time tree (calls, total ms, share of root
        time) from a --trace-out file; combinable with --input.

    consensus-lab trace-check --input TRACE.jsonl
        Validate a --trace-out file against the span schema: known span
        names, unique ids, resolvable parents, child intervals nested
        within their parents. Prints {\"spans\":N,\"roots\":M,\"ok\":true};
        exit 1 on the first violation.

    consensus-lab bench-gate --baseline BENCH.json --fresh BENCH.json
                             [--max-regression PCT] [--keys K1,K2] [--exact K1,K2]
        Compare a freshly measured bench datum against the committed
        baseline: timing keys (*_ms, or --keys) may regress at most PCT
        percent (default 25); --exact keys must match to the digit.
        Exit 1 on any regression.

    consensus-lab serve [--addr HOST:PORT] [--threads N] [--cache-dir DIR]
                        [--expand-threads N] [--budget RUNS] [--warm-from HOST:PORT]
                        [--trace-out FILE | --trace]
        Serve the solvability query API over HTTP/1.1: POST /v1/check,
        POST /v1/sweep (optional \"shard\":\"i/n\" slice), GET /v1/catalog,
        GET /v1/journal/segment, GET /v1/stats, GET /v1/trace?since=ID
        (non-destructive span-ring cursor for fleet trace stitching),
        GET /healthz, GET /metrics (JSON; ?format=prometheus for text
        exposition). Every response echoes an x-request-id header
        (generated when the request carries none), and a request bearing
        an x-consensus-trace context parents its spans under the remote
        caller (see docs/observability.md).
        One long-lived Session (shared space cache + optional persistent
        verdict journal under --cache-dir) answers every request, so the
        server warms up once and stays warm. Every request logs one
        structured completion line (request id, endpoint, status, µs) on
        stderr. Default address 127.0.0.1:7171; --threads 0 (default) =
        all available cores. --trace-out appends completed spans
        (http.request and the session spans under it) to FILE as JSONL,
        flushed every 500 ms. --trace instead enables the tracer with
        *no* local flusher — fleet-worker mode, where the span ring is
        left intact for a cluster coordinator to harvest via
        GET /v1/trace (the two flags are mutually exclusive: a local
        drain would swallow spans the harvester has not read yet).
          --warm-from HOST:PORT
                           before serving, pull a live peer's verdict
                           journal (GET /v1/journal/segment) and absorb
                           it into this worker's --cache-dir journal
                           (required), through the same salt check that
                           guards a local journal

    consensus-lab serve-bench [--addr HOST:PORT] [--connections N] [--requests M]
                              [--max-depth D] [--analyses K1,K2] [--threads N]
                              [--out FILE] [--records DIR] [--assert-warm]
        Load-generate against a server (or a self-spawned in-process one
        when --addr is absent): a sequential cold /v1/check pass over the
        catalog × depth × analysis grid, one /v1/sweep, then N connections
        × M requests warm. Prints the bench datum; --out writes it
        (BENCH_serve.json), --records DIR writes the swept records as
        DIR/results.jsonl for diffing against `consensus-lab sweep`,
        --assert-warm exits nonzero if the warm pass expanded anything.

    consensus-lab cluster --workers HOST:PORT[,HOST:PORT...]
                          [--spec TERM] [--max-depth D] [--analyses K1,K2]
                          [--out DIR] [--shards-per-worker N] [--spot-check PCT]
                          [--retries N] [--backoff-ms MS] [--deadline-ms MS]
                          [--trace-out FILE] [--events-out FILE]
        Coordinate a distributed sweep over a fleet of `serve` workers:
        split the catalog grid (or one --spec adversary's grid) into
        workers × --shards-per-worker (default 2) deterministic shards,
        dispatch them as sharded POST /v1/sweep requests under a
        per-request deadline with bounded retry (+ linear backoff), and
        rebalance a dead worker's unfinished shards onto the survivors.
        Writes DIR/results.jsonl + DIR/summary.csv (default DIR:
        cluster-results), byte-identical to the single-node sweep modulo
        timing fields. --spot-check PCT (default 10) audits that
        fraction of definitive solvability verdicts by requesting
        certificates from the fleet and replaying the verification
        locally; any rejected audit fails the run.
          --trace-out FILE stamp every dispatch with an x-consensus-trace
                           context, drain each worker's span ring
                           (GET /v1/trace) after every round, and write
                           one stitched cross-node trace: worker spans
                           carry a \"node\" label and parent under the
                           cluster.shard span that dispatched them
          --events-out FILE
                           append live shard-lifecycle events as JSONL
                           (cluster.dispatched / completed / retried /
                           rebalanced / audited; see
                           docs/observability.md)
        Also writes DIR/cluster-stats.json: the fleet /v1/stats fold —
        per-worker request totals plus the workers' counters summed and
        their latency histograms merged bucket-wise.

    consensus-lab cluster-bench [--max-depth D] [--analyses K1,K2]
                                [--spot-check PCT] [--threads N] [--out FILE]
        Benchmark the coordinator against 2 self-spawned in-process
        workers: serial vs cluster wall clock (untraced and traced),
        retry/rebalance/audit counters, lifecycle-event and stitched-span
        tallies, peer warm-start segment size, and a record-identity
        bit. Prints the bench datum; --out writes it
        (BENCH_cluster.json).

ANALYSES: solvability, bivalence, broadcastability, component-stats, sim-check
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("catalog") => cmd_catalog(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("verify-cert") => cmd_verify_cert(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("trace-check") => cmd_trace_check(&args[1..]),
        Some("bench-gate") => cmd_bench_gate(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("serve-bench") => cmd_serve_bench(&args[1..]),
        Some("cluster") => cmd_cluster(&args[1..]),
        Some("cluster-bench") => cmd_cluster_bench(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand {other:?}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal flag parser: `--key value` pairs plus bare `--switch`es.
struct Flags {
    pairs: Vec<(String, Option<String>)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {arg:?}"));
            };
            let value = args.get(i + 1).filter(|v| !v.starts_with("--"));
            match value {
                Some(v) => {
                    pairs.push((key.to_string(), Some(v.clone())));
                    i += 2;
                }
                None => {
                    pairs.push((key.to_string(), None));
                    i += 1;
                }
            }
        }
        Ok(Flags { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == key)
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.pairs.iter().find(|(k, _)| k == key) {
            None => Ok(default),
            Some((_, None)) => Err(format!("--{key} expects a number")),
            Some((_, Some(v))) => {
                v.parse().map_err(|_| format!("--{key} expects a number, got {v:?}"))
            }
        }
    }

    /// Reject flags outside the subcommand's vocabulary — a mistyped
    /// experiment parameter must fail loudly, not run with a default.
    fn reject_unknown(&self, allowed: &[&str]) -> Result<(), String> {
        for (key, _) in &self.pairs {
            if !allowed.contains(&key.as_str()) {
                return Err(if allowed.is_empty() {
                    format!("unknown flag --{key} (this subcommand takes no flags)")
                } else {
                    format!(
                        "unknown flag --{key} (expected one of: {})",
                        allowed.iter().map(|k| format!("--{k}")).collect::<Vec<_>>().join(", ")
                    )
                });
            }
        }
        Ok(())
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}

/// Resolve `--trace-out` and, when present, switch the process-global
/// tracer on (the disabled path must stay free for untraced runs).
fn trace_out(flags: &Flags) -> Result<Option<PathBuf>, String> {
    match flags.get("trace-out") {
        None if flags.has("trace-out") => Err("--trace-out expects a file path".into()),
        None => Ok(None),
        Some(path) => {
            tracer().enable();
            Ok(Some(PathBuf::from(path)))
        }
    }
}

/// Drain the tracer's completed spans and append them to `path` as JSONL.
/// Returns how many spans were written.
fn append_trace(path: &Path) -> Result<usize, String> {
    use std::io::Write;
    let spans = tracer().drain();
    if spans.is_empty() {
        return Ok(0);
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("opening {}: {e}", path.display()))?;
    for span in &spans {
        writeln!(file, "{}", span.to_jsonl())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    Ok(spans.len())
}

/// Finish a `--trace-out` run: truncate `path` (one file per run), drain
/// everything recorded, and report the tally on stderr.
fn finish_trace(path: &Path) -> Result<(), String> {
    std::fs::write(path, "").map_err(|e| format!("creating {}: {e}", path.display()))?;
    let written = append_trace(path)?;
    let dropped = tracer().dropped();
    if dropped > 0 {
        eprintln!("[trace] ring overflow: {dropped} span(s) overwritten before the drain");
    }
    eprintln!("[trace] {written} span(s) → {}", path.display());
    Ok(())
}

/// `println!` that tolerates a closed stdout (`consensus-lab ... | head`):
/// Rust's default SIGPIPE handling turns EPIPE into a panic inside
/// `println!`, so line output goes through this instead.
fn emit(line: std::fmt::Arguments<'_>) {
    use std::io::Write;
    let _ = writeln!(std::io::stdout(), "{line}");
}

fn cmd_catalog(args: &[String]) -> ExitCode {
    match Flags::parse(args).and_then(|flags| flags.reject_unknown(&[])) {
        Ok(()) => {}
        Err(e) => return fail(&e),
    }
    emit(format_args!("{:<30} {:>2} {:>8} {:<12} summary", "name", "n", "compact", "expected"));
    for entry in adversary::catalog::entries() {
        let ma = entry.build();
        let expected = match entry.expected {
            Some(true) => "solvable",
            Some(false) => "unsolvable",
            None => "mixed",
        };
        emit(format_args!(
            "{:<30} {:>2} {:>8} {:<12} {}",
            entry.name,
            ma.n(),
            ma.is_compact(),
            expected,
            entry.summary
        ));
    }
    ExitCode::SUCCESS
}

fn parse_spec(flags: &Flags) -> Result<AdversarySpec, String> {
    if flags.has("spec") {
        if flags.has("adversary") || flags.has("pool") || flags.has("eventually") || flags.has("by")
        {
            return Err(
                "--spec and the --adversary/--pool compat flags are mutually exclusive".into()
            );
        }
        let Some(spec) = flags.get("spec") else {
            return Err("--spec expects a spec string (e.g. \"union(pool(->), pool(<-))\")".into());
        };
        return AdversarySpec::parse(spec).map_err(|e| e.to_string());
    }
    match (flags.get("adversary"), flags.get("pool")) {
        (Some(name), None) => {
            if flags.has("eventually") || flags.has("by") {
                return Err("--eventually/--by only apply to --pool adversaries".into());
            }
            Ok(AdversarySpec::catalog(name))
        }
        (None, Some(word)) => {
            let eventually = match flags.get("eventually") {
                None => None,
                Some(target) => {
                    // A malformed deadline must not silently fall back to
                    // "no deadline" — that is a different (non-compact)
                    // adversary.
                    let deadline = match flags.get("by") {
                        None if flags.has("by") => return Err("--by expects a round number".into()),
                        None => None,
                        Some(r) => Some(
                            r.parse()
                                .map_err(|_| format!("--by expects a round number, got {r:?}"))?,
                        ),
                    };
                    Some((target, deadline))
                }
            };
            AdversarySpec::pool(word, eventually).map_err(|e| e.to_string())
        }
        (Some(_), Some(_)) => Err("--adversary and --pool are mutually exclusive".into()),
        (None, None) => Err("check needs --spec, --adversary NAME, or --pool \"...\"".into()),
    }
}

/// Resolve `--expand-threads`: an explicit 0 = all available cores,
/// 1 = serial, N = that many expansion workers; absent = `default`
/// (both subcommands default to serial). The 0-means-auto resolution is
/// `ExpandConfig`'s own convention, so the flag value passes through.
fn expand_threads(flags: &Flags, default: usize) -> Result<usize, String> {
    flags.get_usize("expand-threads", default)
}

fn cmd_check(args: &[String]) -> ExitCode {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if let Err(e) = flags.reject_unknown(&[
        "spec",
        "adversary",
        "pool",
        "eventually",
        "by",
        "depth",
        "analysis",
        "budget",
        "expand-threads",
        "certificate",
        "trace-out",
    ]) {
        return fail(&e);
    }
    let trace_path = match trace_out(&flags) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let spec = match parse_spec(&flags) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let depth = match flags.get_usize("depth", 4) {
        Ok(d) => d,
        Err(e) => return fail(&e),
    };
    let budget = match flags.get_usize("budget", 2_000_000) {
        Ok(b) => b,
        Err(e) => return fail(&e),
    };
    if flags.has("analysis") && flags.get("analysis").is_none() {
        return fail("--analysis expects an analysis kind (e.g. solvability)");
    }
    let analyses: Vec<AnalysisKind> = match flags.get("analysis") {
        None => AnalysisKind::ALL.to_vec(),
        Some(name) => match AnalysisKind::parse(name) {
            Ok(kind) => vec![kind],
            Err(e) => return fail(&e.to_string()),
        },
    };
    let threads = match expand_threads(&flags, 1) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let session = match Session::with_configs(
        ExpandConfig { threads, max_runs: budget },
        AnalysisConfig::default(),
        CacheConfig::default(),
    ) {
        Ok(session) => session,
        Err(e) => return fail(&e.to_string()),
    };
    let mut errored = false;
    for analysis in analyses {
        // One single-query batch per analysis: records stream as each
        // analysis completes, each with index 0 (the `check` contract).
        let mut query = Query::new(spec.clone(), depth, analysis);
        if flags.has("certificate") {
            query = query.with_certificate();
        }
        for record in session.check_many(std::slice::from_ref(&query)).store.records() {
            errored |= record.outcome.verdict == "error";
            emit(format_args!("{}", record.to_json()));
        }
    }
    let stats = session.space_cache().stats();
    eprintln!(
        "[cache] constructions: {}, hits: {}, ladder extensions: {}, budget misses: {}",
        stats.builds, stats.hits, stats.ladder_hits, stats.budget_misses
    );
    if let Some(path) = &trace_path {
        if let Err(e) = finish_trace(path) {
            return fail(&e);
        }
    }
    if errored {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_verify_cert(args: &[String]) -> ExitCode {
    // `verify-cert FILE` (one positional) or `verify-cert --input FILE`;
    // `-` reads stdin so a /v1/check response pipes straight in.
    let (positional, rest): (Vec<&String>, Vec<&String>) =
        args.iter().partition(|a| !a.starts_with("--"));
    let rest: Vec<String> = rest.into_iter().cloned().collect();
    let flags = match Flags::parse(&rest) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if let Err(e) = flags.reject_unknown(&["input"]) {
        return fail(&e);
    }
    let input = match (positional.as_slice(), flags.get("input")) {
        ([file], None) => file.as_str(),
        ([], Some(file)) => file,
        ([], None) => return fail("verify-cert needs FILE (or --input FILE; - reads stdin)"),
        _ => return fail("verify-cert takes exactly one certificate file"),
    };
    let text = if input == "-" {
        use std::io::Read;
        let mut buf = String::new();
        match std::io::stdin().read_to_string(&mut buf) {
            Ok(_) => buf,
            Err(e) => return fail(&format!("reading stdin: {e}")),
        }
    } else {
        match std::fs::read_to_string(input) {
            Ok(t) => t,
            Err(e) => return fail(&format!("reading {input}: {e}")),
        }
    };
    let value = match consensus_lab::json::parse(&text) {
        Ok(v) => v,
        Err(e) => return fail(&format!("{input}: {e}")),
    };
    // Accept a bare certificate object (its "certificate" field is the
    // version *string*) or any record/response wrapping one (its
    // "certificate" field is the certificate *object*).
    let cert_value = match value.get("certificate") {
        Some(consensus_lab::json::Value::Str(_)) => &value,
        Some(obj @ consensus_lab::json::Value::Obj(_)) => obj,
        Some(_) => {
            return fail(&format!(
                "{input}: \"certificate\" is neither a version string nor a certificate object"
            ))
        }
        None => {
            return fail(&format!(
                "{input}: no certificate found (run `check --certificate` or POST /v1/check \
                 with \"certificate\": true to obtain one)"
            ))
        }
    };
    let cert = match consensus_core::Certificate::from_json(cert_value) {
        Ok(cert) => cert,
        Err(e) => return fail(&format!("{input}: malformed certificate [{}]: {e}", e.kind())),
    };
    let ma = match consensus_lab::session::certificate_adversary(cert.adversary()) {
        Ok(ma) => ma,
        Err(e) => return fail(&format!("{input}: [{}] {e}", e.kind())),
    };
    let start = std::time::Instant::now();
    let result = consensus_core::certificate::verify(&cert, ma.as_ref());
    let verify_ms = (start.elapsed().as_secs_f64() * 1e9).round() / 1e6;
    match result {
        Ok(()) => {
            emit(format_args!(
                "{}",
                consensus_lab::json::Value::Obj(vec![
                    ("ok".into(), consensus_lab::json::Value::Bool(true)),
                    ("verdict".into(), consensus_lab::json::Value::Str(cert.verdict().into())),
                    ("adversary".into(), consensus_lab::json::Value::Str(cert.adversary().into())),
                    ("verify_ms".into(), consensus_lab::json::Value::Float(verify_ms)),
                ])
            ));
            ExitCode::SUCCESS
        }
        Err(e) => {
            emit(format_args!(
                "{}",
                consensus_lab::json::Value::Obj(vec![
                    ("ok".into(), consensus_lab::json::Value::Bool(false)),
                    ("kind".into(), consensus_lab::json::Value::Str(e.kind().into())),
                    ("error".into(), consensus_lab::json::Value::Str(e.to_string())),
                ])
            ));
            ExitCode::FAILURE
        }
    }
}

fn cmd_sweep(args: &[String]) -> ExitCode {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if let Err(e) = flags.reject_unknown(&[
        "catalog",
        "spec",
        "max-depth",
        "analyses",
        "budget",
        "threads",
        "expand-threads",
        "out",
        "repeat",
        "time-limit-ms",
        "shard",
        "resume",
        "cache-dir",
        "strict",
        "assert-warm",
        "trace-out",
    ]) {
        return fail(&e);
    }
    let trace_path = match trace_out(&flags) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    if flags.has("catalog") && flags.has("spec") {
        return fail("--catalog and --spec are mutually exclusive");
    }
    if !flags.has("catalog") && !flags.has("spec") {
        return fail(
            "sweep requires --catalog (the built-in adversary registry) or --spec \"...\" \
             (one spec-language adversary)",
        );
    }
    let spec_grid = match flags.get("spec") {
        None if flags.has("spec") => return fail("--spec expects a spec string"),
        None => None,
        Some(spec) => match AdversarySpec::parse(spec) {
            Ok(spec) => Some(spec),
            Err(e) => return fail(&e.to_string()),
        },
    };
    let max_depth = match flags.get_usize("max-depth", 4) {
        Ok(d) => d,
        Err(e) => return fail(&e),
    };
    let budget = match flags.get_usize("budget", 2_000_000) {
        Ok(b) => b,
        Err(e) => return fail(&e),
    };
    let threads = match flags.get_usize("threads", 0) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let repeat = match flags.get_usize("repeat", 1) {
        Ok(r) => r.max(1),
        Err(e) => return fail(&e),
    };
    let shard = match flags.get("shard") {
        None if flags.has("shard") => return fail("--shard expects I/N (e.g. --shard 0/2)"),
        None => None,
        Some(spec) => match Shard::parse(spec) {
            Ok(s) => Some(s),
            Err(e) => return fail(&e.to_string()),
        },
    };
    let resume = match flags.get("resume") {
        None if flags.has("resume") => return fail("--resume expects a directory"),
        other => other.map(PathBuf::from),
    };
    if resume.is_some() && flags.has("out") {
        return fail(
            "--resume and --out are mutually exclusive (--resume writes back into its directory)",
        );
    }
    if flags.has("out") && flags.get("out").is_none() {
        return fail("--out expects a directory");
    }
    let out = resume
        .clone()
        .unwrap_or_else(|| PathBuf::from(flags.get("out").unwrap_or("lab-results")));
    let cache_dir = match flags.get("cache-dir") {
        None if flags.has("cache-dir") => return fail("--cache-dir expects a directory"),
        other => other.map(PathBuf::from),
    };
    let kinds = match parse_analyses(&flags) {
        Ok(kinds) => kinds,
        Err(e) => return fail(&e),
    };
    let grid = match spec_grid {
        Some(spec) => Query::grid(std::slice::from_ref(&spec), max_depth, &kinds),
        None => Query::catalog_grid(max_depth, &kinds),
    };
    let indexed: Vec<(usize, Query)> = grid.into_iter().enumerate().collect();
    let selected = match shard {
        Some(shard) => {
            let slice = shard.select(&indexed);
            emit(format_args!("[shard {shard}] {} of {} scenarios", slice.len(), indexed.len()));
            slice
        }
        None => indexed.clone(),
    };

    let scenario_identity =
        |q: &Query| -> (String, usize, AnalysisKind) { (q.spec.label(), q.depth, q.analysis) };
    let grid_by_identity: HashMap<(String, usize, AnalysisKind), usize> =
        indexed.iter().map(|(i, s)| (scenario_identity(s), *i)).collect();

    // Resume: scenarios already completed in the output file are not
    // re-executed; their stored records are revalidated and spliced back
    // into the final grid order. A stored record counts as *done* only if
    // it is budget/limit-independent (mirroring what the disk cache will
    // journal) AND its fingerprint still matches the adversary the current
    // binary builds for that cell — `expected`/`matches_expected` are then
    // re-derived against the current catalog, so a stale results file can
    // never mask ground-truth drift under `--resume --strict`. Records
    // failing those tests land in `leftover`: re-executed when selected,
    // but preserved verbatim when this run's shard does not cover them, so
    // shard-wise resumes accumulate without losing grid cells.
    let mut done: HashMap<(String, usize, AnalysisKind), ScenarioRecord> = HashMap::new();
    let mut leftover: HashMap<(String, usize, AnalysisKind), ScenarioRecord> = HashMap::new();
    if resume.is_some() {
        let path = out.join("results.jsonl");
        match std::fs::read_to_string(&path) {
            Ok(text) => match parse_records(&text) {
                Ok(records) => {
                    let mut unknown = 0usize;
                    let total = records.len();
                    for mut r in records {
                        let identity = r.identity();
                        let Some(&index) = grid_by_identity.get(&identity) else {
                            unknown += 1;
                            continue;
                        };
                        let query = &indexed[index].1;
                        if !consensus_lab::persist::persistable(&r) {
                            leftover.insert(identity, r);
                            continue;
                        }
                        match query.spec.build() {
                            Ok(ma) if ma.fingerprint() == r.fingerprint => {
                                r.expected = query.spec.expected();
                                r.matches_expected = None;
                                if query.analysis == AnalysisKind::Solvability {
                                    if let Some(expected) = r.expected {
                                        r.matches_expected =
                                            solvability_matches(expected, &r.outcome, r.budget_hit);
                                    }
                                }
                                done.insert(identity, r);
                            }
                            // Stale structure (or no longer buildable):
                            // recompute when selected.
                            _ => {
                                leftover.insert(identity, r);
                            }
                        }
                    }
                    if unknown > 0 {
                        // Rewriting would destroy completed work the
                        // current grid cannot re-create (e.g. depth-4
                        // records under a --max-depth 3 resume). Refuse
                        // rather than lose data.
                        let conflict = Error::CacheConflict {
                            reason: format!(
                                "{} of {total} record(s) in {} fall outside the current grid \
                                 (different --max-depth or --analyses than the original run?); \
                                 refusing to rewrite and lose them — rerun with matching grid \
                                 flags or a fresh --out",
                                unknown,
                                path.display()
                            ),
                        };
                        return fail(&conflict.to_string());
                    }
                    emit(format_args!(
                        "[resume] {} scenario(s) done in {}, {} to re-execute when selected \
                         (contingent or stale)",
                        done.len(),
                        path.display(),
                        leftover.len()
                    ));
                }
                Err((line, e)) => return fail(&format!("{}:{line}: {e}", path.display())),
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                emit(format_args!("[resume] no prior results at {}", path.display()));
            }
            Err(e) => return fail(&format!("reading {}: {e}", path.display())),
        }
    }
    let pending: Vec<(usize, Query)> = selected
        .iter()
        .filter(|(_, q)| !done.contains_key(&scenario_identity(q)))
        .cloned()
        .collect();

    let expand_workers = match expand_threads(&flags, 1) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    // One session across repeats: its space cache persists, so pass 2+
    // runs warm and demonstrates constructions ≪ scenarios.
    let mut cache_cfg = CacheConfig::default();
    if let Some(dir) = cache_dir {
        cache_cfg = cache_cfg.disk_dir(dir);
    }
    let mut session = match Session::with_configs(
        ExpandConfig { threads: expand_workers, max_runs: budget },
        AnalysisConfig::default(),
        cache_cfg,
    ) {
        Ok(session) => session,
        Err(e) => return fail(&e.to_string()),
    };
    if threads > 0 {
        session = session.workers(threads);
    }
    if flags.has("time-limit-ms") {
        match flags.get("time-limit-ms").map(str::parse::<u64>) {
            Some(Ok(ms)) => session = session.time_limit(Duration::from_millis(ms)),
            Some(Err(_)) | None => return fail("--time-limit-ms expects a number"),
        }
    }
    let mut last = None;
    for pass in 1..=repeat {
        let report = session.check_many_indexed(&pending);
        emit(format_args!("[pass {pass}/{repeat}] {}", report.summary()));
        last = Some(report);
    }
    let report = last.expect("repeat >= 1");
    if let Some(path) = &trace_path {
        if let Err(e) = finish_trace(path) {
            return fail(&e);
        }
    }

    // Final record set: resumed records (re-anchored to current grid
    // indices) plus this run's, in global grid order. Resumed records are
    // spliced against the *whole* grid, not just the current selection, so
    // successive `--resume --shard i/n` runs into one directory accumulate
    // rather than overwrite each other's completed shards. Splice priority
    // per cell: freshly executed > done > leftover (a leftover in a
    // selected cell was just re-executed and is overridden below).
    let mut by_index: BTreeMap<usize, ScenarioRecord> = BTreeMap::new();
    // Cells carried over from `leftover` were neither executed nor
    // revalidated this run: their stored flags are preserved verbatim in
    // the rewrite but must not decide this run's --strict gates.
    let mut unvalidated: std::collections::HashSet<usize> = std::collections::HashSet::new();
    for (index, scenario) in &indexed {
        let identity = scenario_identity(scenario);
        if let Some(mut record) = done.remove(&identity) {
            record.index = *index;
            by_index.insert(*index, record);
        } else if let Some(mut record) = leftover.remove(&identity) {
            record.index = *index;
            unvalidated.insert(*index);
            by_index.insert(*index, record);
        }
    }
    for record in report.store.records() {
        unvalidated.remove(&record.index);
        by_index.insert(record.index, record.clone());
    }
    let records: Vec<ScenarioRecord> = by_index.into_values().collect();
    let mismatched: Vec<String> = records
        .iter()
        .filter(|r| !unvalidated.contains(&r.index) && r.matches_expected == Some(false))
        .map(|r| format!("{}@{} → {}", r.adversary, r.depth, r.outcome.verdict))
        .collect();
    // The gate's second jaw: at the sweep's deepest resolution every
    // pinned catalog entry must *confirm* its ground truth, not merely
    // avoid contradicting it — a regression degrading a decided verdict to
    // `undecided` (or a budget-starved run) is drift too.
    let inconclusive: Vec<String> = records
        .iter()
        .filter(|r| {
            !unvalidated.contains(&r.index)
                && r.analysis == AnalysisKind::Solvability
                && r.depth == max_depth
                && r.expected.is_some()
                && r.matches_expected.is_none()
        })
        .map(|r| format!("{}@{} → {}", r.adversary, r.depth, r.outcome.verdict))
        .collect();
    // The sidecar describes the result set being written (so a warm or
    // resumed run still reports the full record count) plus this run's
    // cache counters.
    let scenario_count = records.len();
    let store = ResultStore::new(records);
    let meta = SweepMeta {
        scenarios: scenario_count,
        threads: report.threads,
        cache: report.cache,
        expand: report.expand,
    };

    match store.write_files(&out) {
        Ok((jsonl, csv)) => {
            let meta_path = out.join(SWEEP_META_FILE);
            if let Err(e) = std::fs::write(&meta_path, format!("{}\n", meta.to_json())) {
                return fail(&format!("writing {}: {e}", meta_path.display()));
            }
            emit(format_args!(
                "wrote {}, {}, and {}",
                jsonl.display(),
                csv.display(),
                meta_path.display()
            ));
            for mismatch in &mismatched {
                eprintln!("ground-truth mismatch: {mismatch}");
            }
            if flags.has("strict") && !mismatched.is_empty() {
                return fail(&format!(
                    "--strict: {} verdict(s) drifted from the catalog's pinned ground truth",
                    mismatched.len()
                ));
            }
            if flags.has("strict") && !inconclusive.is_empty() {
                for entry in &inconclusive {
                    eprintln!("inconclusive at max depth: {entry}");
                }
                return fail(&format!(
                    "--strict: {} pinned catalog verdict(s) failed to resolve conclusively \
                     at depth {max_depth}",
                    inconclusive.len()
                ));
            }
            if flags.has("assert-warm") && report.cache.builds > 0 {
                return fail(&format!(
                    "--assert-warm: {} full prefix-space expansion(s) on a supposedly warm cache",
                    report.cache.builds
                ));
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("writing results to {}: {e}", out.display())),
    }
}

fn cmd_merge(args: &[String]) -> ExitCode {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if let Err(e) = flags.reject_unknown(&["inputs", "out"]) {
        return fail(&e);
    }
    let Some(inputs) = flags.get("inputs") else {
        return fail("merge needs --inputs A.jsonl,B.jsonl[,...]");
    };
    let Some(out) = flags.get("out") else {
        return fail("merge needs --out DIR");
    };
    let out = PathBuf::from(out);
    let mut records: Vec<ScenarioRecord> = Vec::new();
    let mut metas: Vec<SweepMeta> = Vec::new();
    let mut metas_complete = true;
    for input in inputs.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let text = match std::fs::read_to_string(input) {
            Ok(t) => t,
            Err(e) => return fail(&format!("reading {input}: {e}")),
        };
        match parse_records(&text) {
            Ok(mut shard) => records.append(&mut shard),
            Err((line, e)) => return fail(&format!("{input}:{line}: {e}")),
        }
        match read_sweep_meta(Path::new(input)) {
            Some(meta) => metas.push(meta),
            None => metas_complete = false,
        }
    }
    records.sort_by_key(|r| r.index);
    for (position, record) in records.iter().enumerate() {
        if record.index != position {
            return fail(&format!(
                "shard union is not the whole grid: {} at sorted position {position} \
                 (duplicate or missing shard?)",
                record.index
            ));
        }
    }
    let count = records.len();
    match ResultStore::new(records).write_files(&out) {
        Ok((jsonl, csv)) => {
            emit(format_args!(
                "merged {count} records into {} and {}",
                jsonl.display(),
                csv.display()
            ));
            if metas_complete && !metas.is_empty() {
                let meta = SweepMeta::merged(&metas);
                let meta_path = out.join(SWEEP_META_FILE);
                if let Err(e) = std::fs::write(&meta_path, format!("{}\n", meta.to_json())) {
                    return fail(&format!("writing {}: {e}", meta_path.display()));
                }
                emit(format_args!(
                    "summed {} sweep-meta sidecars into {}",
                    metas.len(),
                    meta_path.display()
                ));
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("writing merged results to {}: {e}", out.display())),
    }
}

/// The sweep-meta sidecar next to a results file, if present and parseable.
fn read_sweep_meta(results: &Path) -> Option<SweepMeta> {
    let path = results.parent()?.join(SWEEP_META_FILE);
    let text = std::fs::read_to_string(path).ok()?;
    SweepMeta::from_json(&consensus_lab::json::parse(&text).ok()?)
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if let Err(e) = flags.reject_unknown(&["a", "b"]) {
        return fail(&e);
    }
    let (Some(path_a), Some(path_b)) = (flags.get("a"), flags.get("b")) else {
        return fail("diff needs --a X.jsonl --b Y.jsonl");
    };
    let load = |path: &str| -> Result<Vec<String>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        parse_jsonl(&text)
            .map_err(|(line, e)| format!("{path}:{line}: {e}"))
            .map(|values| {
                values.iter().map(|v| v.without_keys(TIMING_FIELDS).to_string()).collect()
            })
    };
    let a = match load(path_a) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let b = match load(path_b) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    if a.len() != b.len() {
        return fail(&format!(
            "record counts differ: {} has {}, {} has {}",
            path_a,
            a.len(),
            path_b,
            b.len()
        ));
    }
    for (i, (la, lb)) in a.iter().zip(&b).enumerate() {
        if la != lb {
            eprintln!("record {i} differs (modulo timing fields):");
            eprintln!("  a: {la}");
            eprintln!("  b: {lb}");
            return fail(&format!("{path_a} and {path_b} disagree at record {i}"));
        }
    }
    emit(format_args!("identical modulo timing fields ({} records)", a.len()));
    ExitCode::SUCCESS
}

fn cmd_bench_gate(args: &[String]) -> ExitCode {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if let Err(e) = flags.reject_unknown(&["baseline", "fresh", "max-regression", "keys", "exact"])
    {
        return fail(&e);
    }
    let (Some(baseline_path), Some(fresh_path)) = (flags.get("baseline"), flags.get("fresh"))
    else {
        return fail("bench-gate needs --baseline BENCH.json --fresh BENCH.json");
    };
    for key_flag in ["keys", "exact"] {
        if flags.has(key_flag) && flags.get(key_flag).is_none() {
            return fail(&format!("--{key_flag} expects a comma-separated key list"));
        }
    }
    let tolerance = match flags.get_usize("max-regression", 25) {
        Ok(pct) => pct as f64,
        Err(e) => return fail(&e),
    };
    let split = |list: &str| -> Vec<String> {
        list.split(',')
            .map(str::trim)
            .filter(|k| !k.is_empty())
            .map(String::from)
            .collect()
    };
    let keys = flags.get("keys").map(split);
    let exact = flags.get("exact").map(split).unwrap_or_default();
    let load = |path: &str| -> Result<consensus_lab::json::Value, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        consensus_lab::json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = match load(baseline_path) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let fresh = match load(fresh_path) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    match consensus_lab::gate::compare(&baseline, &fresh, tolerance, keys.as_deref(), &exact) {
        Ok(report) => {
            emit(format_args!("{report}"));
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => fail(&e),
    }
}

fn parse_analyses(flags: &Flags) -> Result<Vec<AnalysisKind>, String> {
    if flags.has("analyses") && flags.get("analyses").is_none() {
        return Err("--analyses expects a comma-separated list (e.g. solvability,bivalence)".into());
    }
    match flags.get("analyses") {
        None => Ok(AnalysisKind::ALL.to_vec()),
        Some(list) => list
            .split(',')
            .map(|name| AnalysisKind::parse(name.trim()).map_err(|e| e.to_string()))
            .collect(),
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if let Err(e) = flags.reject_unknown(&[
        "addr",
        "threads",
        "cache-dir",
        "expand-threads",
        "budget",
        "warm-from",
        "trace-out",
        "trace",
    ]) {
        return fail(&e);
    }
    let trace_path = match trace_out(&flags) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    // Fleet-worker mode: `--trace` switches the tracer on *without* a
    // local flusher, keeping finished spans in the ring for a
    // coordinator to harvest via `GET /v1/trace` (a local `--trace-out`
    // drain would race the harvest and swallow spans).
    if flags.has("trace") {
        if trace_path.is_some() {
            return fail(
                "--trace and --trace-out are mutually exclusive (the --trace-out \
                         flusher drains the span ring a /v1/trace harvester reads)",
            );
        }
        tracer().enable();
    }
    if flags.has("addr") && flags.get("addr").is_none() {
        return fail("--addr expects HOST:PORT");
    }
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7171").to_string();
    let threads = match flags.get_usize("threads", 0) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let budget = match flags.get_usize("budget", 2_000_000) {
        Ok(b) => b,
        Err(e) => return fail(&e),
    };
    let expand_workers = match expand_threads(&flags, 1) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let mut cache_cfg = CacheConfig::default();
    if flags.has("cache-dir") {
        match flags.get("cache-dir") {
            Some(dir) => cache_cfg = cache_cfg.disk_dir(PathBuf::from(dir)),
            None => return fail("--cache-dir expects a directory"),
        }
    }
    let journal = cache_cfg.disk_dir.clone();
    let session = match Session::with_configs(
        ExpandConfig { threads: expand_workers, max_runs: budget },
        AnalysisConfig::default(),
        cache_cfg,
    ) {
        Ok(session) => session,
        Err(e) => return fail(&e.to_string()),
    };
    if flags.has("warm-from") {
        let Some(peer) = flags.get("warm-from") else {
            return fail("--warm-from expects HOST:PORT (a live peer worker)");
        };
        if journal.is_none() {
            return fail(
                "--warm-from requires --cache-dir (the absorbed peer segment persists into \
                 the local journal)",
            );
        }
        match consensus_cluster::warm::warm_from(&session, peer, Duration::from_secs(30)) {
            Ok(absorbed) => {
                emit(format_args!("[warm-from] absorbed {absorbed} journal entries from {peer}"));
            }
            Err(e) => return fail(&e),
        }
    }
    let cfg = ServeConfig { addr, threads, ..ServeConfig::default() };
    let server = match Server::bind(Arc::new(App::new(session).log_requests(true)), &cfg) {
        Ok(server) => server,
        Err(e) => return fail(&e.to_string()),
    };
    emit(format_args!(
        "serving on http://{} ({} worker threads); endpoints: POST /v1/check, \
         POST /v1/sweep, GET /v1/journal/segment, GET /v1/catalog, GET /v1/stats, \
         GET /v1/trace, GET /healthz, GET /metrics[?format=prometheus]",
        server.local_addr(),
        cfg.effective_threads(),
    ));
    match journal {
        Some(dir) => emit(format_args!("verdict journal: {}", dir.display())),
        None => emit(format_args!("verdict journal: disabled (memory-only session)")),
    }
    if flags.has("trace") {
        emit(format_args!("tracing to the span ring (harvest with GET /v1/trace?since=ID)"));
    }
    if let Some(path) = trace_path {
        // A detached flusher: the server runs until the process dies, so
        // spans stream to disk instead of waiting for an exit that never
        // comes. One file per server run.
        if let Err(e) = std::fs::write(&path, "") {
            return fail(&format!("creating {}: {e}", path.display()));
        }
        emit(format_args!("tracing spans to {} (flushed every 500 ms)", path.display()));
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(500));
            if let Err(e) = append_trace(&path) {
                eprintln!("[trace] {e}");
                return;
            }
        });
    }
    server.wait();
    ExitCode::SUCCESS
}

fn cmd_serve_bench(args: &[String]) -> ExitCode {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if let Err(e) = flags.reject_unknown(&[
        "addr",
        "connections",
        "requests",
        "max-depth",
        "analyses",
        "threads",
        "out",
        "records",
        "assert-warm",
    ]) {
        return fail(&e);
    }
    for needs_value in ["addr", "out", "records"] {
        if flags.has(needs_value) && flags.get(needs_value).is_none() {
            return fail(&format!("--{needs_value} expects a value"));
        }
    }
    let mut cfg = LoadGenConfig {
        addr: flags.get("addr").map(String::from),
        assert_warm: flags.has("assert-warm"),
        ..LoadGenConfig::default()
    };
    for (flag, slot) in [
        ("connections", &mut cfg.connections as &mut usize),
        ("requests", &mut cfg.requests),
        ("max-depth", &mut cfg.max_depth),
        ("threads", &mut cfg.server_threads),
    ] {
        match flags.get_usize(flag, *slot) {
            Ok(value) => *slot = value,
            Err(e) => return fail(&e),
        }
    }
    match parse_analyses(&flags) {
        Ok(kinds) => cfg.analyses = kinds,
        Err(e) => return fail(&e),
    }
    let report = match loadgen::run(&cfg) {
        Ok(report) => report,
        Err(e) => return fail(&e),
    };
    emit(format_args!("[serve-bench] {}", report.summary));
    emit(format_args!("{}", report.datum));
    if let Some(dir) = flags.get("records") {
        let dir = PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            return fail(&format!("creating {}: {e}", dir.display()));
        }
        let path = dir.join("results.jsonl");
        if let Err(e) = std::fs::write(&path, &report.records_jsonl) {
            return fail(&format!("writing {}: {e}", path.display()));
        }
        emit(format_args!("wrote {}", path.display()));
    }
    if let Some(out) = flags.get("out") {
        if let Err(e) = std::fs::write(out, format!("{}\n", report.datum)) {
            return fail(&format!("writing {out}: {e}"));
        }
        emit(format_args!("wrote {out}"));
    }
    ExitCode::SUCCESS
}

fn cmd_report(args: &[String]) -> ExitCode {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if let Err(e) = flags.reject_unknown(&["input", "timings", "trace"]) {
        return fail(&e);
    }
    if flags.has("trace") && !flags.has("timings") {
        return fail("--trace only applies with --timings");
    }
    if flags.has("input") {
        let Some(input) = flags.get("input") else {
            return fail("--input expects a result file");
        };
        let text = match std::fs::read_to_string(input) {
            Ok(t) => t,
            Err(e) => return fail(&format!("reading {input}: {e}")),
        };
        match parse_jsonl(&text) {
            Ok(records) => {
                emit(format_args!("{}", Aggregate::from_records(&records)));
                // Engine telemetry rides in the sweep-meta sidecar: surface
                // the cache counters (ladder/disk hits, budget misses) that
                // the per-record JSONL cannot carry.
                if let Some(meta) = read_sweep_meta(Path::new(input)) {
                    emit(format_args!("{meta}"));
                }
            }
            Err((line, e)) => return fail(&format!("{input}:{line}: {e}")),
        }
    }
    if flags.has("timings") {
        let Some(trace) = flags.get("trace") else {
            return fail("--timings needs --trace TRACE.jsonl (a --trace-out file)");
        };
        let text = match std::fs::read_to_string(trace) {
            Ok(t) => t,
            Err(e) => return fail(&format!("reading {trace}: {e}")),
        };
        // Validate before rendering: a malformed trace fails loudly
        // instead of producing a quietly wrong tree.
        if let Err(e) = consensus_lab::trace::validate(&text) {
            return fail(&format!("{trace}: {e}"));
        }
        let spans: Vec<consensus_lab::trace::TraceSpan> = match text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(consensus_lab::trace::TraceSpan::parse)
            .collect()
        {
            Ok(spans) => spans,
            Err(e) => return fail(&format!("{trace}: {e}")),
        };
        // A stitched cluster trace marks spans whose worker-side parent
        // was overwritten by ring pressure before the coordinator could
        // drain it. The tree still renders (orphans hang off the sweep
        // root), but it is not the whole story — say so loudly.
        let orphaned = spans
            .iter()
            .filter(|s| {
                s.attrs.get("orphaned").and_then(consensus_lab::json::Value::as_bool) == Some(true)
            })
            .count();
        if orphaned > 0 {
            eprintln!(
                "WARNING: {trace} is an INCOMPLETE stitched trace: {orphaned} span(s) lost \
                 their parent to worker-side ring overwrite (re-parented under the sweep \
                 root); raise the drain cadence or lower the sweep size for a full trace"
            );
        }
        emit(format_args!("{}", consensus_lab::trace::render_timings(&spans)));
    } else if !flags.has("input") {
        return fail("report needs --input FILE.jsonl and/or --timings --trace TRACE.jsonl");
    }
    ExitCode::SUCCESS
}

fn cmd_cluster(args: &[String]) -> ExitCode {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if let Err(e) = flags.reject_unknown(&[
        "workers",
        "spec",
        "max-depth",
        "analyses",
        "out",
        "shards-per-worker",
        "spot-check",
        "retries",
        "backoff-ms",
        "deadline-ms",
        "trace-out",
        "events-out",
    ]) {
        return fail(&e);
    }
    let trace_path = match trace_out(&flags) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let events = match flags.get("events-out") {
        None if flags.has("events-out") => return fail("--events-out expects a file path"),
        None => None,
        Some(path) => match std::fs::File::create(path) {
            Ok(file) => Some(EventSink::new(Box::new(file))),
            Err(e) => return fail(&format!("creating {path}: {e}")),
        },
    };
    let Some(workers) = flags.get("workers") else {
        return fail("cluster needs --workers HOST:PORT[,HOST:PORT...]");
    };
    let workers: Vec<String> = workers
        .split(',')
        .map(str::trim)
        .filter(|w| !w.is_empty())
        .map(String::from)
        .collect();
    if workers.is_empty() {
        return fail("--workers lists no addresses");
    }
    for needs_value in ["spec", "out"] {
        if flags.has(needs_value) && flags.get(needs_value).is_none() {
            return fail(&format!("--{needs_value} expects a value"));
        }
    }
    let mut cfg = ClusterConfig {
        workers,
        spec: flags.get("spec").map(String::from),
        ..ClusterConfig::default()
    };
    for (flag, slot) in [
        ("max-depth", &mut cfg.max_depth as &mut usize),
        ("shards-per-worker", &mut cfg.shards_per_worker),
        ("spot-check", &mut cfg.spot_check_pct),
        ("retries", &mut cfg.retries),
    ] {
        match flags.get_usize(flag, *slot) {
            Ok(value) => *slot = value,
            Err(e) => return fail(&e),
        }
    }
    match flags.get_usize("backoff-ms", cfg.backoff.as_millis() as usize) {
        Ok(ms) => cfg.backoff = Duration::from_millis(ms as u64),
        Err(e) => return fail(&e),
    }
    match flags.get_usize("deadline-ms", cfg.deadline.as_millis() as usize) {
        Ok(ms) => cfg.deadline = Duration::from_millis(ms.max(1) as u64),
        Err(e) => return fail(&e),
    }
    match parse_analyses(&flags) {
        Ok(kinds) => cfg.analyses = kinds,
        Err(e) => return fail(&e),
    }
    let out = PathBuf::from(flags.get("out").unwrap_or("cluster-results"));
    let outcome = match coordinator::run_with(&cfg, events.as_ref()) {
        Ok(outcome) => outcome,
        Err(e) => return fail(&e),
    };
    let stats = &outcome.stats;
    emit(format_args!(
        "[cluster] {} scenarios over {} worker(s) × {} shard(s): {} dispatch(es), \
         {} retr(ies), {} rebalance(s), {} worker(s) died, {} spot-check(s), \
         {} event(s) emitted",
        stats.scenarios,
        stats.workers,
        stats.shards,
        stats.dispatches,
        stats.retries,
        stats.rebalances,
        stats.workers_dead,
        stats.spot_checks,
        stats.events_emitted,
    ));
    if let Some(path) = &trace_path {
        // Local spans first (drained by finish_trace), then the stitched
        // worker fragments: one file, one cross-node trace.
        if let Err(e) = finish_trace(path) {
            return fail(&e);
        }
        if !outcome.stitched_spans.is_empty() {
            use std::io::Write;
            let appended = std::fs::OpenOptions::new().append(true).open(path).and_then(|mut f| {
                for line in &outcome.stitched_spans {
                    writeln!(f, "{line}")?;
                }
                Ok(())
            });
            if let Err(e) = appended {
                return fail(&format!("appending stitched spans to {}: {e}", path.display()));
            }
            eprintln!(
                "[trace] stitched {} worker span(s) into {}",
                outcome.stitched_spans.len(),
                path.display()
            );
        }
    }
    let meta = outcome.meta;
    match ResultStore::new(outcome.records).write_files(&out) {
        Ok((jsonl, csv)) => {
            emit(format_args!("wrote {} and {}", jsonl.display(), csv.display()));
            if let Some(meta) = meta {
                let meta_path = out.join(SWEEP_META_FILE);
                if let Err(e) = std::fs::write(&meta_path, format!("{}\n", meta.to_json())) {
                    return fail(&format!("writing {}: {e}", meta_path.display()));
                }
                emit(format_args!("wrote {}", meta_path.display()));
            }
            if let Some(fleet) = &outcome.fleet {
                let stats_path = out.join("cluster-stats.json");
                if let Err(e) = std::fs::write(&stats_path, format!("{fleet}\n")) {
                    return fail(&format!("writing {}: {e}", stats_path.display()));
                }
                emit(format_args!("wrote {}", stats_path.display()));
            }
        }
        Err(e) => return fail(&format!("writing results to {}: {e}", out.display())),
    }
    if !outcome.spot_check_failures.is_empty() {
        for failure in &outcome.spot_check_failures {
            eprintln!("spot-check rejected: {failure}");
        }
        return fail(&format!(
            "{} of {} spot-checked verdict(s) failed certificate replay — do not trust \
             this result set",
            outcome.spot_check_failures.len(),
            stats.spot_checks
        ));
    }
    ExitCode::SUCCESS
}

fn cmd_cluster_bench(args: &[String]) -> ExitCode {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if let Err(e) = flags.reject_unknown(&["max-depth", "analyses", "spot-check", "threads", "out"])
    {
        return fail(&e);
    }
    if flags.has("out") && flags.get("out").is_none() {
        return fail("--out expects a file path");
    }
    let mut cfg = ClusterBenchConfig::default();
    for (flag, slot) in [
        ("max-depth", &mut cfg.max_depth as &mut usize),
        ("spot-check", &mut cfg.spot_check_pct),
        ("threads", &mut cfg.server_threads),
    ] {
        match flags.get_usize(flag, *slot) {
            Ok(value) => *slot = value,
            Err(e) => return fail(&e),
        }
    }
    match parse_analyses(&flags) {
        Ok(kinds) => cfg.analyses = kinds,
        Err(e) => return fail(&e),
    }
    let report = match cluster_bench::run(&cfg) {
        Ok(report) => report,
        Err(e) => return fail(&e),
    };
    emit(format_args!("[cluster-bench] {}", report.summary));
    emit(format_args!("{}", report.datum));
    if let Some(out) = flags.get("out") {
        if let Err(e) = std::fs::write(out, format!("{}\n", report.datum)) {
            return fail(&format!("writing {out}: {e}"));
        }
        emit(format_args!("wrote {out}"));
    }
    ExitCode::SUCCESS
}

fn cmd_trace_check(args: &[String]) -> ExitCode {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if let Err(e) = flags.reject_unknown(&["input"]) {
        return fail(&e);
    }
    let Some(input) = flags.get("input") else {
        return fail("trace-check needs --input TRACE.jsonl");
    };
    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => return fail(&format!("reading {input}: {e}")),
    };
    match consensus_lab::trace::validate(&text) {
        Ok(summary) => {
            emit(format_args!(
                "{{\"spans\":{},\"roots\":{},\"ok\":true}}",
                summary.spans, summary.roots
            ));
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("{input}: {e}")),
    }
}
