//! Peer warm-start: the third tier of the verdict-cache ladder.
//!
//! A cold worker joining a fleet has an empty space cache and (at best)
//! an empty local journal, so its first requests pay full expansions its
//! peers already paid. This module pulls a live peer's verdict journal
//! over `GET /v1/journal/segment` and absorbs it into the local
//! [`DiskCache`](consensus_lab::persist::DiskCache) — through the same
//! salt check that guards a local journal, so a peer running a
//! different code version is refused wholesale rather than trusted.
//! Memory → local disk → peer, each tier consulted in that order and
//! each absorbed entry persisted locally, so the warm start survives
//! the worker's own restarts.

use std::time::Duration;

use consensus_lab::json::Value;
use consensus_lab::session::Session;
use consensus_serve::client::Client;

/// Pull `peer`'s journal segment and absorb it into `session`'s disk
/// cache. Returns how many entries were newly journaled locally
/// (entries already present, and a peer running without a journal,
/// absorb as zero).
///
/// # Errors
/// A message when the session has no disk cache (peer warm-start needs
/// `--cache-dir`), the peer is unreachable, the segment is malformed,
/// or the peer's journal salt does not match this binary's.
pub fn warm_from(session: &Session, peer: &str, deadline: Duration) -> Result<usize, String> {
    let Some(disk) = session.disk_cache() else {
        return Err("peer warm-start needs a persistent journal (run with --cache-dir DIR)".into());
    };
    let mut client = Client::connect_with_deadline(peer, deadline)
        .map_err(|e| format!("connecting to {peer}: {e}"))?;
    let answer = client.get("/v1/journal/segment").map_err(|e| format!("{peer}: {e}"))?;
    if answer.status != 200 {
        return Err(format!(
            "{peer}: /v1/journal/segment answered HTTP {}: {}",
            answer.status, answer.body
        ));
    }
    let value = consensus_lab::json::parse(&answer.body)
        .map_err(|e| format!("{peer}: unparseable journal segment: {e}"))?;
    if value.get("enabled").and_then(Value::as_bool) != Some(true) {
        // The peer serves without a journal: nothing to absorb.
        return Ok(0);
    }
    let Some(salt) = value.get("salt").and_then(Value::as_str) else {
        return Err(format!("{peer}: journal segment carries no salt"));
    };
    let Some(Value::Arr(entries)) = value.get("entries") else {
        return Err(format!("{peer}: journal segment carries no entries array"));
    };
    disk.absorb(salt, entries).map_err(|e| format!("{peer}: {e}"))
}
