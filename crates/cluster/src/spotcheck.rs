//! Certificate spot-checks: the coordinator's accountability layer.
//!
//! A coordinator merges verdicts it did not compute. PR 8's checkable
//! certificates make those verdicts auditable across the wire: for a
//! deterministic sample of the merged definitive solvability records,
//! the auditor asks a live worker for a certificate
//! (`POST /v1/check` with `"certificate": true`), replays
//! [`consensus_core::certificate::verify`] **locally** against the
//! adversary it rebuilds itself, and cross-checks the certified verdict
//! against the merged record. A worker that returned a wrong verdict —
//! tampered, bit-flipped, or miscomputed — cannot survive the audit:
//! either its certificate fails local replay, or the certified verdict
//! contradicts the record it shipped.
//!
//! The sample is a deterministic stride over the candidates, so a given
//! grid and percentage audit the same cells on every run (reproducible
//! CI), and audits round-robin over the live workers, so the auditor
//! does not have to trust the worker that produced the answer.

use std::time::Duration;

use consensus_core::certificate;
use consensus_core::Certificate;
use consensus_lab::json::Value;
use consensus_lab::scenario::AnalysisKind;
use consensus_lab::session::certificate_adversary;
use consensus_lab::store::ScenarioRecord;
use consensus_obs::metrics::registry;
use consensus_obs::trace::{tracer, TraceContext, TRACE_HEADER};
use consensus_serve::client::Client;

use crate::events::EventSink;

/// One audit pass's tally.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpotCheckSummary {
    /// Records eligible for audit (definitive solvability verdicts).
    pub candidates: usize,
    /// Records actually audited.
    pub checked: usize,
    /// One message per rejected audit; empty means the sample held up.
    pub failures: Vec<String>,
}

/// Whether `record` carries a certificate-auditable verdict.
fn auditable(record: &ScenarioRecord) -> bool {
    record.analysis == AnalysisKind::Solvability
        && matches!(record.outcome.verdict.as_str(), "solvable" | "unsolvable")
}

/// Audit `pct` percent of the auditable records against the live
/// `workers`, rounding the sample size up (a nonzero percentage always
/// audits at least one record).
///
/// # Errors
/// A message when a sample is requested but no worker is reachable —
/// an audit that cannot run must not pass silently.
pub fn spot_check(
    records: &[ScenarioRecord],
    workers: &[String],
    pct: usize,
    deadline: Duration,
) -> Result<SpotCheckSummary, String> {
    spot_check_with(records, workers, pct, deadline, None)
}

/// [`spot_check`], with an optional live event sink: one `audited`
/// event per replayed verdict.
///
/// # Errors
/// As [`spot_check`].
pub fn spot_check_with(
    records: &[ScenarioRecord],
    workers: &[String],
    pct: usize,
    deadline: Duration,
    events: Option<&EventSink>,
) -> Result<SpotCheckSummary, String> {
    let candidates: Vec<&ScenarioRecord> = records.iter().filter(|r| auditable(r)).collect();
    let mut summary =
        SpotCheckSummary { candidates: candidates.len(), ..SpotCheckSummary::default() };
    if pct == 0 || candidates.is_empty() {
        return Ok(summary);
    }
    if workers.is_empty() {
        return Err("no live worker left to spot-check against".into());
    }
    let sample = (candidates.len() * pct).div_ceil(100).clamp(1, candidates.len());
    let mut clients: Vec<Option<Client>> = workers.iter().map(|_| None).collect();
    for at in 0..sample {
        // Deterministic stride over the candidate list, round-robin over
        // the live workers.
        let record = candidates[at * candidates.len() / sample];
        let mut span = tracer()
            .span("cluster.spotcheck")
            .with_attr("adversary", record.adversary.clone())
            .with_attr("depth", record.depth);
        // The audit request carries this span's trace context, so a
        // worker-side `http.request` span stitches under the audit that
        // caused it, exactly like a shard dispatch.
        let trace = span.id().map(|id| TraceContext::local(id).to_header());
        let verdict =
            audit(record, workers, &mut clients, at % workers.len(), deadline, trace.as_deref())?;
        summary.checked += 1;
        registry().counter("cluster.spot_checks").inc();
        span.set_attr("ok", verdict.is_ok());
        if let Some(sink) = events {
            sink.emit(
                "audited",
                vec![
                    ("adversary".into(), Value::Str(record.adversary.clone())),
                    ("depth".into(), Value::Int(record.depth as i64)),
                    ("ok".into(), Value::Bool(verdict.is_ok())),
                ],
            );
        }
        if let Err(failure) = verdict {
            registry().counter("cluster.spot_check_failures").inc();
            summary.failures.push(failure);
        }
    }
    Ok(summary)
}

/// Audit one record, failing over across workers on transport errors.
/// `Ok(Ok(()))` = verdict confirmed; `Ok(Err(msg))` = audit *rejected*
/// the verdict; `Err(msg)` = no worker could be asked at all.
fn audit(
    record: &ScenarioRecord,
    workers: &[String],
    clients: &mut [Option<Client>],
    first: usize,
    deadline: Duration,
    trace: Option<&str>,
) -> Result<Result<(), String>, String> {
    let headers: Vec<(&str, &str)> = trace.map(|value| (TRACE_HEADER, value)).into_iter().collect();
    let body = audit_body(record);
    let mut last_error = String::new();
    for offset in 0..workers.len() {
        let at = (first + offset) % workers.len();
        let addr = &workers[at];
        if clients[at].is_none() {
            match Client::connect_with_deadline(addr, deadline) {
                Ok(client) => clients[at] = Some(client),
                Err(e) => {
                    last_error = format!("connecting to {addr}: {e}");
                    continue;
                }
            }
        }
        match clients[at].as_mut().expect("connected above").post_json_with(
            "/v1/check",
            &body,
            &headers,
        ) {
            Err(e) => {
                clients[at] = None;
                last_error = format!("{addr}: {e}");
            }
            Ok(answer) => return Ok(replay(record, addr, answer.status, &answer.body)),
        }
    }
    Err(format!(
        "spot-check of {}@{} could not reach any worker: {last_error}",
        record.adversary, record.depth
    ))
}

fn audit_body(record: &ScenarioRecord) -> String {
    // The record's adversary label is a catalog name or a term of the
    // shared spec language — the same name-first resolution
    // `certificate_adversary` applies when replaying the certificate.
    let key = if adversary::catalog::by_name(&record.adversary).is_some() {
        "adversary"
    } else {
        "spec"
    };
    Value::Obj(vec![
        (key.into(), Value::Str(record.adversary.clone())),
        ("depth".into(), Value::Int(record.depth as i64)),
        ("analysis".into(), Value::Str("solvability".into())),
        ("certificate".into(), Value::Bool(true)),
    ])
    .to_string()
}

/// Replay one audit answer locally: parse the certificate, rebuild the
/// adversary it names, verify it, and cross-check verdicts.
fn replay(record: &ScenarioRecord, addr: &str, status: u16, body: &str) -> Result<(), String> {
    let subject = format!("{}@{}", record.adversary, record.depth);
    if status != 200 {
        return Err(format!("{subject}: audit request to {addr} answered HTTP {status}: {body}"));
    }
    let value = consensus_lab::json::parse(body)
        .map_err(|e| format!("{subject}: unparseable audit answer from {addr}: {e}"))?;
    let Some(cert_value @ Value::Obj(_)) = value.get("certificate") else {
        return Err(format!(
            "{subject}: {addr} returned no certificate for a definitive solvability verdict"
        ));
    };
    let cert = Certificate::from_json(cert_value)
        .map_err(|e| format!("{subject}: malformed certificate from {addr} [{}]: {e}", e.kind()))?;
    if cert.adversary() != record.adversary {
        return Err(format!(
            "{subject}: certificate from {addr} names adversary {:?}",
            cert.adversary()
        ));
    }
    let ma = certificate_adversary(cert.adversary())
        .map_err(|e| format!("{subject}: cannot rebuild audited adversary [{}]: {e}", e.kind()))?;
    certificate::verify(&cert, ma.as_ref()).map_err(|e| {
        format!("{subject}: certificate from {addr} fails replay [{}]: {e}", e.kind())
    })?;
    if cert.verdict() != record.outcome.verdict {
        return Err(format!(
            "{subject}: merged record says {:?} but the audited certificate proves {:?}",
            record.outcome.verdict,
            cert.verdict()
        ));
    }
    Ok(())
}
