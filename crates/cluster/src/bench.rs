//! The `cluster-bench` harness: serial vs 2-worker wall clock, plus the
//! robustness/audit counters, as one `BENCH_cluster.json` datum.
//!
//! Two in-process workers (ephemeral ports, throwaway cache
//! directories) serve a coordinator sweep of the catalog grid; the same
//! grid runs serially in one `Session` as the reference. The datum
//! records both wall clocks and — more importantly for CI — the *exact*
//! counters: scenario/shard counts, retries and rebalances (zero on a
//! healthy fleet), spot-check tallies, the peer warm-start segment
//! size, and a record-identity bit, all gated by `bench-gate --exact`.
//!
//! A second, *traced* coordinator pass measures the observability tax
//! (`cluster_traced_ms` vs `cluster_ms`) and pins the structural
//! counters: `events_emitted` (dispatched + completed + audited on a
//! healthy fleet — deterministic) and `spans_stitched` (zero here by
//! design: in-process workers share the coordinator's tracer, so their
//! spans are already local and the stitcher must leave them alone; a
//! nonzero value would mean spans got duplicated).

use std::sync::Arc;
use std::time::{Duration, Instant};

use consensus_lab::json::Value;
use consensus_lab::scenario::AnalysisKind;
use consensus_lab::session::{Query, Session};
use consensus_lab::store::TIMING_FIELDS;
use consensus_lab::{AnalysisConfig, CacheConfig, ExpandConfig};
use consensus_serve::api::App;
use consensus_serve::server::{ServeConfig, Server};

use crate::coordinator::{self, ClusterConfig};
use crate::warm;

/// `cluster-bench` knobs.
#[derive(Debug, Clone)]
pub struct ClusterBenchConfig {
    /// Sweep the catalog up to this depth…
    pub max_depth: usize,
    /// …across these analyses.
    pub analyses: Vec<AnalysisKind>,
    /// Percentage of verdicts to audit (see [`crate::spotcheck`]).
    pub spot_check_pct: usize,
    /// Worker threads per in-process server.
    pub server_threads: usize,
}

impl Default for ClusterBenchConfig {
    fn default() -> Self {
        ClusterBenchConfig {
            max_depth: 3,
            analyses: AnalysisKind::ALL.to_vec(),
            spot_check_pct: 10,
            server_threads: 2,
        }
    }
}

/// One bench run's outcome.
#[derive(Debug)]
pub struct ClusterBenchReport {
    /// The `BENCH_cluster.json` datum.
    pub datum: Value,
    /// A one-line human summary.
    pub summary: String,
}

fn ms(elapsed: Duration) -> f64 {
    (elapsed.as_secs_f64() * 1e6).round() / 1e3
}

/// Run the bench: boot 2 journaled in-process workers, sweep the grid
/// serially and through the coordinator, check record identity modulo
/// timing fields, and measure a cold peer warm-start from worker A.
///
/// # Errors
/// A message when a server cannot bind, the cluster run fails, or the
/// warm-start pull fails.
pub fn run(cfg: &ClusterBenchConfig) -> Result<ClusterBenchReport, String> {
    let root = std::env::temp_dir().join(format!("consensus-cluster-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let journaled_session = |dir: &str| -> Result<Session, String> {
        Session::with_configs(
            ExpandConfig::default(),
            AnalysisConfig::default(),
            CacheConfig::default().disk_dir(root.join(dir)),
        )
        .map_err(|e| e.to_string())
    };

    let mut servers = Vec::new();
    for dir in ["worker-a", "worker-b"] {
        let app = Arc::new(App::new(journaled_session(dir)?));
        let config = ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: cfg.server_threads,
            ..ServeConfig::default()
        };
        servers.push(Server::bind(app, &config).map_err(|e| e.to_string())?);
    }
    let workers: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();

    // Serial reference: the same grid, one session, one process.
    let grid = Query::catalog_grid(cfg.max_depth, &cfg.analyses);
    let serial_start = Instant::now();
    let serial = Session::new().check_many(&grid);
    let serial_ms = ms(serial_start.elapsed());

    let cluster_cfg = ClusterConfig {
        workers: workers.clone(),
        max_depth: cfg.max_depth,
        analyses: cfg.analyses.clone(),
        spot_check_pct: cfg.spot_check_pct,
        ..ClusterConfig::default()
    };
    let cluster_start = Instant::now();
    let outcome = coordinator::run(&cluster_cfg)?;
    let cluster_ms = ms(cluster_start.elapsed());

    // Traced re-run: same grid, tracer on, lifecycle events counted
    // through a discarding sink. Records must stay byte-identical —
    // observability that changes answers is not observability.
    let tracer = consensus_obs::trace::tracer();
    tracer.disable();
    let _ = tracer.drain();
    tracer.enable();
    let events = crate::events::EventSink::new(Box::new(std::io::sink()));
    let traced_start = Instant::now();
    let traced = coordinator::run_with(&cluster_cfg, Some(&events));
    let cluster_traced_ms = ms(traced_start.elapsed());
    tracer.disable();
    let _ = tracer.drain();
    let traced = traced?;

    let serial_records = serial.store.records();
    let matches_serial = |records: &[consensus_lab::store::ScenarioRecord]| {
        serial_records.len() == records.len()
            && serial_records.iter().zip(records).all(|(a, b)| {
                a.to_json().without_keys(TIMING_FIELDS) == b.to_json().without_keys(TIMING_FIELDS)
            })
    };
    let identical = matches_serial(&outcome.records) && matches_serial(&traced.records);

    // Peer warm-start: a cold third journal pulls worker A's segment.
    let warm_session = journaled_session("warm")?;
    let warm_entries = warm::warm_from(&warm_session, &workers[0], Duration::from_secs(30))?;

    for server in servers {
        server.stop();
    }
    let _ = std::fs::remove_dir_all(&root);

    let stats = &outcome.stats;
    let datum = Value::Obj(vec![
        ("scenarios".into(), Value::Int(stats.scenarios as i64)),
        ("workers".into(), Value::Int(stats.workers as i64)),
        ("shards".into(), Value::Int(stats.shards as i64)),
        ("serial_ms".into(), Value::Float(serial_ms)),
        ("cluster_ms".into(), Value::Float(cluster_ms)),
        ("cluster_traced_ms".into(), Value::Float(cluster_traced_ms)),
        ("retries".into(), Value::Int(stats.retries as i64)),
        ("rebalances".into(), Value::Int(stats.rebalances as i64)),
        ("spot_checks".into(), Value::Int(stats.spot_checks as i64)),
        ("spot_check_failures".into(), Value::Int(stats.spot_check_failures as i64)),
        ("spans_stitched".into(), Value::Int(traced.stats.spans_stitched as i64)),
        ("events_emitted".into(), Value::Int(traced.stats.events_emitted as i64)),
        ("warm_segment_entries".into(), Value::Int(warm_entries as i64)),
        ("identical".into(), Value::Int(i64::from(identical))),
    ]);
    let summary = format!(
        "{} scenarios over {} workers × {} shards: serial {serial_ms} ms, cluster {cluster_ms} \
         ms (traced {cluster_traced_ms} ms, {} event(s)); {} spot-check(s), {} warm segment \
         entr{} absorbed, identical={identical}",
        stats.scenarios,
        stats.workers,
        stats.shards,
        traced.stats.events_emitted,
        stats.spot_checks,
        warm_entries,
        if warm_entries == 1 { "y" } else { "ies" },
    );
    Ok(ClusterBenchReport { datum, summary })
}
