//! Structured shard-lifecycle events: one JSON object per line on a
//! caller-supplied sink (`--events-out`), emitted **live** as the
//! coordinator works — `dispatched`, `completed`, `retried`,
//! `rebalanced`, and `audited` — so an operator tailing the file sees
//! a sweep's robustness story as it happens instead of reconstructing
//! it from counters afterwards.
//!
//! The sink is shared by the per-worker dispatch threads, so it locks a
//! writer per line and flushes eagerly: a worker killed mid-sweep (the
//! CI smoke test does exactly this) must not take buffered `retried`/
//! `rebalanced` lines down with it.

use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use consensus_lab::json::Value;

/// A thread-safe JSONL event sink shared by the coordinator's dispatch
/// threads. Every line is `{"event":"cluster.<kind>", ...fields}`.
pub struct EventSink {
    out: Mutex<Box<dyn Write + Send>>,
    emitted: AtomicUsize,
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSink")
            .field("emitted", &self.emitted())
            .finish_non_exhaustive()
    }
}

impl EventSink {
    /// Wrap a writer (a file opened for `--events-out`, or
    /// [`std::io::sink`] when only the count matters, as in
    /// `cluster-bench`).
    pub fn new(out: Box<dyn Write + Send>) -> EventSink {
        EventSink { out: Mutex::new(out), emitted: AtomicUsize::new(0) }
    }

    /// Emit one event line. `kind` is the bare lifecycle name
    /// (`"dispatched"`, `"retried"`, …); it is prefixed with
    /// `cluster.` on the wire. I/O failures are swallowed — events are
    /// observability, and a full disk must not kill a sweep.
    pub fn emit(&self, kind: &str, fields: Vec<(String, Value)>) {
        let mut obj = vec![("event".to_string(), Value::Str(format!("cluster.{kind}")))];
        obj.extend(fields);
        let line = Value::Obj(obj).to_string();
        self.emitted.fetch_add(1, Ordering::Relaxed);
        let mut out = self.out.lock().expect("event sink poisoned");
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }

    /// Events emitted so far (the `events_emitted` bench counter).
    pub fn emitted(&self) -> usize {
        self.emitted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A `Write` handing its bytes to a shared buffer, so the test can
    /// read back what concurrent emitters wrote.
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_are_whole_json_lines_even_under_concurrency() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = EventSink::new(Box::new(Shared(Arc::clone(&buf))));
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let sink = &sink;
                scope.spawn(move || {
                    for shard in 0..8 {
                        sink.emit(
                            "dispatched",
                            vec![
                                ("shard".into(), Value::Int(shard)),
                                ("worker".into(), Value::Int(worker)),
                            ],
                        );
                    }
                });
            }
        });
        assert_eq!(sink.emitted(), 32);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 32, "one event per line, no torn interleavings");
        for line in lines {
            let v = json::parse(line).expect("every event line is valid JSON");
            assert_eq!(v.get("event").and_then(Value::as_str), Some("cluster.dispatched"));
            assert!(v.get("shard").is_some() && v.get("worker").is_some());
        }
    }
}
